"""The differential campaign runner: N engines, one statement stream.

Every generated statement is executed against a stock-settings
:class:`~repro.db.Database` and a bee-enabled one; their outcomes (rows,
status, or error type) must match statement by statement.  On top of the
engine diff, eligible SELECTs get three more lanes:

* **bees-off**: the same query re-run on the bee database with the
  per-query toggle (``db.sql(sql, bees=False)``) must equal the
  specialized result — this isolates execution-path bugs from state
  (storage) bugs, since both runs read the same physical tuples.
* **TLP + rewrites**: metamorphic self-consistency on each database
  (see :mod:`repro.oracle.metamorphic`).
* **vector-vs-interpreter**: the same query re-run with the per-query
  vector toggle (``db.sql(sql, vectors=True)``) — the NumPy columnar
  kernels must reproduce the interpreter's rows exactly.
* **columnar**: for ``SELECT SUM(..) FROM t WHERE ..`` over all-NOT-NULL
  scalar tables, the generic and specialized (CDL/fused) columnar
  executors must agree with the row engine.

Divergences are minimized into replayable SQL scripts, and a fingerprint
over the stock engine's outcomes pins the whole corpus for the golden
baseline under ``results/oracle/``.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass

from repro.bees.settings import BeeSettings
from repro.db import Database
from repro.oracle.generator import GenStatement, StatementGenerator
from repro.oracle.inject import inject_bug
from repro.oracle.metamorphic import check_tlp, rewrite_statements
from repro.oracle.minimize import minimize_statements
from repro.oracle.normalize import (
    canonical,
    describe_outcome,
    outcomes_equal,
    outcomes_equivalent,
    run_statement,
)


@dataclass
class Divergence:
    """One confirmed disagreement, with a replayable repro script."""

    check: str
    sql: str
    detail: str
    repro: list[str]

    def script(self) -> str:
        lines = [f"-- {self.check}: {self.detail}"]
        lines += [f"{sql};" for sql in self.repro]
        lines.append(f"{self.sql};  -- divergent statement")
        return "\n".join(lines) + "\n"


@dataclass
class OracleReport:
    """Campaign summary: what ran, what was checked, what disagreed."""

    seed: int
    iterations: int
    elapsed: float
    statement_counts: dict[str, int]
    check_counts: dict[str, int]
    divergences: list[Divergence]
    fingerprint: str

    @property
    def ok(self) -> bool:
        return not self.divergences

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "iterations": self.iterations,
            "elapsed_seconds": round(self.elapsed, 3),
            "statements": dict(sorted(self.statement_counts.items())),
            "checks": dict(sorted(self.check_counts.items())),
            "fingerprint": self.fingerprint,
            "divergences": [
                {
                    "check": d.check,
                    "sql": d.sql,
                    "detail": d.detail,
                    "repro": d.repro,
                }
                for d in self.divergences
            ],
        }

    def summary(self) -> str:
        lines = [
            f"oracle seed={self.seed}: {self.iterations} statements in "
            f"{self.elapsed:.1f}s, fingerprint {self.fingerprint}",
            "statements: "
            + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.statement_counts.items())
            ),
            "checks:     "
            + ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.check_counts.items())
            ),
        ]
        if self.ok:
            lines.append("no divergences")
        else:
            lines.append(f"{len(self.divergences)} DIVERGENCE(S):")
            for d in self.divergences:
                lines.append(f"  [{d.check}] {d.sql}")
                lines.append(f"    {d.detail}")
        return "\n".join(lines)


def _sum_equal(expected, got) -> bool:
    if expected is None or got is None:
        return expected is None and got is None
    return math.isclose(float(expected), float(got), rel_tol=1e-9, abs_tol=1e-6)


class DifferentialOracle:
    """Runs one seeded campaign across the engine pair."""

    def __init__(
        self,
        seed: int,
        bee_settings: BeeSettings | None = None,
        minimize: bool = True,
        minimize_trials: int = 120,
        minimize_cap: int = 8,
        parallel_lane: bool = False,
    ) -> None:
        self.seed = seed
        # The parallel lane spawns worker processes per campaign, so it
        # is opt-in (--parallel on the CLI / the CI parallel leg).
        self.parallel_lane = parallel_lane
        # Campaigns gate every emitted bee on beecheck by default: a
        # routine the static verifier rejects should never reach the
        # differential comparison (pass explicit settings to opt out).
        self.bee_settings = (
            bee_settings or BeeSettings.all_bees().verified()
        )
        self.minimize = minimize
        self.minimize_trials = minimize_trials
        self.minimize_cap = minimize_cap
        self.generator = StatementGenerator(seed)
        self.stock = Database(BeeSettings.stock())
        self.bee = Database(self.bee_settings)
        self.history: list[GenStatement] = []
        self.divergences: list[Divergence] = []
        self.statement_counts: dict[str, int] = {}
        self.check_counts: dict[str, int] = {}
        self._digest = hashlib.sha256()

    # -- campaign --------------------------------------------------------------

    def run(
        self, iterations: int, time_budget: float | None = None
    ) -> OracleReport:
        started = time.monotonic()
        pending = list(self.generator.bootstrap())
        executed = 0
        while executed < iterations:
            if (
                time_budget is not None
                and time.monotonic() - started > time_budget
            ):
                break
            stmt = pending.pop(0) if pending else self.generator.next_statement()
            self._run_one(stmt)
            executed += 1
        return OracleReport(
            seed=self.seed,
            iterations=executed,
            elapsed=time.monotonic() - started,
            statement_counts=self.statement_counts,
            check_counts=self.check_counts,
            divergences=self.divergences,
            fingerprint=self._digest.hexdigest()[:16],
        )

    # -- per-statement checks --------------------------------------------------

    def _count(self, bucket: dict, key: str) -> None:
        bucket[key] = bucket.get(key, 0) + 1

    def _run_one(self, stmt: GenStatement) -> None:
        self._count(self.statement_counts, stmt.kind)
        out_stock = run_statement(self.stock, stmt.sql)
        out_bee = run_statement(self.bee, stmt.sql)
        self._digest.update(stmt.sql.encode())
        self._digest.update(canonical(out_stock).encode())

        self._count(self.check_counts, "engine-diff")
        if not outcomes_equal(out_stock, out_bee, ordered=stmt.ordered):
            self._record(
                "engine-diff",
                stmt,
                f"stock={describe_outcome(out_stock)} "
                f"bees={describe_outcome(out_bee)}",
                self._engine_recheck(stmt),
            )

        if stmt.kind == "select" and out_bee[0] == "rows":
            self._check_bees_off(stmt, out_bee)
            self._check_pipeline_vs_interpreter(stmt, out_bee)
            self._check_vector_vs_interpreter(stmt, out_bee)
            if self.parallel_lane:
                self._check_parallel_vs_serial(stmt, out_bee)
        if stmt.tlp is not None and out_stock[0] == "rows" and out_bee[0] == "rows":
            self._check_metamorphic(stmt, out_stock, out_bee)
        if stmt.columnar is not None and out_stock[0] == "rows":
            self._check_columnar(stmt)

        self.history.append(stmt)

    def _check_bees_off(self, stmt: GenStatement, out_bee) -> None:
        self._count(self.check_counts, "bees-off")
        out_off = run_statement(self.bee, stmt.sql, bees=False)
        if outcomes_equal(out_bee, out_off, ordered=stmt.ordered):
            return

        def recheck(prefix: list[GenStatement]) -> bool:
            try:
                _, bee = self._replay(prefix)
                a = run_statement(bee, stmt.sql)
                b = run_statement(bee, stmt.sql, bees=False)
                return not outcomes_equal(a, b, ordered=stmt.ordered)
            except Exception:  # noqa: BLE001 — replay failure != repro
                return False

        self._record(
            "bees-off",
            stmt,
            f"bees={describe_outcome(out_bee)} "
            f"generic-on-same-storage={describe_outcome(out_off)}",
            recheck,
        )

    def _check_pipeline_vs_interpreter(
        self, stmt: GenStatement, out_bee
    ) -> None:
        """The fused-execution lane: every eligible SELECT re-runs with
        the per-query pipeline toggle on; the fused pipeline bees and the
        per-tuple Volcano interpreter read the same storage and must
        produce the same rows.  Queries whose plans have no fusable
        pipeline fall back to the generic executor and compare trivially
        — the lane still runs them, so a fusion matcher that misfires on
        an 'unsupported' shape is caught too."""
        self._count(self.check_counts, "pipeline-vs-interpreter")
        out_pipe = run_statement(self.bee, stmt.sql, pipelines=True)
        if outcomes_equal(out_bee, out_pipe, ordered=stmt.ordered):
            return

        def recheck(prefix: list[GenStatement]) -> bool:
            try:
                _, bee = self._replay(prefix)
                a = run_statement(bee, stmt.sql)
                b = run_statement(bee, stmt.sql, pipelines=True)
                return not outcomes_equal(a, b, ordered=stmt.ordered)
            except Exception:  # noqa: BLE001 — replay failure != repro
                return False

        self._record(
            "pipeline-vs-interpreter",
            stmt,
            f"fused={describe_outcome(out_pipe)} "
            f"interpreter={describe_outcome(out_bee)}",
            recheck,
        )

    def _check_vector_vs_interpreter(
        self, stmt: GenStatement, out_bee
    ) -> None:
        """The columnar-execution lane: every eligible SELECT re-runs
        with the per-query vector toggle on; the NumPy kernels decode
        the same heap pages into chunks and must produce the same rows
        as the per-tuple interpreter.  Plans with no vectorizable
        pipeline fall back (vector -> pipeline -> generic) and compare
        trivially — the lane still runs them, so a kernel emitted for an
        'unsupported' shape is caught too."""
        self._count(self.check_counts, "vector-vs-interpreter")
        out_vec = run_statement(self.bee, stmt.sql, vectors=True)
        if outcomes_equal(out_bee, out_vec, ordered=stmt.ordered):
            return

        def recheck(prefix: list[GenStatement]) -> bool:
            try:
                _, bee = self._replay(prefix)
                a = run_statement(bee, stmt.sql)
                b = run_statement(bee, stmt.sql, vectors=True)
                return not outcomes_equal(a, b, ordered=stmt.ordered)
            except Exception:  # noqa: BLE001 — replay failure != repro
                return False

        self._record(
            "vector-vs-interpreter",
            stmt,
            f"vectorized={describe_outcome(out_vec)} "
            f"interpreter={describe_outcome(out_bee)}",
            recheck,
        )

    def _check_parallel_vs_serial(
        self, stmt: GenStatement, out_bee
    ) -> None:
        """The morsel-fan lane: every eligible SELECT re-runs with the
        per-query parallel toggle on; the worker pool reads snapshots of
        the same heap pages and must produce the serial tiers' rows.
        Comparison is order-insensitive and float-tolerant
        (``outcomes_equivalent``): morsel partial sums re-associate, so
        float aggregates may differ in the last ulps — anything beyond
        that, or any non-float difference, is a divergence.  Small
        relations bypass the pool (parallel -> serial anchor) and
        compare trivially, which still exercises the bypass decision."""
        self._count(self.check_counts, "parallel-vs-serial")
        out_par = run_statement(self.bee, stmt.sql, parallel=True)
        if outcomes_equivalent(out_bee, out_par):
            return

        def recheck(prefix: list[GenStatement]) -> bool:
            bee = None
            try:
                _, bee = self._replay(prefix)
                a = run_statement(bee, stmt.sql)
                b = run_statement(bee, stmt.sql, parallel=True)
                return not outcomes_equivalent(a, b)
            except Exception:  # noqa: BLE001 — replay failure != repro
                return False
            finally:
                if bee is not None:
                    bee.close()

        self._record(
            "parallel-vs-serial",
            stmt,
            f"parallel={describe_outcome(out_par)} "
            f"serial={describe_outcome(out_bee)}",
            recheck,
        )

    def _check_metamorphic(self, stmt: GenStatement, out_stock, out_bee) -> None:
        tlp = stmt.tlp
        for label, db in (("tlp-stock", self.stock), ("tlp-bees", self.bee)):
            self._count(self.check_counts, "tlp")
            detail = check_tlp(db, tlp)
            if detail is not None:
                bee_side = label.endswith("bees")

                def recheck(prefix, bee_side=bee_side):
                    try:
                        stock, bee = self._replay(prefix)
                        target = bee if bee_side else stock
                        return check_tlp(target, tlp) is not None
                    except Exception:  # noqa: BLE001
                        return False

                self._record(label, stmt, detail, recheck)
        for rewrite_label, rewritten_sql in rewrite_statements(tlp):
            for label, db, base in (
                ("rewrite-stock", self.stock, out_stock),
                ("rewrite-bees", self.bee, out_bee),
            ):
                self._count(self.check_counts, "rewrite")
                out_rw = run_statement(db, rewritten_sql)
                if outcomes_equal(base, out_rw, ordered=False):
                    continue
                bee_side = label.endswith("bees")

                def recheck(prefix, bee_side=bee_side, rsql=rewritten_sql):
                    try:
                        stock, bee = self._replay(prefix)
                        target = bee if bee_side else stock
                        a = run_statement(target, stmt.sql)
                        b = run_statement(target, rsql)
                        return not outcomes_equal(a, b, ordered=False)
                    except Exception:  # noqa: BLE001
                        return False

                self._record(
                    f"{label}:{rewrite_label}",
                    stmt,
                    f"base={describe_outcome(base)} "
                    f"rewritten={describe_outcome(out_rw)} "
                    f"({rewritten_sql})",
                    recheck,
                )

    # -- columnar lane ---------------------------------------------------------

    def _columnar_detail(self, stmt: GenStatement, db: Database) -> str | None:
        """Cross-check a SUM/WHERE probe against the columnar engine."""
        from repro.columnar import ColumnStore, ColumnarExecutor
        from repro.sql import parse
        from repro.sql.planner import lower_expr

        try:
            rel = db.relation(stmt.columnar.table)
        except Exception:  # noqa: BLE001 — table dropped during replay
            return None
        columns = rel.schema.column_names()
        stmt_ast = parse(stmt.sql)
        qual = lower_expr(stmt_ast.where, columns)
        sum_expr = lower_expr(stmt_ast.items[0].expr.arg, columns)
        row_out = run_statement(db, stmt.sql)
        if row_out[0] != "rows" or len(row_out[1]) != 1:
            return None
        expected = row_out[1][0][0]
        store = ColumnStore(rel.schema)
        try:
            store.load(db.sql(f"SELECT * FROM {stmt.columnar.table}").rows)
        except TypeError:
            # A NULL crept into a typed column buffer; the table is no
            # longer columnar-loadable, which is a capability gap, not a
            # divergence.
            return None
        for specialized in (False, True):
            executor = ColumnarExecutor(store, specialized=specialized)
            try:
                result = executor.sum_where(qual, columns, sum_expr, columns)
            except Exception as exc:  # noqa: BLE001 — a crash IS a finding
                return (
                    f"columnar(specialized={specialized}) raised "
                    f"{type(exc).__name__} where the row engine returned "
                    f"{expected!r}"
                )
            got = result.value if result.rows_passed else None
            if not _sum_equal(expected, got):
                return (
                    f"columnar(specialized={specialized}) sum={got!r} "
                    f"!= row-engine sum={expected!r}"
                )
        return None

    def _check_columnar(self, stmt: GenStatement) -> None:
        self._count(self.check_counts, "columnar")
        detail = self._columnar_detail(stmt, self.stock)
        if detail is None:
            return

        def recheck(prefix: list[GenStatement]) -> bool:
            try:
                stock, _ = self._replay(prefix)
                return self._columnar_detail(stmt, stock) is not None
            except Exception:  # noqa: BLE001
                return False

        self._record("columnar", stmt, detail, recheck)

    # -- divergence recording and minimization ---------------------------------

    def _replay(self, stmts: list[GenStatement]) -> tuple[Database, Database]:
        stock = Database(BeeSettings.stock())
        bee = Database(self.bee_settings)
        for s in stmts:
            run_statement(stock, s.sql)
            run_statement(bee, s.sql)
        return stock, bee

    def _engine_recheck(self, stmt: GenStatement):
        def recheck(prefix: list[GenStatement]) -> bool:
            try:
                stock, bee = self._replay(prefix)
                a = run_statement(stock, stmt.sql)
                b = run_statement(bee, stmt.sql)
                return not outcomes_equal(a, b, ordered=stmt.ordered)
            except Exception:  # noqa: BLE001
                return False

        return recheck

    def _record(self, check: str, stmt: GenStatement, detail: str, recheck) -> None:
        prefix = list(self.history)
        # A badly broken engine produces dozens of near-identical
        # divergences; minimizing each replays the whole prefix per ddmin
        # trial, so only the first `minimize_cap` get the full treatment.
        if self.minimize and len(self.divergences) < self.minimize_cap:
            prefix = minimize_statements(
                prefix, recheck, max_trials=self.minimize_trials
            )
        self.divergences.append(
            Divergence(
                check=check,
                sql=stmt.sql,
                detail=detail,
                repro=[s.sql for s in prefix],
            )
        )


def run_campaign(
    seed: int,
    iterations: int,
    time_budget: float | None = None,
    bee_settings: BeeSettings | None = None,
    minimize: bool = True,
    parallel_lane: bool = False,
) -> OracleReport:
    """Convenience wrapper: one oracle, one campaign."""
    oracle = DifferentialOracle(
        seed, bee_settings=bee_settings, minimize=minimize,
        parallel_lane=parallel_lane,
    )
    try:
        return oracle.run(iterations, time_budget=time_budget)
    finally:
        oracle.bee.close()   # release the worker pool, if one spawned


def run_self_test(seed: int, iterations: int) -> dict[str, OracleReport]:
    """Prove the oracle can catch bugs: inject one per bee kind and check
    that the campaign reports divergences.  Returns reports by bug kind;
    the caller decides what a miss means (the CLI exits nonzero)."""
    reports = {}
    for kind in ("gcl", "evp", "pipeline", "vector"):
        with inject_bug(kind):
            # Verification stays off here: beecheck would reject the
            # broken routine at generation time, and this test must
            # prove the *runtime* oracle catches what slips through.
            reports[kind] = run_campaign(
                seed, iterations,
                bee_settings=BeeSettings.all_bees(),
                minimize=False,
            )
    return reports
