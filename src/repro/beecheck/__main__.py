"""Module entry point for ``python -m repro.beecheck``."""

import sys

from repro.beecheck.cli import main

sys.exit(main())
