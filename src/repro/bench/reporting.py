"""Render experiment results as paper-style tables and ASCII figures."""

from __future__ import annotations


def improvement(stock: float, bees: float) -> float:
    """Percentage improvement of *bees* over *stock* (positive = faster)."""
    if stock <= 0:
        return 0.0
    return 100.0 * (1.0 - bees / stock)


def bar_chart(
    labels: list[str],
    values: list[float],
    title: str,
    unit: str = "%",
    width: int = 40,
    vmax: float | None = None,
) -> str:
    """An ASCII bar chart shaped like the paper's per-query figures."""
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    vmax = vmax or max((abs(v) for v in values), default=1.0) or 1.0
    lines = [title, "=" * len(title)]
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(width * max(value, 0.0) / vmax)))
        lines.append(f"{label:>6s} | {bar:<{width}s} {value:6.1f}{unit}")
    return "\n".join(lines)


def table(headers: list[str], rows: list[list], title: str = "") -> str:
    """A fixed-width text table."""
    rendered_rows = [
        [f"{cell:.2f}" if isinstance(cell, float) else str(cell) for cell in row]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def summarize_improvements(per_query: dict[int, float]) -> tuple[float, float]:
    """(Avg1, min..max helper) — Avg1 is the paper's equal-weight average."""
    values = list(per_query.values())
    avg1 = sum(values) / len(values) if values else 0.0
    return avg1, (min(values) if values else 0.0)


def emit(text: str) -> None:
    """Print *text* and append it to ``results/experiments.log``.

    Benchmark fixtures report through this so the paper-style tables are
    always preserved in the results log, even when pytest's fd-level
    capture swallows stdout (run with ``-s`` to also see them live).
    """
    import os
    import sys

    print(text, file=sys.__stdout__)
    results_dir = os.environ.get("REPRO_RESULTS_DIR", "results")
    try:
        os.makedirs(results_dir, exist_ok=True)
        with open(os.path.join(results_dir, "experiments.log"), "a") as handle:
            handle.write(text + "\n")
    except OSError:
        pass  # reporting must never fail an experiment
