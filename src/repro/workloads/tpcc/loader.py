"""TPC-C initial database population (the BenchmarkSQL loader substitute).

Row counts follow the spec's per-warehouse cardinalities, scaled down by
``items_per_warehouse`` / ``customers_per_district`` so the pure-Python
engine stays responsive; throughput comparisons are ratio-based and the
scale cancels out.
"""

from __future__ import annotations

import random

from repro.bees.settings import BeeSettings
from repro.catalog.types import date_to_days
from repro.db import Database
from repro.workloads.tpcc.schema import ALL_SCHEMAS, INDEXES

import datetime

_TODAY = date_to_days(datetime.date(2011, 8, 1))

# C-Last name syllables from the spec.
_SYLLABLES = [
    "BAR", "OUGHT", "ABLE", "PRI", "PRES", "ESE", "ANTI", "CALLY", "ATION",
    "EING",
]


def c_last(number: int) -> str:
    """Spec rule: customer last name from three syllables of *number*."""
    return (
        _SYLLABLES[(number // 100) % 10]
        + _SYLLABLES[(number // 10) % 10]
        + _SYLLABLES[number % 10]
    )


class TPCCConfig:
    """Scale parameters for one TPC-C database."""

    def __init__(
        self,
        warehouses: int = 2,
        districts_per_warehouse: int = 10,
        customers_per_district: int = 120,
        items: int = 1000,
        seed: int = 20120402,
    ) -> None:
        if warehouses < 1:
            raise ValueError("need at least one warehouse")
        self.warehouses = warehouses
        self.districts = districts_per_warehouse
        self.customers = customers_per_district
        self.items = items
        self.seed = seed


def _rand_text(rng: random.Random, low: int, high: int) -> str:
    length = rng.randint(low, high)
    return "".join(
        rng.choice("abcdefghijklmnopqrstuvwxyz ") for _ in range(length)
    ).strip() or "x"


def load_tpcc(db: Database, config: TPCCConfig) -> None:
    """Create the nine tables, load initial rows, and build indexes."""
    for name, schema_fn in ALL_SCHEMAS.items():
        db.create_table(schema_fn())
    rng = random.Random(config.seed)

    for w_id in range(1, config.warehouses + 1):
        db.insert("warehouse", [
            w_id, f"WH{w_id}", _rand_text(rng, 10, 20), _rand_text(rng, 10, 20),
            "AZ", "123456789", round(rng.uniform(0.0, 0.2), 4), 300000.0,
        ])
        for d_id in range(1, config.districts + 1):
            db.insert("district", [
                d_id, w_id, f"D{d_id}", _rand_text(rng, 10, 20),
                _rand_text(rng, 10, 20), "AZ", "123456789",
                round(rng.uniform(0.0, 0.2), 4), 30000.0,
                config.customers + 1,
            ])

    items = []
    for i_id in range(1, config.items + 1):
        data = _rand_text(rng, 26, 50)
        if rng.random() < 0.1:
            data = "ORIGINAL" + data[8:]
        items.append([
            i_id, rng.randint(1, 10_000), f"item-{i_id}",
            round(rng.uniform(1.0, 100.0), 2), data[:50],
        ])
    db.copy_from("item", items)

    for w_id in range(1, config.warehouses + 1):
        stock_rows = []
        for i_id in range(1, config.items + 1):
            data = _rand_text(rng, 26, 50)
            if rng.random() < 0.1:
                data = "ORIGINAL" + data[8:]
            stock_rows.append([
                i_id, w_id, rng.randint(10, 100),
                _rand_text(rng, 24, 24)[:24].ljust(24)[:24],
                0.0, 0, 0, data[:50],
            ])
        db.copy_from("stock", stock_rows)

    order_id = 0
    for w_id in range(1, config.warehouses + 1):
        for d_id in range(1, config.districts + 1):
            customers = []
            for c_id in range(1, config.customers + 1):
                last = c_last(
                    c_id - 1 if c_id <= 1000 else rng.randint(0, 999)
                )
                credit = "BC" if rng.random() < 0.1 else "GC"
                customers.append([
                    c_id, d_id, w_id, _rand_text(rng, 8, 16), "OE", last,
                    _rand_text(rng, 10, 20), _rand_text(rng, 10, 20), "AZ",
                    "123456789", "0123456789012345", _TODAY, credit,
                    50000.0, round(rng.uniform(0.0, 0.5), 4), -10.0, 10.0,
                    1, 0, _rand_text(rng, 30, 60),
                ])
            db.copy_from("tpcc_customer", customers)

            # Initial orders: one per customer, the last 30% undelivered.
            order_rows, line_rows, new_orders = [], [], []
            c_ids = list(range(1, config.customers + 1))
            rng.shuffle(c_ids)
            for o_id, c_id in enumerate(c_ids, start=1):
                order_id += 1
                delivered = o_id <= int(config.customers * 0.7)
                ol_cnt = rng.randint(5, 15)
                order_rows.append([
                    o_id, d_id, w_id, c_id, _TODAY,
                    rng.randint(1, 10) if delivered else None,
                    ol_cnt, 1,
                ])
                for number in range(1, ol_cnt + 1):
                    line_rows.append([
                        o_id, d_id, w_id, number,
                        rng.randint(1, config.items), w_id,
                        _TODAY if delivered else None,
                        5,
                        0.0 if delivered else round(rng.uniform(0.01, 9999.99), 2),
                        _rand_text(rng, 24, 24)[:24].ljust(24)[:24],
                    ])
                if not delivered:
                    new_orders.append([o_id, d_id, w_id])
            db.copy_from("oorder", order_rows)
            db.copy_from("order_line", line_rows)
            db.copy_from("new_order", new_orders)

    for name, relation, columns, kind, unique in INDEXES:
        db.create_index(relation, name, columns, kind=kind, unique=unique)


def build_tpcc_database(
    settings: BeeSettings, config: TPCCConfig | None = None
) -> Database:
    """A loaded TPC-C database with the given bee settings."""
    config = config or TPCCConfig()
    db = Database(settings)
    load_tpcc(db, config)
    db.warm_cache()
    db.ledger.reset()
    return db
