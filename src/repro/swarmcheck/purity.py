"""Pass 1 — effect inference over generated bee source.

A bee is safe to run on any morsel worker iff it is *pure modulo
declared sinks*: every effect it has is either (a) a write into an
object the caller handed it for exactly that purpose (the AGG ``states``
list, the fused-agg ``groups`` dict), or (b) one of the two declared
ambient effects every bee shares — charging the cost ledger through the
captured ``_charge`` and falling back to the generic ``_slow`` path.
Everything else must be provably local: plain-name stores are locals by
Python scoping, and container mutation is only allowed through names the
routine itself bound (fresh objects it owns).

Three properties are proven per routine:

1. **No scope escapes** — no ``global``/``nonlocal``, no imports, no
   attribute stores, no stores to captured namespace names.
2. **Mutation discipline** — every subscript store, augmented
   assignment, delete, and mutating-method call bottoms out in a name
   the routine bound locally or a declared per-family sink parameter.
3. **Frozen captures** — every namespace ("data section") entry is an
   immutable plan constant (scalars, ``struct.Struct``, read-only
   ndarrays, interned :mod:`repro.engine.expr` nodes) or a whitelisted
   callable; a mutable capture (list, dict, writable array) is shared
   state smuggled past the registry.

EVJ routines are C template text, not Python — they get the textual
checks (no static state, no nondeterministic calls) instead of the AST
walk.
"""

from __future__ import annotations

import ast
import re
import struct

from repro.beecheck import lint
from repro.swarmcheck.report import Finding

#: Mutating container/ndarray methods (superset of what bees may emit).
_MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "sort", "reverse", "fill",
    "put", "resize", "itemset", "setflags", "move_to_end", "appendleft",
})

#: Calls every Python bee family may make.
_BASE_CALLS = frozenset({
    "_charge", "_slow", "len", "range", "sum", "min", "max", "abs",
    "int", "float", "str", "bool", "list", "tuple", "dict", "set",
    "bytes", "bytearray", "enumerate", "zip", "isinstance",
    # non-mutating methods on locals/params
    "decode", "encode", "rstrip", "lstrip", "strip", "get", "items",
    "unpack_from", "pack",
})


class Family:
    """Per-family purity contract."""

    def __init__(self, sinks: tuple = (), calls: frozenset = frozenset()):
        self.sinks = frozenset(sinks)
        self.calls = _BASE_CALLS | calls


FAMILIES: dict[str, Family] = {
    "gcl": Family(),
    "scl": Family(calls=frozenset({"_char"})),
    "evp": Family(),
    "agg": Family(sinks=("states",), calls=frozenset({"update"})),
    "idx": Family(),
    "pipeline": Family(
        sinks=("groups",),
        calls=frozenset({"append", "update", "make_states"}),
    ),
    "vector": Family(
        sinks=("groups",),
        calls=frozenset({
            "append", "update", "make_states",
            "_obj", "_zip_rows", "_materialize", "_div",
            # numpy surface the kernel emitter uses
            "nonzero", "fromiter", "bool_", "evaluate", "astype",
            "zeros", "array", "where", "isin",
        }),
    ),
}

#: Namespace keys that may bind callables, and what they are.
_CALLABLE_KEYS = re.compile(
    r"^(_charge|_slow|_char|_obj|_zip_rows|_materialize|_div|make_states"
    r"|fn\d+)$"
)

#: Immutable scalar/container types for captured constants.
_FROZEN_SCALARS = (type(None), bool, int, float, str, bytes, complex)


def _routine_def(tree: ast.Module, name: str) -> ast.FunctionDef | None:
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    return None


def _root(node: ast.expr) -> ast.expr:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node


class _PurityScanner(ast.NodeVisitor):
    """Prove properties 1 and 2 over one routine body."""

    def __init__(self, family: Family, params: set[str]) -> None:
        self.family = family
        self.params = params
        self.bound: set[str] = set()   # names the routine itself bound
        self.problems: list[tuple[str, int]] = []

    def _flag(self, what: str, lineno: int) -> None:
        self.problems.append((what, lineno))

    def _root_ok(self, node: ast.expr) -> bool:
        root = _root(node)
        return (
            isinstance(root, ast.Name)
            and (root.id in self.bound or root.id in self.family.sinks)
        )

    # Name binding: every plain-name store is a local (property of
    # Python scoping once global/nonlocal are excluded), so track it.
    def _bind_target(self, target: ast.expr, lineno: int) -> None:
        if isinstance(target, ast.Name):
            self.bound.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, lineno)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, lineno)
        elif isinstance(target, ast.Attribute):
            self._flag(
                f"attribute store to {ast.unparse(target)}", lineno
            )
        elif isinstance(target, ast.Subscript):
            if not self._root_ok(target):
                self._flag(
                    f"subscript store into non-owned {ast.unparse(target)}",
                    lineno,
                )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._bind_target(target, node.lineno)
        self.generic_visit(node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._bind_target(node.target, node.lineno)
        if node.value is not None:
            self.generic_visit(node.value)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(node.target, ast.Name):
            if node.target.id not in self.bound:
                # += on a bare name that was never bound locally would
                # be an UnboundLocalError at runtime unless it is a
                # parameter — and mutating a non-sink param (list +=)
                # is an escape.
                if node.target.id not in self.family.sinks:
                    self._flag(
                        f"augmented assignment to non-owned "
                        f"{node.target.id!r}", node.lineno,
                    )
            self.bound.add(node.target.id)
        elif not self._root_ok(node.target):
            self._flag(
                f"augmented assignment into non-owned "
                f"{ast.unparse(node.target)}", node.lineno,
            )
        self.generic_visit(node.value)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                if not self._root_ok(target):
                    self._flag(
                        f"delete on non-owned {ast.unparse(target)}",
                        node.lineno,
                    )

    def visit_For(self, node: ast.For) -> None:
        self._bind_target(node.target, node.lineno)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._bind_target(node.target, 0)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._flag("with-block (context-manager effects)", node.lineno)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        name = None
        if isinstance(fn, ast.Name):
            name = fn.id
        elif isinstance(fn, ast.Attribute):
            name = fn.attr
            if name in _MUTATORS and not self._root_ok(fn.value):
                self._flag(
                    f"mutating call {ast.unparse(fn)}() on non-owned "
                    "receiver", node.lineno,
                )
        if (
            name is not None
            and name not in self.family.calls
            and name not in self.bound
            and name not in self.params
        ):
            self._flag(
                f"call to {name!r} outside the family whitelist",
                node.lineno,
            )
        self.generic_visit(node)

    def visit_Global(self, node: ast.Global) -> None:
        self._flag(f"global {', '.join(node.names)}", node.lineno)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self._flag(f"nonlocal {', '.join(node.names)}", node.lineno)

    def visit_Import(self, node: ast.Import) -> None:
        self._flag("import in bee body", node.lineno)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self._flag("import in bee body", node.lineno)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._flag(f"nested function {node.name!r}", node.lineno)

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._flag("lambda in bee body", node.lineno)


def _frozen_capture(key: str, value, fn_name: str) -> str:
    """``""`` when the namespace entry is frozen, else a description of
    why it is mutable."""
    if key == fn_name:
        return ""  # the routine's own compiled function
    if isinstance(value, _FROZEN_SCALARS):
        return ""
    if isinstance(value, struct.Struct):
        return ""
    if isinstance(value, re.Pattern):
        return ""
    if isinstance(value, tuple):
        bad = [
            reason for item in value
            if (reason := _frozen_capture(key, item, fn_name))
        ]
        return bad[0] if bad else ""
    if isinstance(value, frozenset):
        return ""
    if type(value) is object:
        return ""  # identity sentinel (_CS)
    if type(value).__module__ == "repro.engine.expr":
        return ""  # interned plan expression (treated as immutable)
    type_name = type(value).__name__
    if type_name == "module":
        return "" if value.__name__ == "numpy" else (
            f"captured module {value.__name__!r}"
        )
    if type_name == "ndarray":
        return "" if not value.flags.writeable else (
            "captured WRITABLE ndarray"
        )
    if callable(value):
        if _CALLABLE_KEYS.match(key):
            return ""
        return f"captured callable under undeclared name {key!r}"
    if isinstance(value, list):
        if key == "_PAD" and all(item is None for item in value):
            return ""  # null-pad template, only ever read and copied
        return "captured mutable list"
    if isinstance(value, dict):
        return "captured mutable dict"
    return f"captured mutable {type_name}"


#: C-template checks for EVJ routines: function-local static linkage is
#: fine; static *data*, extern state, or nondeterministic calls are not.
_EVJ_STATIC_DATA = re.compile(
    r"\bstatic\b(?!\s+(?:inline\s+)?bool\s+evj_)"
)
_EVJ_EXTERN = re.compile(r"\bextern\b")
_EVJ_ASSIGN_GLOBAL = re.compile(r"^\s*\w+\s*=(?!=)", re.MULTILINE)


def check_evj_text(routine) -> list[Finding]:
    findings = []
    if _EVJ_STATIC_DATA.search(routine.source):
        findings.append(Finding(
            "purity", routine.name,
            "static data in EVJ C template (cross-call state)",
        ))
    if _EVJ_EXTERN.search(routine.source):
        findings.append(Finding(
            "purity", routine.name,
            "extern declaration in EVJ C template",
        ))
    for detail in lint.lint_determinism(routine.source, c_text=True):
        findings.append(Finding("purity", routine.name, detail))
    return findings


def check_routine(kind: str, routine) -> list[Finding]:
    """Prove one routine pure modulo its family's declared sinks."""
    if kind == "evj":
        return check_evj_text(routine)
    family = FAMILIES.get(kind)
    if family is None:
        return [Finding("purity", routine.name, f"unknown family {kind!r}")]
    findings: list[Finding] = []
    try:
        tree = ast.parse(routine.source)
    except SyntaxError as exc:
        return [Finding(
            "purity", routine.name, f"unparsable source: {exc}",
        )]
    fn = _routine_def(tree, routine.name)
    if fn is None:
        return [Finding(
            "purity", routine.name,
            "generated source does not define the routine",
        )]
    params = {arg.arg for arg in fn.args.args + fn.args.kwonlyargs}
    scanner = _PurityScanner(family, params)
    for stmt in fn.body:
        scanner.visit(stmt)
    for what, lineno in scanner.problems:
        findings.append(Finding(
            "purity", routine.name, what, lineno=lineno,
        ))
    for key, value in (routine.namespace or {}).items():
        if key.startswith("__"):
            continue
        reason = _frozen_capture(key, value, routine.name)
        if reason:
            findings.append(Finding(
                "purity", routine.name, f"{reason} (namespace {key!r})",
            ))
    return findings


def run_purity(corpus) -> tuple[list[Finding], dict[str, int]]:
    """Check every (kind, routine) pair; returns (findings, counts)."""
    findings: list[Finding] = []
    counts: dict[str, int] = {}
    for kind, routine in corpus:
        counts[kind] = counts.get(kind, 0) + 1
        findings.extend(check_routine(kind, routine))
    return findings, counts
