"""Naive planner: lower SQL AST onto executor plan trees.

Single-table and join queries become SeqScan / HashJoin pipelines with
Filter, HashAgg, Project, Sort, and Limit layered on per clause — always
the same plan shape for stock and bee-enabled databases, mirroring the
paper's pinned-plan methodology.
"""

from __future__ import annotations

from repro.catalog import (
    BOOL,
    DATE,
    FLOAT8,
    INT4,
    INT8,
    NUMERIC,
    TEXT,
    RelationSchema,
    char,
    make_schema,
    varchar,
)
from repro.engine import expr as E
from repro.engine.agg import HashAgg
from repro.engine.aggregates import AggSpec
from repro.engine.joins import HashJoin
from repro.engine.nodes import (
    Filter,
    Limit,
    PlanNode,
    Project,
    Rename,
    SeqScan,
    Sort,
)
from repro.sql import ast

from typing import Any


class PlanningError(ValueError):
    """Raised when a statement cannot be lowered onto the executor."""


# -- name resolution -------------------------------------------------------------


def resolve_column(name: str, columns: list[str]) -> str:
    """Resolve a possibly-qualified column name against *columns*."""
    if name in columns:
        return name
    if "." not in name:
        matches = [c for c in columns if c.rsplit(".", 1)[-1] == name]
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise PlanningError(f"ambiguous column {name!r}: {matches}")
    else:
        bare = name.rsplit(".", 1)[-1]
        if bare in columns:
            return bare
    raise PlanningError(f"unknown column {name!r} (have {columns})")


_SCALAR_FUNCS = {"substr", "length", "abs", "extract_year", "extract_month"}


def lower_expr(node, columns: list[str]) -> E.Expr:
    """Lower a SQL AST expression to a bound-ready engine expression."""
    if isinstance(node, ast.Literal):
        return E.Const(node.value)
    if isinstance(node, ast.ColumnRef):
        return E.Col(resolve_column(node.name, columns))
    if isinstance(node, ast.Binary):
        left = lower_expr(node.left, columns)
        right = lower_expr(node.right, columns)
        if node.op in ("+", "-", "*", "/"):
            return E.Arith(node.op, left, right)
        return E.Cmp(node.op, left, right)
    if isinstance(node, ast.BoolOp):
        args = [lower_expr(a, columns) for a in node.args]
        return E.And(*args) if node.op == "and" else E.Or(*args)
    if isinstance(node, ast.NotOp):
        return E.Not(lower_expr(node.arg, columns))
    if isinstance(node, ast.LikeOp):
        return E.Like(lower_expr(node.arg, columns), node.pattern, node.negate)
    if isinstance(node, ast.InOp):
        expr = E.InList(lower_expr(node.arg, columns), node.values)
        return E.Not(expr) if node.negate else expr
    if isinstance(node, ast.BetweenOp):
        low = node.low
        high = node.high
        if not isinstance(low, ast.Literal) or not isinstance(high, ast.Literal):
            lowered = lower_expr(node.arg, columns)
            expr: E.Expr = E.And(
                E.Cmp(">=", lowered, lower_expr(low, columns)),
                E.Cmp("<=", lower_expr(node.arg, columns), lower_expr(high, columns)),
            )
        else:
            expr = E.Between(
                lower_expr(node.arg, columns), low.value, high.value
            )
        return E.Not(expr) if node.negate else expr
    if isinstance(node, ast.IsNullOp):
        return E.IsNull(lower_expr(node.arg, columns), node.negate)
    if isinstance(node, ast.CaseOp):
        whens = [
            (lower_expr(cond, columns), lower_expr(value, columns))
            for cond, value in node.whens
        ]
        return E.Case(whens, lower_expr(node.default, columns))
    if isinstance(node, ast.FuncCall):
        if node.name not in _SCALAR_FUNCS:
            raise PlanningError(f"unknown function {node.name!r}")
        return E.Func(
            node.name, *[lower_expr(a, columns) for a in node.args]
        )
    if isinstance(node, ast.AggCall):
        raise PlanningError(
            "aggregate used where a scalar expression is required"
        )
    raise PlanningError(f"cannot lower {type(node).__name__}")


# -- aggregate plumbing ------------------------------------------------------------


def _collect_aggs(node, found: list) -> None:
    if isinstance(node, ast.AggCall):
        if node not in found:
            found.append(node)
        return
    for child in _children_of(node):
        _collect_aggs(child, found)


def _children_of(node: ast.Expression) -> list[ast.Expression]:
    if isinstance(node, ast.Binary):
        return [node.left, node.right]
    if isinstance(node, ast.BoolOp):
        return node.args
    if isinstance(node, (ast.NotOp, ast.LikeOp, ast.IsNullOp)):
        return [node.arg]
    if isinstance(node, ast.InOp):
        return [node.arg]
    if isinstance(node, ast.BetweenOp):
        return [node.arg, node.low, node.high]
    if isinstance(node, ast.CaseOp):
        flat = []
        for cond, value in node.whens:
            flat.extend([cond, value])
        flat.append(node.default)
        return flat
    if isinstance(node, ast.FuncCall):
        return node.args
    return []


def _substitute_aggs(
    node: ast.Expression, mapping: list[tuple[ast.AggCall, str]]
) -> ast.Expression:
    """Replace AggCall nodes with ColumnRefs to the agg output columns.

    *mapping* is a list of ``(agg_ast, output_name)`` pairs matched
    structurally, so the same aggregate written twice (e.g. in SELECT and
    HAVING) resolves to one output column.
    """
    if isinstance(node, ast.AggCall):
        for agg, name in mapping:
            if agg == node:
                return ast.ColumnRef(name)
        raise PlanningError(f"aggregate {node.func!r} was not collected")
    if isinstance(node, ast.Binary):
        return ast.Binary(
            node.op,
            _substitute_aggs(node.left, mapping),
            _substitute_aggs(node.right, mapping),
        )
    if isinstance(node, ast.BoolOp):
        return ast.BoolOp(
            node.op, [_substitute_aggs(a, mapping) for a in node.args]
        )
    if isinstance(node, ast.NotOp):
        return ast.NotOp(_substitute_aggs(node.arg, mapping))
    if isinstance(node, ast.CaseOp):
        return ast.CaseOp(
            [
                (_substitute_aggs(c, mapping), _substitute_aggs(v, mapping))
                for c, v in node.whens
            ],
            _substitute_aggs(node.default, mapping),
        )
    if isinstance(node, ast.FuncCall):
        return ast.FuncCall(
            node.name, [_substitute_aggs(a, mapping) for a in node.args]
        )
    return node


# -- subquery decorrelation ------------------------------------------------------------


def _resolve_initplans(
    db: Any, node: ast.Expression, top_level: bool = False
) -> ast.Expression:
    """Execute uncorrelated scalar/EXISTS subqueries (InitPlans) and splice
    their results in as literals.  IN-subqueries are legal only as
    top-level AND conjuncts (returned untouched for the semi/anti-join
    rewrite); anywhere else they raise :class:`PlanningError`."""
    if isinstance(node, ast.SubqueryOp):
        if node.kind == "scalar":
            rows = db.execute(plan_select(db, node.select), emit=False)
            if len(rows) > 1 or (rows and len(rows[0]) != 1):
                raise PlanningError(
                    "scalar subquery must return at most one row, one column"
                )
            return ast.Literal(rows[0][0] if rows else None)
        if node.kind == "exists":
            probe = ast.SelectStmt(
                items=node.select.items,
                table=node.select.table,
                table_alias=node.select.table_alias,
                joins=node.select.joins,
                where=node.select.where,
                group_by=node.select.group_by,
                having=node.select.having,
                order_by=[],
                limit=1,
            )
            rows = db.execute(plan_select(db, probe), emit=False)
            found = bool(rows)
            return ast.Literal((not found) if node.negate else found)
        if node.kind == "in" and top_level:
            return node
        raise PlanningError(
            "IN (SELECT ...) is only supported as a top-level AND conjunct"
        )
    if isinstance(node, ast.Binary):
        return ast.Binary(
            node.op,
            _resolve_initplans(db, node.left),
            _resolve_initplans(db, node.right),
        )
    if isinstance(node, ast.BoolOp):
        if node.op == "and" and top_level:
            return ast.BoolOp(
                "and",
                [_resolve_initplans(db, a, top_level=True) for a in node.args],
            )
        return ast.BoolOp(
            node.op, [_resolve_initplans(db, a) for a in node.args]
        )
    if isinstance(node, ast.NotOp):
        return ast.NotOp(_resolve_initplans(db, node.arg))
    if isinstance(node, (ast.LikeOp, ast.IsNullOp, ast.InOp)):
        rebuilt = type(node)(**vars(node))
        rebuilt.arg = _resolve_initplans(db, node.arg)
        return rebuilt
    if isinstance(node, ast.BetweenOp):
        return ast.BetweenOp(
            _resolve_initplans(db, node.arg),
            _resolve_initplans(db, node.low),
            _resolve_initplans(db, node.high),
            node.negate,
        )
    if isinstance(node, ast.CaseOp):
        return ast.CaseOp(
            [
                (_resolve_initplans(db, c), _resolve_initplans(db, v))
                for c, v in node.whens
            ],
            _resolve_initplans(db, node.default),
        )
    if isinstance(node, ast.FuncCall):
        return ast.FuncCall(
            node.name, [_resolve_initplans(db, a) for a in node.args]
        )
    return node


# -- plan construction ---------------------------------------------------------------


def _scan(db, table: str, alias: str | None) -> PlanNode:
    node = SeqScan(table)
    node.bind_schema(db.relation(table).schema)
    if alias:
        return Rename(node, alias)
    return node


def _split_join_condition(
    condition: ast.Expression,
    left_cols: list[str],
    right_cols: list[str],
) -> tuple[list[str], list[str], ast.Expression | None]:
    """Partition ON conjuncts into equi-key pairs and a residual qual."""
    conjuncts = (
        condition.args if isinstance(condition, ast.BoolOp)
        and condition.op == "and" else [condition]
    )
    left_keys: list[str] = []
    right_keys: list[str] = []
    residual = []
    for conjunct in conjuncts:
        if (
            isinstance(conjunct, ast.Binary)
            and conjunct.op == "="
            and isinstance(conjunct.left, ast.ColumnRef)
            and isinstance(conjunct.right, ast.ColumnRef)
        ):
            a, b = conjunct.left.name, conjunct.right.name
            placed = False
            for first, second in ((a, b), (b, a)):
                try:
                    left_key = resolve_column(first, left_cols)
                    right_key = resolve_column(second, right_cols)
                except PlanningError:
                    continue
                left_keys.append(left_key)
                right_keys.append(right_key)
                placed = True
                break
            if placed:
                continue
        residual.append(conjunct)
    if not left_keys:
        raise PlanningError(
            "JOIN requires at least one equality between the two tables"
        )
    residual_ast = (
        None
        if not residual
        else (residual[0] if len(residual) == 1 else ast.BoolOp("and", residual))
    )
    return left_keys, right_keys, residual_ast


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.ColumnRef):
        return item.expr.name.rsplit(".", 1)[-1]
    if isinstance(item.expr, ast.AggCall):
        return item.expr.func
    return f"col{index}"


def plan_select(db, stmt: ast.SelectStmt) -> PlanNode:
    """Build the executor plan for a SELECT statement."""
    if stmt.table is None:
        raise PlanningError("SELECT without FROM is not supported")
    plan: PlanNode = _scan(db, stmt.table, stmt.table_alias)
    for join in stmt.joins:
        right = _scan(db, join.table, join.alias)
        left_keys, right_keys, residual = _split_join_condition(
            join.condition, plan.columns, right.columns
        )
        extra = (
            lower_expr(residual, plan.columns + right.columns)
            if residual is not None
            else None
        )
        plan = HashJoin(
            plan, right, left_keys, right_keys,
            join_type=join.join_type, extra_qual=extra,
        )
    where = stmt.where
    in_subqueries: list[ast.SubqueryOp] = []
    if where is not None:
        where = _resolve_initplans(db, where, top_level=True)
        conjuncts = (
            where.args
            if isinstance(where, ast.BoolOp) and where.op == "and"
            else [where]
        )
        plain = []
        for conjunct in conjuncts:
            if isinstance(conjunct, ast.SubqueryOp):
                in_subqueries.append(conjunct)
            else:
                plain.append(conjunct)
        if not plain:
            where = None
        elif len(plain) == 1:
            where = plain[0]
        else:
            where = ast.BoolOp("and", plain)
    for sub in in_subqueries:
        if not isinstance(sub.arg, ast.ColumnRef):
            raise PlanningError(
                "IN (SELECT ...) requires a plain column on the left"
            )
        subplan = plan_select(db, sub.select)
        if len(subplan.columns) != 1:
            raise PlanningError("IN subquery must return exactly one column")
        plan = HashJoin(
            plan,
            subplan,
            [resolve_column(sub.arg.name, plan.columns)],
            [subplan.columns[0]],
            join_type="anti" if sub.negate else "semi",
        )
    if where is not None:
        plan = Filter(plan, lower_expr(where, plan.columns))

    aggs: list[ast.AggCall] = []
    for item in stmt.items:
        _collect_aggs(item.expr, aggs)
    if stmt.having is not None:
        _collect_aggs(stmt.having, aggs)

    items = list(stmt.items)
    if aggs or stmt.group_by:
        mapping: list = []
        specs = []
        for i, agg in enumerate(aggs):
            name = f"__agg{i}"
            mapping.append((agg, name))
            arg = (
                lower_expr(agg.arg, plan.columns)
                if agg.arg is not None
                else None
            )
            specs.append(
                AggSpec(agg.func, arg, distinct=agg.distinct, name=name)
            )
        group = []
        for i, group_expr in enumerate(stmt.group_by):
            lowered = lower_expr(group_expr, plan.columns)
            if isinstance(group_expr, ast.ColumnRef):
                name = resolve_column(group_expr.name, plan.columns)
            else:
                name = f"__group{i}"
            group.append((lowered, name))
        plan = HashAgg(plan, group, specs)
        items = [
            ast.SelectItem(_substitute_aggs(item.expr, mapping), item.alias)
            for item in items
        ]
        if stmt.having is not None:
            having = _substitute_aggs(stmt.having, mapping)
            plan = Filter(plan, lower_expr(having, plan.columns))

    # Projection, with ORDER BY placed before or after it depending on
    # whether the sort keys survive projection (SQL allows ordering by
    # non-projected source columns).
    star = (
        len(items) == 1
        and isinstance(items[0].expr, ast.ColumnRef)
        and items[0].expr.name == "*"
    )
    if star:
        if stmt.order_by:
            keys = [
                (lower_expr(expr, plan.columns), desc)
                for expr, desc in stmt.order_by
            ]
            plan = Sort(plan, keys)
    else:
        names: list[str] = []
        for i, item in enumerate(items):
            name = _output_name(item, i)
            while name in names:
                name = f"{name}_{i}"
            names.append(name)
        alias_exprs = {
            name: item.expr for name, item in zip(names, items)
        }

        sort_after = True
        order_keys = []
        if stmt.order_by:
            try:
                order_keys = [
                    (lower_expr(expr, names), desc)
                    for expr, desc in stmt.order_by
                ]
            except PlanningError:
                sort_after = False
                # Sort pre-projection; output aliases are substituted by
                # their defining expressions.
                resolved = []
                for expr, desc in stmt.order_by:
                    if (
                        isinstance(expr, ast.ColumnRef)
                        and expr.name in alias_exprs
                    ):
                        expr = alias_exprs[expr.name]
                    resolved.append(
                        (lower_expr(expr, plan.columns), desc)
                    )
                plan = Sort(plan, resolved)

        exprs = [lower_expr(item.expr, plan.columns) for item in items]
        plan = Project(plan, exprs, names)
        if stmt.order_by and sort_after:
            plan = Sort(plan, order_keys)

    if stmt.distinct:
        plan = HashAgg(
            plan,
            [(E.Col(name), name) for name in plan.columns],
            [],
        )
    if stmt.limit is not None:
        plan = Limit(plan, stmt.limit)
    return plan


# -- DDL lowering -------------------------------------------------------------------


_TYPE_MAP = {
    "int": INT4, "integer": INT4, "int4": INT4,
    "bigint": INT8, "int8": INT8,
    "float": FLOAT8, "float8": FLOAT8, "double": FLOAT8, "real": FLOAT8,
    "numeric": NUMERIC, "decimal": NUMERIC,
    "date": DATE,
    "bool": BOOL, "boolean": BOOL,
    "text": TEXT,
}


def schema_from_create(stmt: ast.CreateTableStmt) -> RelationSchema:
    """Translate a CREATE TABLE statement into a RelationSchema."""
    columns = []
    for column in stmt.columns:
        type_name = column.type_name
        if type_name == "char":
            if column.type_arg is None:
                raise PlanningError("char requires a width: char(n)")
            sql_type = char(column.type_arg)
        elif type_name == "varchar":
            if column.type_arg is None:
                raise PlanningError("varchar requires a width: varchar(n)")
            sql_type = varchar(column.type_arg)
        elif type_name in _TYPE_MAP:
            sql_type = _TYPE_MAP[type_name]
        else:
            raise PlanningError(f"unknown type {type_name!r}")
        columns.append((column.name, sql_type, column.nullable))
    return make_schema(stmt.name, columns, stmt.primary_key)
