"""PIPE — fused, batch-at-a-time pipeline-bee code generation.

Where GCL/EVP/EVJ/AGG each specialize one routine and still meet at the
Volcano executor's per-tuple ``ExecProcNode`` ping-pong, a pipeline bee
fuses a whole plan pipeline — deform, qualification, and the sink
(projection, hash-join probe, or aggregate transition) — into **one**
generated function that runs over a page's tuples at a time:

* the relation bee's deform body is inlined and *pruned* to the columns
  the pipeline actually touches (unreferenced trailing attributes are
  never decoded; unreferenced varlenas are length-hopped only),
* the predicate and scalar expressions are emitted EVP-style over the
  hoisted per-tuple locals (``v<attnum>``) instead of row indexing,
* emission appends into a batch vector; the ledger is charged **once
  per batch** from counters, not once per tuple per node.

The generated source is kept on the routine for inspection, golden
snapshots, and the beecheck pipeline grammar lint + translation
validation (``repro.beecheck``).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.cost import constants as C
from repro.engine import expr as E
from repro.engine.agg import _COUNT_STAR
from repro.engine.deform import generic_deform_null_cost
from repro.bees.routines.agg import AGG_SPECIALIZED_PER_AGG
from repro.bees.routines.base import BeeRoutine, compile_routine
from repro.bees.routines.evp import _Emitter, _emit_direct, _emit_guarded
from repro.storage.layout import (
    BEEID_HI_BYTE,
    BEEID_LO_BYTE,
    HEADER_INFOMASK_BYTE,
    INFOMASK_HAS_NULLS,
    TupleLayout,
    VARLENA_HEADER_BYTES,
)

SINKS = ("rows", "probe", "agg")


@dataclass
class PipelineSpec:
    """Everything a fused pipeline embeds: the plan-invariant bundle.

    A spec describes one fusable pipeline anchored at a sequential scan:
    the relation's physical layout, the combined residual qualification
    (``None`` when unfiltered), and one of three sinks —

    * ``rows``: emit projected rows (``output`` exprs; ``None`` emits the
      full schema row),
    * ``probe``: probe a hash-join table with ``probe_idx`` key columns
      and emit joined rows per ``join_type``,
    * ``agg``: advance aggregate accumulators (``group_exprs`` +
      ``aggs``, :class:`repro.engine.aggregates.AggSpec`).
    """

    relation: str
    layout: TupleLayout
    qual: E.Expr | None = None
    output: list | None = None          # rows sink: projection exprs
    sink: str = "rows"
    join_type: str | None = None        # probe sink
    probe_idx: tuple = ()               # probe sink: key column indexes
    build_width: int = 0                # probe sink: build-side row width
    group_exprs: tuple = ()             # agg sink
    aggs: tuple = ()                    # agg sink: AggSpec tuple
    fused_nodes: tuple = field(default=())   # node labels, for EXPLAIN

    def __post_init__(self) -> None:
        if self.sink not in SINKS:
            raise ValueError(f"unknown pipeline sink {self.sink!r}")


def _referenced(expr: E.Expr, acc: set) -> None:
    """Collect the bound column indexes *expr* reads into *acc*."""
    if isinstance(expr, E.Col):
        acc.add(expr.index)
    for child in expr.children():
        _referenced(child, acc)


def _direct_ok(expr: E.Expr, layout: TupleLayout) -> bool:
    """True when the direct (non-3VL) EVP emission variant is sound for
    *expr*: every referenced column is NOT NULL in the schema, and no
    node can introduce ``None`` from non-None inputs (CASE without a hit
    falls through to NULL, functions may return NULL, and a literal NULL
    is ``None`` outright).  Unlike EVP — where the plan author asserts
    ``not_null`` — the pipeline fuser decides this itself, so it must be
    conservative; the guarded variant is always correct, just slower."""
    if isinstance(expr, (E.Case, E.Func)):
        return False
    if isinstance(expr, E.Const) and expr.value is None:
        return False
    if isinstance(expr, E.Col) and layout.schema.attributes[expr.index].nullable:
        return False
    return all(_direct_ok(child, layout) for child in expr.children())


def _reindent(lines: list, depth: int) -> list:
    """Shift emitter output (one indent level) to loop depth *depth*."""
    pad = "    " * (depth - 1)
    return [pad + line for line in lines]


def _emit_value(expr: E.Expr, em: _Emitter, layout: TupleLayout,
                lines: list, depth: int) -> str:
    """Emit *expr* over the hoisted locals; returns the source fragment
    holding its value (a local, a temp, or an inline expression)."""
    if isinstance(expr, E.Col):
        return f"v{expr.index}"
    if _direct_ok(expr, layout):
        return _emit_direct(expr, em)
    mark = len(em.lines)
    temp = _emit_guarded(expr, em)
    lines.extend(_reindent(em.lines[mark:], depth))
    return temp


def _emit_deform(layout: TupleLayout, needed: set, lines: list,
                 namespace: dict, depth: int) -> int:
    """Inline the pruned relation-bee deform for *needed* attnums at
    *depth*; returns its per-tuple cost share."""
    pad = "    " * depth
    schema = layout.schema
    hoff = layout.header_size(tuple_has_nulls=False)
    cost = C.GCL_ISNULL_ZERO * ((schema.natts + 7) // 8)

    if layout.has_beeid:
        needed_bee = [
            (slot, schema.attnum(name))
            for name, slot in layout.bee_slot.items()
            if schema.attnum(name) in needed
        ]
        if needed_bee:
            lines.append(
                f"{pad}_bv = sections[raw[{BEEID_LO_BYTE}]"
                f" | (raw[{BEEID_HI_BYTE}] << 8)]"
            )
            for slot, attnum in needed_bee:
                lines.append(f"{pad}v{attnum} = _bv[{slot}]")
                cost += C.GCL_TUPLE_BEE

    # Fixed prefix (stored attrs before the first varlena): one struct
    # unpack over the needed subset, pad bytes skipping gaps *and* the
    # pruned attributes.
    prefix = []
    for i, attr in enumerate(layout.stored_attrs):
        if attr.attlen == -1:
            break
        prefix.append((i, attr))
    fmt_parts = ["<"]
    cursor = 0
    prefix_end = 0
    prefix_locals = []
    char_fixups = []
    bool_fixups = []
    for i, attr in prefix:
        offset = layout.stored_offset(i)
        prefix_end = offset + attr.sql_type.attlen
        if attr.attnum not in needed:
            continue
        if offset > cursor:
            fmt_parts.append(f"{offset - cursor}x")
        local = f"v{attr.attnum}"
        prefix_locals.append(local)
        sql_type = attr.sql_type
        if sql_type.struct_fmt:
            fmt_parts.append(sql_type.struct_fmt)
            if sql_type.struct_fmt == "B":
                bool_fixups.append(local)
        else:
            fmt_parts.append(f"{sql_type.attlen}s")
            char_fixups.append(local)
        cursor = offset + sql_type.attlen
        cost += C.GCL_FIXED
        if attr.nullable:
            cost += C.GCL_NULLABLE
    if prefix_locals:
        namespace["_PREFIX"] = struct.Struct("".join(fmt_parts))
        targets = ", ".join(prefix_locals)
        trailing = "," if len(prefix_locals) == 1 else ""
        lines.append(
            f"{pad}{targets}{trailing} = _PREFIX.unpack_from(raw, {hoff})"
        )
        for local in char_fixups:
            lines.append(f"{pad}{local} = {local}.decode().rstrip(' ')")
        for local in bool_fixups:
            lines.append(f"{pad}{local} = bool({local})")

    # Post-varlena attrs: running-offset walk, stopping at the last
    # needed attribute; pruned varlenas still hop their length.
    rest = [
        (i, attr)
        for i, attr in enumerate(layout.stored_attrs)
        if i >= len(prefix)
    ]
    needed_rest = [i for i, attr in rest if attr.attnum in needed]
    if needed_rest:
        last = max(needed_rest)
        lines.append(f"{pad}off = {hoff + prefix_end}")
        scalar_idx = 0
        for i, attr in rest:
            if i > last:
                break
            sql_type = attr.sql_type
            align = attr.attalign
            wanted = attr.attnum in needed
            local = f"v{attr.attnum}"
            if align > 1:
                lines.append(f"{pad}off = (off + {align - 1}) & -{align}")
            if sql_type.attlen == -1:
                namespace.setdefault("_VL", struct.Struct("<i"))
                vl = VARLENA_HEADER_BYTES
                lines.append(f"{pad}ln = _VL.unpack_from(raw, off)[0]")
                if wanted:
                    lines.append(
                        f"{pad}{local} = "
                        f"raw[off + {vl} : off + {vl} + ln].decode()"
                    )
                cost += C.GCL_VARLENA
                if wanted and attr.nullable:
                    cost += C.GCL_NULLABLE
                if i < last:
                    lines.append(f"{pad}off = off + {vl} + ln")
            else:
                if wanted:
                    if sql_type.struct_fmt:
                        s_name = f"_S{scalar_idx}"
                        scalar_idx += 1
                        namespace[s_name] = struct.Struct(
                            "<" + sql_type.struct_fmt
                        )
                        lines.append(
                            f"{pad}{local} = {s_name}.unpack_from(raw, off)[0]"
                        )
                        if sql_type.struct_fmt == "B":
                            lines.append(f"{pad}{local} = bool({local})")
                    else:
                        width = sql_type.attlen
                        lines.append(
                            f"{pad}{local} = raw[off : off + {width}]"
                            ".decode().rstrip(' ')"
                        )
                    cost += C.GCL_FIXED
                    if attr.nullable:
                        cost += C.GCL_NULLABLE
                if i < last:
                    lines.append(f"{pad}off = off + {sql_type.attlen}")
    return cost


def generate_pipeline(spec: PipelineSpec, ledger, fn_name: str) -> BeeRoutine:
    """Compile *spec* into one fused batch-at-a-time pipeline routine.

    The generated function's signature depends on the sink:

    * ``rows``:  ``fn(batch, sections) -> list[row]``
    * ``probe``: ``fn(batch, sections, table) -> list[row]``
    * ``agg``:   ``fn(batch, sections, groups, make_states) -> None``

    where *batch* is a page's raw tuples and *sections* the relation's
    tuple-bee data sections.  It charges the ledger once per batch:
    a batch constant, a per-input-row term, and per-survivor /
    per-candidate / per-emitted-row terms from loop counters.
    """
    layout = spec.layout
    schema = layout.schema
    natts = schema.natts
    exprs = list(spec.group_exprs) + [
        s.arg for s in spec.aggs if s.arg is not None
    ]
    if spec.qual is not None:
        exprs.append(spec.qual)
    if spec.output is not None:
        exprs.extend(spec.output)
    for expr in exprs:
        if not E.is_bound(expr):
            raise ValueError(
                "pipeline specialization requires bound expressions"
            )

    needed: set = set()
    if spec.qual is not None:
        _referenced(spec.qual, needed)
    if spec.sink == "rows":
        if spec.output is None:
            needed.update(range(natts))
        else:
            for expr in spec.output:
                _referenced(expr, needed)
    elif spec.sink == "probe":
        needed.update(range(natts))   # the full probe row is emitted
    else:
        for expr in spec.group_exprs:
            _referenced(expr, needed)
        for agg in spec.aggs:
            if agg.arg is not None:
                _referenced(agg.arg, needed)

    em = _Emitter(col_ref="v{}")
    namespace = em.namespace
    namespace["_charge"] = ledger.charge_fn

    params = {
        "rows": "batch, sections",
        "probe": "batch, sections, table",
        "agg": "batch, sections, groups, make_states",
    }[spec.sink]
    lines = [
        f"def {fn_name}({params}):",
        f'    """Fused {spec.sink} pipeline over relation '
        f'{spec.relation!r} (generated)."""',
    ]
    if spec.sink != "agg":
        lines.append("    out = []")
        lines.append("    _append = out.append")
    if spec.sink == "probe":
        lines.append("    _np = 0")
        lines.append("    _nc = 0")
        lines.append("    _get = table.get")
    if spec.sink == "agg":
        lines.append("    _np = 0")
        if not spec.group_exprs:
            lines.append("    _st = groups[()]")
    lines.append("    for raw in batch:")

    # -- deform: NULL-bearing tuples take the generic slow path ------------
    deform_cost = 0
    if needed:
        lines.append(
            f"        if raw[{HEADER_INFOMASK_BYTE}] & {INFOMASK_HAS_NULLS}:"
        )
        lines.append("            _r = _slow(raw, sections)")
        for attnum in sorted(needed):
            lines.append(f"            v{attnum} = _r[{attnum}]")
        lines.append("        else:")
        before = len(lines)
        deform_cost = _emit_deform(layout, needed, lines, namespace, 3)
        if len(lines) == before:
            lines.append("            pass")

    # -- qualification ------------------------------------------------------
    qual_cost = 0
    if spec.qual is not None:
        qual_cost = spec.qual.evp_cost
        if _direct_ok(spec.qual, layout):
            verdict = _emit_direct(spec.qual, em)
            lines.extend(_reindent(em.lines, 2))
            em.lines = []
            lines.append(f"        if not {verdict}:")
        else:
            mark = len(em.lines)
            temp = _emit_guarded(spec.qual, em)
            lines.extend(_reindent(em.lines[mark:], 2))
            em.lines = []
            lines.append(f"        if {temp} is not True:")
        lines.append("            continue")

    # -- sink ----------------------------------------------------------------
    c1 = C.PIPE_NEXT + deform_cost + qual_cost
    costs = {"_C0": C.PIPE_BATCH_OVERHEAD, "_C1": c1}
    if spec.sink == "rows":
        if spec.output is None:
            items = [f"v{i}" for i in range(natts)]
            expr_cost = 0
        else:
            items = []
            expr_cost = 0
            for expr in spec.output:
                items.append(_emit_value(expr, em, layout, lines, 2))
                em.lines = []
                if not isinstance(expr, E.Col):
                    expr_cost += expr.evp_cost
        lines.append(f"        _append([{', '.join(items)}])")
        costs["_C2"] = (
            C.PIPE_EMIT_BASE + C.PIPE_EMIT_PER_COLUMN * len(items) + expr_cost
        )
        charge = "_C0 + _C1 * len(batch) + _C2 * len(out)"
    elif spec.sink == "probe":
        lines.append("        _np += 1")
        keys = ", ".join(f"v{i}" for i in spec.probe_idx)
        key_tuple = f"({keys},)" if len(spec.probe_idx) == 1 else f"({keys})"
        nullable_keys = [
            f"v{i}"
            for i in spec.probe_idx
            if layout.schema.attributes[i].nullable
        ]
        if nullable_keys:
            guard = " and ".join(f"{k} is not None" for k in nullable_keys)
            lines.append(
                f"        _cands = _get({key_tuple}, ()) if {guard} else ()"
            )
        else:
            lines.append(f"        _cands = _get({key_tuple}, ())")
        row = "[" + ", ".join(f"v{i}" for i in range(natts)) + "]"
        if spec.join_type == "inner":
            lines.append("        if not _cands:")
            lines.append("            continue")
            lines.append("        _nc += len(_cands)")
            lines.append(f"        row = {row}")
            lines.append("        for _b in _cands:")
            lines.append("            _append(row + _b)")
        elif spec.join_type == "left":
            lines.append(f"        row = {row}")
            lines.append("        if _cands:")
            lines.append("            _nc += len(_cands)")
            lines.append("            for _b in _cands:")
            lines.append("                _append(row + _b)")
            lines.append("        else:")
            lines.append("            _append(row + _PAD)")
            namespace["_PAD"] = [None] * spec.build_width
        elif spec.join_type == "semi":
            lines.append("        if _cands:")
            lines.append("            _nc += len(_cands)")
            lines.append(f"            _append({row})")
        else:   # anti
            lines.append("        if _cands:")
            lines.append("            _nc += len(_cands)")
            lines.append("        else:")
            lines.append(f"            _append({row})")
        costs["_C2"] = C.JOIN_HASH_COMPUTE + C.JOIN_HASH_PROBE
        costs["_C3"] = C.EVJ_COMPARE * len(spec.probe_idx)
        costs["_C4"] = C.JOIN_EMIT
        charge = (
            "_C0 + _C1 * len(batch) + _C2 * _np + _C3 * _nc + _C4 * len(out)"
        )
    else:   # agg
        lines.append("        _np += 1")
        group_cost = 0
        if spec.group_exprs:
            parts = []
            for expr in spec.group_exprs:
                parts.append(_emit_value(expr, em, layout, lines, 2))
                em.lines = []
                group_cost += expr.evp_cost
            key = ", ".join(parts)
            key_tuple = f"({key},)" if len(parts) == 1 else f"({key})"
            lines.append(f"        _k = {key_tuple}")
            lines.append("        _st = groups.get(_k)")
            lines.append("        if _st is None:")
            lines.append("            _st = make_states()")
            lines.append("            groups[_k] = _st")
        trans_cost = AGG_SPECIALIZED_PER_AGG * len(spec.aggs)
        for i, agg in enumerate(spec.aggs):
            if agg.arg is None:   # count(*): the generic path's sentinel
                namespace["_CS"] = _COUNT_STAR
                lines.append(f"        _st[{i}].update(_CS)")
                continue
            trans_cost += agg.arg.evp_cost
            value = _emit_value(agg.arg, em, layout, lines, 2)
            em.lines = []
            if agg.func == "count" and not _direct_ok(agg.arg, layout):
                lines.append(f"        if {value} is not None:")
                lines.append(f"            _st[{i}].update({value})")
            else:
                lines.append(f"        _st[{i}].update({value})")
        costs["_C2"] = C.AGG_HASH_LOOKUP + group_cost + trans_cost
        charge = "_C0 + _C1 * len(batch) + _C2 * _np"

    namespace.update(costs)
    lines.append(f"    _charge({fn_name!r}, {charge})")
    if spec.sink != "agg":
        lines.append("    return out")
    source = "\n".join(lines) + "\n"

    # Slow path: NULL-bearing tuples decode generically, charged at the
    # generic slow-path rate (specialize the frequent path, as GCL does).
    def _slow(raw: bytes, sections) -> list:
        bee_values = (
            sections[layout.read_bee_id(raw)] if layout.has_beeid else None
        )
        values, isnull = layout.decode(raw, bee_values)
        ledger.charge_fn(fn_name, generic_deform_null_cost(layout, isnull))
        for attnum, null in enumerate(isnull):
            if null:
                values[attnum] = None
        return values

    namespace["_slow"] = _slow
    fn = compile_routine(source, fn_name, namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=c1, source=source, namespace=namespace,
    )
