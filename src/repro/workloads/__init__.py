"""Benchmark workloads: TPC-H (analytics + bulk load) and TPC-C (OLTP)."""
