"""Access to the engine's own source tree, with injectable overrides.

Every hiveaudit pass reads modules through :class:`EngineSource` so the
self-test can analyze *patched* source text (an invalidation call
deleted or rewired) without ever touching the files on disk.
"""

from __future__ import annotations

import ast
from pathlib import Path

import repro

ENGINE_ROOT = Path(repro.__file__).parent


class EngineSource:
    """The ``repro`` package source, keyed by package-relative path.

    ``overrides`` maps module paths (e.g. ``"db.py"``,
    ``"catalog/catalog.py"``) to replacement source text; unlisted
    modules are read from disk.  Parsed trees are cached per instance.
    """

    def __init__(self, overrides: dict[str, str] | None = None) -> None:
        self.overrides = dict(overrides or {})
        self._trees: dict[str, ast.Module] = {}

    def text(self, module: str) -> str:
        if module in self.overrides:
            return self.overrides[module]
        return (ENGINE_ROOT / module).read_text()

    def tree(self, module: str) -> ast.Module:
        cached = self._trees.get(module)
        if cached is None:
            cached = ast.parse(self.text(module), filename=module)
            self._trees[module] = cached
        return cached
