"""E1 — Section II case study: ``select o_comment from orders``.

Paper targets: generic slot_deform_tuple ~340 instructions/tuple vs the
GCL bee routine ~146; whole-query instruction reduction ~8.5% (3.447B ->
3.153B); run-time improvement ~7.4% (734 ms -> 680 ms).

The wall-clock benchmarks below time the *actual Python execution* of the
same query on both systems: the generated (unrolled, struct-folded) GCL
code is genuinely faster in CPython as well.
"""

from __future__ import annotations

import pytest

from repro.bench.tpch_experiments import case_study
from repro.engine.nodes import ColumnSelect, SeqScan
from repro.bench.reporting import emit

from conftest import TPCH_SF


@pytest.fixture(scope="module")
def case_report():
    report = case_study(scale_factor=TPCH_SF)
    emit("\n=== E1: Section II case study ===")
    emit(f"rows scanned: {report['rows']}")
    emit(
        "deform instructions/tuple: "
        f"stock={report['stock']['deform_per_tuple']:.0f} (paper ~340)  "
        f"GCL={report['bees']['deform_per_tuple']:.0f} (paper ~146)"
    )
    emit(
        "whole-query instruction reduction: "
        f"{report['instruction_improvement']:.1f}% (paper 8.5%)"
    )
    emit(
        "simulated run-time improvement: "
        f"{report['time_improvement']:.1f}% (paper 7.4%)"
    )
    return report


def _o_comment_query(db):
    node = SeqScan("orders")
    node.bind_schema(db.relation("orders").schema)
    return db.execute(ColumnSelect(node, ["o_comment"]))


def test_case_study_stock_wallclock(benchmark, tpch_pair, case_report):
    stock, _bees = tpch_pair
    rows = benchmark(_o_comment_query, stock)
    assert rows


def test_case_study_bees_wallclock(benchmark, tpch_pair, case_report):
    _stock, bees = tpch_pair
    rows = benchmark(_o_comment_query, bees)
    assert rows


def test_case_study_matches_paper_shape(benchmark, case_report):
    """The calibration points hold: deform costs and the ~8.5% reduction."""
    benchmark(lambda: None)
    assert 300 <= case_report["stock"]["deform_per_tuple"] <= 380
    assert 120 <= case_report["bees"]["deform_per_tuple"] <= 170
    assert 6.0 <= case_report["instruction_improvement"] <= 11.0
