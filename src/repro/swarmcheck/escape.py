"""Pass 3 — escape analysis for cached chunk arrays.

A :class:`~repro.bees.vector.chunks.Chunk` entering the
:class:`~repro.bees.vector.chunks.ChunkCache` is shared by every
statement (and, later, every morsel worker) that scans the relation at
that heap version.  Safety requires that no code path mutates a column
or null-mask array after insertion.  Two proofs, belt and suspenders:

* **Static** — scan the vector-tier engine modules and every generated
  vector kernel for array mutation forms: subscript stores and
  augmented assignments rooted at ``cols``/``nulls`` (or ``Chunk``
  attribute paths), ``out=`` destination kwargs, mutating ndarray
  methods, and any ``setflags`` call that does not *freeze*
  (``write=False`` is the one legal form — freezing is monotone).
* **Runtime** — drive a vector-tier database, then assert every array
  in every cached chunk reports ``flags.writeable == False`` (the
  satellite freeze in ``ChunkCache.get`` makes accidental mutation an
  immediate ``ValueError`` rather than silent corruption).
"""

from __future__ import annotations

import ast

from repro.swarmcheck.report import Finding

#: Engine modules where chunk arrays live or flow.
VECTOR_MODULES = (
    "bees/vector/chunks.py",
    "bees/vector/nodes.py",
    "bees/vector/codegen.py",
    "bees/vector/fusion.py",
)

#: Array names that alias cached chunk columns in engine/kernel code.
_CHUNK_ROOTS = frozenset({"cols", "nulls", "arr", "mask"})

#: ndarray methods that mutate the array in place.
_ARRAY_MUTATORS = frozenset({
    "fill", "put", "resize", "itemset", "sort", "partition", "byteswap",
})


def _root_name(node: ast.expr) -> str | None:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


def _touches_chunk(node: ast.expr) -> bool:
    """True when the store target is (an element of) a chunk array:
    rooted at a chunk-array name, or an attribute path through
    ``.cols`` / ``.nulls``."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("cols", "nulls"):
            return True
    root = _root_name(node)
    return root in _CHUNK_ROOTS


def _freezing_setflags(call: ast.Call) -> bool:
    """``x.setflags(write=False)`` and nothing else."""
    if call.args or len(call.keywords) != 1:
        return False
    kw = call.keywords[0]
    return (
        kw.arg == "write"
        and isinstance(kw.value, ast.Constant)
        and kw.value.value is False
    )


class _EscapeScanner(ast.NodeVisitor):
    def __init__(self, where: str) -> None:
        self.where = where
        self.findings: list[Finding] = []

    def _flag(self, detail: str, lineno: int) -> None:
        self.findings.append(Finding(
            "escape", self.where, detail, self.where, lineno,
        ))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Subscript) and _touches_chunk(target):
                self._flag(
                    f"subscript store into chunk array: "
                    f"{ast.unparse(target)} = ...", node.lineno,
                )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if isinstance(
            node.target, (ast.Subscript, ast.Attribute)
        ) and _touches_chunk(node.target):
            self._flag(
                f"augmented assignment into chunk array: "
                f"{ast.unparse(node.target)}", node.lineno,
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            if fn.attr == "setflags" and not _freezing_setflags(node):
                self._flag(
                    f"non-freezing setflags on {ast.unparse(fn.value)}",
                    node.lineno,
                )
            elif fn.attr in _ARRAY_MUTATORS and _touches_chunk(fn.value):
                self._flag(
                    f"mutating ndarray method "
                    f"{ast.unparse(fn.value)}.{fn.attr}()", node.lineno,
                )
        for kw in node.keywords:
            if kw.arg == "out":
                self._flag(
                    "out= destination kwarg (writes into an existing "
                    "array)", node.lineno,
                )
        self.generic_visit(node)


def scan_modules(source) -> list[Finding]:
    """Static scan of the vector-tier engine modules."""
    findings: list[Finding] = []
    for module in VECTOR_MODULES:
        scanner = _EscapeScanner(module)
        scanner.visit(source.tree(module))
        findings.extend(scanner.findings)
    return findings


def scan_kernels(corpus) -> tuple[list[Finding], int]:
    """Static scan of every generated vector kernel in *corpus*."""
    findings: list[Finding] = []
    checked = 0
    for kind, routine in corpus:
        if kind != "vector":
            continue
        checked += 1
        try:
            tree = ast.parse(routine.source)
        except SyntaxError:
            continue  # purity pass reports unparsable source
        scanner = _EscapeScanner(routine.name)
        scanner.visit(tree)
        findings.extend(scanner.findings)
    return findings, checked


def check_entries(entries) -> tuple[list, int]:
    """Assert every array in *entries* (``uid -> (version, layout,
    Chunk)``) is frozen; returns ``(findings, arrays_checked)``."""
    findings: list[Finding] = []
    arrays = 0
    for uid, (_version, _layout, chunk) in entries.items():
        for i, arr in enumerate(chunk.cols):
            arrays += 1
            if arr.flags.writeable:
                findings.append(Finding(
                    "escape", f"chunk:{uid}",
                    f"cached column array {i} is WRITABLE",
                ))
        for i, mask in enumerate(chunk.nulls):
            if mask is None:
                continue
            arrays += 1
            if mask.flags.writeable:
                findings.append(Finding(
                    "escape", f"chunk:{uid}",
                    f"cached null mask {i} is WRITABLE",
                ))
    return findings, arrays


def runtime_check(statements: int = 40, seed: int = 0) -> tuple[list, int]:
    """Drive a vector-tier database, then verify every cached array is
    frozen.  Returns ``(findings, arrays_checked)``."""
    from repro.bees.settings import BeeSettings
    from repro.db import Database
    from repro.oracle.generator import StatementGenerator
    from repro.oracle.normalize import run_statement

    db = Database(BeeSettings.vectorized())
    generator = StatementGenerator(seed)
    pending = list(generator.bootstrap())
    executed = 0
    while executed < statements:
        stmt = pending.pop(0) if pending else generator.next_statement()
        run_statement(db, stmt.sql)
        executed += 1

    findings, arrays = check_entries(db.chunk_cache._entries)
    if arrays == 0:
        findings.append(Finding(
            "escape", "chunk-cache",
            "runtime check cached no chunks — vector corpus did not "
            "exercise the ChunkCache",
        ))
    return findings, arrays


def run_escape(source, corpus) -> tuple[list[Finding], dict]:
    """All three escape proofs; returns (findings, stats)."""
    findings = scan_modules(source)
    kernel_findings, kernels = scan_kernels(corpus)
    findings.extend(kernel_findings)
    runtime_findings, arrays = runtime_check()
    findings.extend(runtime_findings)
    stats = {
        "modules_scanned": len(VECTOR_MODULES),
        "kernels_checked": kernels,
        "arrays_frozen": arrays,
    }
    return findings, stats
