"""Command line driver: ``python -m repro.hiveaudit``.

Runs the whole-engine audit, then (unless ``--no-selftest``) the
bug-injection self-test, prints a summary, and writes the combined
report to ``<out>/report.json``.  Exit status is 0 iff the audit has no
findings and every planted bug was caught with correct attribution.
"""

from __future__ import annotations

import argparse

from repro.analysis import add_standard_args, exit_code, write_report
from repro.hiveaudit.audit import run_audit
from repro.hiveaudit.selftest import run_selftest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.hiveaudit",
        description="Whole-engine bee-cache invalidation soundness audit.",
    )
    add_standard_args(
        parser,
        out_default="results/hiveaudit",
        seed_default=None,      # no corpus generator
        check_flag=False,       # hiveaudit always gates
    )
    args = parser.parse_args(argv)

    report = run_audit()
    print(report.summary())

    selftest: list[dict] = []
    all_caught = True
    if not args.no_selftest:
        selftest = run_selftest(baseline=report)
        caught = sum(1 for r in selftest if r["caught"])
        all_caught = caught == len(selftest)
        print(f"self-test:          {caught}/{len(selftest)} planted bugs "
              "caught")
        for result in selftest:
            if not result["caught"]:
                print(f"  MISSED {result['case']}: {result['description']}")

    payload = report.to_dict()
    payload["selftest"] = selftest
    out_path = write_report(payload, args.out)
    print(f"report:             {out_path}")

    return exit_code(report.ok and all_caught)


__all__ = ["main"]
