"""Robustness over TPC-H substitution parameters (spec clause 2.4).

The paper's results are reported at fixed parameters; these tests assert
the reproduction's core invariants — identical results, fewer instructions
— hold across randomized parameter draws, not just the validation values.
"""

import pytest

from repro.workloads.tpch import build_pair
from repro.workloads.tpch.params import parameter_sets, run_with_params

PARAMETERIZED = [1, 3, 4, 5, 6, 10, 12, 14, 18]


@pytest.fixture(scope="module")
def pair():
    return build_pair(scale_factor=0.001)


class TestParameterSets:
    def test_deterministic(self):
        assert parameter_sets(6, seed=1) == parameter_sets(6, seed=1)
        assert parameter_sets(6, seed=1) != parameter_sets(6, seed=2)

    def test_domains(self):
        for draw in parameter_sets(6, count=20):
            assert 0.02 <= draw["discount"] <= 0.09
            assert draw["quantity"] in (24, 25)
        for draw in parameter_sets(2, count=20):
            assert 1 <= draw["size"] <= 50

    def test_unparameterized_queries_get_empty_draws(self):
        assert parameter_sets(9, count=2) == [{}, {}]


@pytest.mark.parametrize("query_number", PARAMETERIZED)
def test_invariants_hold_across_draws(pair, query_number):
    stock, bees, _rows = pair
    for params in parameter_sets(query_number, count=2):
        s0 = stock.ledger.snapshot()
        stock_result = run_with_params(stock, query_number, params)
        stock_cost = stock.ledger.delta_since(s0).total
        b0 = bees.ledger.snapshot()
        bees_result = run_with_params(bees, query_number, params)
        bees_cost = bees.ledger.delta_since(b0).total
        assert stock_result == bees_result, (query_number, params)
        assert bees_cost < stock_cost, (query_number, params)
