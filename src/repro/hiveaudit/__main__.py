"""Entry point for ``python -m repro.hiveaudit``."""

import sys

from repro.hiveaudit.cli import main

sys.exit(main())
