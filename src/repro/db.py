"""The Database: catalog + storage + executor + generic bee module.

This is the session object users interact with.  Two databases configured
with different :class:`repro.bees.BeeSettings` — ``stock()`` vs
``all_bees()`` — are the reproduction's "stock PostgreSQL" and "bee-enabled
PostgreSQL"; every experiment loads the same data into both and compares
ledger deltas.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.bees.maker import RelationBee
from repro.bees.module import GenericBeeModule
from repro.bees.settings import BeeSettings
from repro.bees.vector.chunks import ChunkCache
from repro.catalog import Catalog, RelationSchema
from repro.cost import Ledger, TimeModel
from repro.cost.ledger import LedgerSnapshot
from repro.engine import dml
from repro.engine.deform import GenericDeformer, GenericFiller
from repro.engine.executor import execute as _execute
from repro.engine.nodes import PlanNode
from repro.resilience.guard import BeeGuard
from repro.resilience.registry import ResilienceRegistry
from repro.server.locks import HiveLocks
from repro.storage import BufferPool, HeapFile, TupleLayout, build_index
from repro.storage.buffer import DEFAULT_CAPACITY_PAGES


class Relation:
    """Runtime state of one relation: layout, heap, indexes, bee."""

    def __init__(
        self,
        schema: RelationSchema,
        layout: TupleLayout,
        heap: HeapFile,
        generic_deformer: GenericDeformer,
        generic_filler: GenericFiller,
        bee: RelationBee | None,
    ) -> None:
        self.schema = schema
        self.layout = layout
        self.heap = heap
        self.generic_deformer = generic_deformer
        self.generic_filler = generic_filler
        self.bee = bee
        self.indexes: dict[str, object] = {}
        self._index_keys: dict[str, list[int]] = {}
        self._idx_routines: dict[str, object] = {}

    def sections_list(self) -> list[tuple]:
        """Tuple-bee data sections, beeID-indexed (empty if none)."""
        if self.bee is None or self.bee.data_sections is None:
            return []
        return self.bee.data_sections.as_list()

    def add_index(self, index, key_columns: Sequence[str]) -> None:
        self.indexes[index.name] = index
        self._index_keys[index.name] = [
            self.schema.attnum(col) for col in key_columns
        ]

    def set_idx_routine(self, index_name: str, extractor) -> None:
        """Install an IDX key extractor for one index (future-work flag).

        *extractor* is a plain ``values -> key tuple`` callable: the IDX
        bee routine's ``fn``, or its beeshield-guarded wrapper.
        """
        self._idx_routines[index_name] = extractor

    def _extract_key(self, name: str, values: list) -> tuple:
        """Key extraction for one index: IDX bee routine or generic loop."""
        routine = self._idx_routines.get(name)
        if routine is not None:
            return routine(values)   # charges its own specialized cost
        from repro.bees.routines.idx import generic_idx_cost

        key_idx = self._index_keys[name]
        self.heap.ledger.charge_fn(
            "index_key_extract", generic_idx_cost(len(key_idx))
        )
        return tuple(values[i] for i in key_idx)

    def index_insert(self, values: list, tid) -> None:
        from repro.cost import constants as _C

        for name, index in self.indexes.items():
            self.heap.ledger.charge(_C.INDEX_MAINTAIN)
            index.insert(self._extract_key(name, values), tid)

    def index_delete(self, values: list, tid) -> None:
        from repro.cost import constants as _C

        for name, index in self.indexes.items():
            self.heap.ledger.charge(_C.INDEX_MAINTAIN)
            index.delete(self._extract_key(name, values), tid)


@dataclass
class MeasuredRun:
    """Result of :meth:`Database.measure`: outcome plus priced costs."""

    result: object
    instructions: int
    seq_pages_read: int
    rand_pages_read: int
    cpu_seconds: float
    io_seconds: float

    @property
    def seconds(self) -> float:
        """Total simulated run time."""
        return self.cpu_seconds + self.io_seconds


class Database:
    """A single-session, bee-enabled (or stock) relational database."""

    def __init__(
        self,
        settings: BeeSettings | None = None,
        bee_cache_dir: str | Path | None = None,
        buffer_capacity_pages: int = DEFAULT_CAPACITY_PAGES,
        parallel_workers: int = 2,
    ) -> None:
        self.settings = settings or BeeSettings.stock()
        self.ledger = Ledger()
        self.catalog = Catalog()
        # Materialized guard registry (swarmcheck's lock plan made real);
        # single-session use never contends, the server shares these.
        self.locks = HiveLocks()
        self.buffer_pool = BufferPool(
            self.ledger, buffer_capacity_pages,
            lock=self.locks.buffer_lock,
        )
        self.resilience = ResilienceRegistry()
        self.shield = BeeGuard(self.resilience, self.ledger)
        self.bee_module = GenericBeeModule(
            self.ledger, self.settings, bee_cache_dir,
            registry=self.resilience,
        )
        self.time_model = TimeModel()
        # Columnar chunk cache for the vector tier (validated against
        # heap versions, so it is safe to hold even when vectors are off).
        self.chunk_cache = ChunkCache(lock=self.locks.chunk_lock)
        # Morsel-parallel tier: the worker-pool coordinator is created
        # lazily on first parallel statement (spawning processes is not
        # free, and most sessions never enable the tier).
        self.parallel_workers = parallel_workers
        self._parallel = None
        # The attached HiveServer, if any (set by HiveServer.__init__;
        # feeds the ``server`` section of stats()).
        self._server = None
        self._relations: dict[str, Relation] = {}
        self._deadline: float | None = None
        self.catalog.on("drop", self._on_drop)
        self.catalog.on("alter", self._on_alter)

    # -- DDL --------------------------------------------------------------------

    def create_table(
        self, schema: RelationSchema, annotate: Sequence[str] = ()
    ) -> Relation:
        """Create a relation; *annotate* names low-cardinality attributes.

        Annotations are recorded regardless of settings (they are schema
        metadata); they only change the physical layout when tuple bees
        are enabled.
        """
        self.catalog.create_relation(schema)
        if annotate:
            self.catalog.annotations.annotate(schema.name, *annotate)
        bee_attrs: tuple[str, ...] = ()
        if self.settings.tuple_bees and annotate:
            bee_attrs = tuple(annotate)
        layout = TupleLayout(schema, bee_attrs)
        heap = HeapFile(schema.name, self.ledger, self.buffer_pool)
        bee = None
        if self.settings.gcl or self.settings.scl or bee_attrs:
            bee = self.bee_module.create_relation_bee(layout)
        relation = Relation(
            schema,
            layout,
            heap,
            GenericDeformer(layout, self.ledger),
            GenericFiller(layout, self.ledger),
            bee,
        )
        self._relations[schema.name] = relation
        return relation

    def create_index(
        self,
        relation: str,
        name: str,
        columns: Sequence[str],
        kind: str = "hash",
        unique: bool = False,
    ) -> None:
        """Create a hash or btree index and backfill it from the heap."""
        rel = self.relation(relation)
        index = build_index(kind, name, relation, columns, unique=unique)
        rel.add_index(index, columns)
        if getattr(self.settings, "idx", False):
            key_idx = [rel.schema.attnum(col) for col in columns]
            if getattr(self.settings, "shield", True):
                extractor = self._guarded_idx_extractor(
                    relation, name, key_idx
                )
                if extractor is not None:
                    rel.set_idx_routine(name, extractor)
            else:
                rel.set_idx_routine(
                    name, self.bee_module.get_idx(relation, name, key_idx).fn
                )
        sections = rel.sections_list()
        key_idx = [rel.schema.attnum(col) for col in columns]
        for tid, raw in rel.heap.scan():
            values, _isnull = rel.layout.decode(
                raw, sections[rel.layout.read_bee_id(raw)] if sections else None
            )
            index.insert(tuple(values[i] for i in key_idx), tid)

    def _guarded_idx_extractor(self, relation, name, key_idx):
        """Beeshield wrapper for one index's IDX routine; None when the
        generator faults (the relation then uses the generic loop)."""
        try:
            routine = self.bee_module.get_idx(relation, name, key_idx)
        except Exception as exc:  # noqa: BLE001 — the guard is the handler
            from repro.resilience.errors import is_verification_refusal

            if is_verification_refusal(exc):
                raise
            self.resilience.record_failure(
                f"IDX_{relation}_{name}", site="idx", kind="generate", error=exc
            )
            return None

        def make_generic():
            from repro.bees.routines.idx import generic_idx_cost

            cost = generic_idx_cost(len(key_idx))
            ledger = self.ledger
            indexes = list(key_idx)

            def generic_extract(values):
                ledger.charge_fn("index_key_extract", cost)
                return tuple(values[i] for i in indexes)

            return generic_extract

        return self.shield.idx(routine, key_idx, make_generic)

    def drop_table(self, name: str) -> None:
        """Drop a relation: catalog, storage, buffer pages, and its bees."""
        self.catalog.drop_relation(name)

    def _on_drop(self, name: str, _schema) -> None:
        self._relations.pop(name, None)
        self.buffer_pool.invalidate_relation(name)
        self.bee_module.drop_relation_bee(name)

    def _on_alter(self, name: str, _schema) -> None:
        """Bee reconstruction on ALTER: the relation bee is regenerated
        for the relation's current layout, and every query-bee routine is
        evicted — plans bind column positions and constants against the
        old schema, so memoized EVP/AGG/IDX routines may be stale."""
        rel = self._relations.get(name)
        if rel is not None and rel.bee is not None:
            rel.bee = self.bee_module.reconstruct_relation_bee(rel.layout)
        self.bee_module.invalidate_query_bees()

    def reannotate(self, name: str, annotate: Sequence[str]) -> Relation:
        """Change a relation's annotations and rebuild its storage.

        This is the bee-reconstruction path: the relation bee is
        regenerated for the new layout and every tuple is re-encoded.
        """
        rel = self.relation(name)
        rows = self.read_all(name)
        schema = rel.schema
        self.catalog.annotations.clear(name)
        if annotate:
            self.catalog.annotations.annotate(name, *annotate)
        bee_attrs = tuple(annotate) if self.settings.tuple_bees else ()
        layout = TupleLayout(schema, bee_attrs)
        heap = HeapFile(name, self.ledger, self.buffer_pool)
        self.buffer_pool.invalidate_relation(name)
        bee = None
        if self.settings.gcl or self.settings.scl or bee_attrs:
            bee = self.bee_module.reconstruct_relation_bee(layout)
        new_rel = Relation(
            schema,
            layout,
            heap,
            GenericDeformer(layout, self.ledger),
            GenericFiller(layout, self.ledger),
            bee,
        )
        index_specs = [
            (index.name, index.key_columns, index.kind, index.unique)
            for index in rel.indexes.values()
        ]
        self._relations[name] = new_rel
        self.copy_from(name, rows)
        for idx_name, key_columns, kind, unique in index_specs:
            self.create_index(name, idx_name, key_columns, kind, unique)
        self.catalog.alter_relation(schema)
        return new_rel

    # -- DML --------------------------------------------------------------------

    def insert(self, relation: str, values: Sequence):
        """Insert one row; returns its TID."""
        return dml.insert_row(self, relation, values)

    def copy_from(self, relation: str, rows: Iterable[Sequence]) -> int:
        """Bulk-load rows (the COPY path); returns the row count."""
        return dml.copy_from(self, relation, rows)

    def delete_where(self, relation: str, predicate: Callable) -> int:
        """Delete rows whose values-list satisfies *predicate*."""
        return dml.delete_rows(self, relation, predicate)

    def update_where(
        self, relation: str, predicate: Callable, updater: Callable
    ) -> int:
        """Update rows matching *predicate* via *updater*."""
        return dml.update_rows(self, relation, predicate, updater)

    def update_by_tid(self, relation: str, tid, new_values: Sequence):
        """Index-driven single-row update."""
        return dml.update_by_tid(self, relation, tid, new_values)

    def delete_by_tid(self, relation: str, tid) -> None:
        """Index-driven single-row delete."""
        dml.delete_by_tid(self, relation, tid)

    def vacuum(self, name: str) -> dict:
        """Compact a relation's heap: rewrite live tuples into fresh pages
        and rebuild its indexes (dead line pointers are never reclaimed
        otherwise, as in PostgreSQL without VACUUM).

        Returns ``{"pages_before", "pages_after", "tuples"}``.
        """
        from repro.cost import constants as _C

        rel = self.relation(name)
        pages_before = rel.heap.page_count
        live: list[bytes] = []
        for page in rel.heap.pages:
            for _slot, raw in page.live_tuples():
                live.append(raw)
        self.buffer_pool.invalidate_relation(name)
        fresh = HeapFile(name, self.ledger, self.buffer_pool)
        sections = rel.sections_list()
        tid_values = []
        for raw in live:
            self.ledger.charge_fn("vacuum", _C.VACUUM_PER_TUPLE)
            tid = fresh.insert(raw)
            bee_values = (
                sections[rel.layout.read_bee_id(raw)] if sections else None
            )
            values, isnull = rel.layout.decode(raw, bee_values)
            for i, null in enumerate(isnull):
                if null:
                    values[i] = None
            tid_values.append((tid, values))
        rel.heap = fresh
        for index_name, index in rel.indexes.items():
            fresh_index = build_index(
                index.kind, index_name, name, index.key_columns,
                unique=index.unique,
            )
            key_idx = rel._index_keys[index_name]
            for tid, values in tid_values:
                fresh_index.insert(tuple(values[i] for i in key_idx), tid)
            rel.indexes[index_name] = fresh_index
        return {
            "pages_before": pages_before,
            "pages_after": rel.heap.page_count,
            "tuples": len(live),
        }

    # -- query ------------------------------------------------------------------

    def execute(
        self, plan: PlanNode, emit: bool = True,
        settings: BeeSettings | None = None,
        timeout: float | None = None,
    ) -> list[tuple]:
        """Run a plan and return result rows.

        *settings* overrides this database's bee settings for the one
        execution (``BeeSettings.stock()`` forces the generic code paths
        over the same physical data).  *timeout* is a wall-clock budget
        in seconds; exceeding it raises
        :class:`repro.resilience.QueryTimeout` with the ledger rolled
        back to the statement start.
        """
        from time import perf_counter

        deadline = None if timeout is None else perf_counter() + timeout
        return _execute(
            self, plan, emit=emit, settings=settings, deadline=deadline
        )

    def resolve_settings(
        self, bees: bool | BeeSettings | None
    ) -> BeeSettings:
        """Resolve a per-statement bee toggle to concrete settings.

        ``None``/``True`` keep the database's own settings; ``False``
        disables every bee routine family for the statement; an explicit
        :class:`BeeSettings` is used as given.
        """
        if bees is None or bees is True:
            return self.settings
        if bees is False:
            return BeeSettings.stock()
        return bees

    @contextmanager
    def use_settings(self, settings: BeeSettings):
        """Temporarily execute with different bee settings.

        Every code path reads ``db.settings`` at execution time (scans,
        filters, joins, the DML write path), so swapping it here toggles
        bee routines per statement without touching the physical layout —
        relation bees and tuple-bee storage created at DDL time stay as
        they are, and re-enabling simply resumes using them.
        """
        previous = self.settings
        self.settings = settings
        try:
            yield self
        finally:
            self.settings = previous

    def parallel_coordinator(self):
        """The morsel-parallel worker-pool coordinator (lazily created)."""
        if self._parallel is None:
            from repro.parallel.coordinator import ParallelCoordinator

            self._parallel = ParallelCoordinator(self, self.parallel_workers)
        return self._parallel

    def close(self) -> None:
        """Release external resources (the parallel worker pool and any
        attached server).

        Idempotent: the pool reference is taken before shutdown, so a
        second ``close()`` never touches an already-joined coordinator.
        The database stays usable afterwards (a later parallel statement
        respawns the pool).  Workers are daemons, so an unclosed
        database cannot outlive the process.
        """
        server, self._server = self._server, None
        if server is not None:
            server.shutdown()
        pool, self._parallel = self._parallel, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def sql(
        self,
        statement: str,
        bees: bool | BeeSettings | None = None,
        pipelines: bool | None = None,
        vectors: bool | None = None,
        parallel: bool | None = None,
        timeout: float | None = None,
    ):
        """Execute one SQL statement (SELECT/CREATE/INSERT/DROP).

        Returns a :class:`repro.sql.SQLResult`; SELECT results are in
        ``result.rows``.  CREATE TABLE supports the paper's ``ANNOTATE``
        DDL clause for tuple-bee attributes.  ``bees=False`` runs this one
        statement through the generic code paths (see
        :meth:`resolve_settings`); results must be identical either way —
        the invariant the differential oracle checks.  *pipelines*
        overrides the :attr:`BeeSettings.pipelines` flag for this one
        statement (``db.sql(q, pipelines=False)`` disables plan fusion
        without touching the other bee families); *vectors* does the
        same for the columnar vector tier (``db.sql(q, vectors=True)``
        compiles fusable segments into NumPy kernels for this one
        statement); *parallel* does the same for the morsel-parallel
        tier (``db.sql(q, parallel=True)`` fans fused segments across
        the worker pool — see ``docs/PARALLEL.md``).

        *timeout* is a per-statement wall-clock budget in seconds,
        checked at batch boundaries in the executor; exceeding it raises
        :class:`repro.resilience.QueryTimeout` with the ledger rolled
        back, leaving the database usable.
        """
        from repro.sql.session import execute_sql

        settings = self.resolve_settings(bees)
        if pipelines is not None:
            settings = settings.enabling(pipelines=bool(pipelines))
        if vectors is not None:
            settings = settings.enabling(vectors=bool(vectors))
        if parallel is not None:
            settings = settings.enabling(parallel=bool(parallel))
        if timeout is not None:
            from time import perf_counter

            self._deadline = perf_counter() + timeout
        try:
            with self.use_settings(settings):
                return execute_sql(self, statement)
        finally:
            self._deadline = None

    def relation(self, name: str) -> Relation:
        """Runtime relation state; raises KeyError for unknown names."""
        try:
            return self._relations[name]
        except KeyError:
            raise KeyError(f"relation {name!r} does not exist") from None

    def read_all(self, name: str) -> list[list]:
        """All rows of a relation via the reference decoder (no charges)."""
        rel = self.relation(name)
        sections = rel.sections_list()
        rows = []
        for page in rel.heap.pages:
            for _slot, raw in page.live_tuples():
                bee_values = (
                    sections[rel.layout.read_bee_id(raw)] if sections else None
                )
                values, isnull = rel.layout.decode(raw, bee_values)
                for i, null in enumerate(isnull):
                    if null:
                        values[i] = None
                rows.append(values)
        return rows

    # -- cache & measurement ------------------------------------------------------

    def warm_cache(self) -> None:
        """Make every page of every relation buffer-resident (Fig. 4 state)."""
        for name, rel in self._relations.items():
            self.buffer_pool.warm(name, rel.heap.page_count)

    def cold_cache(self) -> None:
        """Empty the buffer pool (Fig. 5 state)."""
        self.buffer_pool.clear()

    def measure(self, fn: Callable[[], object]) -> MeasuredRun:
        """Run *fn* and price its ledger delta with the time model."""
        before = self.ledger.snapshot()
        result = fn()
        delta = self.ledger.delta_since(before)
        return MeasuredRun(
            result=result,
            instructions=delta.total,
            seq_pages_read=delta.seq_pages_read,
            rand_pages_read=delta.rand_pages_read,
            cpu_seconds=self.time_model.cpu_seconds(delta),
            io_seconds=self.time_model.io_seconds(delta),
        )

    def snapshot(self) -> LedgerSnapshot:
        """Convenience pass-through to the ledger."""
        return self.ledger.snapshot()

    def stats(self) -> dict:
        """Observability roll-up: bee population + resilience health.

        The snapshot is deep-copied: the registries hand back their live
        dicts/lists, and a caller mutating the snapshot must never reach
        engine state through it (swarmcheck certifies the engine's
        shared-state boundary, and an aliased stats dict would puncture
        it from outside).
        """
        import copy

        from repro.parallel.coordinator import ParallelStats

        parallel = (
            self._parallel.stats if self._parallel is not None
            else ParallelStats()
        )
        server = (
            self._server.stats_snapshot() if self._server is not None
            else {}
        )
        return copy.deepcopy({
            "bees": self.bee_module.statistics(),
            "resilience": self.resilience.report(),
            "parallel": parallel.snapshot(),
            "server": server,
        })

    def table_names(self) -> list[str]:
        return list(self._relations)
