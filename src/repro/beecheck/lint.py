"""The AST safety lint: every bee must *look like* a bee.

The paper constrains bee routines to short, self-contained, relocatable
code sequences (Section IV): the specializer unrolls the attribute loop,
folds per-attribute branching into constants, and leaves exactly one
escape to the generic slow path.  This pass parses ``BeeRoutine.source``
and enforces that shape syntactically:

* only whitelisted names and calls (``_charge``, ``_slow``, the
  ``_PREFIX``/``_S*``/``_P*``/``_VL`` data-section structs, section
  reads) may appear;
* the fast path is straight-line code — no loops, comprehensions, or
  residual per-attribute ``if``s survive specialization;
* the single slow-path escape is the first statement and is guarded by
  the header null flag (GCL) / a ``None`` scan (SCL);
* every GCL/SCL statement must match one of a closed grammar of shapes
  (matched against ``ast.unparse`` of the statement), so *any* tampering
  with the emitted arithmetic is rejected even when it is harmless
  Python.

EVP routines are predicate-shaped rather than offset-shaped, so they get
the structural rules (banned nodes, name/call whitelist, guard-free
straight-line body except ``CASE`` arm selection) without a per-statement
shape grammar.
"""

from __future__ import annotations

import ast
import re

from repro.storage.layout import (
    BEEID_HI_BYTE,
    BEEID_LO_BYTE,
    HEADER_INFOMASK_BYTE,
    INFOMASK_HAS_NULLS,
    VARLENA_HEADER_BYTES,
)

# -- banned syntax ------------------------------------------------------------

_BANNED_NODES: tuple = (
    ast.For,
    ast.AsyncFor,
    ast.While,
    ast.With,
    ast.AsyncWith,
    ast.Try,
    ast.Lambda,
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
    ast.ClassDef,
    ast.AsyncFunctionDef,
    ast.Yield,
    ast.YieldFrom,
    ast.Await,
    ast.Starred,
    ast.Delete,
    ast.Raise,
    ast.Assert,
    ast.NamedExpr,
)


def _parse_routine(
    source: str, name: str, params: tuple[str, ...], findings: list[str]
) -> ast.FunctionDef | None:
    """Parse *source* and validate the module/function envelope."""
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        findings.append(f"source does not parse: {exc}")
        return None
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        findings.append("source must define exactly one function")
        return None
    fn = tree.body[0]
    if fn.name != name:
        findings.append(f"function is named {fn.name!r}, expected {name!r}")
    args = fn.args
    if (
        args.posonlyargs
        or args.kwonlyargs
        or args.vararg
        or args.kwarg
        or tuple(a.arg for a in args.args) != params
    ):
        findings.append(
            f"signature must be exactly ({', '.join(params)}), got "
            f"({', '.join(a.arg for a in args.args)})"
        )
    if fn.decorator_list:
        findings.append("generated bees must not be decorated")
    return fn


def _check_banned(fn: ast.FunctionDef, findings: list[str]) -> None:
    for node in ast.walk(fn):
        if isinstance(node, _BANNED_NODES):
            findings.append(
                f"banned construct {type(node).__name__} on the fast path"
            )
        elif isinstance(node, ast.FunctionDef) and node is not fn:
            findings.append("nested function definition on the fast path")


def _check_names(
    fn: ast.FunctionDef,
    allowed: re.Pattern,
    findings: list[str],
    methods: frozenset | None = None,
) -> None:
    if methods is None:
        methods = _METHODS
    for node in ast.walk(fn):
        if isinstance(node, ast.Name) and not allowed.fullmatch(node.id):
            findings.append(f"name {node.id!r} is not bee-whitelisted")
        elif isinstance(node, ast.Attribute) and node.attr not in methods:
            findings.append(f"method .{node.attr}() is not bee-whitelisted")


#: Methods generated code may invoke (on data-section structs and on
#: values being decoded/encoded).
_METHODS = frozenset(
    {"unpack_from", "pack", "decode", "encode", "rstrip", "match"}
)


# -- determinism --------------------------------------------------------------

#: Identifiers (names or attributes) whose presence in generated source
#: means the bee reads ambient state or nondeterminism: wall clocks,
#: RNGs, process-specific identity (``id``/``hash`` vary per run), the
#: environment, and filesystem/introspection escapes.  A bee's output
#: must be a pure function of its arguments and its frozen data section
#: — anything else breaks replay, golden snapshots, and (once morsels
#: land) cross-worker result agreement.
_NONDET_IDENTIFIERS = frozenset({
    "time", "perf_counter", "monotonic", "process_time", "clock",
    "random", "randint", "randrange", "getrandbits", "shuffle", "urandom",
    "id", "hash", "uuid", "uuid4",
    "os", "environ", "getenv", "putenv",
    "datetime", "date", "today", "now", "utcnow",
    "globals", "locals", "vars", "input", "open", "print",
})

#: The C-text (EVJ) equivalent: ambient-state calls a cloned template
#: must never contain.
_EVJ_NONDET = re.compile(
    r"\b(time|clock|rand|srand|random|drand48|getenv|getpid|gettimeofday)"
    r"\s*\("
)


def lint_determinism(source: str, c_text: bool = False) -> list[str]:
    """Ban nondeterminism / ambient-state reads in generated bee source.

    The family name whitelists already reject unknown identifiers; this
    rule is the independent, family-agnostic statement of *why* a class
    of them can never be whitelisted, so a future family (or a loosened
    whitelist) cannot quietly admit a clock or RNG read.
    """
    if c_text:
        return [
            f"nondeterministic/ambient call {match.group(1)!r} in C template"
            for match in _EVJ_NONDET.finditer(source)
        ]
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return []  # unparsable source is the family lint's finding
    findings: list[str] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Name) and node.id in _NONDET_IDENTIFIERS:
            findings.append(
                f"nondeterministic/ambient name {node.id!r} in bee source"
            )
        elif (
            isinstance(node, ast.Attribute)
            and node.attr in _NONDET_IDENTIFIERS
        ):
            findings.append(
                f"nondeterministic/ambient attribute "
                f".{node.attr} in bee source"
            )
    return findings


def _is_docstring(stmt: ast.stmt) -> bool:
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Constant)
        and isinstance(stmt.value.value, str)
    )


def _match_shapes(
    body: list[ast.stmt],
    shapes: list[re.Pattern],
    findings: list[str],
    what: str,
) -> None:
    for stmt in body:
        text = ast.unparse(stmt)
        if not any(shape.fullmatch(text) for shape in shapes):
            findings.append(f"{what} statement has no allowed shape: {text!r}")


# -- GCL ---------------------------------------------------------------------

_V = r"v\d+"
_VLB = VARLENA_HEADER_BYTES

_GCL_GUARD = re.compile(
    rf"if raw\[{HEADER_INFOMASK_BYTE}\] & {INFOMASK_HAS_NULLS}:"
    r"\n    return _slow\(raw, sections\)"
)

_GCL_SHAPES = [
    re.compile(p)
    for p in (
        rf"_bv = sections\[raw\[{BEEID_LO_BYTE}\] \|"
        rf" raw\[{BEEID_HI_BYTE}\] << 8\]",
        rf"{_V} = _bv\[\d+\]",
        rf"{_V}(, {_V})*,? = _PREFIX\.unpack_from\(raw, \d+\)",
        rf"({_V}) = \1\.decode\(\)\.rstrip\(' '\)",
        rf"({_V}) = bool\(\1\)",
        r"off = \d+",
        r"off = off \+ \d+ & -\d+",
        r"ln = _VL\.unpack_from\(raw, off\)\[0\]",
        rf"{_V} = raw\[off \+ {_VLB}:off \+ {_VLB} \+ ln\]\.decode\(\)",
        rf"off = off \+ {_VLB} \+ ln",
        rf"{_V} = _S\d+\.unpack_from\(raw, off\)\[0\]",
        rf"{_V} = raw\[off:off \+ \d+\]\.decode\(\)\.rstrip\(' '\)",
        r"off = off \+ \d+",
    )
]

_GCL_RETURN = re.compile(rf"return \[{_V}(, {_V})*\]")

_GCL_NAMES = re.compile(
    r"v\d+|off|ln|raw|sections|_bv|_PREFIX|_VL|_S\d+|_slow|_charge|_COST|bool"
)


def lint_gcl(source: str, name: str) -> list[str]:
    """Lint one generated GCL routine; returns finding messages."""
    return _lint_offsets_routine(
        source,
        name,
        params=("raw", "sections"),
        guard=_GCL_GUARD,
        shapes=_GCL_SHAPES,
        final=_GCL_RETURN,
        names=_GCL_NAMES,
        what="GCL",
    )


# -- SCL ---------------------------------------------------------------------

_ARG = r"(values\[\d+\]|int\(values\[\d+\]\)|_char\(values\[\d+\], \d+, '[^']*'\))"

_SCL_GUARD = re.compile(r"if None in values:\n    return _slow\(values, bee_id\)")

_SCL_SHAPES = [
    re.compile(p)
    for p in (
        r"out = bytearray\(_HDR\)",
        rf"out\[{BEEID_LO_BYTE}\] = bee_id & 255",
        rf"out\[{BEEID_HI_BYTE}\] = bee_id >> 8 & 255",
        rf"out \+= _PREFIX\.pack\({_ARG}(, {_ARG})*\)",
        r"off = \d+",
        r"pad = \(off \+ \d+ & -\d+\) - off",
        r"out \+= b'\\x00' \* pad",
        r"off = off \+ pad",
        r"b = values\[\d+\]\.encode\(\)",
        r"out \+= _VL\.pack\(len\(b\)\)",
        r"out \+= b",
        rf"off = off \+ {_VLB} \+ len\(b\)",
        rf"out \+= _P\d+\.pack\({_ARG}\)",
        rf"out \+= _char\(values\[\d+\], \d+, '[^']*'\)",
        r"off = off \+ \d+",
    )
]

_SCL_RETURN = re.compile(r"return bytes\(out\)")

_SCL_NAMES = re.compile(
    r"values|bee_id|out|off|pad|b|_HDR|_PREFIX|_VL|_P\d+|_char|_slow"
    r"|_charge|_COST|bytearray|bytes|int|len"
)


def lint_scl(source: str, name: str) -> list[str]:
    """Lint one generated SCL routine; returns finding messages."""
    return _lint_offsets_routine(
        source,
        name,
        params=("values", "bee_id"),
        guard=_SCL_GUARD,
        shapes=_SCL_SHAPES,
        final=_SCL_RETURN,
        names=_SCL_NAMES,
        what="SCL",
    )


def _lint_offsets_routine(
    source: str,
    name: str,
    params: tuple[str, ...],
    guard: re.Pattern,
    shapes: list[re.Pattern],
    final: re.Pattern,
    names: re.Pattern,
    what: str,
) -> list[str]:
    findings: list[str] = []
    fn = _parse_routine(source, name, params, findings)
    if fn is None:
        return findings
    _check_banned(fn, findings)
    _check_names(fn, names, findings)

    body = list(fn.body)
    if body and _is_docstring(body[0]):
        body = body[1:]
    if len(body) < 3:
        findings.append(f"{what} body too short to be a bee")
        return findings

    # Exactly one escape: the null/None guard, first.
    if not guard.fullmatch(ast.unparse(body[0])):
        findings.append(
            f"first statement must be the slow-path guard, got "
            f"{ast.unparse(body[0])!r}"
        )
    branches = [n for n in ast.walk(fn) if isinstance(n, ast.If)]
    if len(branches) != 1:
        findings.append(
            f"fast path must be branch-free apart from the guard "
            f"({len(branches)} if-statements found)"
        )
    returns = [n for n in ast.walk(fn) if isinstance(n, ast.Return)]
    if len(returns) != 2:
        findings.append(
            f"exactly two returns expected (escape + result), "
            f"found {len(returns)}"
        )

    # The charge must immediately follow the guard and name the routine.
    expected_charge = f"_charge('{name}', _COST)"
    if ast.unparse(body[1]) != expected_charge:
        findings.append(
            f"second statement must be {expected_charge!r}, got "
            f"{ast.unparse(body[1])!r}"
        )

    if not final.fullmatch(ast.unparse(body[-1])):
        findings.append(
            f"last statement must be the {what} return, got "
            f"{ast.unparse(body[-1])!r}"
        )

    _match_shapes(body[2:-1], shapes, findings, what)
    return findings


# -- EVP ---------------------------------------------------------------------

_EVP_NAMES = re.compile(r"row|t\d+|k\d+|re\d+|in\d+|fn\d+|_charge|_COST")
_EVP_TEMP = re.compile(r"t\d+")
_EVP_CASE_TEST = re.compile(r"t\d+ is True")


def _lint_evp_stmt(stmt: ast.stmt, findings: list[str]) -> None:
    """EVP bodies are assignments to temps plus CASE arm selection."""
    if isinstance(stmt, ast.Assign):
        if len(stmt.targets) != 1 or not (
            isinstance(stmt.targets[0], ast.Name)
            and _EVP_TEMP.fullmatch(stmt.targets[0].id)
        ):
            findings.append(
                f"EVP may only assign to t-temps: {ast.unparse(stmt)!r}"
            )
        return
    if isinstance(stmt, ast.If):
        # CASE arm selection: `if tK is True: ... elif ... else ...` where
        # every branch only assigns the result temp.
        if not _EVP_CASE_TEST.fullmatch(ast.unparse(stmt.test)):
            findings.append(
                f"EVP branch must test a CASE arm temp, got "
                f"{ast.unparse(stmt.test)!r}"
            )
        for branch_stmt in stmt.body + stmt.orelse:
            _lint_evp_stmt(branch_stmt, findings)
        return
    findings.append(f"EVP statement kind not allowed: {ast.unparse(stmt)!r}")


def lint_evp(source: str, name: str) -> list[str]:
    """Lint one generated EVP routine (either variant)."""
    findings: list[str] = []
    fn = _parse_routine(source, name, ("row",), findings)
    if fn is None:
        return findings
    _check_banned(fn, findings)
    _check_names(fn, _EVP_NAMES, findings)

    body = list(fn.body)
    if body and _is_docstring(body[0]):
        body = body[1:]
    if len(body) < 2:
        findings.append("EVP body too short to be a bee")
        return findings

    expected_charge = f"_charge('{name}', _COST)"
    if ast.unparse(body[0]) != expected_charge:
        findings.append(
            f"first statement must be {expected_charge!r}, got "
            f"{ast.unparse(body[0])!r}"
        )
    if not isinstance(body[-1], ast.Return) or body[-1].value is None:
        findings.append("last statement must return the predicate value")
    for stmt in body[1:-1]:
        _lint_evp_stmt(stmt, findings)

    # `row` may only be read through constant-index subscripts.
    subscripted = set()
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "row"
        ):
            if isinstance(node.slice, ast.Constant) and isinstance(
                node.slice.value, int
            ):
                subscripted.add(id(node.value))
            else:
                findings.append(
                    f"row index must be a constant int: {ast.unparse(node)!r}"
                )
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Name)
            and node.id == "row"
            and id(node) not in subscripted
        ):
            findings.append("row must be read as row[<constant int>]")
    return findings


# -- EVJ ---------------------------------------------------------------------

#: The full shape of a cloned EVJ template.  EVJ is the one bee kind kept
#: as C text (the paper pre-compiles the join-type combinations ahead of
#: time and only clones at preparation); the lint is therefore a
#: whole-source grammar rather than an AST walk.
_EVJ_TEMPLATE_RE = re.compile(
    r"/\* EVJ template: (\w+) join, (\d+) key\(s\) — dispatch folded,\n"
    r"   key comparison inlined \((\d+) instructions per candidate"
    r" pair\)\. \*/\n"
    r"static bool evj_(\w+)\(Datum \*outer, Datum \*inner\)\n"
    r"\{\n"
    r"((?:    if \(outer\[\d+\] != inner\[\d+\]\) return false;\n)*)"
    r"    return (?:true|false);(?:  /\* match suppresses emission \*/)?\n"
    r"\}\n"
)

_EVJ_JOIN_TYPES = ("inner", "left", "semi", "anti")


def lint_evj(source: str) -> list[str]:
    """Lint one cloned EVJ template (C text) against the template grammar."""
    findings: list[str] = []
    m = _EVJ_TEMPLATE_RE.fullmatch(source)
    if m is None:
        findings.append("EVJ source does not match the template grammar")
        return findings
    comment_type, _n_keys, _cost, fn_type = m.group(1), m.group(2), m.group(
        3
    ), m.group(4)
    if comment_type != fn_type:
        findings.append(
            f"header comment says {comment_type!r} join but the function "
            f"is evj_{fn_type}"
        )
    if fn_type not in _EVJ_JOIN_TYPES:
        findings.append(f"unknown join type {fn_type!r}")
    return findings


# -- AGG ---------------------------------------------------------------------

_AGG_NAMES = re.compile(
    r"row|states|t\d+|k\d+|re\d+|in\d+|fn\d+|_charge|_COST"
)
_AGG_METHODS = _METHODS | {"update"}
_AGG_GUARD_TEST = re.compile(r".+ is not None|t\d+ is True")


def _is_states_update(stmt: ast.stmt) -> bool:
    """``states[<const int>].update(<expr>)`` as an expression statement."""
    return (
        isinstance(stmt, ast.Expr)
        and isinstance(stmt.value, ast.Call)
        and isinstance(stmt.value.func, ast.Attribute)
        and stmt.value.func.attr == "update"
        and isinstance(stmt.value.func.value, ast.Subscript)
        and isinstance(stmt.value.func.value.value, ast.Name)
        and stmt.value.func.value.value.id == "states"
        and isinstance(stmt.value.func.value.slice, ast.Constant)
        and isinstance(stmt.value.func.value.slice.value, int)
        and len(stmt.value.args) == 1
        and not stmt.value.keywords
    )


def _lint_agg_stmt(stmt: ast.stmt, findings: list[str]) -> None:
    """AGG bodies: t-temp assignments, guards, and accumulator updates."""
    if isinstance(stmt, ast.Assign):
        if len(stmt.targets) != 1 or not (
            isinstance(stmt.targets[0], ast.Name)
            and _EVP_TEMP.fullmatch(stmt.targets[0].id)
        ):
            findings.append(
                f"AGG may only assign to t-temps: {ast.unparse(stmt)!r}"
            )
        return
    if _is_states_update(stmt):
        return
    if isinstance(stmt, ast.If):
        if not _AGG_GUARD_TEST.fullmatch(ast.unparse(stmt.test)):
            findings.append(
                f"AGG branch must be a NULL guard or CASE arm, got "
                f"{ast.unparse(stmt.test)!r}"
            )
        for branch_stmt in stmt.body + stmt.orelse:
            _lint_agg_stmt(branch_stmt, findings)
        return
    findings.append(f"AGG statement kind not allowed: {ast.unparse(stmt)!r}")


def lint_agg(source: str, name: str) -> list[str]:
    """Lint one generated AGG transition routine."""
    findings: list[str] = []
    fn = _parse_routine(source, name, ("row", "states"), findings)
    if fn is None:
        return findings
    _check_banned(fn, findings)
    _check_names(fn, _AGG_NAMES, findings, methods=_AGG_METHODS)
    for node in ast.walk(fn):
        if isinstance(node, ast.Return):
            findings.append(
                "AGG transitions mutate states and must not return"
            )

    body = list(fn.body)
    if body and _is_docstring(body[0]):
        body = body[1:]
    if len(body) < 2:
        findings.append("AGG body too short to be a bee")
        return findings
    expected_charge = f"_charge('{name}', _COST)"
    if ast.unparse(body[0]) != expected_charge:
        findings.append(
            f"first statement must be {expected_charge!r}, got "
            f"{ast.unparse(body[0])!r}"
        )
    for stmt in body[1:]:
        _lint_agg_stmt(stmt, findings)

    # `states` may only appear as the receiver of an accumulator update.
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "states"
            and not (
                isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)
            )
        ):
            findings.append(
                f"states index must be a constant int: {ast.unparse(node)!r}"
            )
    return findings


# -- PIPE --------------------------------------------------------------------

#: Pipeline bees are the one bee kind allowed a loop: exactly one batch
#: loop (``for raw in batch:``) plus, on the probe sink, the candidate
#: emission loop (``for _b in _cands:``).  Everything else stays banned.
_PIPE_BANNED: tuple = tuple(n for n in _BANNED_NODES if n is not ast.For)

_PIPE_PARAMS = {
    "rows": ("batch", "sections"),
    "probe": ("batch", "sections", "table"),
    "agg": ("batch", "sections", "groups", "make_states"),
}

_PIPE_CHARGE = {
    "rows": "_charge('{name}', _C0 + _C1 * len(batch) + _C2 * len(out))",
    "probe": (
        "_charge('{name}', _C0 + _C1 * len(batch) + _C2 * _np + "
        "_C3 * _nc + _C4 * len(out))"
    ),
    "agg": "_charge('{name}', _C0 + _C1 * len(batch) + _C2 * _np)",
}

_PIPE_NAMES = re.compile(
    r"v\d+|t\d+|k\d+|re\d+|in\d+|fn\d+|raw|batch|sections|out|row|off|ln"
    r"|_r|_bv|_slow|_charge|_append|_PREFIX|_VL|_S\d+|_C[0-4]|_k|_st"
    r"|_cands|_get|_b|_np|_nc|_PAD|_CS|groups|make_states|table|bool|len"
)

_PIPE_METHODS = _METHODS | {"append", "get", "update"}

_PIPE_GUARD_TEST = re.compile(
    rf"raw\[{HEADER_INFOMASK_BYTE}\] & {INFOMASK_HAS_NULLS}"
)

_PIPE_SLOW_SHAPE = re.compile(rf"{_V} = _r\[\d+\]")

#: The inlined (pruned) relation-bee deform: the GCL offset grammar with
#: locals assigned instead of a list returned, plus the ``pass`` filler
#: for a deform that decodes nothing.
_PIPE_DEFORM_SHAPES = [
    re.compile(p)
    for p in (
        rf"_bv = sections\[raw\[{BEEID_LO_BYTE}\] \|"
        rf" raw\[{BEEID_HI_BYTE}\] << 8\]",
        rf"{_V} = _bv\[\d+\]",
        rf"{_V}(, {_V})*,? = _PREFIX\.unpack_from\(raw, \d+\)",
        rf"({_V}) = \1\.decode\(\)\.rstrip\(' '\)",
        rf"({_V}) = bool\(\1\)",
        r"off = \d+",
        r"off = off \+ \d+ & -\d+",
        r"ln = _VL\.unpack_from\(raw, off\)\[0\]",
        rf"{_V} = raw\[off \+ {_VLB}:off \+ {_VLB} \+ ln\]\.decode\(\)",
        rf"off = off \+ {_VLB} \+ ln",
        rf"{_V} = _S\d+\.unpack_from\(raw, off\)\[0\]",
        rf"{_V} = raw\[off:off \+ \d+\]\.decode\(\)\.rstrip\(' '\)",
        r"off = off \+ \d+",
        r"pass",
    )
]

_PIPE_PROLOGUE_SHAPES = [
    re.compile(p)
    for p in (
        r"out = \[\]",
        r"_append = out\.append",
        r"_np = 0",
        r"_nc = 0",
        r"_get = table\.get",
        r"_st = groups\[\(\)\]",
    )
]

#: Simple statements allowed inside the batch loop (after the NULL
#: guard): guarded-expression temps, the loop counters, and the three
#: sinks' emission/lookup statements.  Expression *text* is not pinned —
#: names and node kinds are already constrained, and semantic drift is
#: the translation validator's lane (as for EVP).
_PIPE_STMT_SHAPES = [
    re.compile(p)
    for p in (
        r"t\d+ = .+",
        r"_np \+= 1",
        r"_nc \+= len\(_cands\)",
        r"_append\(\[.*\]\)",
        r"_append\(row \+ _b\)",
        r"_append\(row \+ _PAD\)",
        r"_cands = _get\(\(.+\), \(\)\)(?: if .+ else \(\))?",
        r"row = \[.*\]",
        r"_k = \(.+\)",
        r"_st = groups\.get\(_k\)",
        r"_st = make_states\(\)",
        r"groups\[_k\] = _st",
        r"_st\[\d+\]\.update\(.+\)",
    )
]

#: If-tests allowed inside the loop beyond reject-and-continue: CASE arm
#: selection, NULL guards, new-group detection, and candidate presence.
_PIPE_IF_TEST = re.compile(
    r"t\d+ is True|.+ is not None|_st is None|_cands|not _cands"
)


def _lint_pipe_stmt(stmt: ast.stmt, findings: list[str]) -> None:
    """One statement of the batch-loop body (guard already consumed)."""
    if isinstance(stmt, ast.For):
        if not (
            isinstance(stmt.target, ast.Name)
            and stmt.target.id == "_b"
            and isinstance(stmt.iter, ast.Name)
            and stmt.iter.id == "_cands"
            and not stmt.orelse
        ):
            findings.append(
                f"PIPE inner loop must be 'for _b in _cands': "
                f"{ast.unparse(stmt)!r}"
            )
        for inner in stmt.body:
            _lint_pipe_stmt(inner, findings)
        return
    if isinstance(stmt, ast.If):
        rejects = (
            len(stmt.body) == 1
            and isinstance(stmt.body[0], ast.Continue)
            and not stmt.orelse
        )
        if rejects:
            return  # qualification / empty-candidate rejection
        if not _PIPE_IF_TEST.fullmatch(ast.unparse(stmt.test)):
            findings.append(
                f"PIPE branch test not allowed: {ast.unparse(stmt.test)!r}"
            )
        for inner in stmt.body + stmt.orelse:
            _lint_pipe_stmt(inner, findings)
        return
    if isinstance(stmt, ast.Continue):
        return
    text = ast.unparse(stmt)
    if not any(shape.fullmatch(text) for shape in _PIPE_STMT_SHAPES):
        findings.append(f"PIPE statement has no allowed shape: {text!r}")


def _lint_pipe_guard(stmt: ast.If, findings: list[str]) -> None:
    """The per-tuple NULL guard: slow-path escape, else inlined deform."""
    body = stmt.body
    if not body or ast.unparse(body[0]) != "_r = _slow(raw, sections)":
        findings.append(
            "PIPE NULL-guard slow path must start with "
            "'_r = _slow(raw, sections)'"
        )
        return
    for inner in body[1:]:
        text = ast.unparse(inner)
        if not _PIPE_SLOW_SHAPE.fullmatch(text):
            findings.append(
                f"PIPE slow-path statement has no allowed shape: {text!r}"
            )
    if not stmt.orelse:
        findings.append("PIPE NULL guard has no fast-path deform branch")
    _match_shapes(stmt.orelse, _PIPE_DEFORM_SHAPES, findings, "PIPE deform")


def lint_pipeline(source: str, name: str, sink: str) -> list[str]:
    """Lint one generated pipeline routine against the fused-loop grammar."""
    findings: list[str] = []
    if sink not in _PIPE_PARAMS:
        return [f"unknown pipeline sink {sink!r}"]
    fn = _parse_routine(source, name, _PIPE_PARAMS[sink], findings)
    if fn is None:
        return findings
    for node in ast.walk(fn):
        if isinstance(node, _PIPE_BANNED):
            findings.append(
                f"banned construct {type(node).__name__} in pipeline body"
            )
        elif isinstance(node, ast.FunctionDef) and node is not fn:
            findings.append("nested function definition in pipeline body")
    _check_names(fn, _PIPE_NAMES, findings, methods=_PIPE_METHODS)

    body = list(fn.body)
    if body and _is_docstring(body[0]):
        body = body[1:]

    loops = [s for s in body if isinstance(s, ast.For)]
    if len(loops) != 1:
        findings.append(
            f"pipeline must have exactly one batch loop, found {len(loops)}"
        )
        return findings
    loop = loops[0]
    if not (
        isinstance(loop.target, ast.Name)
        and loop.target.id == "raw"
        and isinstance(loop.iter, ast.Name)
        and loop.iter.id == "batch"
        and not loop.orelse
    ):
        findings.append("batch loop must be exactly 'for raw in batch:'")

    _match_shapes(
        body[: body.index(loop)],
        _PIPE_PROLOGUE_SHAPES,
        findings,
        "PIPE prologue",
    )

    epilogue = body[body.index(loop) + 1 :]
    expected_charge = _PIPE_CHARGE[sink].format(name=name)
    if not epilogue or ast.unparse(epilogue[0]) != expected_charge:
        got = ast.unparse(epilogue[0]) if epilogue else "<missing>"
        findings.append(
            f"statement after the batch loop must be {expected_charge!r}, "
            f"got {got!r}"
        )
    returns = [n for n in ast.walk(fn) if isinstance(n, ast.Return)]
    if sink == "agg":
        if len(epilogue) != 1:
            findings.append(
                "agg pipeline must end at the batch charge "
                f"({len(epilogue)} statements after the loop)"
            )
        if returns:
            findings.append("agg pipelines mutate groups and must not return")
    else:
        if len(epilogue) != 2 or ast.unparse(epilogue[-1]) != "return out":
            findings.append("pipeline must end with 'return out'")
        if len(returns) != 1:
            findings.append(
                f"exactly one return expected, found {len(returns)}"
            )

    loop_body = list(loop.body)
    if (
        loop_body
        and isinstance(loop_body[0], ast.If)
        and _PIPE_GUARD_TEST.fullmatch(ast.unparse(loop_body[0].test))
    ):
        _lint_pipe_guard(loop_body.pop(0), findings)
    for stmt in loop_body:
        _lint_pipe_stmt(stmt, findings)
    return findings


# -- VEC ---------------------------------------------------------------------

#: Vector kernels are whole-column programs: loops are allowed only for
#: the sink epilogues (bucket build / finalize / probe emission), and
#: comprehensions carry the object-lane and reduction work, so the
#: pipeline bans are relaxed accordingly.  As with EVP, expression text
#: is not pinned — names, loop shapes, and the charge line are; semantic
#: drift is the translation validator's lane.
_VEC_BANNED: tuple = tuple(
    node
    for node in _BANNED_NODES
    if node
    not in (ast.For, ast.ListComp, ast.SetComp, ast.GeneratorExp)
)

_VEC_PARAMS = {
    "rows": ("cols", "nulls", "n"),
    "probe": ("cols", "nulls", "n", "table"),
    "agg": ("cols", "nulls", "n"),
}

_VEC_CHARGE = "_charge('{name}', _C0 + _C1 * n + _C2 * _m)"

_VEC_NAMES = re.compile(
    r"t\d+|_K\d+|_E\d+|_C[0-2]|cols|nulls|n|table|out|_np|_obj|_zip_rows"
    r"|_materialize|_div|_idx|_m|_rows|_r|_b|_k|_ix|_i|_vals|_row|_buckets"
    r"|_append|_get|_cands|_charge|_PAD|_NOSEL|len|range|sum|min|max|list|v"
)

_VEC_METHODS = frozenset(
    {"nonzero", "fromiter", "bool_", "items", "append", "get", "evaluate"}
)

#: The only loops a kernel may contain, as (target, iterable) texts.
_VEC_LOOPS = (
    ("_i", "range(_m)"),          # agg bucket build
    ("(_k, _ix)", "_buckets.items()"),   # agg finalize
    ("_r", "_rows"),              # probe row walk
    ("_b", "_cands"),             # probe candidate emission
)


def lint_vector(source: str, name: str, sink: str) -> list[str]:
    """Lint one generated vector kernel against the columnar grammar."""
    findings: list[str] = []
    if sink not in _VEC_PARAMS:
        return [f"unknown vector sink {sink!r}"]
    fn = _parse_routine(source, name, _VEC_PARAMS[sink], findings)
    if fn is None:
        return findings
    for node in ast.walk(fn):
        if isinstance(node, _VEC_BANNED):
            findings.append(
                f"banned construct {type(node).__name__} in vector kernel"
            )
        elif isinstance(node, ast.FunctionDef) and node is not fn:
            findings.append("nested function definition in vector kernel")
    _check_names(fn, _VEC_NAMES, findings, methods=_VEC_METHODS)

    # Loops only in the closed sink-epilogue set.
    for node in ast.walk(fn):
        if isinstance(node, ast.For):
            pair = (ast.unparse(node.target), ast.unparse(node.iter))
            if pair not in _VEC_LOOPS or node.orelse:
                findings.append(
                    f"vector loop not allowed: 'for {pair[0]} in {pair[1]}'"
                )

    # Chunk arrays may only be read at constant attribute numbers.
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in ("cols", "nulls")
            and not (
                isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, int)
            )
        ):
            findings.append(
                f"chunk index must be a constant int: {ast.unparse(node)!r}"
            )

    body = list(fn.body)
    if body and _is_docstring(body[0]):
        body = body[1:]
    if len(body) < 3:
        findings.append("VEC body too short to be a kernel")
        return findings
    expected_charge = _VEC_CHARGE.format(name=name)
    if ast.unparse(body[-2]) != expected_charge:
        findings.append(
            f"second-to-last statement must be {expected_charge!r}, got "
            f"{ast.unparse(body[-2])!r}"
        )
    if ast.unparse(body[-1]) != "return out":
        findings.append("vector kernel must end with 'return out'")
    returns = [node for node in ast.walk(fn) if isinstance(node, ast.Return)]
    if len(returns) != 1:
        findings.append(
            f"exactly one return expected, found {len(returns)}"
        )
    return findings


# -- IDX ---------------------------------------------------------------------

_IDX_NAMES = re.compile(r"values|_charge|_COST")


def lint_idx(source: str, name: str) -> list[str]:
    """Lint one generated IDX key extractor."""
    findings: list[str] = []
    fn = _parse_routine(source, name, ("values",), findings)
    if fn is None:
        return findings
    _check_banned(fn, findings)
    _check_names(fn, _IDX_NAMES, findings)

    body = list(fn.body)
    if body and _is_docstring(body[0]):
        body = body[1:]
    if len(body) != 2:
        findings.append(
            f"IDX body must be charge + return, got {len(body)} statements"
        )
        return findings
    expected_charge = f"_charge('{name}', _COST)"
    if ast.unparse(body[0]) != expected_charge:
        findings.append(
            f"first statement must be {expected_charge!r}, got "
            f"{ast.unparse(body[0])!r}"
        )
    ret = body[1]
    if not (isinstance(ret, ast.Return) and isinstance(ret.value, ast.Tuple)):
        findings.append("IDX must end with a tuple return")
        return findings
    for element in ret.value.elts:
        if not (
            isinstance(element, ast.Subscript)
            and isinstance(element.value, ast.Name)
            and element.value.id == "values"
            and isinstance(element.slice, ast.Constant)
            and isinstance(element.slice.value, int)
        ):
            findings.append(
                f"IDX key element must be values[<constant int>]: "
                f"{ast.unparse(element)!r}"
            )
    return findings
