"""Hive Gate server: sessions, isolation, WAL group commit, protocol.

The concurrency contract under test: an 8-ish-client mixed workload
must (a) never error, (b) never observe a torn write, and (c) leave a
schedule whose single-threaded replay reproduces every statement's
fingerprint — the serialized-oracle equivalence the server's latches
and sequencing exist to provide.  Around that core: latch semantics,
admission control, durability degradation, torn-tail recovery, and the
socket protocol.
"""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.bees.settings import BeeSettings
from repro.db import Database
from repro.resilience.serverlane import (
    PAIRS,
    _expected_rows,
    _flip_sql,
    _table_rows,
    build_gate_db,
)
from repro.server.core import (
    HiveServer,
    ServerOverloadedError,
    SessionClosedError,
    SnapshotViolation,
    classify_statement,
)
from repro.server.locks import HiveLocks, LockTimeout, RWLatch
from repro.server.oracle import replay_schedule, statement_fingerprint
from repro.server.protocol import HiveClient, HiveListener, RemoteStatementError
from repro.server.wal import DataWAL, GroupCommitter, recover_database
from repro.sql.parser import parse
from repro.sql.session import SQLResult


@pytest.fixture()
def gate():
    db = build_gate_db()
    server = HiveServer(db)
    yield db, server
    db.close()


# -- sessions and statement plumbing -----------------------------------------


class TestSessions:
    def test_session_lifecycle_and_stats(self, gate):
        db, server = gate
        with server.session() as session:
            assert session.sql("SELECT COUNT(*) FROM gate_ledger").rows \
                == [(2 * PAIRS,)]
            assert session.sql(_flip_sql(0)).status == "UPDATE 2"
            session.sql(
                "CREATE TABLE gate_aux (k int NOT NULL, v int NOT NULL)"
            )
        stats = server.stats_snapshot()
        assert stats["sessions_opened"] == stats["sessions_closed"] == 1
        assert stats["reads"] == stats["writes"] == stats["ddl"] == 1
        assert stats["errors"] == 0
        assert stats["durability"] == "none"

    def test_closed_session_refuses_statements(self, gate):
        _db, server = gate
        session = server.session()
        session.close()
        session.close()  # idempotent
        with pytest.raises(SessionClosedError):
            session.sql("SELECT 1 FROM gate_ledger")

    def test_statement_errors_are_counted_not_fatal(self, gate):
        _db, server = gate
        with server.session() as session:
            with pytest.raises(Exception):
                session.sql("SELECT nope FROM missing_table")
            assert session.sql(_flip_sql(1)).status == "UPDATE 2"
        assert server.stats.errors == 1
        assert server.stats.writes == 1

    def test_classify_statement_kinds(self):
        read, rels = classify_statement(
            parse("SELECT a.x FROM alpha a JOIN beta b ON a.x = b.x")
        )
        assert read == "read" and rels == ("alpha", "beta")
        kind, rels = classify_statement(
            parse("UPDATE alpha SET x = 1 WHERE x = 2")
        )
        assert kind == "write" and rels == ("alpha",)
        kind, rels = classify_statement(
            parse("CREATE TABLE gamma (x int NOT NULL)")
        )
        assert kind == "ddl" and rels == ("gamma",)

    def test_database_context_manager_shuts_server_down(self):
        with Database(BeeSettings.future().enabling(parallel=False)) as db:
            server = HiveServer(db)
            session = server.session()
        assert session.closed
        assert db._server is None
        db.close()  # idempotent after __exit__

    def test_stats_server_section_is_deep_copied(self, gate):
        db, server = gate
        snapshot = db.stats()["server"]
        snapshot["statements"] = 999
        snapshot["group_commit"]["batches"] = 999
        assert server.stats.statements == 0
        assert db.stats()["server"]["statements"] == 0


# -- snapshot isolation and latches ------------------------------------------


class TestIsolation:
    def test_monotonicity_violation_detected(self, gate):
        _db, server = gate
        with server.session() as session:
            session.sql("SELECT SUM(qty) FROM gate_ledger")
            (uid, version), = [
                session._last_versions["gate_ledger"]
            ]  # noqa: asserts single pin tuple unpack
            session._last_versions["gate_ledger"] = (uid, version + 10)
            with pytest.raises(SnapshotViolation) as exc:
                session.sql("SELECT SUM(qty) FROM gate_ledger")
            assert exc.value.kind == "monotonicity"
        assert server.stats.snapshot_violations == 1

    def test_lock_timeout_is_a_clean_statement_error(self):
        db = build_gate_db()
        server = HiveServer(db, lock_timeout=0.05)
        latch = db.locks.relation_lock.latch("gate_ledger")
        latch.acquire_write()
        try:
            with server.session() as session:
                with pytest.raises(LockTimeout):
                    session.sql(_flip_sql(0))
        finally:
            latch.release_write()
        with server.session() as session:
            assert session.sql(_flip_sql(0)).status == "UPDATE 2"
        assert server.stats.lock_timeouts == 1
        db.close()

    def test_rwlatch_writer_preference(self):
        latch = RWLatch("t")
        latch.acquire_read()
        grabbed = []

        def writer():
            latch.acquire_write()
            grabbed.append("w")
            latch.release_write()

        thread = threading.Thread(target=writer)
        thread.start()
        # A waiting writer blocks NEW readers even while the old one
        # still holds the latch.
        while not latch._writers_waiting:
            pass
        with pytest.raises(LockTimeout):
            latch.acquire_read(timeout=0.01)
        latch.release_read()
        thread.join(timeout=5.0)
        assert grabbed == ["w"]

    def test_hive_locks_cover_every_registry_guard(self):
        assert HiveLocks().verify() == []


# -- the concurrency contract ------------------------------------------------


class TestConcurrentEquivalence:
    def test_threaded_mixed_workload_replays_serially(self):
        db = build_gate_db()
        server = HiveServer(db)
        errors: list[str] = []

        def reader():
            with server.session() as session:
                for _ in range(12):
                    total = session.sql(
                        "SELECT SUM(qty) FROM gate_ledger"
                    ).rows[0][0]
                    if total != 0:
                        errors.append(f"torn sum {total}")

        def writer(pair: int):
            with server.session() as session:
                for _ in range(8):
                    session.sql(_flip_sql(pair))

        threads = [threading.Thread(target=reader) for _ in range(4)] + [
            threading.Thread(target=writer, args=(p,)) for p in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert errors == []
        assert server.stats.errors == 0
        assert server.stats.snapshot_violations == 0
        assert server.stats.statements == 4 * 12 + 4 * 8
        # Every writer ran an even flip count: back to the loaded state.
        assert _table_rows(db) == _expected_rows([])
        replay = replay_schedule(server.schedule, build_gate_db())
        assert replay["ok"], replay["divergences"]
        assert replay["replayed"] == server.stats.statements
        db.close()

    def test_replay_flags_divergence(self, gate):
        import dataclasses

        db, server = gate
        with server.session() as session:
            session.sql(_flip_sql(0))
            session.sql("SELECT SUM(qty) FROM gate_ledger")
        schedule = list(server.schedule)
        schedule[-1] = dataclasses.replace(
            schedule[-1], fingerprint="SELECT 1|bogus"
        )
        replay = replay_schedule(schedule, build_gate_db())
        assert not replay["ok"]
        assert len(replay["divergences"]) == 1

    def test_fingerprint_rounds_float_noise(self):
        a = SQLResult("SELECT 1", [(0.1 + 0.2,)], ["x"])
        b = SQLResult("SELECT 1", [(0.3,)], ["x"])
        assert statement_fingerprint(a) == statement_fingerprint(b)
        c = SQLResult("SELECT 1", [(0.31,)], ["x"])
        assert statement_fingerprint(a) != statement_fingerprint(c)


# -- admission control -------------------------------------------------------


class TestAdmission:
    def test_slot_exhaustion_refuses_after_timeout(self):
        db = build_gate_db()
        server = HiveServer(
            db, max_concurrent=1, admission_timeout=0.05
        )
        server._admit()  # occupy the only slot
        try:
            with server.session() as session:
                with pytest.raises(ServerOverloadedError):
                    session.sql("SELECT SUM(qty) FROM gate_ledger")
        finally:
            server._release()
        assert server.stats.refused == 1
        with server.session() as session:
            session.sql("SELECT SUM(qty) FROM gate_ledger")
        db.close()

    def test_queue_pressure_sheds_reads_to_serial(self):
        db = build_gate_db()
        server = HiveServer(db, shed_threshold=0)
        with server.session() as session:
            assert session.sql(
                "SELECT SUM(qty) FROM gate_ledger"
            ).rows == [(0,)]
        # parallel is disabled in the lane settings, so the shed is a
        # no-op downgrade — but admission still reports the pressure.
        assert server.stats.queue_high_water == 1
        db.close()


# -- durability --------------------------------------------------------------


class TestDurability:
    def test_group_commit_batches_concurrent_writers(self, tmp_path):
        wal = DataWAL(tmp_path / "group.wal")
        committer = GroupCommitter(wal)
        start = threading.Barrier(8)

        def commit(i: int):
            start.wait()
            committer.commit({"op": "stmt", "seq": i, "session": i,
                              "sql": f"s{i}"})

        threads = [
            threading.Thread(target=commit, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10.0)
        stats = committer.stats()
        assert stats["records"] == 8
        assert stats["fsyncs"] == stats["batches"]
        assert stats["fsyncs"] <= 8
        assert len(wal.committed_statements()) == 8

    def test_wal_round_trip_and_recovery(self, tmp_path):
        wal_path = tmp_path / "gate.wal"
        db = build_gate_db()
        server = HiveServer(db, wal_path)
        with server.session() as session:
            session.sql(_flip_sql(0))
            session.sql(_flip_sql(1))
            session.sql(_flip_sql(0))
        assert server.durability == "wal"
        server.shutdown()
        db.close()
        recovered, applied = recover_database(wal_path, build_gate_db)
        assert applied == 3
        assert _table_rows(recovered) == _expected_rows([1])
        recovered.close()

    def test_torn_tail_recovers_committed_prefix(self, tmp_path):
        wal_path = tmp_path / "gate.wal"
        db = build_gate_db()
        server = HiveServer(db, wal_path)
        with server.session() as session:
            for pair in (0, 1, 2):
                session.sql(_flip_sql(pair))
        server.shutdown()
        db.close()
        text = wal_path.read_text()
        # Cut inside the final group's COMMIT marker.
        wal_path.write_text(text[: len(text) - 4])
        recovered, applied = recover_database(wal_path, build_gate_db)
        assert applied == 2
        assert _table_rows(recovered) == _expected_rows([0, 1])
        assert recovered.resilience.wal_truncations == 1
        recovered.close()

    def test_fsync_failure_degrades_but_keeps_serving(self, tmp_path):
        db = build_gate_db()
        server = HiveServer(db, tmp_path / "gate.wal")
        with server.session() as session:
            session.sql(_flip_sql(0))
            with server.locks.wal_lock:
                server.wal._chaos_fsync_fail = 1
            assert session.sql(_flip_sql(1)).status == "UPDATE 2"
            assert server.durability == "degraded"
            assert session.sql(_flip_sql(2)).status == "UPDATE 2"
        assert server.stats.wal_failures == 1
        assert any(
            e["event"] == "wal_fsync_failed"
            for e in db.resilience.report()["events"]
        )
        db.close()


# -- the wire protocol -------------------------------------------------------


class TestProtocol:
    def test_round_trip_error_recovery_and_disconnect(self, gate):
        db, server = gate
        listener = HiveListener(server)
        try:
            with HiveClient(listener.address) as client:
                result = client.sql("SELECT SUM(qty) FROM gate_ledger")
                assert result.rows == [(0,)]
                with pytest.raises(RemoteStatementError) as exc:
                    client.sql("SELECT x FROM nowhere")
                assert exc.value.kind
                # The connection survives a statement error.
                assert client.sql(_flip_sql(0)).status == "UPDATE 2"
            deadline = 100
            while server.sessions_active and deadline:
                deadline -= 1
                threading.Event().wait(0.01)
            assert server.sessions_active == 0
        finally:
            listener.close()

    def test_malformed_request_is_a_statement_error(self, gate):
        _db, server = gate
        listener = HiveListener(server)
        try:
            conn = socket.create_connection(listener.address)
            with conn, conn.makefile("r", encoding="utf-8") as reader:
                conn.sendall(b"this is not json\n")
                response = json.loads(reader.readline())
                assert response["ok"] is False
                conn.sendall(
                    (json.dumps({"sql": _flip_sql(3)}) + "\n").encode()
                )
                assert json.loads(reader.readline())["ok"] is True
        finally:
            listener.close()
