"""Swarmcheck findings and the sharing-certification report.

A *finding* is one violated sharing-safety property, attributed to the
pass that proved it (``purity``, ``shared-state``, ``escape``,
``locks``).  The :class:`SwarmReport` aggregates the four passes plus
the injection self-test into the machine-readable JSON written under
``results/swarmcheck/`` — the contract the morsel-parallel and server
work consume: a bee corpus proven pure, a closed registry of
shared-mutable state (each entry naming its guard and invalidation
epoch), chunk arrays proven immutable after caching, and — since the
Hive Gate server — every declared guard materialized as a live lock
that guarded writes actually hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Pass names, in the order the CLI runs them.
PASSES = ("purity", "shared-state", "escape", "locks")


@dataclass(frozen=True)
class Finding:
    """One violated sharing-safety property."""

    pass_name: str
    subject: str        # routine name, Class.attr site, or module path
    detail: str
    module: str = ""
    lineno: int = 0

    def __str__(self) -> str:
        where = f" ({self.module}:{self.lineno})" if self.module else ""
        return f"[{self.pass_name}] {self.subject}{where}: {self.detail}"

    def to_dict(self) -> dict:
        return {
            "pass": self.pass_name,
            "subject": self.subject,
            "detail": self.detail,
            "module": self.module,
            "line": self.lineno,
        }


@dataclass
class SwarmReport:
    """One full ``python -m repro.swarmcheck`` run."""

    seed: int
    statements: int
    findings: list = field(default_factory=list)        # Finding
    routines_checked: dict = field(default_factory=dict)  # kind -> count
    sites: dict = field(default_factory=dict)   # classification -> count
    shared_state: list = field(default_factory=list)  # registry entry dicts
    unused_registry: list = field(default_factory=list)  # "Class.attr"
    escape: dict = field(default_factory=dict)  # scanned/kernels/frozen
    locks: dict = field(default_factory=dict)   # guards/writes/latch sites
    selftest: dict = field(default_factory=dict)  # case -> caught
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings and all(self.selftest.values())

    def add(self, finding: Finding) -> None:
        self.findings.append(finding)

    def by_pass(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.pass_name] = counts.get(finding.pass_name, 0) + 1
        return counts

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "statements": self.statements,
            "elapsed_seconds": round(self.elapsed, 3),
            "routines_checked": dict(self.routines_checked),
            "sites": dict(self.sites),
            "shared_state": list(self.shared_state),
            "unused_registry": list(self.unused_registry),
            "escape": dict(self.escape),
            "locks": dict(self.locks),
            "findings_by_pass": self.by_pass(),
            "findings": [finding.to_dict() for finding in self.findings],
            "selftest": dict(self.selftest),
            "ok": self.ok,
        }

    def summary(self) -> str:
        routines = ", ".join(
            f"{kind}={n}" for kind, n in sorted(self.routines_checked.items())
        )
        sites = ", ".join(
            f"{cls}={n}" for cls, n in sorted(self.sites.items())
        )
        lines = [
            f"swarmcheck seed={self.seed}: "
            f"{sum(self.routines_checked.values())} routines ({routines}) "
            f"proven pure over {self.statements} corpus statements "
            f"in {self.elapsed:.1f}s",
            f"write sites: {sites}; "
            f"{len(self.shared_state)} declared shared-state entries",
        ]
        if self.escape:
            lines.append(
                "escape: "
                f"{self.escape.get('modules_scanned', 0)} modules, "
                f"{self.escape.get('kernels_checked', 0)} kernels, "
                f"{self.escape.get('arrays_frozen', 0)} cached arrays frozen"
            )
        if self.locks:
            lines.append(
                "locks: "
                f"{len(self.locks.get('materialized', []))} guards "
                "materialized, "
                f"{self.locks.get('guarded_writes_checked', 0)} guarded "
                "writes checked, "
                f"{self.locks.get('latched_run_sites', 0)} latched "
                "execution sites"
            )
        if self.selftest:
            verdicts = ", ".join(
                f"{case}={'caught' if ok else 'MISSED'}"
                for case, ok in sorted(self.selftest.items())
            )
            lines.append(f"injection self-test: {verdicts}")
        if self.findings:
            lines.append(f"{len(self.findings)} FINDING(S):")
            lines.extend(f"  {finding}" for finding in self.findings)
        else:
            lines.append("all passes clean")
        return "\n".join(lines)
