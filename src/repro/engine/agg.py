"""Aggregation: hash aggregation with optional grouping.

Output rows are group-key values followed by aggregate results, in the
order given.  A grand aggregate (no GROUP BY) emits exactly one row even
for empty input, per SQL.  Aggregation is deliberately *not*
micro-specialized: the paper names it as remaining future work and points
at it to explain the lower improvements of q1/q9/q16/q18.
"""

from __future__ import annotations

from typing import Iterator

from repro.cost import constants as C
from repro.engine.aggregates import AggSpec
from repro.engine.expr import Expr, bind, static_nullable
from repro.engine.nodes import ExecContext, PlanNode, Row, output_nullability

_COUNT_STAR = object()


class HashAgg(PlanNode):
    """Hash-based grouping and aggregation."""

    def __init__(
        self,
        child: PlanNode,
        group_by: list[tuple[Expr, str]],
        aggs: list[AggSpec],
    ) -> None:
        self.child = child
        self.group_exprs = [bind(expr, child.columns) for expr, _n in group_by]
        self.group_names = [name for _e, name in group_by]
        self.aggs = aggs
        for spec in aggs:
            if spec.arg is not None:
                bind(spec.arg, child.columns)
        self.columns = self.group_names + [spec.name for spec in aggs]
        # Nullability: count never returns NULL; sum/avg/min/max do on an
        # empty (grand) input, and within a group only when the argument
        # itself can be NULL (an all-NULL group yields NULL).
        child_nullable = output_nullability(child)
        grand = not self.group_exprs
        self.nullable = [
            static_nullable(expr, child_nullable) for expr in self.group_exprs
        ]
        for spec in aggs:
            if spec.func == "count":
                self.nullable.append(False)
            elif grand or spec.arg is None:
                self.nullable.append(True)
            else:
                self.nullable.append(static_nullable(spec.arg, child_nullable))

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)

    def node_label(self) -> str:
        aggs = ", ".join(spec.name for spec in self.aggs)
        return f"HashAgg(by {self.group_names}; {aggs})"

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        charge = ctx.ledger.charge
        group_exprs = self.group_exprs
        aggs = self.aggs
        key_cost = sum(expr.generic_cost for expr in group_exprs)
        # Experimental AGG bee routine (the paper's Section VIII future
        # work): the transition loop is generated with argument
        # expressions constant-folded; it charges its own specialized cost.
        agg_routine = None
        agg_fn = None
        if getattr(ctx.settings, "agg", False) and aggs:
            shield = ctx.shield
            if shield is None:
                agg_routine = ctx.bees.get_agg(tuple(aggs))
                agg_fn = agg_routine.fn
            else:
                entry = shield.agg(ctx, tuple(aggs))
                if entry is not None:
                    agg_routine, agg_bee_key = entry
                    agg_fn = shield.maybe_timed(
                        agg_routine.fn, "agg", agg_bee_key
                    )
        if agg_routine is not None:
            per_row = C.NODE_OVERHEAD + C.AGG_HASH_LOOKUP + key_cost
        else:
            arg_cost = sum(
                spec.arg.generic_cost if spec.arg is not None else 0
                for spec in aggs
            )
            per_row = (
                C.NODE_OVERHEAD
                + C.AGG_HASH_LOOKUP
                + C.AGG_TRANSITION * len(aggs)
                + arg_cost
                + key_cost
            )
        groups: dict[tuple, list] = {}
        grand = not group_exprs
        if grand:
            groups[()] = [spec.make_state() for spec in aggs]
        for row in self.child.rows(ctx):
            charge(per_row)
            key = () if grand else tuple(e.evaluate(row) for e in group_exprs)
            states = groups.get(key)
            if states is None:
                states = [spec.make_state() for spec in aggs]
                groups[key] = states
            if agg_fn is not None:
                agg_fn(row, states)
                continue
            for spec, state in zip(aggs, states):
                if spec.arg is None:
                    state.update(_COUNT_STAR)
                else:
                    value = spec.arg.evaluate(row)
                    if value is not None or spec.func != "count":
                        state.update(value)
        for key, states in groups.items():
            charge(C.NODE_OVERHEAD)
            yield list(key) + [state.result() for state in states]
