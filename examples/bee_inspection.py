#!/usr/bin/env python3
"""Inside the bee module: generated code, caching, placement, collection.

Walks through the lifecycle the paper's Section IV architecture describes:
relation-bee creation at schema definition, query-bee instantiation at
query preparation, tuple bees during inserts, the on-disk bee cache, the
placement optimizer, and the collector.

Run:  python examples/bee_inspection.py
"""

import tempfile

from repro import BeeSettings, Database
from repro.engine.expr import And, Between, Cmp, Col, Const, Like, bind
from repro.workloads.tpch.loader import create_tables
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import generate_rows


def main() -> None:
    with tempfile.TemporaryDirectory() as bee_cache_dir:
        db = Database(BeeSettings.all_bees(), bee_cache_dir=bee_cache_dir)
        create_tables(db)
        rows = generate_rows(TPCHGenerator(scale_factor=0.001))
        db.copy_from("lineitem", rows["lineitem"])

        print("=" * 70)
        print("1. RELATION BEE (created at schema-definition time)")
        print("=" * 70)
        bee = db.bee_module.relation_bee("lineitem")
        print(f"routines: {[r.name for r in bee.routines]}")
        print(f"tuple-bee data sections: {len(bee.data_sections)} "
              f"(annotated attrs: {list(bee.layout.bee_attrs)})")
        print("\n--- generated GCL source (Listing 2 analog) ---")
        print(bee.gcl.source)

        print("=" * 70)
        print("2. QUERY BEE (EVP cloned at query preparation)")
        print("=" * 70)
        predicate = bind(
            And(
                Between(Col("l_shipdate"), 8766, 9131),
                Cmp("<", Col("l_quantity"), Const(24.0)),
                Like(Col("l_comment"), "%furiously%"),
            ),
            db.relation("lineitem").schema.column_names(),
        )
        evp = db.bee_module.get_evp(predicate, assume_not_null=True)
        print(f"--- generated EVP source ({evp.cost} instr/eval vs "
              f"{predicate.generic_cost} generic) ---")
        print(evp.source)

        evj = db.bee_module.get_evj("semi", 2)
        print("--- EVJ pre-compiled template (cloned, not compiled) ---")
        print(evj.source)

        print("=" * 70)
        print("3. TUPLE BEES (data sections after the load)")
        print("=" * 70)
        for bee_id, section in enumerate(bee.sections_list()[:5]):
            print(f"  beeID {bee_id}: {section}")
        print(f"  ... {len(bee.data_sections)} sections total")

        print()
        print("=" * 70)
        print("4. BEE CACHE PERSISTENCE (survives server restart)")
        print("=" * 70)
        written = db.bee_module.flush_to_disk()
        print(f"flushed {written} relation bees to {bee_cache_dir}")
        fresh = Database(BeeSettings.all_bees(), bee_cache_dir=bee_cache_dir)
        create_tables(fresh)
        layouts = {
            name: fresh.relation(name).layout for name in fresh.table_names()
        }
        loaded = fresh.bee_module.load_from_disk(layouts)
        print(f"fresh server loaded {loaded} bees from the on-disk cache")

        print()
        print("=" * 70)
        print("5. PLACEMENT OPTIMIZER (simulated 32KB L1-I cache)")
        print("=" * 70)
        placement = db.bee_module.placement_report()
        for label in ("naive", "optimized"):
            entry = placement[label]
            print(f"  {label:9s}: added conflict {entry['added_conflict']:.2f}, "
                  f"miss-rate delta {entry['miss_rate_delta']:.5f}")
        print("  (the paper found this effect ~trivial; so does the model)")

        print()
        print("=" * 70)
        print("6. BEE COLLECTOR (DROP TABLE kills the bees)")
        print("=" * 70)
        before = db.bee_module.statistics()
        db.drop_table("lineitem")
        after = db.bee_module.statistics()
        print(f"relation bees: {before['relation_bees']} -> "
              f"{after['relation_bees']}")
        print(f"collected so far: {after['collected_relation_bees']}")


if __name__ == "__main__":
    main()
