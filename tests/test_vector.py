"""Vector bees: fusion promotion, execution equality, cache lifecycle.

The vector fuser must promote exactly the drivers the pipeline fuser
produces (keeping each pipeline driver as its fallback anchor), the
columnar kernels must return byte-identical results to the interpreter,
the chunk cache must serve warm and die on DML/DDL, and the memoized
kernels must be evicted with their anchors on schema change.
"""

from __future__ import annotations

import pytest

from repro.bees.pipeline import PipelineScan
from repro.bees.settings import BeeSettings
from repro.bees.vector import (
    VectorAgg,
    VectorJoin,
    VectorScan,
    fuse_vector_plan,
)
from repro.db import Database
from repro.engine.nodes import Limit, Sort
from repro.sql.parser import parse
from repro.sql.planner import plan_select


def _plan(db, sql: str):
    return plan_select(db, parse(sql))


def _fused(db, sql: str):
    return fuse_vector_plan(_plan(db, sql), db)


@pytest.fixture
def db():
    db = Database(BeeSettings.vectorized())
    db.sql(
        "CREATE TABLE items (id int NOT NULL, kind char(3) NOT NULL, "
        "qty int, price float NOT NULL, note varchar(20), "
        "ANNOTATE (kind))"
    )
    db.sql(
        "INSERT INTO items VALUES "
        "(1, 'aaa', 5, 10.0, 'first'), "
        "(2, 'bbb', NULL, 20.0, NULL), "
        "(3, 'aaa', 7, 30.0, 'third'), "
        "(4, 'ccc', 2, 40.0, 'fourth'), "
        "(5, 'bbb', 9, 50.0, NULL)"
    )
    db.sql(
        "CREATE TABLE kinds (kind char(3) NOT NULL, label varchar(10) "
        "NOT NULL)"
    )
    db.sql(
        "INSERT INTO kinds VALUES ('aaa', 'alpha'), ('bbb', 'beta')"
    )
    return db


def _walk(node):
    out = [node]
    for child in getattr(node, "children", lambda: ())():
        out.extend(_walk(child))
    for attr in ("child", "probe", "build", "anchor"):
        sub = getattr(node, attr, None)
        if sub is not None and sub not in out:
            out.extend(_walk(sub))
    return out


class TestVectorPromotion:
    def test_filtered_projection_promotes_to_vector_scan(self, db):
        fused = _fused(
            db, "SELECT id, price FROM items WHERE price > 15.0"
        )
        assert isinstance(fused, VectorScan)
        # The pipeline driver rides along as the degradation anchor,
        # sharing the very same spec the kernel was compiled from.
        assert isinstance(fused.anchor, PipelineScan)
        assert fused.spec is fused.anchor.spec

    def test_aggregate_promotes_to_vector_agg(self, db):
        fused = _fused(
            db,
            "SELECT kind, SUM(price), COUNT(*) FROM items "
            "WHERE id < 5 GROUP BY kind",
        )
        aggs = [n for n in _walk(fused) if isinstance(n, VectorAgg)]
        assert aggs, f"no VectorAgg in {fused.explain()}"
        assert aggs[0].spec.sink == "agg"

    def test_join_probe_promotes_to_vector_join(self, db):
        fused = _fused(
            db,
            "SELECT items.id, kinds.label FROM items "
            "JOIN kinds ON items.kind = kinds.kind",
        )
        joins = [n for n in _walk(fused) if isinstance(n, VectorJoin)]
        assert joins, f"no VectorJoin in {fused.explain()}"
        assert joins[0].spec.sink == "probe"

    def test_sort_stays_generic_above_vector_scan(self, db):
        fused = _fused(
            db, "SELECT id FROM items WHERE price > 15.0 ORDER BY id"
        )
        assert isinstance(fused, Sort)
        assert isinstance(fused.child, VectorScan)

    def test_limit_stays_generic_above_vector_scan(self, db):
        fused = _fused(db, "SELECT id FROM items LIMIT 2")
        assert isinstance(fused, Limit)
        assert isinstance(fused.child, VectorScan)

    def test_vector_language_equals_pipeline_language(self, db):
        """Anything the pipeline fuser declines, the vector fuser must
        decline too — the tier compiles the same specs, never more."""
        from repro.bees.pipeline.fusion import fuse_plan

        sql = "SELECT id FROM items WHERE price > 15.0 ORDER BY id DESC"
        pipe = fuse_plan(_plan(db, sql), db)
        vec = _fused(db, sql)
        pipe_kinds = [type(n).__name__ for n in _walk(pipe)
                      if type(n).__name__.startswith("Pipeline")]
        vec_kinds = [type(n).__name__ for n in _walk(vec)
                     if type(n).__name__.startswith("Vector")]
        assert len(pipe_kinds) == len(vec_kinds)

    def test_fusion_does_not_mutate_the_input_plan(self, db):
        plan = _plan(db, "SELECT id FROM items WHERE price > 15.0")
        before = plan.explain()
        fuse_vector_plan(plan, db)
        assert plan.explain() == before


QUERIES = [
    "SELECT id, price FROM items WHERE price > 15.0",
    "SELECT id FROM items WHERE qty > 4",  # NULL qty rows must drop
    "SELECT id, note FROM items",
    "SELECT id, price * 2 FROM items WHERE qty IS NOT NULL",
    "SELECT kind, SUM(price), COUNT(*) FROM items GROUP BY kind",
    "SELECT COUNT(qty), COUNT(*) FROM items",
    "SELECT SUM(price * 2), MIN(id) FROM items",
    "SELECT items.id, kinds.label FROM items "
    "JOIN kinds ON items.kind = kinds.kind",
    "SELECT items.id, kinds.label FROM items "
    "LEFT JOIN kinds ON items.kind = kinds.kind",
    "SELECT id FROM items WHERE kind IN (SELECT kind FROM kinds)",
    "SELECT id FROM items WHERE price > 15.0 ORDER BY id DESC",
    "SELECT id FROM items WHERE note IS NULL",
]


class TestExecutionEquality:
    @pytest.mark.parametrize("query", QUERIES)
    def test_vectors_match_interpreter(self, db, query):
        ordered = "ORDER BY" in query
        vectored = db.sql(query, vectors=True).rows
        plain = db.sql(query, vectors=False, pipelines=False).rows
        if not ordered:
            vectored = sorted(map(repr, vectored))
            plain = sorted(map(repr, plain))
        assert vectored == plain, f"vector divergence on {query!r}"

    def test_dml_between_vectorized_queries(self, db):
        query = "SELECT id FROM items WHERE price > 15.0"
        assert db.sql(query, vectors=True).rows == [(2,), (3,), (4,), (5,)]
        db.sql("DELETE FROM items WHERE id = 3")
        db.sql("INSERT INTO items VALUES (9, 'zzz', 1, 90.0, 'ninth')")
        db.sql("UPDATE items SET price = 5.0 WHERE id = 4")
        vectored = db.sql(query, vectors=True).rows
        plain = db.sql(query, vectors=False, pipelines=False).rows
        assert sorted(vectored) == sorted(plain) == [(2,), (5,), (9,)]


class TestChunkCache:
    def test_repeat_query_hits_chunk_cache(self, db):
        query = "SELECT id, price FROM items WHERE price > 15.0"
        db.sql(query, vectors=True)
        misses = db.chunk_cache.misses
        db.sql(query, vectors=True)
        assert db.chunk_cache.hits >= 1
        assert db.chunk_cache.misses == misses

    def test_dml_invalidates_cached_chunk(self, db):
        query = "SELECT id FROM items WHERE price > 15.0"
        db.sql(query, vectors=True)
        misses = db.chunk_cache.misses
        db.sql("INSERT INTO items VALUES (7, 'ddd', 3, 70.0, NULL)")
        rows = db.sql(query, vectors=True).rows
        assert db.chunk_cache.misses > misses  # version bump re-decodes
        assert sorted(rows) == [(2,), (3,), (4,), (5,), (7,)]


class TestMemoAndInvalidation:
    def test_kernels_are_memoized_and_counted(self, db):
        db.sql("SELECT id FROM items WHERE price > 15.0", vectors=True)
        stats = db.bee_module.statistics()
        assert stats["vector_routines"] >= 1

    def test_alter_evicts_vector_memo(self, db):
        db.sql("SELECT id FROM items WHERE price > 15.0", vectors=True)
        assert db.bee_module._vector_by_node
        db.catalog.alter_relation(db.relation("items").schema)
        assert not db.bee_module._vector_by_node
        rows = db.sql(
            "SELECT id FROM items WHERE price > 15.0", vectors=True
        ).rows
        assert rows == [(2,), (3,), (4,), (5,)]

    def test_drop_evicts_only_that_relations_kernels(self, db):
        db.sql("SELECT id FROM items", vectors=True)
        db.sql("SELECT kind FROM kinds", vectors=True)
        memo = db.bee_module._vector_by_node
        relations = {spec.relation for _a, spec, _r in memo.values()}
        assert relations == {"items", "kinds"}
        db.sql("DROP TABLE kinds")
        relations = {spec.relation for _a, spec, _r in memo.values()}
        assert relations == {"items"}

    def test_reannotate_then_vectorized_query(self, db):
        query = "SELECT id, kind FROM items WHERE kind = 'aaa'"
        before = db.sql(query, vectors=True).rows
        db.reannotate("items", [])
        after = db.sql(query, vectors=True).rows
        assert sorted(before) == sorted(after) == [(1, "aaa"), (3, "aaa")]


class TestCostModel:
    def test_vector_charges_less_than_pipelines_at_scale(self, db):
        # Per-chunk kernel dispatch amortizes; at a few hundred rows the
        # columnar path must already price below the per-row pipeline.
        for i in range(10, 310):
            db.sql(
                f"INSERT INTO items VALUES ({i}, 'mmm', {i % 11}, "
                f"{float(i)}, NULL)"
            )
        query = "SELECT id, price FROM items WHERE price > 15.0"
        db.sql(query, vectors=True)  # warm chunk + kernel memo
        db.sql(query, pipelines=True, vectors=False)
        vectored = db.measure(lambda: db.sql(query, vectors=True))
        piped = db.measure(
            lambda: db.sql(query, pipelines=True, vectors=False)
        )
        assert vectored.result.rows == piped.result.rows
        assert vectored.instructions < piped.instructions
