"""Hive Gate: the concurrent, fault-tolerant statement server.

:class:`HiveServer` is the multi-client front-end over one
:class:`repro.db.Database`.  Every statement gets:

* **admission control** — a bounded wait queue with backpressure: at
  most ``max_concurrent`` statements execute, at most ``queue_limit``
  wait, and past that the server *refuses* (``ServerOverloadedError``)
  rather than building unbounded latency.  Under queue pressure it
  first degrades gracefully: reads are shed from the parallel tier to
  the serial vector tier before anything is refused.
* **snapshot stability** — statement-level isolation: readers take
  shared per-relation latches, pin each relation's
  ``(HeapFile.uid, version)`` epoch, and verify the pins after the
  scan, so a statement never observes a torn write.  Writers take
  exclusive latches and serialize per relation; DDL takes the catalog
  latch exclusively.  Latches are acquired in sorted name order
  (deadlock-free) with a timeout (``LockTimeout`` → clean statement
  error, never a stuck session).
* **durability** — committed write statements are logged to the data
  WAL through the group committer (one fsync per batch); an fsync
  failure degrades durability (the server keeps serving and says so in
  ``stats()``) instead of corrupting the log.
* **a schedule** — every committed statement is recorded with its
  global sequence number and a result fingerprint, so the serialized
  oracle (:func:`repro.server.oracle.replay_schedule`) can replay the
  whole concurrent history single-threaded and assert equivalence.

Sessions (:class:`Session`) are the in-process client API; the socket
line protocol in :mod:`repro.server.protocol` wraps one session per
connection.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, fields

from repro.resilience.errors import QueryTimeout
from repro.server.locks import HiveLocks, LockTimeout
from repro.server.wal import DataWAL, GroupCommitter, WALSyncError
from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.planner import plan_select, schema_from_create
from repro.sql.session import SQLResult, _bound_expr, _row_predicate


class ServerError(Exception):
    """Base class for server-level statement failures."""


class ServerOverloadedError(ServerError):
    """Admission control refused the statement (queue full or wait
    budget exhausted)."""


class ServerClosedError(ServerError):
    """The server is shut down; no new statements are admitted."""


class SessionClosedError(ServerError):
    """The session was closed; its handle cannot run statements."""


class SnapshotViolation(ServerError):
    """A pinned snapshot epoch moved under a reader (``torn-read``) or
    a relation's version went backwards across a session's statements
    (``monotonicity``).  Never raised when the relation latches are
    enabled — it is the tripwire the resilience self-test fires by
    disabling them."""

    def __init__(self, kind: str, relation: str, pinned, observed) -> None:
        super().__init__(
            f"{kind} violation on {relation!r}: pinned {pinned}, "
            f"observed {observed}"
        )
        self.kind = kind
        self.relation = relation


# -- statement classification -------------------------------------------------


def referenced_tables(node) -> set[str]:
    """Every relation name a statement subtree references.

    Generic dataclass walk: collects ``SelectStmt.table``, join tables,
    and recurses into nested ``SubqueryOp`` selects wherever they occur
    (WHERE, HAVING, select items, ORDER BY).
    """
    names: set[str] = set()
    _collect_tables(node, names)
    return names


def _collect_tables(node, names: set[str]) -> None:
    if isinstance(node, ast.SelectStmt):
        if node.table:
            names.add(node.table)
        for join in node.joins:
            names.add(join.table)
    if hasattr(node, "__dataclass_fields__"):
        for f in fields(node):
            _collect_tables(getattr(node, f.name), names)
    elif isinstance(node, (list, tuple)):
        for item in node:
            _collect_tables(item, names)


def classify_statement(stmt) -> tuple[str, tuple[str, ...]]:
    """``(kind, relations)`` for a parsed statement.

    *kind* is ``read`` (shared latches), ``write`` (exclusive relation
    latches, WAL-logged), or ``ddl`` (exclusive catalog latch,
    WAL-logged).
    """
    if isinstance(stmt, (ast.SelectStmt, ast.ExplainStmt)):
        return "read", tuple(sorted(referenced_tables(stmt)))
    if isinstance(stmt, (ast.InsertStmt, ast.UpdateStmt, ast.DeleteStmt)):
        relations = {stmt.table} | referenced_tables(stmt)
        return "write", tuple(sorted(relations))
    if isinstance(stmt, ast.VacuumStmt):
        return "write", (stmt.table,)
    if isinstance(stmt, (ast.CreateTableStmt, ast.DropTableStmt)):
        return "ddl", (stmt.name,)
    raise TypeError(f"unhandled statement {type(stmt).__name__}")


def _run_statement(db, stmt, settings, timeout) -> SQLResult:
    """Execute one parsed statement — :func:`repro.sql.session.execute_sql`
    with per-statement *settings*/*timeout* threaded straight into
    ``db.execute`` instead of swapped through ``db.settings`` /
    ``db._deadline`` (both of which are single-session fields the
    concurrent server must not touch)."""
    if isinstance(stmt, ast.SelectStmt):
        plan = plan_select(db, stmt)
        rows = db.execute(plan, settings=settings, timeout=timeout)
        return SQLResult(f"SELECT {len(rows)}", rows, list(plan.columns))
    if isinstance(stmt, ast.ExplainStmt):
        from repro.engine.executor import explain

        plan = plan_select(db, stmt.select)
        lines = explain(plan).splitlines()
        return SQLResult("EXPLAIN", [(line,) for line in lines], ["plan"])
    if isinstance(stmt, ast.CreateTableStmt):
        db.create_table(schema_from_create(stmt), annotate=stmt.annotate)
        return SQLResult("CREATE TABLE")
    if isinstance(stmt, ast.InsertStmt):
        for row in stmt.rows:
            db.insert(stmt.table, row)
        return SQLResult(f"INSERT {len(stmt.rows)}")
    if isinstance(stmt, ast.DropTableStmt):
        db.drop_table(stmt.name)
        return SQLResult("DROP TABLE")
    if isinstance(stmt, ast.DeleteStmt):
        predicate = _row_predicate(db, stmt.table, stmt.where)
        count = db.delete_where(stmt.table, predicate)
        return SQLResult(f"DELETE {count}")
    if isinstance(stmt, ast.UpdateStmt):
        schema = db.relation(stmt.table).schema
        assignments = [
            (schema.attnum(column), _bound_expr(db, stmt.table, expr))
            for column, expr in stmt.assignments
        ]
        predicate = _row_predicate(db, stmt.table, stmt.where)

        def updater(values: list) -> list:
            new_values = list(values)
            for attnum, expr in assignments:
                new_values[attnum] = expr.evaluate(values)
            return new_values

        count = db.update_where(stmt.table, predicate, updater)
        return SQLResult(f"UPDATE {count}")
    if isinstance(stmt, ast.VacuumStmt):
        report = db.vacuum(stmt.table)
        return SQLResult(
            f"VACUUM {report['pages_before']} -> {report['pages_after']} pages"
        )
    raise TypeError(f"unhandled statement {type(stmt).__name__}")


# -- bookkeeping --------------------------------------------------------------


@dataclass(frozen=True)
class ScheduleEntry:
    """One committed statement in the global schedule: replayed in
    ``seq`` order by the serialized oracle."""

    seq: int
    session: int
    sql: str
    kind: str
    fingerprint: str


@dataclass
class ServerStats:
    """Counters for ``db.stats()['server']``; all writes under
    ``server_lock``."""

    sessions_opened: int = 0
    sessions_closed: int = 0
    statements: int = 0
    reads: int = 0
    writes: int = 0
    ddl: int = 0
    errors: int = 0
    timeouts: int = 0
    lock_timeouts: int = 0
    snapshot_violations: int = 0
    refused: int = 0
    sheds: int = 0
    disconnects: int = 0
    wal_failures: int = 0
    queue_high_water: int = 0

    def snapshot(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Session:
    """One client's handle on the server: serial statements, snapshot
    monotonicity tracking.  A session is used by one thread at a time
    (its fields are session-confined — the ``session`` pseudo-guard in
    the swarmcheck registry)."""

    def __init__(self, server: "HiveServer", session_id: int) -> None:
        self.server = server
        self.session_id = session_id
        self.closed = False
        self.statements = 0
        # relation -> (heap uid, last pinned version): a later statement
        # of this session must never see the same heap at an older
        # version.
        self._last_versions: dict[str, tuple[int, int]] = {}

    def sql(self, statement: str, timeout: float | None = None) -> SQLResult:
        if self.closed:
            raise SessionClosedError(f"session {self.session_id} is closed")
        self.statements += 1
        return self.server.execute(self, statement, timeout=timeout)

    def close(self) -> None:
        self.server._close_session(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


class HiveServer:
    """The concurrent statement front-end over one database.

    The server is passive: client threads call :meth:`execute` (via
    :class:`Session`) and run the statement themselves under the
    server's admission gate and latches.  Lock order (see
    docs/SERVER.md): admission gate (``server_lock``) → catalog latch →
    relation latches (sorted) → subsystem leaf locks.
    """

    def __init__(
        self,
        db,
        wal_path=None,
        *,
        max_concurrent: int = 8,
        queue_limit: int = 32,
        shed_threshold: int = 2,
        lock_timeout: float | None = 10.0,
        admission_timeout: float | None = 10.0,
        statement_timeout: float | None = None,
    ) -> None:
        self.db = db
        self.locks: HiveLocks = db.locks
        self.max_concurrent = max_concurrent
        self.queue_limit = queue_limit
        self.shed_threshold = shed_threshold
        self.lock_timeout = lock_timeout
        self.admission_timeout = admission_timeout
        self.statement_timeout = statement_timeout
        self.stats = ServerStats()
        self.schedule: list[ScheduleEntry] = []
        self.wal: DataWAL | None = None
        self.committer: GroupCommitter | None = None
        if wal_path is not None:
            self.wal = DataWAL(wal_path, registry=db.resilience)
            self.committer = GroupCommitter(self.wal, self.locks.wal_lock)
        self._durable = self.committer is not None
        self._gate = threading.Condition(self.locks.server_lock)
        self._sessions: dict[int, Session] = {}
        self._next_session_id = 0
        self._seq = 0
        self._waiting = 0
        self._executing = 0
        self._closed = False
        db._server = self

    # -- sessions ------------------------------------------------------------

    def session(self) -> Session:
        with self.locks.server_lock:
            if self._closed:
                raise ServerClosedError("server is shut down")
            self._next_session_id += 1
            session = Session(self, self._next_session_id)
            self._sessions[session.session_id] = session
            self.stats.sessions_opened += 1
            return session

    def _close_session(self, session: Session) -> None:
        with self.locks.server_lock:
            if session.closed:
                return
            session.closed = True
            self._sessions.pop(session.session_id, None)
            self.stats.sessions_closed += 1

    @property
    def sessions_active(self) -> int:
        with self.locks.server_lock:
            return len(self._sessions)

    @property
    def durability(self) -> str:
        """``wal`` (group commit active), ``degraded`` (fsync failed,
        logging stopped), or ``none`` (no WAL configured)."""
        if self.committer is None:
            return "none"
        return "wal" if self._durable else "degraded"

    def shutdown(self) -> None:
        """Stop admitting statements and close every session."""
        with self._gate:
            self._closed = True
            sessions = list(self._sessions.values())
            self._gate.notify_all()
        for session in sessions:
            self._close_session(session)

    # -- statements ----------------------------------------------------------

    def execute(self, session: Session, sql: str,
                timeout: float | None = None) -> SQLResult:
        """Parse, admit, latch, run, log, and record one statement."""
        try:
            stmt = parse(sql)
            kind, relations = classify_statement(stmt)
        except Exception:  # noqa: BLE001 — counted, then re-raised
            with self.locks.server_lock:
                self.stats.errors += 1
            raise
        budget = self.statement_timeout if timeout is None else timeout
        shed = self._admit()
        try:
            if kind == "read":
                settings = self.db.settings
                if shed and settings.parallel:
                    settings = settings.enabling(parallel=False)
                    with self.locks.server_lock:
                        self.stats.sheds += 1
                result = self._execute_read(
                    session, sql, stmt, relations, settings, budget
                )
            elif kind == "write":
                result = self._execute_write(
                    session, sql, stmt, relations, budget
                )
            else:
                result = self._execute_ddl(
                    session, sql, stmt, relations, budget
                )
        except QueryTimeout:
            with self.locks.server_lock:
                self.stats.errors += 1
                self.stats.timeouts += 1
            raise
        except LockTimeout:
            with self.locks.server_lock:
                self.stats.errors += 1
                self.stats.lock_timeouts += 1
            raise
        except SnapshotViolation:
            with self.locks.server_lock:
                self.stats.errors += 1
                self.stats.snapshot_violations += 1
            raise
        except Exception:  # noqa: BLE001 — counted, then re-raised
            with self.locks.server_lock:
                self.stats.errors += 1
            raise
        else:
            with self.locks.server_lock:
                self.stats.statements += 1
                if kind == "read":
                    self.stats.reads += 1
                elif kind == "write":
                    self.stats.writes += 1
                else:
                    self.stats.ddl += 1
            return result
        finally:
            self._release()

    def _execute_read(self, session, sql, stmt, relations, settings,
                      timeout) -> SQLResult:
        with self.locks.catalog_lock.read(self.lock_timeout):
            with self.locks.relation_lock.read(relations, self.lock_timeout):
                pins = self._pin(session, relations)
                seq = self._next_seq()
                result = _run_statement(self.db, stmt, settings, timeout)
                self._verify_pins(session, pins)
                self._record(seq, session, sql, "read", result)
                return result

    def _execute_write(self, session, sql, stmt, relations,
                       timeout) -> SQLResult:
        with self.locks.catalog_lock.read(self.lock_timeout):
            with self.locks.relation_lock.write(relations, self.lock_timeout):
                seq = self._next_seq()
                result = _run_statement(self.db, stmt, None, timeout)
                self._log_write(seq, session, sql)
                self._pin(session, relations)
                self._record(seq, session, sql, "write", result)
                return result

    def _execute_ddl(self, session, sql, stmt, relations,
                     timeout) -> SQLResult:
        with self.locks.catalog_lock.write(self.lock_timeout):
            seq = self._next_seq()
            result = _run_statement(self.db, stmt, None, timeout)
            self._log_write(seq, session, sql)
            self._record(seq, session, sql, "ddl", result)
            return result

    # -- snapshot pinning ----------------------------------------------------

    def _pin(self, session: Session,
             relations) -> dict[str, tuple[int, int]]:
        """Pin ``(heap uid, version)`` for every referenced relation and
        check monotonicity against the session's last pins."""
        pins: dict[str, tuple[int, int]] = {}
        for name in relations:
            try:
                heap = self.db.relation(name).heap
            except KeyError:
                continue
            epoch = (heap.uid, heap.version)
            last = session._last_versions.get(name)
            if last is not None and last[0] == epoch[0] \
                    and epoch[1] < last[1]:
                raise SnapshotViolation("monotonicity", name, last, epoch)
            pins[name] = epoch
            session._last_versions[name] = epoch
        return pins

    def _verify_pins(self, session: Session, pins: dict) -> None:
        """Re-read every pinned epoch after the statement: any movement
        means a writer ran inside our read latch — a torn read."""
        for name, epoch in pins.items():
            try:
                heap = self.db.relation(name).heap
            except KeyError:
                observed = None
            else:
                observed = (heap.uid, heap.version)
            if observed != epoch:
                raise SnapshotViolation("torn-read", name, epoch, observed)

    # -- sequencing, WAL, schedule -------------------------------------------

    def _next_seq(self) -> int:
        """Global statement sequence, assigned *after* latch grant — so
        conflicting statements are sequenced in the order the latches
        serialized them, which is what makes replay-in-seq-order an
        equivalent serial history."""
        with self.locks.server_lock:
            self._seq += 1
            return self._seq

    def _log_write(self, seq: int, session: Session, sql: str) -> None:
        committer = self.committer
        if committer is None or not self._durable:
            return
        record = DataWAL.statement_record(seq, session.session_id, sql)
        try:
            committer.commit(record)
        except WALSyncError as exc:
            # Degrade durability, keep serving: the on-disk WAL is still
            # a valid committed prefix, we just stop extending it.
            with self.locks.server_lock:
                self._durable = False
                self.stats.wal_failures += 1
            self.db.resilience.record_event(
                "wal_fsync_failed", path=str(self.wal.path), error=str(exc)
            )

    def _record(self, seq, session, sql, kind, result) -> None:
        from repro.server.oracle import statement_fingerprint

        entry = ScheduleEntry(
            seq=seq,
            session=session.session_id,
            sql=sql,
            kind=kind,
            fingerprint=statement_fingerprint(result),
        )
        with self.locks.server_lock:
            self.schedule.append(entry)

    # -- admission control ---------------------------------------------------

    def _admit(self) -> bool:
        """Wait for an execution slot.  Returns whether the statement
        should shed to the serial tier (queue pressure)."""
        with self._gate:
            if self._closed:
                raise ServerClosedError("server is shut down")
            if self._waiting >= self.queue_limit:
                self.stats.refused += 1
                raise ServerOverloadedError(
                    f"admission queue full ({self.queue_limit} waiting)"
                )
            self._waiting += 1
            self.stats.queue_high_water = max(
                self.stats.queue_high_water, self._waiting
            )
            try:
                while self._executing >= self.max_concurrent:
                    if not self._gate.wait(self.admission_timeout):
                        self.stats.refused += 1
                        raise ServerOverloadedError(
                            "timed out waiting for an execution slot"
                        )
                    if self._closed:
                        raise ServerClosedError("server is shut down")
                self._executing += 1
                return self._waiting > self.shed_threshold
            finally:
                self._waiting -= 1

    def _release(self) -> None:
        with self._gate:
            self._executing -= 1
            self._gate.notify()

    def note_disconnect(self) -> None:
        """Count a client that vanished mid-conversation (called by the
        protocol layer, which does no engine writes itself)."""
        with self.locks.server_lock:
            self.stats.disconnects += 1

    # -- reporting -----------------------------------------------------------

    def stats_snapshot(self) -> dict:
        """The ``server`` section of ``db.stats()``."""
        with self.locks.server_lock:
            snapshot = self.stats.snapshot()
            snapshot["sessions_active"] = len(self._sessions)
            snapshot["durability"] = self.durability
            snapshot["schedule_length"] = len(self.schedule)
        snapshot["group_commit"] = (
            self.committer.stats() if self.committer is not None
            else {"batches": 0, "fsyncs": 0, "records": 0,
                  "max_batch": 0, "broken": False}
        )
        return snapshot
