"""Hive Gate: the fault-tolerant multi-client server front-end.

Lazy exports — ``repro.db`` imports :mod:`repro.server.locks` at
construction time, so this package must not import :mod:`repro.server.core`
(which imports ``repro.sql`` → ``repro.db``) eagerly.
"""

from __future__ import annotations

_EXPORTS = {
    "HiveLocks": "repro.server.locks",
    "RWLatch": "repro.server.locks",
    "RelationLatches": "repro.server.locks",
    "LockTimeout": "repro.server.locks",
    "DataWAL": "repro.server.wal",
    "GroupCommitter": "repro.server.wal",
    "WALSyncError": "repro.server.wal",
    "recover_database": "repro.server.wal",
    "HiveServer": "repro.server.core",
    "Session": "repro.server.core",
    "ServerStats": "repro.server.core",
    "ServerError": "repro.server.core",
    "ServerOverloadedError": "repro.server.core",
    "SessionClosedError": "repro.server.core",
    "SnapshotViolation": "repro.server.core",
    "classify_statement": "repro.server.core",
    "referenced_tables": "repro.server.core",
    "statement_fingerprint": "repro.server.oracle",
    "replay_schedule": "repro.server.oracle",
    "HiveListener": "repro.server.protocol",
    "HiveClient": "repro.server.protocol",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module_name = _EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, name)
