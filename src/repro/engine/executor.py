"""Top-level plan execution: drive the node tree, price row emission.

Beeshield lives here at statement granularity: when the database's guard
is active (``settings.shield``), any fault escaping a specialized
execution — an exception inside a generated routine, a failed inline
result check (:class:`BeeDegradeError`), a per-call budget overrun —
rolls the ledger back to the statement start and re-executes the plan
with the faulting bee family disabled, degrading down to fully generic
interpretation if need be.  The statement succeeds whenever the stock
engine would.

A per-statement wall-clock budget (``db.sql(..., timeout=...)``) is
checked at batch boundaries (and every ``_TIMEOUT_STRIDE`` rows on the
row-at-a-time path), raising :class:`QueryTimeout` after rolling the
ledger back, so a cancelled statement leaves the database usable.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter

from repro.cost import constants as C
from repro.engine.nodes import ExecContext, Materialize, PlanNode
from repro.resilience.errors import (
    BeeDegradeError,
    QueryTimeout,
    is_verification_refusal,
)

#: Row-path timeout check stride (power of two; checked when
#: ``row_count & (stride - 1) == 0``).
_TIMEOUT_STRIDE = 128

#: Retry ceiling: one attempt per bee family plus the final generic run.
_MAX_ATTEMPTS = 10


def execute(
    db,
    plan: PlanNode,
    emit: bool = True,
    settings=None,
    deadline: float | None = None,
) -> list[tuple]:
    """Run *plan* against *db* and return the result rows as tuples.

    When *emit* is true (the default — a client received the rows), each
    output row is charged the printtup-style emission cost; internal
    subplan executions pass ``emit=False``.  *settings* overrides the
    database's bee settings for this execution only.  *deadline* is an
    absolute ``perf_counter()`` budget (defaults to ``db._deadline``,
    set per statement by ``db.sql(..., timeout=...)``).
    """
    if settings is None:
        settings = db.settings
    if deadline is None:
        deadline = getattr(db, "_deadline", None)
    shield = getattr(db, "shield", None)
    if shield is not None and not getattr(settings, "shield", True):
        shield = None
    if shield is None and deadline is None:
        return _run(db, plan, emit, settings, None, None)

    # Ledger snapshot/rollback are compound multi-counter operations;
    # under the concurrent server they run inside the materialized
    # ledger_lock so a rollback never interleaves with another
    # statement's snapshot (per-charge increments stay lock-free).
    ledger_lock = db.locks.ledger_lock if hasattr(db, "locks") else nullcontext()
    with ledger_lock:
        snapshot = db.ledger.snapshot()
    current = settings
    last_error: BaseException | None = None
    for _attempt in range(_MAX_ATTEMPTS):
        try:
            return _run(db, plan, emit, current, deadline, shield)
        except QueryTimeout:
            with ledger_lock:
                db.ledger.rollback_to(snapshot)
            raise
        except BeeDegradeError as fault:
            if shield is None:
                raise
            with ledger_lock:
                db.ledger.rollback_to(snapshot)
            _reset_plan_state(plan)
            shield.registry.record_failure(
                fault.bee, site=fault.site, kind=fault.kind, error=fault.original
            )
            last_error = fault.original or fault
            current = _degrade(current, fault.family)
        except Exception as exc:  # noqa: BLE001 — statement-level bee retry
            if shield is None or not current.any_enabled:
                raise
            if is_verification_refusal(exc):
                raise
            with ledger_lock:
                db.ledger.rollback_to(snapshot)
            _reset_plan_state(plan)
            family, key = shield.attribute(exc, db.bee_module)
            shield.registry.record_failure(
                key, site=family or "statement", kind="exception", error=exc
            )
            last_error = exc
            current = _degrade(current, family)
    # Unreachable in practice: every retry removes at least one family.
    raise RuntimeError(
        f"statement retry limit exceeded (last bee fault: {last_error!r})"
    )


def _degrade(settings, family: str | None):
    """Settings for the retry: drop the faulting family, or go generic."""
    if family is not None and getattr(settings, family, False):
        return settings.enabling(**{family: False})
    return settings.with_routines()   # unattributed: fully generic


def _reset_plan_state(plan: PlanNode) -> None:
    """Clear cached node state so a retry re-derives it generically."""
    stack: list[PlanNode] = [plan]
    while stack:
        node = stack.pop()
        if isinstance(node, Materialize):
            node._cache = None
        stack.extend(node.children())


def _run(
    db,
    plan: PlanNode,
    emit: bool,
    settings,
    deadline: float | None,
    shield,
) -> list[tuple]:
    """One execution attempt under fixed settings."""
    ctx = ExecContext(db, settings)
    if shield is None:
        ctx.shield = None
    if getattr(settings, "vectors", False):
        from repro.bees.vector import fuse_vector_plan

        if shield is None:
            plan = fuse_vector_plan(plan, db)
        else:
            plan = shield.fuse(fuse_vector_plan, plan, db, key="VEC:fusion")
    elif getattr(settings, "pipelines", False):
        from repro.bees.pipeline import fuse_plan

        if shield is None:
            plan = fuse_plan(plan, db)
        else:
            plan = shield.fuse(fuse_plan, plan, db)
    if getattr(settings, "parallel", False):
        # Runs over the already-fused plan: morsel drivers wrap the
        # vector/pipeline drivers and keep them as serial anchors.
        from repro.parallel import parallelize_plan

        if shield is None:
            plan = parallelize_plan(plan, db)
        else:
            plan = shield.fuse(parallelize_plan, plan, db, key="PAR:fusion")
    charge = ctx.ledger.charge
    results: list[tuple] = []
    per_row = 0
    batches = getattr(plan, "batches", None)
    if batches is not None:
        for batch in batches(ctx):
            if deadline is not None and perf_counter() >= deadline:
                raise QueryTimeout("statement timeout exceeded")
            if not batch:
                continue
            if not per_row:
                per_row = C.EXECUTOR_PER_ROW
                if emit:
                    per_row += (
                        C.EMIT_ROW_BASE
                        + C.EMIT_ROW_PER_COLUMN * len(batch[0])
                    )
            charge(per_row * len(batch))
            results.extend(map(tuple, batch))
    else:
        n = 0
        for row in plan.rows(ctx):
            if deadline is not None:
                n += 1
                if not (n & (_TIMEOUT_STRIDE - 1)) and perf_counter() >= deadline:
                    raise QueryTimeout("statement timeout exceeded")
            if not per_row:
                per_row = C.EXECUTOR_PER_ROW
                if emit:
                    per_row += C.EMIT_ROW_BASE + C.EMIT_ROW_PER_COLUMN * len(row)
            charge(per_row)
            results.append(tuple(row))
    if shield is not None and ctx.shield_used:
        shield.statement_ok(ctx.shield_used)
    return results


def explain(plan: PlanNode) -> str:
    """Render the plan tree (EXPLAIN analog)."""
    return plan.explain()
