#!/usr/bin/env python3
"""Quickstart: a bee-enabled database in a few lines.

Creates a table with the paper's ANNOTATE DDL extension (naming the
low-cardinality attributes tuple bees specialize on), loads rows, runs SQL
on a stock and a bee-enabled database, and compares the virtual
instruction cost of the same query under micro-specialization.

Run:  python examples/quickstart.py
"""

from repro import BeeSettings, Database

DDL = """
CREATE TABLE trades (
    trade_id   int         NOT NULL,
    symbol     char(6)     NOT NULL,
    side       char(4)     NOT NULL,     -- BUY / SELL: tuple-bee fodder
    quantity   int         NOT NULL,
    price      numeric     NOT NULL,
    trade_date date        NOT NULL,
    note       varchar(60) NOT NULL,
    PRIMARY KEY (trade_id),
    ANNOTATE (symbol, side)
)
"""

QUERY = """
SELECT symbol, side, count(*) AS trades, sum(quantity * price) AS volume
FROM trades
WHERE price BETWEEN 10 AND 90 AND note LIKE '%fill%'
GROUP BY symbol, side
ORDER BY volume DESC
LIMIT 5
"""


def load(db: Database, n_rows: int = 5000) -> None:
    db.sql(DDL)
    symbols = ["ACME", "GLOBX", "INITX", "UMBRL"]
    rows = []
    for i in range(n_rows):
        rows.append([
            i,
            symbols[i % 4],
            "BUY" if i % 3 else "SELL",
            (i % 50) + 1,
            float((i * 7) % 100) + 0.5,
            19000 + (i % 365),
            f"auto fill order {i}" if i % 2 else f"manual ticket {i}",
        ])
    db.copy_from("trades", rows)


def main() -> None:
    stock = Database(BeeSettings.stock())
    bees = Database(BeeSettings.all_bees())
    load(stock)
    load(bees)

    print("== same SQL, stock vs bee-enabled ==")
    stock_run = stock.measure(lambda: stock.sql(QUERY).rows)
    bees_run = bees.measure(lambda: bees.sql(QUERY).rows)
    assert stock_run.result == bees_run.result
    for row in stock_run.result:
        print("  ", row)

    saved = 100 * (1 - bees_run.instructions / stock_run.instructions)
    print(f"\nstock:       {stock_run.instructions:>12,} virtual instructions")
    print(f"bee-enabled: {bees_run.instructions:>12,} virtual instructions")
    print(f"improvement: {saved:.1f}% (identical results)")

    print("\n== what the bee module built ==")
    for key, value in bees.bee_module.statistics().items():
        print(f"  {key}: {value}")

    bee = bees.bee_module.relation_bee("trades")
    print("\n== the generated GCL routine (the paper's Listing 2) ==")
    print(bee.gcl.source)
    print(f"cost: {bee.gcl.cost} instructions/tuple "
          f"(generic path: {stock.relation('trades').generic_deformer._nonull_cost})")

    shrunk = bees.relation("trades").heap.page_count
    full = stock.relation("trades").heap.page_count
    print(f"storage: {full} pages stock vs {shrunk} pages with tuple bees")


if __name__ == "__main__":
    main()
