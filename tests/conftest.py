"""Shared fixtures: small schemas and loaded databases."""

from __future__ import annotations

import pytest

from repro.bees.settings import BeeSettings
from repro.catalog import DATE, INT4, INT8, NUMERIC, char, make_schema, varchar
from repro.db import Database


@pytest.fixture
def orders_schema():
    """The TPC-H orders schema — the paper's running example."""
    return make_schema(
        "orders",
        [
            ("o_orderkey", INT4),
            ("o_custkey", INT4),
            ("o_orderstatus", char(1)),
            ("o_totalprice", NUMERIC),
            ("o_orderdate", DATE),
            ("o_orderpriority", char(15)),
            ("o_clerk", char(15)),
            ("o_shippriority", INT4),
            ("o_comment", varchar(79)),
        ],
        ("o_orderkey",),
    )


@pytest.fixture
def orders_row():
    return [
        1, 370, "O", 172799.49, 9497, "5-LOW", "Clerk#000000951", 0,
        "final deposits sleep furiously",
    ]


@pytest.fixture
def mixed_schema():
    """A schema exercising every type kind, including nullables."""
    return make_schema(
        "mixed",
        [
            ("a", varchar(10)),
            ("b", INT8),
            ("c", char(3)),
            ("d", varchar(8), True),
            ("e", INT4, True),
            ("f", NUMERIC),
        ],
    )


def _populate(db: Database, orders_schema, n: int = 50) -> Database:
    db.create_table(orders_schema, annotate=("o_orderstatus", "o_orderpriority"))
    statuses = ["O", "F", "P"]
    priorities = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
    rows = [
        [
            i, i % 7, statuses[i % 3], 100.0 + 10.0 * i, 9000 + i,
            priorities[i % 5], f"Clerk#{i:09d}", 0, f"comment number {i}",
        ]
        for i in range(1, n + 1)
    ]
    db.copy_from("orders", rows)
    return db


@pytest.fixture
def stock_db(orders_schema):
    """A stock database with 50 orders rows."""
    return _populate(Database(BeeSettings.stock()), orders_schema)


@pytest.fixture
def bees_db(orders_schema):
    """A fully bee-enabled database with the same 50 orders rows."""
    return _populate(Database(BeeSettings.all_bees()), orders_schema)
