"""Outcome capture and normalization for differential comparison.

Every statement execution is reduced to an *outcome* triple the runner can
compare across engines:

* ``("rows", [...])`` — a SELECT's result rows,
* ``("status", "INSERT 3")`` — a DML/DDL completion tag,
* ``("error", "ValueError")`` — the exception *type name*.  Only the type
  is compared: the generic fill and a specialized bee raise the same
  exception class on bad input but with different messages (one from
  ``struct.pack``'s batched pack, one per attribute), and that wording
  difference is not a correctness divergence.

Row comparison tags each value with its type name so Python's cross-type
equalities (``True == 1 == 1.0``) cannot mask a divergence where one
engine returns an int and the other a float or bool.  Unordered results
compare as multisets; ORDER BY results compare as lists.
"""

from __future__ import annotations

import math
from collections import Counter

Outcome = tuple  # ("rows", list[tuple]) | ("status", str) | ("error", str)


def run_statement(
    db, sql: str, bees=None, pipelines=None, vectors=None, parallel=None
) -> Outcome:
    """Execute *sql* on *db* and capture the outcome (never raises)."""
    try:
        result = db.sql(
            sql, bees=bees, pipelines=pipelines, vectors=vectors,
            parallel=parallel,
        )
    except Exception as exc:  # noqa: BLE001 — the comparison IS the handler
        return ("error", type(exc).__name__)
    if result.status.startswith("SELECT") or result.status == "EXPLAIN":
        return ("rows", [tuple(row) for row in result.rows])
    return ("status", result.status)


def tag_row(row: tuple) -> tuple:
    """Make a row comparable without cross-type equality surprises."""
    return tuple((type(v).__name__, v) for v in row)


def rows_equal(a: list[tuple], b: list[tuple], ordered: bool) -> bool:
    if len(a) != len(b):
        return False
    if ordered:
        return [tag_row(r) for r in a] == [tag_row(r) for r in b]
    return Counter(map(tag_row, a)) == Counter(map(tag_row, b))


def outcomes_equal(a: Outcome, b: Outcome, ordered: bool = False) -> bool:
    if a[0] != b[0]:
        return False
    if a[0] == "rows":
        return rows_equal(a[1], b[1], ordered)
    return a[1] == b[1]


def sorted_canonical(rows: list[tuple]) -> list[tuple]:
    """Rows in a canonical order, insensitive to batch interleaving.

    The sort key rounds floats to nine significant digits so values
    that differ only in the last ulps (re-associated parallel partial
    sums) land in the same position on both sides; everything else
    sorts by its tagged repr.
    """

    def key(row: tuple) -> str:
        return repr(
            tuple(
                ("float", float(f"{v:.9g}")) if isinstance(v, float)
                else (type(v).__name__, v)
                for v in row
            )
        )

    return sorted(rows, key=key)


def _value_equivalent(a, b) -> bool:
    if type(a) is not type(b):
        return False
    if isinstance(a, float):
        return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-6)
    return a == b


def rows_equivalent(a: list[tuple], b: list[tuple]) -> bool:
    """Order-insensitive, float-tolerant row comparison.

    The comparator for any lane where batches may interleave and float
    aggregates re-associate (the parallel tier): rows are canonically
    sorted, then matched pairwise with exact equality on every value
    except floats, which compare via ``math.isclose`` (rel 1e-9,
    abs 1e-6) — type tags still apply, so an int/float flip is caught.
    """
    if len(a) != len(b):
        return False
    for ra, rb in zip(sorted_canonical(a), sorted_canonical(b)):
        if len(ra) != len(rb):
            return False
        if not all(_value_equivalent(u, v) for u, v in zip(ra, rb)):
            return False
    return True


def outcomes_equivalent(a: Outcome, b: Outcome) -> bool:
    """Like :func:`outcomes_equal` but with :func:`rows_equivalent` rows."""
    if a[0] != b[0]:
        return False
    if a[0] == "rows":
        return rows_equivalent(a[1], b[1])
    return a[1] == b[1]


def describe_outcome(outcome: Outcome, limit: int = 6) -> str:
    """Short human-readable rendering for divergence reports."""
    kind, payload = outcome
    if kind != "rows":
        return f"{kind}: {payload}"
    rows = payload
    shown = ", ".join(repr(r) for r in rows[:limit])
    suffix = f", … ({len(rows)} rows)" if len(rows) > limit else ""
    return f"rows[{len(rows)}]: {shown}{suffix}"


def canonical(outcome: Outcome) -> str:
    """Stable text form of an outcome, for the corpus fingerprint.

    Row order is canonicalized by sorting tagged reprs, so the fingerprint
    is insensitive to incidental iteration order but still pins every
    value (and its type) the stock engine produced.
    """
    kind, payload = outcome
    if kind != "rows":
        return f"{kind}|{payload}"
    parts = sorted(repr(tag_row(r)) for r in payload)
    return "rows|" + "|".join(parts)
