"""Bug-injection self-test: prove each pass catches its bug class.

Thirteen seeded violations — impure bees (scope escape, mutable
capture, parameter mutation, rogue call), unregistered shared-state
writes (a new engine field, a registry gap, a module-level global),
chunk escapes (kernel store, engine-module mutation, a writable cached
array), and lock violations (a phantom guard with no lock behind it, a
guarded write moved outside its lock, a group commit whose sync hook
was severed).  Each case must produce at least one finding from the
right pass; a silently-passing analyzer is worse than none, so every
MISSED case fails the whole run.
"""

from __future__ import annotations

import dataclasses

from repro.swarmcheck import escape as esc
from repro.swarmcheck import locks as lck
from repro.swarmcheck import purity as pur
from repro.swarmcheck import registry as reg
from repro.swarmcheck import sharedstate as shared


def _tampered(routine, old: str, new: str):
    """Copy *routine* with *old* replaced by *new* in its source.  The
    self-test only needs the source text — no recompile."""
    if old not in routine.source:
        raise AssertionError(
            f"tamper pattern {old!r} not found in {routine.name}"
        )
    return dataclasses.replace(
        routine, source=routine.source.replace(old, new, 1)
    )


def _caught(findings, pass_name: str) -> bool:
    return any(f.pass_name == pass_name for f in findings)


def run_selftest(source, corpus) -> dict[str, bool]:
    """Run every injection case; returns ``case -> caught``."""
    results: dict[str, bool] = {}
    by_kind: dict[str, object] = {}
    for kind, routine in corpus:
        by_kind.setdefault(kind, routine)

    # -- purity ------------------------------------------------------------
    pipe = next(
        routine for kind, routine in corpus
        if kind == "pipeline" and "    out = []" in routine.source
    )
    bad = _tampered(
        pipe, "    out = []",
        "    global _hits\n    _hits = _hits + 1\n    out = []",
    )
    results["purity-global-write"] = _caught(
        pur.check_routine("pipeline", bad), "purity"
    )

    evp = by_kind["evp"]
    mutable_ns = dict(evp.namespace or {})
    mutable_ns["_MEMO"] = {}
    bad = dataclasses.replace(evp, namespace=mutable_ns)
    results["purity-mutable-capture"] = _caught(
        pur.check_routine("evp", bad), "purity"
    )

    agg = by_kind["agg"]
    bad = _tampered(
        agg, "    _charge(", "    row[0] = None\n    _charge(",
    )
    results["purity-param-mutation"] = _caught(
        pur.check_routine("agg", bad), "purity"
    )

    bad = _tampered(
        evp, "    _charge(", "    open('/tmp/x')\n    _charge(",
    )
    results["purity-rogue-call"] = _caught(
        pur.check_routine("evp", bad), "purity"
    )

    # -- shared state ------------------------------------------------------
    # A new unregistered field written on the sql() path.
    text = source.text("db.py").replace(
        "        settings = self.resolve_settings(bees)",
        "        self.swarm_counter = 1\n"
        "        settings = self.resolve_settings(bees)",
        1,
    )
    assert "swarm_counter" in text
    patched = type(source)(overrides={"db.py": text})
    _sites, findings, _stats = shared.classify_writes(patched)
    results["shared-unregistered-field"] = _caught(findings, "shared-state")

    # A registry gap: drop the ChunkCache entries declaration.
    gapped = tuple(
        entry for entry in reg.REGISTRY
        if entry.key != "ChunkCache._entries"
    )
    _sites, findings, _stats = shared.classify_writes(
        source, registry=gapped
    )
    results["shared-registry-gap"] = _caught(findings, "shared-state")

    # A module-level global mutated from the execution path.
    text = source.text("engine/executor.py").replace(
        "def _run(",
        "_QUERY_COUNT = 0\n\n\n"
        "def _bump():\n"
        "    global _QUERY_COUNT\n"
        "    _QUERY_COUNT += 1\n\n\n"
        "def _run(",
        1,
    ).replace(
        '    """One execution attempt under fixed settings."""',
        '    """One execution attempt under fixed settings."""\n'
        "    _bump()",
        1,
    )
    assert "_bump()" in text
    patched = type(source)(overrides={"engine/executor.py": text})
    _sites, findings, _stats = shared.classify_writes(patched)
    results["shared-global-counter"] = _caught(findings, "shared-state")

    # -- escape ------------------------------------------------------------
    vec = by_kind["vector"]
    bad = _tampered(
        vec, "    _charge(", "    cols[0][0] = 0\n    _charge(",
    )
    findings, _checked = esc.scan_kernels([("vector", bad)])
    results["escape-kernel-store"] = _caught(findings, "escape")

    # An engine-module mutation: scrub a null in place after decode.
    text = source.text("bees/vector/chunks.py").replace(
        "    return chunk",
        "    chunk.cols[0][0] = 0\n    return chunk",
        1,
    )
    patched = type(source)(overrides={"bees/vector/chunks.py": text})
    results["escape-module-mutation"] = _caught(
        esc.scan_modules(patched), "escape"
    )

    # A writable chunk smuggled into the cache.
    from repro.bees.vector.chunks import chunk_from_rows
    from repro.catalog import INT4, NUMERIC, make_schema

    schema = make_schema("swarm_t", [
        ("a", INT4), ("b", NUMERIC, True),
    ])
    chunk = chunk_from_rows(schema, [[1, 1.5], [2, None]])
    findings, arrays = esc.check_entries({7: (0, None, chunk)})
    results["escape-writable-chunk"] = arrays > 0 and _caught(
        findings, "escape"
    )

    # -- locks -------------------------------------------------------------
    # A registry entry naming a guard nobody materialized.
    phantom = reg.REGISTRY + (
        reg.SharedState(
            "HiveServer", "_phantom", reg.SHARED, "phantom_lock", "-"
        ),
    )
    findings, _stats = lck.run_locks(source, registry=phantom)
    results["locks-missing-guard"] = _caught(findings, "locks")

    # A server_lock-guarded write hoisted out of its lock.
    text = source.text("server/core.py").replace(
        "        with self.locks.server_lock:\n"
        "            self.stats.disconnects += 1",
        "        self.stats.disconnects += 1",
        1,
    )
    assert text != source.text("server/core.py")
    patched = type(source)(overrides={"server/core.py": text})
    findings, _stats = lck.run_locks(patched)
    results["locks-unguarded-write"] = _caught(findings, "locks")

    # A group commit whose durability hook was severed: the COMMIT
    # marker would land in the OS cache and call itself durable.
    text = source.text("bees/walcache.py").replace(
        "            self._sync(handle)", "            pass", 1,
    )
    assert text != source.text("bees/walcache.py")
    patched = type(source)(overrides={"bees/walcache.py": text})
    findings, _stats = lck.run_locks(patched)
    results["locks-unsynced-commit"] = _caught(findings, "locks")

    return results
