"""Beecheck's own bug-injection self-test.

A verifier that never rejects is indistinguishable from one that cannot.
This module proves beecheck fires on two families of broken generators:

* **PR 1's dynamic injections** (:mod:`repro.oracle.inject`): the broken
  GCL adds 1 to the first integer column, the broken EVP inverts
  verdicts.  The differential oracle needs a full query campaign to see
  these; beecheck's translation-validation lane flags them at
  *generation time*, before a single tuple flows through the routine.
* **Source-level tampers**: mutated generated source (offset bump,
  weakened alignment round, reordered result list, smuggled loop,
  inflated cost) recompiled through the routine's own data section.
  These are caught *statically* — by the lint shape grammar, the
  symbolic offset interpreter, or the cost audit — demonstrating the
  passes are not just re-running the oracle.

``run_selftest`` returns ``{case: caught}``; the CLI folds it into the
sweep report and exits nonzero on any miss.
"""

from __future__ import annotations

import dataclasses

from repro.bees.routines.base import compile_routine
from repro.cost.ledger import Ledger
from repro.engine import expr as E
from repro.storage.layout import TupleLayout
from repro.workloads.tpch.schema import ALL_SCHEMAS
from repro.beecheck.checker import (
    check_agg,
    check_evj,
    check_evp,
    check_gcl,
    check_idx,
    check_pipeline,
    check_scl,
    check_vector,
)


def _tamper(routine, old: str, new: str):
    """Recompile *routine* with its source mutated (old -> new)."""
    source = routine.source.replace(old, new)
    if source == routine.source:
        raise AssertionError(
            f"tamper pattern {old!r} not found in {routine.name}"
        )
    namespace = dict(routine.namespace)
    fn = compile_routine(source, routine.name, namespace)
    return dataclasses.replace(
        routine, fn=fn, source=source, namespace=namespace
    )


def _passes_fired(report) -> set[str]:
    return {finding.pass_name for finding in report.findings}


def run_selftest() -> dict[str, bool]:
    """Run every self-test case; returns ``{case: caught}``."""
    from repro.bees import maker as maker_mod
    from repro.oracle.inject import inject_bug

    results: dict[str, bool] = {}
    layout = TupleLayout(ALL_SCHEMAS["orders"]())
    expr = E.And(
        E.Cmp("<", E.Col("o_orderkey", 0), E.Const(1000)),
        E.Like(E.Col("o_clerk", 6), "Clerk%"),
    )

    # -- PR 1's injected generator bugs, caught before execution --
    with inject_bug("gcl"):
        routine = maker_mod.generate_gcl(layout, Ledger(), "GCL_selftest")
    report = check_gcl(routine, layout)
    results["inject-gcl"] = "transval" in _passes_fired(report)

    with inject_bug("evp"):
        routine = maker_mod.generate_evp(expr, Ledger(), "EVP_selftest")
    report = check_evp(routine, expr)
    results["inject-evp"] = "transval" in _passes_fired(report)

    # -- source-level tampers, caught statically --
    gcl = maker_mod.generate_gcl(layout, Ledger(), "GCL_selftest")
    scl = maker_mod.generate_scl(layout, Ledger(), "SCL_selftest")

    static = ("lint", "absint", "costaudit")

    def caught_statically(report) -> bool:
        return bool(_passes_fired(report) & set(static))

    tampered = _tamper(gcl, "off = off + 4 + ln", "off = off + 5 + ln")
    results["tamper-gcl-offset"] = caught_statically(
        check_gcl(tampered, layout)
    )

    tampered = _tamper(gcl, "(off + 3) & -4", "(off + 1) & -2")
    results["tamper-gcl-align"] = caught_statically(
        check_gcl(tampered, layout)
    )

    tampered = _tamper(
        gcl, "    return [", "    for _i in range(1): pass\n    return ["
    )
    results["tamper-gcl-loop"] = caught_statically(check_gcl(tampered, layout))

    tampered = _tamper(gcl, "return [v0, v1", "return [v1, v0")
    results["tamper-gcl-reorder"] = caught_statically(
        check_gcl(tampered, layout)
    )

    # An ambient-state read smuggled into an EVP: `id(row)` parses, is
    # branch-free, and returns a bool-ish value, but its result varies
    # per process — the determinism rule (and the name whitelist) must
    # both reject it before the translation validator even runs.
    evp = maker_mod.generate_evp(expr, Ledger(), "EVP_selftest")
    tampered = _tamper(evp, "t3 = row[0]", "t3 = row[0] if id(row) > 0 else row[0]")
    results["tamper-evp-nondet"] = "determinism" in _passes_fired(
        check_evp(tampered, expr)
    )

    tampered = dataclasses.replace(gcl, cost=gcl.cost + 10)
    results["tamper-gcl-cost"] = caught_statically(
        check_gcl(tampered, layout)
    )

    tampered = _tamper(scl, "pad = ((off + 3) & -4)", "pad = ((off + 1) & -2)")
    results["tamper-scl-pad"] = caught_statically(check_scl(tampered, layout))

    tampered = _tamper(scl, "_PREFIX.pack(values[0]", "_PREFIX.pack(values[7]")
    results["tamper-scl-argswap"] = caught_statically(
        check_scl(tampered, layout)
    )

    # -- EVJ / AGG / IDX tampers --
    from repro.bees.routines.agg import generate_agg
    from repro.bees.routines.evj import instantiate_evj
    from repro.bees.routines.idx import generate_idx
    from repro.engine.aggregates import AggSpec

    # EVJ routines are frozen C text with no namespace; tampering is a
    # plain source replace, no recompilation involved.
    evj = instantiate_evj("inner", 2, "evj_inner")
    tampered = dataclasses.replace(
        evj,
        source=evj.source.replace("outer[1] != inner[1]", "outer[1] != inner[0]"),
    )
    results["tamper-evj-key"] = not check_evj(tampered).ok

    anti = instantiate_evj("anti", 1, "evj_anti")
    tampered = dataclasses.replace(
        anti,
        source=anti.source.replace(
            "return false;  /* match suppresses emission */", "return true;"
        ),
    )
    results["tamper-evj-return"] = not check_evj(tampered).ok

    columns = ["p", "d"]
    specs = [
        AggSpec("sum", E.bind(E.Col("p"), columns), name="s"),
        AggSpec("count", name="n"),
    ]
    agg = generate_agg(specs, Ledger(), "AGG_selftest")

    tampered = _tamper(agg, "states[1].update", "states[0].update")
    results["tamper-agg-index"] = not check_agg(tampered, specs).ok

    tampered = dataclasses.replace(agg, cost=agg.cost + 10)
    results["tamper-agg-cost"] = caught_statically(check_agg(tampered, specs))

    idx = generate_idx([2, 0], Ledger(), "IDX_selftest")
    tampered = _tamper(idx, "(values[2], values[0])", "(values[0], values[2])")
    results["tamper-idx-order"] = not check_idx(tampered, [2, 0]).ok

    # -- pipeline bees: injected fusion bug + source tampers --
    from repro.bees.pipeline.codegen import PipelineSpec

    columns = [attr.name for attr in layout.schema.attributes]
    pipe_spec = PipelineSpec(
        "orders",
        layout,
        qual=E.bind(
            E.Cmp("<", E.Col("o_orderkey"), E.Const(1000)), columns
        ),
        output=[
            E.bind(E.Col("o_orderkey"), columns),
            E.bind(E.Col("o_comment"), columns),
        ],
    )

    # The injected bug drops the residual qual at generation time; the
    # validator replays the *spec's* semantics, so the filterless routine
    # diverges on every enumerated row the qual rejects.
    with inject_bug("pipeline"):
        routine = maker_mod.generate_pipeline(
            pipe_spec, Ledger(), "PIPE_selftest"
        )
    report = check_pipeline(routine, pipe_spec)
    results["inject-pipeline"] = "transval" in _passes_fired(report)

    pipe = maker_mod.generate_pipeline(pipe_spec, Ledger(), "PIPE_selftest")

    tampered = _tamper(
        pipe, "raw[off + 4 : off + 4 + ln]", "raw[off + 5 : off + 5 + ln]"
    )
    results["tamper-pipe-offset"] = caught_statically(
        check_pipeline(tampered, pipe_spec)
    )

    tampered = _tamper(pipe, "_C1 * len(batch)", "_C1 * len(out)")
    results["tamper-pipe-charge"] = caught_statically(
        check_pipeline(tampered, pipe_spec)
    )

    tampered = dataclasses.replace(pipe, cost=pipe.cost + 10)
    results["tamper-pipe-cost"] = caught_statically(
        check_pipeline(tampered, pipe_spec)
    )

    # -- vector bees: injected mask drop + source tampers --
    # The same spec shape the pipeline cases use; the vector tier
    # compiles it to a whole-column kernel instead of a row loop.
    with inject_bug("vector"):
        routine = maker_mod.generate_vector(
            pipe_spec, Ledger(), "VEC_selftest"
        )
    report = check_vector(routine, pipe_spec)
    results["inject-vector"] = "transval" in _passes_fired(report)

    vec = maker_mod.generate_vector(pipe_spec, Ledger(), "VEC_selftest")

    # A flipped comparison direction survives the lint (expression text
    # is not pinned) but diverges against the interpreter on nearly
    # every enumerated row — the translation validator's lane.
    tampered = _tamper(vec, "cols[0] < _K0", "cols[0] > _K0")
    results["tamper-vec-op"] = "transval" in _passes_fired(
        check_vector(tampered, pipe_spec)
    )

    tampered = _tamper(vec, "_C0 + _C1 * n + _C2 * _m", "_C0 + _C1 * n + _C2 * n")
    results["tamper-vec-charge"] = caught_statically(
        check_vector(tampered, pipe_spec)
    )

    tampered = dataclasses.replace(vec, cost=vec.cost + 10)
    results["tamper-vec-cost"] = caught_statically(
        check_vector(tampered, pipe_spec)
    )

    return results
