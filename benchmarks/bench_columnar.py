"""Orthogonality bench: micro-specialization on a column store.

The paper claims micro-specialization "can be applied directly to
column-oriented DBMSes" (Sections I/VII/VIII).  This bench runs a
q6-shaped scan three ways — row store (stock), column store (generic
vectorized), column store (CDL + fused kernels) — and shows the two
levels of specialization compose: the architecture removes most of the
work, and micro-specialization still removes a large share of what
remains.
"""

from __future__ import annotations

import pytest

from repro.bees.settings import BeeSettings
from repro.bench.reporting import emit, improvement, table
from repro.columnar import ColumnStore, ColumnarExecutor
from repro.engine.expr import And, Arith, Between, Cmp, Col, Const
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import build_tpch_database, generate_rows
from repro.workloads.tpch.queries import q06
from repro.workloads.tpch.schema import lineitem_schema

from conftest import TPCH_SF

QUAL_COLS = ["l_shipdate", "l_discount", "l_quantity"]
SUM_COLS = ["l_extendedprice", "l_discount"]


def _qual():
    return And(
        Between(Col("l_shipdate"), 8766, 9130),
        Between(Col("l_discount"), 0.05, 0.07),
        Cmp("<", Col("l_quantity"), Const(24.0)),
    )


def _revenue():
    return Arith("*", Col("l_extendedprice"), Col("l_discount"))


@pytest.fixture(scope="module")
def columnar_report():
    rows = generate_rows(TPCHGenerator(TPCH_SF))
    store = ColumnStore(lineitem_schema())
    store.load(rows["lineitem"])

    row_db = build_tpch_database(BeeSettings.stock(), rows=rows)
    row_run = row_db.measure(lambda: q06(row_db))
    generic = ColumnarExecutor(store, specialized=False).sum_where(
        _qual(), QUAL_COLS, _revenue(), SUM_COLS
    )
    specialized = ColumnarExecutor(store, specialized=True).sum_where(
        _qual(), QUAL_COLS, _revenue(), SUM_COLS
    )
    assert generic.value == pytest.approx(row_run.result[0][0])
    assert specialized.value == pytest.approx(generic.value)

    emit("\n=== Orthogonality: q6 on row store vs column store ===")
    emit(table(
        ["engine", "virtual instructions", "vs row stock"],
        [
            ["row store, stock", f"{row_run.instructions:,}", "--"],
            [
                "column store, generic",
                f"{generic.instructions:,}",
                f"-{improvement(row_run.instructions, generic.instructions):.0f}%",
            ],
            [
                "column store, bee-specialized",
                f"{specialized.instructions:,}",
                f"-{improvement(row_run.instructions, specialized.instructions):.0f}%",
            ],
        ],
    ))
    emit(
        "micro-specialization on the columnar engine: "
        f"{improvement(generic.instructions, specialized.instructions):.1f}% "
        "additional reduction"
    )
    return row_run, generic, specialized, store


def test_columnar_generic_wallclock(benchmark, columnar_report):
    _row, _g, _s, store = columnar_report
    executor = ColumnarExecutor(store, specialized=False)
    benchmark(
        executor.sum_where, _qual(), QUAL_COLS, _revenue(), SUM_COLS
    )


def test_columnar_specialized_wallclock(benchmark, columnar_report):
    _row, _g, _s, store = columnar_report
    executor = ColumnarExecutor(store, specialized=True)
    benchmark(
        executor.sum_where, _qual(), QUAL_COLS, _revenue(), SUM_COLS
    )


def test_orthogonality_shape(benchmark, columnar_report):
    benchmark(lambda: None)
    row_run, generic, specialized, _store = columnar_report
    assert generic.instructions < row_run.instructions / 2
    gain = improvement(generic.instructions, specialized.instructions)
    assert 10.0 <= gain <= 60.0
