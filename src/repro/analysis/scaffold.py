"""Report/CLI plumbing shared by the static-analysis tools.

Everything here is deliberately dependency-free (stdlib only) so the
analysis packages can import it without pulling in the engine.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Callable, Mapping, Sequence


def write_report(
    payload: Mapping[str, object],
    out_dir: str | Path,
    name: str = "report.json",
) -> Path:
    """Write *payload* as ``<out_dir>/<name>``, creating directories.

    Returns the path written.  All analysis tools share one JSON style so
    baselines under ``results/`` diff cleanly across tools.
    """
    out_path = Path(out_dir) / name
    out_path.parent.mkdir(parents=True, exist_ok=True)
    out_path.write_text(json.dumps(dict(payload), indent=2) + "\n")
    return out_path


def add_standard_args(
    parser: argparse.ArgumentParser,
    *,
    out_default: str,
    seed_default: int | None = 0,
    statements_default: int | None = None,
    check_flag: bool = True,
) -> None:
    """Install the standard sweep arguments on *parser*.

    ``--seed`` and ``--statements`` are optional (some tools have no
    corpus generator); ``--out`` and ``--no-selftest`` are universal;
    ``--check`` is installed unless the tool always gates.
    """
    if seed_default is not None:
        parser.add_argument(
            "--seed", type=int, default=seed_default,
            help="corpus generator seed",
        )
    if statements_default is not None:
        parser.add_argument(
            "--statements", type=int, default=statements_default,
            help="oracle statements to drive the corpus database with "
            f"(default {statements_default})",
        )
    parser.add_argument(
        "--out", type=Path, default=Path(out_default),
        help=f"report directory (default {out_default})",
    )
    if check_flag:
        parser.add_argument(
            "--check", action="store_true",
            help="exit non-zero on any finding or missed injection",
        )
    parser.add_argument(
        "--no-selftest", action="store_true",
        help="skip the bug-injection self-test",
    )


def run_injections(
    cases: Sequence[tuple[str, Callable[[], bool]]],
) -> dict[str, bool]:
    """The self-test runner loop: each case plants one bug and returns
    True iff the analyzer caught it.  A case that raises is recorded as
    missed rather than aborting the sweep — a checker that crashes on a
    planted bug did not catch it.
    """
    results: dict[str, bool] = {}
    for name, probe in cases:
        try:
            results[name] = bool(probe())
        except Exception:   # noqa: BLE001 - any crash means "missed"
            results[name] = False
    return results


def format_selftest(results: Mapping[str, bool]) -> str:
    """One-line caught/MISSED verdict string for summaries."""
    return ", ".join(
        f"{name}={'caught' if ok else 'MISSED'}"
        for name, ok in sorted(results.items())
    )


def exit_code(ok: bool, *, gate: bool = True) -> int:
    """Exit-status policy: failures only gate when *gate* is set
    (tools without a ``--check`` flag pass ``gate=True`` always)."""
    if ok or not gate:
        return 0
    return 1
