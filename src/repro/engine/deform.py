"""Generic tuple deform/fill — the code paths micro-specialization replaces.

``slot_deform_tuple`` mirrors the paper's Listing 1: a per-attribute loop
whose every iteration re-checks attribute metadata (cached offset? varlena?
alignment?), charging virtual instructions for each branch actually taken.
``heap_fill_tuple`` is the symmetric generic tuple-construction path.

Per-relation per-tuple costs are precomputed from the layout (the branch
pattern is identical for every NULL-free tuple of a relation), so the hot
path charges a single constant; tuples containing NULLs take a slower,
per-attribute-charged path, exactly as the real code goes ``slow`` once a
NULL is seen.
"""

from __future__ import annotations

from repro.cost import constants as C
from repro.storage.layout import INFOMASK_HAS_NULLS, TupleLayout


def generic_deform_cost(layout: TupleLayout) -> int:
    """Virtual instructions for one NULL-free generic deform of *layout*.

    Follows Listing 1's control flow: per attribute, loop overhead, an
    (optional) null-bitmap test, then the cached-offset / varlena /
    post-varlena-alignment path, then the fetch.  Bee-resident attributes
    cost a data-section lookup in the generic engine.
    """
    cost = C.DEFORM_PROLOGUE
    null_check = C.DEFORM_NULL_CHECK if layout.stored_nullable else 0
    seen_varlena = False
    for attr in layout.stored_attrs:
        cost += C.DEFORM_LOOP + null_check + C.DEFORM_FETCH
        if attr.attlen == -1:
            cost += C.DEFORM_VARLENA
            seen_varlena = True
        elif seen_varlena:
            cost += C.DEFORM_FIXED_ALIGN
        else:
            cost += C.DEFORM_CACHED_OFFSET
    cost += C.DEFORM_BEE_LOOKUP * len(layout.bee_attrs)
    return cost


def generic_deform_null_cost(layout: TupleLayout, isnull: list[bool]) -> int:
    """Deform cost for a tuple that contains NULLs (the ``slow`` path)."""
    cost = C.DEFORM_PROLOGUE
    slow = False
    for i, attr in enumerate(layout.stored_attrs):
        cost += C.DEFORM_LOOP + C.DEFORM_NULL_CHECK
        if isnull[attr.attnum]:
            cost += C.DEFORM_NULL_TAKEN
            slow = True
            continue
        cost += C.DEFORM_FETCH
        if attr.attlen == -1:
            cost += C.DEFORM_VARLENA
            slow = True
        elif slow:
            cost += C.DEFORM_FIXED_ALIGN
        else:
            cost += C.DEFORM_CACHED_OFFSET
    cost += C.DEFORM_BEE_LOOKUP * len(layout.bee_attrs)
    return cost


def generic_fill_cost(layout: TupleLayout) -> int:
    """Virtual instructions for one NULL-free generic ``heap_fill_tuple``."""
    cost = C.FILL_PROLOGUE
    null_check = C.FILL_NULL_CHECK if layout.stored_nullable else 0
    for attr in layout.stored_attrs:
        cost += C.FILL_LOOP + null_check + C.FILL_FETCH
        if attr.attlen == -1:
            cost += C.FILL_VARLENA
        else:
            cost += C.FILL_FIXED
    return cost


class GenericDeformer:
    """The stock ``slot_deform_tuple``: branchy reference decode + charge.

    ``datasections`` maps beeID -> value tuple for tuple-bee relations; the
    stock engine still reads those through a charged indirection.
    """

    function_name = "slot_deform_tuple"

    def __init__(self, layout: TupleLayout, ledger) -> None:
        self.layout = layout
        self.ledger = ledger
        self._nonull_cost = generic_deform_cost(layout)

    def __call__(self, raw: bytes, datasections) -> list:
        """Deform *raw* into a schema-ordered values list (None = NULL)."""
        layout = self.layout
        if layout.has_beeid:
            bee_values = datasections[layout.read_bee_id(raw)]
        else:
            bee_values = None
        values, isnull = layout.decode(raw, bee_values)
        if raw[0] & INFOMASK_HAS_NULLS:
            cost = generic_deform_null_cost(layout, isnull)
            for i, null in enumerate(isnull):
                if null:
                    values[i] = None
        else:
            cost = self._nonull_cost
        self.ledger.charge_fn(self.function_name, cost)
        return values


class GenericFiller:
    """The stock ``heap_fill_tuple``: generic encode + per-attr charging."""

    function_name = "heap_fill_tuple"

    def __init__(self, layout: TupleLayout, ledger) -> None:
        self.layout = layout
        self.ledger = ledger
        self._nonull_cost = generic_fill_cost(layout)

    def __call__(self, values: list, bee_id: int = 0) -> bytes:
        """Encode a schema-ordered values list (None = NULL) to bytes."""
        isnull = [value is None for value in values]
        if any(isnull):
            # NULLs shorten the data copied but the branch work remains.
            cost = self._nonull_cost
        else:
            cost = self._nonull_cost
            isnull = None
        self.ledger.charge_fn(self.function_name, cost)
        return self.layout.encode(values, isnull, bee_id)
