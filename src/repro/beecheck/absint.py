"""Abstract interpretation of bee offset arithmetic.

The generated GCL/SCL routines are straight-line offset computations:
``off`` starts at a literal, advances by attribute widths and varlena
lengths, and is rounded up by ``(off + a-1) & -a`` alignment masks.
This pass symbolically executes those updates and proves, against the
:class:`~repro.storage.layout.TupleLayout` the routine was generated
for, that

* every read/write lands exactly where the layout's reference codec
  (``encode``/``decode``) puts that attribute — same base, same
  alignment rounds, same varlena-length terms — which makes each access
  in-bounds by construction (the encoder emits exactly those bytes);
* every fixed-width access offset is provably ``0 mod attalign``;
* every data-section access uses a valid bee slot of the layout, and
  every bee attribute is filled exactly once;
* the precompiled structs in the routine's data section (``_PREFIX``,
  ``_S*``, ``_P*``, ``_VL``, ``_HDR``) encode the layout's formats and
  constant header byte-for-byte.

Symbolic values form a tiny normalizing algebra::

    e ::= ('c', n)                      -- exact integer
        | ('t', base, k, vars)          -- base + k + sum(vars)
    base ::= None | ('align', e, a)     -- e rounded up to a

Varlena lengths enter as fresh variables (``ln0``, ``ln1``, ... in
reading order), so the generated side and the layout-derived reference
side build structurally identical terms iff the arithmetic agrees.
Alignment facts are extracted by :func:`s_mod`: an expression is provably
``0 mod a`` when it is exact, or when it hangs off an ``align`` node
whose factor ``a`` divides the alignment and the added constant.
"""

from __future__ import annotations

import ast
import re
import struct

from repro.storage.layout import (
    BEEID_HI_BYTE,
    BEEID_LO_BYTE,
    HEADER_HOFF_BYTE,
    HEADER_INFOMASK_BYTE,
    INFOMASK_HAS_BEEID,
    TupleLayout,
    VARLENA_HEADER_BYTES,
)

# -- the symbolic domain -----------------------------------------------------


def s_const(n: int) -> tuple:
    return ("c", n)


def _lift(e: tuple) -> tuple:
    if e[0] == "c":
        return (None, e[1], ())
    return (e[1], e[2], e[3])


def _norm(base, k: int, vars_: tuple) -> tuple:
    vars_ = tuple(sorted(vars_))
    if base is None and not vars_:
        return ("c", k)
    return ("t", base, k, vars_)


def s_add(e: tuple, k: int) -> tuple:
    base, c, vars_ = _lift(e)
    return _norm(base, c + k, vars_)


def s_addvar(e: tuple, var: str) -> tuple:
    base, c, vars_ = _lift(e)
    return _norm(base, c, vars_ + (var,))


def s_align(e: tuple, a: int) -> tuple:
    if a <= 1:
        return e
    if e[0] == "c":
        return ("c", (e[1] + a - 1) & -a)
    base, c, vars_ = _lift(e)
    if not vars_ and base is not None:
        _, _, inner_a = base
        if inner_a % a == 0 and c % a == 0:
            return e  # already provably aligned
    return _norm(("align", e, a), 0, ())


def s_mod(e: tuple, a: int) -> int | None:
    """``e % a`` when provable, else None."""
    if a <= 1:
        return 0
    if e[0] == "c":
        return e[1] % a
    base, c, vars_ = _lift(e)
    if vars_:
        return None
    if base is not None:
        _, _, inner_a = base
        if inner_a % a == 0:
            return c % a
    return None


def s_str(e: tuple) -> str:
    """Render a symbolic offset for findings."""
    if e[0] == "c":
        return str(e[1])
    base, c, vars_ = _lift(e)
    parts = []
    if base is not None:
        parts.append(f"align({s_str(base[1])}, {base[2]})")
    if c or not (parts or vars_):
        parts.append(str(c))
    parts.extend(vars_)
    return " + ".join(parts)


# -- shared helpers ----------------------------------------------------------


def _expected_prefix(layout: TupleLayout) -> tuple[list, str, int]:
    """The fixed prefix the layout dictates: attrs, struct fmt, end cursor."""
    prefix = []
    for i, attr in enumerate(layout.stored_attrs):
        if attr.attlen == -1:
            break
        prefix.append((i, attr))
    fmt_parts = ["<"]
    cursor = 0
    for i, attr in prefix:
        offset = layout.stored_offset(i)
        if offset > cursor:
            fmt_parts.append(f"{offset - cursor}x")
        sql_type = attr.sql_type
        fmt_parts.append(sql_type.struct_fmt or f"{sql_type.attlen}s")
        cursor = offset + sql_type.attlen
    return prefix, "".join(fmt_parts), cursor


def _check_struct(
    namespace: dict | None,
    name: str,
    fmt: str,
    findings: list[str],
) -> None:
    obj = (namespace or {}).get(name)
    if not isinstance(obj, struct.Struct):
        findings.append(f"data section misses struct {name!r}")
    elif obj.format != fmt:
        findings.append(
            f"data-section struct {name} has format {obj.format!r}, "
            f"layout dictates {fmt!r}"
        )


def _body(source: str) -> list[ast.stmt] | None:
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return None
    if len(tree.body) != 1 or not isinstance(tree.body[0], ast.FunctionDef):
        return None
    body = tree.body[0].body
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
    ):
        body = body[1:]
    return list(body)


_VLB = VARLENA_HEADER_BYTES


# -- GCL ---------------------------------------------------------------------

_RE_GCL_BV = re.compile(r"_bv = sections\[raw\[(\d+)\] \| raw\[(\d+)\] << 8\]")
_RE_GCL_BEE = re.compile(r"v(\d+) = _bv\[(\d+)\]")
_RE_GCL_PREFIX = re.compile(
    r"(v\d+(?:, v\d+)*),? = _PREFIX\.unpack_from\(raw, (\d+)\)"
)
_RE_GCL_CHARFIX = re.compile(r"(v\d+) = \1\.decode\(\)\.rstrip\(' '\)")
_RE_GCL_BOOLFIX = re.compile(r"(v\d+) = bool\(\1\)")
_RE_OFF_INIT = re.compile(r"off = (\d+)")
_RE_OFF_ALIGN = re.compile(r"off = off \+ (\d+) & -(\d+)")
_RE_GCL_VLLEN = re.compile(r"ln = _VL\.unpack_from\(raw, off\)\[0\]")
_RE_GCL_VLDATA = re.compile(
    rf"v(\d+) = raw\[off \+ {_VLB}:off \+ {_VLB} \+ ln\]\.decode\(\)"
)
_RE_OFF_VL = re.compile(rf"off = off \+ {_VLB} \+ ln")
_RE_GCL_SCALAR = re.compile(r"v(\d+) = _S(\d+)\.unpack_from\(raw, off\)\[0\]")
_RE_GCL_CHAR = re.compile(
    r"v(\d+) = raw\[off:off \+ (\d+)\]\.decode\(\)\.rstrip\(' '\)"
)
_RE_OFF_ADD = re.compile(r"off = off \+ (\d+)")
_RE_GCL_RETURN = re.compile(r"return \[(v\d+(?:, v\d+)*)\]")


def check_gcl(routine, layout: TupleLayout) -> list[str]:
    """Prove the GCL routine's reads against *layout*."""
    findings: list[str] = []
    body = _body(routine.source)
    if body is None:
        return ["source does not parse into a single function"]
    stmts = [ast.unparse(s) for s in body]

    hoff = layout.header_size(tuple_has_nulls=False)
    prefix, prefix_fmt, prefix_end = _expected_prefix(layout)
    rest = layout.stored_attrs[len(prefix):]

    # -- guard + charge envelope (lint owns the exact shape) --
    idx = 0
    if idx < len(stmts) and stmts[idx].startswith("if "):
        idx += 1
    if idx < len(stmts) and stmts[idx].startswith("_charge("):
        idx += 1

    # -- bee-section reads --
    seen_slots: dict[int, int] = {}
    if layout.has_beeid:
        if idx >= len(stmts) or not (m := _RE_GCL_BV.fullmatch(stmts[idx])):
            findings.append("tuple-bee layout but no data-section load")
        else:
            lo, hi = int(m.group(1)), int(m.group(2))
            if (lo, hi) != (BEEID_LO_BYTE, BEEID_HI_BYTE):
                findings.append(
                    f"beeID read at bytes ({lo}, {hi}), layout stores it at "
                    f"({BEEID_LO_BYTE}, {BEEID_HI_BYTE})"
                )
            idx += 1
        while idx < len(stmts) and (m := _RE_GCL_BEE.fullmatch(stmts[idx])):
            seen_slots[int(m.group(1))] = int(m.group(2))
            idx += 1
        expected_slots = {
            layout.schema.attnum(name): slot
            for name, slot in layout.bee_slot.items()
        }
        if seen_slots != expected_slots:
            findings.append(
                f"bee-slot map {seen_slots} != layout slots {expected_slots}"
            )
    elif idx < len(stmts) and _RE_GCL_BV.fullmatch(stmts[idx]):
        findings.append("data-section load in a layout without tuple bees")

    # -- fixed prefix --
    if prefix:
        if idx >= len(stmts) or not (m := _RE_GCL_PREFIX.fullmatch(stmts[idx])):
            findings.append("layout has a fixed prefix but no _PREFIX unpack")
            return findings
        targets = [t.strip() for t in m.group(1).split(",")]
        base = int(m.group(2))
        idx += 1
        if base != hoff:
            findings.append(
                f"prefix unpack at byte {base}, data area starts at {hoff}"
            )
        expected_targets = [f"v{attr.attnum}" for _, attr in prefix]
        if targets != expected_targets:
            findings.append(
                f"prefix targets {targets} != layout order {expected_targets}"
            )
        _check_struct(routine.namespace, "_PREFIX", prefix_fmt, findings)
        # Field-level alignment: hoff is 8-aligned, so each field is aligned
        # iff its layout offset is.
        for i, attr in prefix:
            if (hoff + layout.stored_offset(i)) % attr.attalign:
                findings.append(
                    f"prefix field {attr.name} at misaligned absolute offset "
                    f"{hoff + layout.stored_offset(i)}"
                )
        # Post-unpack fixups, in emitted order: all CHAR strips first,
        # then all BOOL casts (the generator batches them in two loops).
        fixups = [
            (attr, _RE_GCL_CHARFIX)
            for _, attr in prefix
            if not attr.sql_type.struct_fmt
        ] + [
            (attr, _RE_GCL_BOOLFIX)
            for _, attr in prefix
            if attr.sql_type.struct_fmt == "B"
        ]
        for attr, fixup in fixups:
            if (
                idx < len(stmts)
                and (m := fixup.fullmatch(stmts[idx]))
                and m.group(1) == f"v{attr.attnum}"
            ):
                idx += 1
            else:
                findings.append(
                    f"missing decode fixup for prefix attr {attr.name}"
                )

    # -- remaining attrs: symbolic off walk --
    scalar_idx = 0
    vl_idx = 0
    if rest:
        if idx >= len(stmts) or not (m := _RE_OFF_INIT.fullmatch(stmts[idx])):
            findings.append("missing off initialization for varlena tail")
            return findings
        off = s_const(int(m.group(1)))
        expected_off = s_const(hoff + prefix_end)
        if off != expected_off:
            findings.append(
                f"off starts at {s_str(off)}, layout dictates "
                f"{s_str(expected_off)}"
            )
        idx += 1
        for attr in rest:
            # Reference walk: where the layout puts this attribute.
            expected_off = s_align(expected_off, attr.attalign)
            if attr.attalign > 1:
                if idx < len(stmts) and (
                    m := _RE_OFF_ALIGN.fullmatch(stmts[idx])
                ):
                    c, a = int(m.group(1)), int(m.group(2))
                    if c != a - 1 or a & (a - 1):
                        findings.append(
                            f"malformed alignment round for {attr.name}: "
                            f"off + {c} & -{a}"
                        )
                    if a != attr.attalign:
                        findings.append(
                            f"{attr.name} aligned to {a}, type requires "
                            f"{attr.attalign}"
                        )
                    off = s_align(off, a)
                    idx += 1
                elif s_mod(off, attr.attalign) != 0:
                    findings.append(
                        f"no alignment round before {attr.name} and "
                        f"off = {s_str(off)} is not provably "
                        f"0 mod {attr.attalign}"
                    )
            if off != expected_off:
                findings.append(
                    f"{attr.name} read at off = {s_str(off)}, layout puts it "
                    f"at {s_str(expected_off)}"
                )
                off = expected_off  # resynchronize to localize findings
            proved = s_mod(off, attr.attalign)
            if proved != 0:
                findings.append(
                    f"cannot prove {attr.name} access aligned: off = "
                    f"{s_str(off)} mod {attr.attalign} is "
                    f"{'unknown' if proved is None else proved}"
                )
            sql_type = attr.sql_type
            if sql_type.attlen == -1:
                var = f"ln{vl_idx}"
                vl_idx += 1
                ok = (
                    idx + 2 < len(stmts)
                    and _RE_GCL_VLLEN.fullmatch(stmts[idx])
                    and (m := _RE_GCL_VLDATA.fullmatch(stmts[idx + 1]))
                    and int(m.group(1)) == attr.attnum
                    and _RE_OFF_VL.fullmatch(stmts[idx + 2])
                )
                if not ok:
                    findings.append(
                        f"varlena read sequence for {attr.name} is broken "
                        f"at: {stmts[idx:idx + 3]!r}"
                    )
                    return findings
                idx += 3
                off = s_addvar(s_add(off, VARLENA_HEADER_BYTES), var)
                expected_off = s_addvar(
                    s_add(expected_off, VARLENA_HEADER_BYTES), var
                )
                _check_struct(routine.namespace, "_VL", "<i", findings)
            else:
                read = stmts[idx] if idx < len(stmts) else ""
                if sql_type.struct_fmt:
                    m = _RE_GCL_SCALAR.fullmatch(read)
                    if not m or int(m.group(1)) != attr.attnum:
                        findings.append(
                            f"expected scalar read of {attr.name}, got "
                            f"{read!r}"
                        )
                        return findings
                    _check_struct(
                        routine.namespace,
                        f"_S{m.group(2)}",
                        "<" + sql_type.struct_fmt,
                        findings,
                    )
                    scalar_idx += 1
                    idx += 1
                    if sql_type.struct_fmt == "B":
                        if idx < len(stmts) and _RE_GCL_BOOLFIX.fullmatch(
                            stmts[idx]
                        ):
                            idx += 1
                        else:
                            findings.append(
                                f"missing bool() fixup for {attr.name}"
                            )
                else:
                    m = _RE_GCL_CHAR.fullmatch(read)
                    if (
                        not m
                        or int(m.group(1)) != attr.attnum
                        or int(m.group(2)) != sql_type.attlen
                    ):
                        findings.append(
                            f"expected CHAR({sql_type.attlen}) read of "
                            f"{attr.name}, got {read!r}"
                        )
                        return findings
                    idx += 1
                adv = stmts[idx] if idx < len(stmts) else ""
                m = _RE_OFF_ADD.fullmatch(adv)
                if not m or int(m.group(1)) != sql_type.attlen:
                    findings.append(
                        f"off must advance by {sql_type.attlen} after "
                        f"{attr.name}, got {adv!r}"
                    )
                else:
                    idx += 1
                off = s_add(off, sql_type.attlen)
                expected_off = s_add(expected_off, sql_type.attlen)
        if off != expected_off:
            findings.append(
                f"final off = {s_str(off)} diverges from layout end "
                f"{s_str(expected_off)}"
            )

    # -- every attribute produced exactly once, returned in schema order --
    ret = stmts[idx] if idx < len(stmts) else ""
    m = _RE_GCL_RETURN.fullmatch(ret)
    if not m:
        findings.append(f"expected the result-list return, got {ret!r}")
    else:
        got = [t.strip() for t in m.group(1).split(",")]
        expected = [f"v{n}" for n in range(layout.schema.natts)]
        if got != expected:
            findings.append(
                f"return order {got} != schema order {expected}"
            )
        if idx != len(stmts) - 1:
            findings.append("statements after the result return")
    return findings


# -- SCL ---------------------------------------------------------------------

_RE_SCL_HDR = re.compile(r"out = bytearray\(_HDR\)")
_RE_SCL_BEELO = re.compile(r"out\[(\d+)\] = bee_id & 255")
_RE_SCL_BEEHI = re.compile(r"out\[(\d+)\] = bee_id >> 8 & 255")
_RE_SCL_PREFIX = re.compile(r"out \+= _PREFIX\.pack\((.*)\)")
_RE_SCL_PAD = re.compile(
    r"pad = \(off \+ (\d+) & -(\d+)\) - off\n"
    r"out \+= b'\\x00' \* pad\n"
    r"off = off \+ pad"
)
_RE_SCL_VL = re.compile(
    rf"b = values\[(\d+)\]\.encode\(\)\n"
    rf"out \+= _VL\.pack\(len\(b\)\)\n"
    rf"out \+= b\n"
    rf"off = off \+ {_VLB} \+ len\(b\)"
)
_RE_SCL_PACK = re.compile(r"out \+= _P(\d+)\.pack\((.*)\)")
_RE_SCL_CHAR = re.compile(r"out \+= _char\(values\[(\d+)\], (\d+), '([^']*)'\)")


def _expected_pack_arg(attr) -> str:
    sql_type = attr.sql_type
    if sql_type.struct_fmt == "B":
        return f"int(values[{attr.attnum}])"
    if sql_type.struct_fmt:
        return f"values[{attr.attnum}]"
    return f"_char(values[{attr.attnum}], {sql_type.attlen}, '{attr.name}')"


def check_scl(routine, layout: TupleLayout) -> list[str]:
    """Prove the SCL routine's writes against *layout*."""
    findings: list[str] = []
    body = _body(routine.source)
    if body is None:
        return ["source does not parse into a single function"]
    stmts = [ast.unparse(s) for s in body]

    hoff = layout.header_size(tuple_has_nulls=False)
    prefix, prefix_fmt, prefix_end = _expected_prefix(layout)
    rest = layout.stored_attrs[len(prefix):]

    # Constant header in the data section, byte for byte.
    hdr = (routine.namespace or {}).get("_HDR")
    expected_mask = INFOMASK_HAS_BEEID if layout.has_beeid else 0
    if not isinstance(hdr, bytes):
        findings.append("data section misses the constant header _HDR")
    else:
        if len(hdr) != hoff:
            findings.append(
                f"_HDR is {len(hdr)} bytes, layout header is {hoff}"
            )
        elif (
            hdr[HEADER_INFOMASK_BYTE] != expected_mask
            or hdr[HEADER_HOFF_BYTE] != hoff
            or any(
                b != 0
                for i, b in enumerate(hdr)
                if i not in (HEADER_INFOMASK_BYTE, HEADER_HOFF_BYTE)
            )
        ):
            findings.append(
                f"_HDR bytes {hdr!r} disagree with layout header "
                f"(infomask={expected_mask:#04x}, hoff={hoff})"
            )

    idx = 0
    if idx < len(stmts) and stmts[idx].startswith("if "):
        idx += 1
    if idx < len(stmts) and stmts[idx].startswith("_charge("):
        idx += 1
    if idx < len(stmts) and _RE_SCL_HDR.fullmatch(stmts[idx]):
        idx += 1
    else:
        findings.append("fill must start from the constant header")

    # beeID patch iff the layout stores one.
    patched = (
        idx + 1 < len(stmts)
        and (lo := _RE_SCL_BEELO.fullmatch(stmts[idx]))
        and (hi := _RE_SCL_BEEHI.fullmatch(stmts[idx + 1]))
    )
    if layout.has_beeid:
        if not patched:
            findings.append("tuple-bee layout but bee_id is never stored")
        else:
            if (int(lo.group(1)), int(hi.group(1))) != (
                BEEID_LO_BYTE,
                BEEID_HI_BYTE,
            ):
                findings.append(
                    f"bee_id written at bytes ({lo.group(1)}, {hi.group(1)}), "
                    f"layout stores it at ({BEEID_LO_BYTE}, {BEEID_HI_BYTE})"
                )
            idx += 2
    elif patched:
        findings.append("bee_id stored in a layout without tuple bees")

    if prefix:
        m = _RE_SCL_PREFIX.fullmatch(stmts[idx]) if idx < len(stmts) else None
        if not m:
            findings.append("layout has a fixed prefix but no _PREFIX pack")
            return findings
        idx += 1
        got_args = [a.strip() for a in _split_args(m.group(1))]
        expected_args = [_expected_pack_arg(attr) for _, attr in prefix]
        if got_args != expected_args:
            findings.append(
                f"prefix pack args {got_args} != layout order {expected_args}"
            )
        _check_struct(routine.namespace, "_PREFIX", prefix_fmt, findings)

    if rest:
        if idx >= len(stmts) or not (m := _RE_OFF_INIT.fullmatch(stmts[idx])):
            findings.append("missing off initialization for varlena tail")
            return findings
        off = s_const(int(m.group(1)))
        expected_off = s_const(prefix_end)
        if off != expected_off:
            findings.append(
                f"off starts at {s_str(off)}, prefix ends at "
                f"{s_str(expected_off)}"
            )
        idx += 1
        vl_idx = 0
        for attr in rest:
            expected_off = s_align(expected_off, attr.attalign)
            if attr.attalign > 1:
                pad = "\n".join(stmts[idx:idx + 3])
                m = _RE_SCL_PAD.fullmatch(pad)
                if m:
                    c, a = int(m.group(1)), int(m.group(2))
                    if c != a - 1 or a & (a - 1):
                        findings.append(
                            f"malformed pad round for {attr.name}: "
                            f"off + {c} & -{a}"
                        )
                    if a != attr.attalign:
                        findings.append(
                            f"{attr.name} padded to {a}, type requires "
                            f"{attr.attalign}"
                        )
                    off = s_align(off, a)
                    idx += 3
                elif s_mod(off, attr.attalign) != 0:
                    findings.append(
                        f"no pad before {attr.name} and off = {s_str(off)} "
                        f"is not provably 0 mod {attr.attalign}"
                    )
            if off != expected_off:
                findings.append(
                    f"{attr.name} written at off = {s_str(off)}, layout puts "
                    f"it at {s_str(expected_off)}"
                )
                off = expected_off
            proved = s_mod(off, attr.attalign)
            if proved != 0:
                findings.append(
                    f"cannot prove {attr.name} write aligned: off = "
                    f"{s_str(off)} mod {attr.attalign} is "
                    f"{'unknown' if proved is None else proved}"
                )
            sql_type = attr.sql_type
            if sql_type.attlen == -1:
                var = f"ln{vl_idx}"
                vl_idx += 1
                block = "\n".join(stmts[idx:idx + 4])
                m = _RE_SCL_VL.fullmatch(block)
                if not m or int(m.group(1)) != attr.attnum:
                    findings.append(
                        f"varlena write sequence for {attr.name} is broken "
                        f"at: {stmts[idx:idx + 4]!r}"
                    )
                    return findings
                idx += 4
                off = s_addvar(s_add(off, VARLENA_HEADER_BYTES), var)
                expected_off = s_addvar(
                    s_add(expected_off, VARLENA_HEADER_BYTES), var
                )
                _check_struct(routine.namespace, "_VL", "<i", findings)
            else:
                write = stmts[idx] if idx < len(stmts) else ""
                if sql_type.struct_fmt:
                    m = _RE_SCL_PACK.fullmatch(write)
                    if (
                        not m
                        or int(m.group(1)) != attr.attnum
                        or m.group(2).strip() != _expected_pack_arg(attr)
                    ):
                        findings.append(
                            f"expected scalar pack of {attr.name}, got "
                            f"{write!r}"
                        )
                        return findings
                    _check_struct(
                        routine.namespace,
                        f"_P{attr.attnum}",
                        "<" + sql_type.struct_fmt,
                        findings,
                    )
                else:
                    m = _RE_SCL_CHAR.fullmatch(write)
                    if (
                        not m
                        or int(m.group(1)) != attr.attnum
                        or int(m.group(2)) != sql_type.attlen
                        or m.group(3) != attr.name
                    ):
                        findings.append(
                            f"expected CHAR({sql_type.attlen}) write of "
                            f"{attr.name}, got {write!r}"
                        )
                        return findings
                idx += 1
                adv = stmts[idx] if idx < len(stmts) else ""
                m = _RE_OFF_ADD.fullmatch(adv)
                if not m or int(m.group(1)) != sql_type.attlen:
                    findings.append(
                        f"off must advance by {sql_type.attlen} after "
                        f"{attr.name}, got {adv!r}"
                    )
                else:
                    idx += 1
                off = s_add(off, sql_type.attlen)
                expected_off = s_add(expected_off, sql_type.attlen)
        if off != expected_off:
            findings.append(
                f"final off = {s_str(off)} diverges from layout end "
                f"{s_str(expected_off)}"
            )

    ret = stmts[idx] if idx < len(stmts) else ""
    if ret != "return bytes(out)":
        findings.append(f"expected 'return bytes(out)', got {ret!r}")
    elif idx != len(stmts) - 1:
        findings.append("statements after the result return")
    return findings


def _split_args(text: str) -> list[str]:
    """Split a rendered argument list at top-level commas."""
    args, depth, start = [], 0, 0
    for i, ch in enumerate(text):
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        elif ch == "," and depth == 0:
            args.append(text[start:i])
            start = i + 1
    if text[start:].strip():
        args.append(text[start:])
    return args


# -- EVP ---------------------------------------------------------------------


def _collect_cols(expr) -> set[int]:
    from repro.engine import expr as E

    cols: set[int] = set()
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, E.Col):
            cols.add(node.index)
        stack.extend(node.children())
    return cols


def check_evp(routine, expr) -> list[str]:
    """Prove the EVP routine only loads columns the predicate references."""
    findings: list[str] = []
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]
    used: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "row"
            and isinstance(node.slice, ast.Constant)
        ):
            used.add(node.slice.value)
    referenced = _collect_cols(expr)
    if used != referenced:
        findings.append(
            f"row loads {sorted(used)} != predicate columns "
            f"{sorted(referenced)}"
        )
    return findings


# -- EVJ ---------------------------------------------------------------------

_RE_EVJ_HEADER = re.compile(
    r"/\* EVJ template: (\w+) join, (\d+) key\(s\) — dispatch folded,\n"
    r"   key comparison inlined \((\d+) instructions per candidate"
    r" pair\)\. \*/"
)
_RE_EVJ_COMPARE = re.compile(
    r"if \(outer\[(\d+)\] != inner\[(\d+)\]\) return false;"
)
_RE_EVJ_FINAL = re.compile(r"return (true|false);")


def check_evj(routine) -> list[str]:
    """Prove the cloned template agrees with the routine's join identity.

    The EVJ source is C text; the abstract domain here is the key index
    sequence — every key position 0..n_keys-1 must be compared exactly
    once, in order, against the *same* position on the other side, and
    the fall-through return must encode the join type (anti joins
    suppress emission on match).
    """
    findings: list[str] = []
    header = _RE_EVJ_HEADER.search(routine.source)
    if header is None:
        return ["EVJ header comment missing or malformed"]
    if header.group(1) != routine.join_type:
        findings.append(
            f"header says {header.group(1)!r} join, routine is "
            f"{routine.join_type!r}"
        )
    if int(header.group(2)) != routine.n_keys:
        findings.append(
            f"header says {header.group(2)} key(s), routine has "
            f"{routine.n_keys}"
        )
    if int(header.group(3)) != routine.cost_per_compare:
        findings.append(
            f"header says {header.group(3)} instructions, routine "
            f"charges {routine.cost_per_compare}"
        )

    compares = [
        (int(a), int(b))
        for a, b in _RE_EVJ_COMPARE.findall(routine.source)
    ]
    expected = [(k, k) for k in range(routine.n_keys)]
    if compares != expected:
        findings.append(
            f"key comparisons {compares} must be exactly {expected} "
            f"(each key once, in order, same position both sides)"
        )

    finals = _RE_EVJ_FINAL.findall(routine.source)
    expected_final = "false" if routine.join_type == "anti" else "true"
    if not finals or finals[-1] != expected_final:
        findings.append(
            f"fall-through must 'return {expected_final};' for a "
            f"{routine.join_type} join, got {finals[-1] if finals else None!r}"
        )
    return findings


# -- AGG ---------------------------------------------------------------------


def check_agg(routine, specs) -> list[str]:
    """Prove accumulator coverage and argument-column containment.

    Every state slot 0..len(specs)-1 must be updated by exactly one
    ``states[i].update(...)`` site (a dropped or doubled aggregate is a
    wrong result, not a crash), and the routine may only load row columns
    that some aggregate argument actually references.
    """
    findings: list[str] = []
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]

    updates: dict[int, int] = {}
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "update"
            and isinstance(node.func.value, ast.Subscript)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "states"
            and isinstance(node.func.value.slice, ast.Constant)
        ):
            index = node.func.value.slice.value
            updates[index] = updates.get(index, 0) + 1
    expected_indexes = set(range(len(specs)))
    if set(updates) != expected_indexes:
        findings.append(
            f"updated state slots {sorted(updates)} != aggregate slots "
            f"{sorted(expected_indexes)}"
        )
    doubled = sorted(i for i, n in updates.items() if n != 1)
    if doubled:
        findings.append(
            f"state slots {doubled} updated more than once per row"
        )

    used: set[int] = set()
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == "row"
            and isinstance(node.slice, ast.Constant)
        ):
            used.add(node.slice.value)
    referenced: set[int] = set()
    for spec in specs:
        if spec.arg is not None:
            referenced |= _collect_cols(spec.arg)
    if not used <= referenced:
        findings.append(
            f"row loads {sorted(used - referenced)} reference columns no "
            f"aggregate argument uses (arguments touch "
            f"{sorted(referenced)})"
        )
    return findings


# -- IDX ---------------------------------------------------------------------


def check_idx(routine, key_indexes) -> list[str]:
    """Prove the returned tuple is exactly the index's key columns, in
    key order."""
    findings: list[str] = []
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]
    returns = [
        node for node in ast.walk(tree) if isinstance(node, ast.Return)
    ]
    if len(returns) != 1 or not isinstance(returns[0].value, ast.Tuple):
        return ["IDX must have exactly one tuple return"]
    emitted: list = []
    for element in returns[0].value.elts:
        if (
            isinstance(element, ast.Subscript)
            and isinstance(element.value, ast.Name)
            and element.value.id == "values"
            and isinstance(element.slice, ast.Constant)
        ):
            emitted.append(element.slice.value)
        else:
            emitted.append(ast.unparse(element))
    if emitted != list(key_indexes):
        findings.append(
            f"returned key columns {emitted} != index key columns "
            f"{list(key_indexes)}"
        )
    return findings


# -- PIPE --------------------------------------------------------------------

_RE_PIPE_SLOW = re.compile(r"v(\d+) = _r\[(\d+)\]")
_RE_PIPE_VLOCAL = re.compile(r"v(\d+)")


def check_pipeline(routine, spec) -> list[str]:
    """Prove definite assignment over the fused loop's hoisted locals.

    The pruned deform assigns ``v<attnum>`` locals on the fast path and
    copies the same attnums out of the generic slow path; every local the
    qualification or sink then *reads* must be assigned on **both**
    branches of the NULL guard — a pruning bug (an attr decoded on one
    branch only, or referenced but never decoded) is a data-dependent
    ``NameError`` or, worse, a stale value carried over from the previous
    tuple.  Bee-resident attrs must come from valid data-section slots of
    the layout the spec embeds.
    """
    layout = spec.layout
    findings: list[str] = []
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]
    fn = tree.body[0]
    loops = [
        node
        for node in ast.walk(fn)
        if isinstance(node, ast.For)
        and isinstance(node.target, ast.Name)
        and node.target.id == "raw"
    ]
    if len(loops) != 1:
        return ["pipeline must have exactly one batch loop"]
    loop = loops[0]

    body = list(loop.body)
    slow_assigned: set[int] = set()
    fast_assigned: set[int] = set()
    guarded = (
        body
        and isinstance(body[0], ast.If)
        and ast.unparse(body[0].test).startswith("raw[")
    )
    if guarded:
        guard = body.pop(0)
        for stmt in guard.body:
            m = _RE_PIPE_SLOW.fullmatch(ast.unparse(stmt))
            if m:
                if m.group(1) != m.group(2):
                    findings.append(
                        f"slow path copies _r[{m.group(2)}] into "
                        f"v{m.group(1)} — attnum mismatch"
                    )
                slow_assigned.add(int(m.group(1)))
        for stmt in guard.orelse:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Name) and isinstance(
                    node.ctx, ast.Store
                ):
                    m = _RE_PIPE_VLOCAL.fullmatch(node.id)
                    if m:
                        fast_assigned.add(int(m.group(1)))
        if slow_assigned != fast_assigned:
            findings.append(
                f"slow path materializes attrs {sorted(slow_assigned)} but "
                f"the fast deform decodes {sorted(fast_assigned)}"
            )

    out_of_range = sorted(
        attnum
        for attnum in slow_assigned | fast_assigned
        if attnum >= layout.schema.natts
    )
    if out_of_range:
        findings.append(
            f"deform assigns v-locals {out_of_range} beyond the layout's "
            f"{layout.schema.natts} attributes"
        )

    # Every v-local *read* after the guard must have been assigned.
    read: set[int] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                m = _RE_PIPE_VLOCAL.fullmatch(node.id)
                if m:
                    read.add(int(m.group(1)))
    unassigned = sorted(read - (slow_assigned | fast_assigned))
    if unassigned:
        findings.append(
            f"pipeline reads undeformed locals {sorted(unassigned)} "
            f"(deform covers {sorted(slow_assigned | fast_assigned)})"
        )

    # Bee-resident attrs: valid slots, correct attnum-to-slot wiring.
    slot_of = {
        layout.schema.attnum(name): slot
        for name, slot in layout.bee_slot.items()
    }
    for node in ast.walk(fn):
        if not isinstance(node, ast.Assign):
            continue
        m = _RE_GCL_BEE.fullmatch(ast.unparse(node))
        if m:
            attnum, slot = int(m.group(1)), int(m.group(2))
            if slot_of.get(attnum) != slot:
                findings.append(
                    f"v{attnum} read from data-section slot {slot}; the "
                    f"layout stores it in slot {slot_of.get(attnum)!r}"
                )
    return findings
