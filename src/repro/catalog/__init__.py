"""Catalog: SQL types, relation schemas, annotations, and the registry."""

from repro.catalog.annotations import (
    DEFAULT_CARDINALITY_CAP,
    AnnotationSet,
    infer_annotations,
)
from repro.catalog.catalog import Catalog, CatalogError
from repro.catalog.schema import Attribute, RelationSchema, make_schema
from repro.catalog.types import (
    BOOL,
    DATE,
    FLOAT8,
    INT4,
    INT8,
    NUMERIC,
    TEXT,
    SQLType,
    align_offset,
    char,
    date_to_days,
    days_to_date,
    scalar_struct,
    varchar,
)

__all__ = [
    "AnnotationSet",
    "Attribute",
    "BOOL",
    "Catalog",
    "CatalogError",
    "DATE",
    "DEFAULT_CARDINALITY_CAP",
    "FLOAT8",
    "INT4",
    "INT8",
    "NUMERIC",
    "RelationSchema",
    "SQLType",
    "TEXT",
    "align_offset",
    "char",
    "date_to_days",
    "days_to_date",
    "infer_annotations",
    "make_schema",
    "scalar_struct",
    "varchar",
]
