"""Physical tuple layout: aligned encode/decode with tuple-bee holes.

The on-"disk" tuple format mirrors PostgreSQL's heap tuple:

* header byte 0: infomask (``HAS_NULLS``, ``HAS_BEEID`` flags),
* header byte 1: ``hoff`` — offset of the data area,
* optional 2-byte little-endian beeID (tuple-bee relations),
* optional null bitmap (one bit per *stored* attribute),
* data area, starting at ``hoff`` (8-byte aligned), attributes laid out in
  order with per-type alignment; varlena values are a 4-byte length prefix
  plus payload; NULL values occupy no space.

A :class:`TupleLayout` is built per relation per database.  When tuple bees
are enabled for the relation, annotated attributes are *not stored* in the
tuple at all — their values live in the bee's data section and the stored
beeID selects which (the paper's Section IV-A storage saving, the source of
the cold-cache I/O win in Fig. 5).
"""

from __future__ import annotations

import struct

from repro.catalog.schema import RelationSchema
from repro.catalog.types import align_offset

INFOMASK_HAS_NULLS = 0x01
INFOMASK_HAS_BEEID = 0x02

# Header geometry.  The bee code generators (``repro.bees.routines``) emit
# these as literals into specialized source, and beecheck verifies every
# generated literal against this single source of truth — keep the codec,
# the generators, and the verifier reading from here.
HEADER_INFOMASK_BYTE = 0    # byte 0: infomask flags
HEADER_HOFF_BYTE = 1        # byte 1: hoff (data-area offset)
HEADER_FIXED_BYTES = 2      # infomask + hoff
BEEID_OFFSET = 2            # little-endian uint16 beeID right after them
BEEID_LO_BYTE = BEEID_OFFSET
BEEID_HI_BYTE = BEEID_OFFSET + 1
BEEID_BYTES = 2
VARLENA_HEADER_BYTES = 4    # int32 length prefix of varlena values
HEADER_ALIGN = 8            # hoff is rounded up to this alignment

_BEEID_STRUCT = struct.Struct("<H")
_VARLEN_STRUCT = struct.Struct("<i")

# struct packers per scalar format character
_PACK = {fmt: struct.Struct("<" + fmt) for fmt in ("i", "q", "d", "B")}


class TupleLayout:
    """Encoder/decoder for one relation's physical tuples.

    Args:
        schema: the relation schema.
        bee_attrs: names of attributes hoisted into tuple-bee data sections
            (empty for stock databases and non-annotated relations).
    """

    def __init__(
        self, schema: RelationSchema, bee_attrs: tuple[str, ...] = ()
    ) -> None:
        unknown = [name for name in bee_attrs if name not in schema]
        if unknown:
            raise ValueError(
                f"bee attributes {unknown} not in relation {schema.name!r}"
            )
        self.schema = schema
        self.bee_attrs = tuple(bee_attrs)
        self._bee_set = frozenset(bee_attrs)
        self.stored_attrs = [
            attr for attr in schema.attributes if attr.name not in self._bee_set
        ]
        self.has_beeid = bool(bee_attrs)
        self.stored_nullable = any(attr.nullable for attr in self.stored_attrs)
        # Map bee attr name -> position within the data-section value tuple.
        self.bee_slot = {name: i for i, name in enumerate(self.bee_attrs)}
        # CHAR(n) bee attrs need canonicalization in bee_key: the stored
        # tuple path space-pads and then strips on decode, so the data
        # section must hold the stripped form (and enforce the width the
        # encoder would have enforced) for stock/bee bit-equivalence.
        self._bee_char_attrs = [
            (self.bee_slot[attr.name], attr)
            for attr in schema.attributes
            if attr.name in self._bee_set
            and not attr.sql_type.struct_fmt
            and attr.sql_type.attlen >= 0
        ]
        # Cacheable offsets within the *stored* data area.
        self._stored_offsets = self._compute_stored_offsets()
        self._bitmap_bytes = (len(self.stored_attrs) + 7) // 8

    def _compute_stored_offsets(self) -> list[int]:
        """Fixed data-area offsets for stored attrs (-1 when not cacheable)."""
        offsets = []
        offset = 0
        known = True
        for attr in self.stored_attrs:
            if known:
                offset = align_offset(offset, attr.attalign)
                offsets.append(offset)
                if attr.attlen >= 0:
                    offset += attr.attlen
                else:
                    known = False
            else:
                offsets.append(-1)
        return offsets

    def stored_offset(self, stored_index: int) -> int:
        """Cacheable data-area offset of the i-th stored attr, or -1."""
        return self._stored_offsets[stored_index]

    def header_size(self, tuple_has_nulls: bool) -> int:
        """Aligned header length (``hoff``) for a tuple."""
        size = HEADER_FIXED_BYTES
        if self.has_beeid:
            size += BEEID_BYTES
        if tuple_has_nulls:
            size += self._bitmap_bytes
        return align_offset(size, HEADER_ALIGN)

    # -- encode ----------------------------------------------------------------

    def encode(
        self,
        values: list,
        isnull: list[bool] | None = None,
        bee_id: int = 0,
    ) -> bytes:
        """Serialize schema-ordered *values* into tuple bytes.

        Bee-resident attributes are skipped (their values are identified by
        *bee_id*).  ``isnull[i]`` marks NULLs; NULL values occupy no storage.
        """
        attrs = self.stored_attrs
        if isnull is None:
            stored_nulls = [False] * len(attrs)
            tuple_has_nulls = False
        else:
            stored_nulls = [isnull[attr.attnum] for attr in attrs]
            tuple_has_nulls = any(stored_nulls)
        hoff = self.header_size(tuple_has_nulls)
        out = bytearray(hoff)
        infomask = 0
        pos = HEADER_FIXED_BYTES
        if self.has_beeid:
            infomask |= INFOMASK_HAS_BEEID
            _BEEID_STRUCT.pack_into(out, pos, bee_id)
            pos += BEEID_BYTES
        if tuple_has_nulls:
            infomask |= INFOMASK_HAS_NULLS
            for i, is_null in enumerate(stored_nulls):
                if is_null:
                    out[pos + (i >> 3)] |= 1 << (i & 7)
        out[HEADER_INFOMASK_BYTE] = infomask
        out[HEADER_HOFF_BYTE] = hoff

        offset = 0
        for i, attr in enumerate(attrs):
            if tuple_has_nulls and stored_nulls[i]:
                continue
            value = values[attr.attnum]
            sql_type = attr.sql_type
            aligned = align_offset(offset, attr.attalign)
            if aligned > offset:
                out.extend(b"\x00" * (aligned - offset))
                offset = aligned
            if sql_type.struct_fmt:
                out.extend(_PACK[sql_type.struct_fmt].pack(value))
                offset += sql_type.attlen
            elif sql_type.attlen >= 0:  # CHAR(n)
                raw = value.encode() if isinstance(value, str) else bytes(value)
                if len(raw) > sql_type.attlen:
                    raise ValueError(
                        f"value too long for {attr.name} "
                        f"({len(raw)} > {sql_type.attlen})"
                    )
                out.extend(raw.ljust(sql_type.attlen, b" "))
                offset += sql_type.attlen
            else:  # varlena
                raw = value.encode() if isinstance(value, str) else bytes(value)
                out.extend(_VARLEN_STRUCT.pack(len(raw)))
                out.extend(raw)
                offset += VARLENA_HEADER_BYTES + len(raw)
        return bytes(out)

    # -- decode ----------------------------------------------------------------

    def decode(
        self, raw: bytes, bee_values: tuple | None = None
    ) -> tuple[list, list[bool]]:
        """Deserialize tuple bytes into schema-ordered values and null flags.

        *bee_values* supplies the data-section values for bee-resident
        attributes (in :attr:`bee_attrs` order); pass None for stock tuples.
        This is the reference decoder — the generic ``slot_deform_tuple``
        and the generated GCL routines must agree with it bit for bit.
        """
        natts = self.schema.natts
        values: list = [None] * natts
        isnull = [False] * natts
        infomask = raw[HEADER_INFOMASK_BYTE]
        hoff = raw[HEADER_HOFF_BYTE]
        pos = HEADER_FIXED_BYTES
        if infomask & INFOMASK_HAS_BEEID:
            pos += BEEID_BYTES
        has_nulls = bool(infomask & INFOMASK_HAS_NULLS)
        bitmap_start = pos

        offset = hoff
        for i, attr in enumerate(self.stored_attrs):
            if has_nulls and raw[bitmap_start + (i >> 3)] & (1 << (i & 7)):
                isnull[attr.attnum] = True
                continue
            sql_type = attr.sql_type
            offset = align_offset(offset, attr.attalign)
            if sql_type.struct_fmt:
                (value,) = _PACK[sql_type.struct_fmt].unpack_from(raw, offset)
                if sql_type.struct_fmt == "B":
                    value = bool(value)
                offset += sql_type.attlen
            elif sql_type.attlen >= 0:
                # CHAR(n): trailing pad spaces are insignificant in SQL.
                value = raw[offset : offset + sql_type.attlen].decode().rstrip(" ")
                offset += sql_type.attlen
            else:
                (length,) = _VARLEN_STRUCT.unpack_from(raw, offset)
                start = offset + VARLENA_HEADER_BYTES
                value = raw[start : start + length].decode()
                offset += VARLENA_HEADER_BYTES + length
            values[attr.attnum] = value

        if self.bee_attrs:
            if bee_values is None:
                raise ValueError(
                    f"tuple of {self.schema.name!r} needs data-section values"
                )
            for name, slot in self.bee_slot.items():
                values[self.schema.attnum(name)] = bee_values[slot]
        return values, isnull

    def read_bee_id(self, raw: bytes) -> int:
        """Extract the stored beeID (valid only for tuple-bee layouts)."""
        if not raw[HEADER_INFOMASK_BYTE] & INFOMASK_HAS_BEEID:
            raise ValueError("tuple has no beeID")
        return _BEEID_STRUCT.unpack_from(raw, BEEID_OFFSET)[0]

    def bee_key(self, values: list) -> tuple:
        """Extract the data-section key (annotated values) from a row.

        CHAR(n) values are canonicalized exactly as the stored-tuple path
        would round-trip them (width-checked, trailing pad spaces stripped)
        so a bee-enabled database is value-identical to a stock one.
        """
        schema = self.schema
        key = [values[schema.attnum(name)] for name in self.bee_attrs]
        for slot, attr in self._bee_char_attrs:
            value = key[slot]
            if not isinstance(value, str):
                continue
            raw_len = len(value.encode())
            if raw_len > attr.sql_type.attlen:
                raise ValueError(
                    f"value too long for {attr.name} "
                    f"({raw_len} > {attr.sql_type.attlen})"
                )
            key[slot] = value.rstrip(" ")
        return tuple(key)

    def __repr__(self) -> str:
        return (
            f"TupleLayout({self.schema.name}, stored={len(self.stored_attrs)}, "
            f"bee={list(self.bee_attrs)})"
        )
