"""Tuple-bee data sections with slab allocation.

Distinct combinations of annotated attribute values are stored once, in a
clustered *data section* store per relation; tuples carry only a 2-byte
beeID.  New sections are found (or created) on insert by comparing the
incoming values against existing sections — the paper's memcmp scan over
"the few (maximally 256) possible values".  Slab allocation pre-carves
section slots in chunks so per-insert allocation stays cheap.
"""

from __future__ import annotations

from repro.cost import constants as C
from repro.cost.ledger import Ledger

SLAB_SIZE = 64
SOFT_CAP = 256


class DataSectionStore:
    """Per-relation store of distinct annotated-value tuples.

    Supports both O(1) lookup (a dict keyed by the value tuple — how a
    production system would memoize) and the charged memcmp-scan cost model
    the paper describes.  ``sections`` is indexable by beeID.
    """

    def __init__(self, relation: str, attr_names: tuple[str, ...]) -> None:
        self.relation = relation
        self.attr_names = attr_names
        self._slabs: list[list[tuple | None]] = []
        self._by_key: dict[tuple, int] = {}
        # ECC-style shadow of every section (sections are the *only*
        # copy of annotated attribute values, read by the generic and
        # bee paths alike); :meth:`scrub` repairs flipped entries from
        # it.  See repro.resilience (the "section-flip" chaos site).
        self._shadow: dict[int, tuple] = {}
        self.count = 0
        self.overflowed = False   # True once the soft cap was exceeded

    def _slab_slot(self, bee_id: int) -> tuple[list, int]:
        return self._slabs[bee_id // SLAB_SIZE], bee_id % SLAB_SIZE

    def get_or_create(self, key: tuple, ledger: Ledger | None = None) -> int:
        """Return the beeID for *key*, creating a new section if needed.

        Charges the memcmp scan (one comparison per existing section, up to
        the match) plus the clone cost when a new section is carved out.
        """
        existing = self._by_key.get(key)
        if existing is not None:
            if ledger is not None:
                # memcmp scan cost up to the hit position.
                ledger.charge_fn(
                    "tuple_bee_lookup", C.TUPLE_BEE_MEMCMP * (existing + 1)
                )
            return existing
        if ledger is not None:
            ledger.charge_fn(
                "tuple_bee_lookup",
                C.TUPLE_BEE_MEMCMP * self.count + C.TUPLE_BEE_CLONE,
            )
        bee_id = self.count
        if bee_id >= 65536:
            raise OverflowError(
                f"relation {self.relation!r} exceeded 65536 tuple bees; "
                "annotated attributes are not low-cardinality"
            )
        if bee_id % SLAB_SIZE == 0:
            self._slabs.append([None] * SLAB_SIZE)   # slab pre-allocation
        slab, slot = self._slab_slot(bee_id)
        slab[slot] = key
        self._by_key[key] = bee_id
        self._shadow[bee_id] = key
        self.count += 1
        if self.count > SOFT_CAP:
            self.overflowed = True
        return bee_id

    def get(self, bee_id: int) -> tuple:
        """The value tuple stored in data section *bee_id*."""
        if not 0 <= bee_id < self.count:
            raise IndexError(
                f"beeID {bee_id} out of range for {self.relation!r} "
                f"(count={self.count})"
            )
        slab, slot = self._slab_slot(bee_id)
        value = slab[slot]
        assert value is not None
        return value

    def scrub(self) -> list[int]:
        """Verify every section against its shadow copy, repairing any
        divergence in place; returns the repaired beeIDs.

        Called by beeshield before scans of tuple-bee relations: a
        corrupted section would silently poison results on both the
        specialized and generic read paths, so it is the one fault class
        that must be repaired rather than degraded around.
        """
        repaired: list[int] = []
        for bee_id in range(self.count):
            slab, slot = self._slab_slot(bee_id)
            expected = self._shadow[bee_id]
            if slab[slot] != expected:
                slab[slot] = expected
                repaired.append(bee_id)
        if repaired:
            self._by_key = {
                key: bee_id for bee_id, key in self._shadow.items()
            }
        return repaired

    def as_list(self) -> list[tuple]:
        """All sections as a beeID-indexable list (the hot read path)."""
        out: list[tuple] = []
        for slab in self._slabs:
            for value in slab:
                if value is None:
                    return out
                out.append(value)
        return out

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return (
            f"DataSectionStore({self.relation}, attrs={list(self.attr_names)}, "
            f"count={self.count})"
        )
