"""Beecheck: static verification and translation validation for bees.

The bee maker ``compile()``s generated Python source straight into the
executor's hot path; beecheck is the verification stage between codegen
and execution (see ``docs/BEECHECK.md``).  Four passes:

* :mod:`repro.beecheck.lint` — AST safety lint (bee shape, whitelists,
  single slow-path escape);
* :mod:`repro.beecheck.absint` — abstract interpretation of offset
  arithmetic (bounds, alignment, bee slots, data-section structs);
* :mod:`repro.beecheck.costaudit` — the cost model cross-checked against
  the code (the paper's Figure 6 instruction counts, machine-checked);
* :mod:`repro.beecheck.transval` — translation validation against the
  generic ``layout.decode``/``encode``/``Expr.evaluate`` paths.

Entry points: ``check_gcl`` / ``check_scl`` / ``check_evp`` /
``check_evj`` / ``check_agg`` / ``check_idx`` / ``check_pipeline`` /
``check_vector`` return reports, the ``verify_*`` variants raise
:class:`BeecheckError`, and ``python -m repro.beecheck`` sweeps every
schema plus a fuzzed query corpus.
"""

from repro.beecheck.checker import (
    check_agg,
    check_evj,
    check_evp,
    check_gcl,
    check_idx,
    check_pipeline,
    check_scl,
    check_vector,
    enforce,
    verify_agg,
    verify_evj,
    verify_evp,
    verify_gcl,
    verify_idx,
    verify_pipeline,
    verify_scl,
    verify_vector,
)
from repro.beecheck.report import (
    BeecheckError,
    Finding,
    RoutineReport,
    SweepReport,
)

__all__ = [
    "BeecheckError",
    "Finding",
    "RoutineReport",
    "SweepReport",
    "check_agg",
    "check_evj",
    "check_evp",
    "check_gcl",
    "check_idx",
    "check_pipeline",
    "check_scl",
    "check_vector",
    "enforce",
    "verify_agg",
    "verify_evj",
    "verify_evp",
    "verify_gcl",
    "verify_idx",
    "verify_pipeline",
    "verify_scl",
    "verify_vector",
]
