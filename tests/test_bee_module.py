"""Tests for the generic bee module: cache, collector, data sections,
persistence, placement, settings."""

import pytest

from repro.bees import (
    BeeCache,
    BeeCollector,
    BeeMaker,
    BeePlacementOptimizer,
    BeeSettings,
    DataSectionStore,
    GenericBeeModule,
    ICacheModel,
    SLAB_SIZE,
    SOFT_CAP,
)
from repro.cost import Ledger
from repro.cost import constants as C
from repro.engine import expr as E
from repro.storage import TupleLayout


class TestBeeSettings:
    def test_stock_all_off(self):
        settings = BeeSettings.stock()
        assert not settings.any_enabled
        assert settings.label() == "stock"

    def test_all_bees(self):
        settings = BeeSettings.all_bees()
        assert settings.gcl and settings.scl and settings.evp
        assert settings.evj and settings.tuple_bees
        assert settings.label() == "GCL+SCL+EVP+EVJ+TB"

    def test_with_routines(self):
        settings = BeeSettings.stock().with_routines("gcl", "evp")
        assert settings.gcl and settings.evp
        assert not settings.scl

    def test_with_unknown_routine(self):
        with pytest.raises(ValueError):
            BeeSettings.stock().with_routines("jit")

    def test_enabling(self):
        settings = BeeSettings.relation_bees().enabling(evp=True)
        assert settings.gcl and settings.scl and settings.evp

    def test_frozen(self):
        with pytest.raises(Exception):
            BeeSettings.stock().gcl = True


class TestDataSections:
    def test_get_or_create_dedupes(self):
        store = DataSectionStore("r", ("a",))
        first = store.get_or_create(("x",))
        again = store.get_or_create(("x",))
        other = store.get_or_create(("y",))
        assert first == again == 0
        assert other == 1
        assert len(store) == 2

    def test_get_by_bee_id(self):
        store = DataSectionStore("r", ("a", "b"))
        bee_id = store.get_or_create(("x", "y"))
        assert store.get(bee_id) == ("x", "y")

    def test_get_out_of_range(self):
        store = DataSectionStore("r", ("a",))
        with pytest.raises(IndexError):
            store.get(0)

    def test_slab_growth(self):
        store = DataSectionStore("r", ("a",))
        for i in range(SLAB_SIZE + 5):
            store.get_or_create((i,))
        assert len(store) == SLAB_SIZE + 5
        assert store.as_list() == [(i,) for i in range(SLAB_SIZE + 5)]

    def test_soft_cap_flag(self):
        store = DataSectionStore("r", ("a",))
        for i in range(SOFT_CAP + 1):
            store.get_or_create((i,))
        assert store.overflowed

    def test_memcmp_charging(self):
        ledger = Ledger()
        store = DataSectionStore("r", ("a",))
        store.get_or_create(("x",), ledger)
        create_cost = ledger.total
        assert create_cost >= C.TUPLE_BEE_CLONE
        before = ledger.total
        store.get_or_create(("x",), ledger)
        hit_cost = ledger.total - before
        assert 0 < hit_cost < create_cost


class TestBeeModule:
    def _layout(self, orders_schema, bee_attrs=()):
        return TupleLayout(orders_schema, bee_attrs)

    def test_relation_bee_lifecycle(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        bee = module.create_relation_bee(self._layout(orders_schema))
        assert module.relation_bee("orders") is bee
        module.drop_relation_bee("orders")
        assert module.relation_bee("orders") is None

    def test_evp_memoized_per_expression(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        expression = E.bind(E.Cmp("=", E.Col("x"), E.Const(1)), ["x"])
        first = module.get_evp(expression)
        second = module.get_evp(expression)
        assert first is second

    def test_evj_memoized_by_shape(self):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        assert module.get_evj("inner", 2) is module.get_evj("inner", 2)
        assert module.get_evj("semi", 2) is not module.get_evj("inner", 2)

    def test_tuple_bee_id(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        module.create_relation_bee(
            self._layout(orders_schema, ("o_orderstatus",))
        )
        assert module.tuple_bee_id("orders", ("O",)) == 0
        assert module.tuple_bee_id("orders", ("F",)) == 1
        assert module.tuple_bee_id("orders", ("O",)) == 0

    def test_tuple_bee_id_without_sections(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        module.create_relation_bee(self._layout(orders_schema))
        with pytest.raises(LookupError):
            module.tuple_bee_id("orders", ("O",))

    def test_reconstruction_preserves_sections(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        layout = self._layout(orders_schema, ("o_orderstatus",))
        module.create_relation_bee(layout)
        module.tuple_bee_id("orders", ("O",))
        rebuilt = module.reconstruct_relation_bee(layout)
        assert rebuilt.data_sections.get(0) == ("O",)

    def test_reconstruction_drops_sections_on_attr_change(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        module.create_relation_bee(self._layout(orders_schema, ("o_orderstatus",)))
        module.tuple_bee_id("orders", ("O",))
        rebuilt = module.reconstruct_relation_bee(
            self._layout(orders_schema, ("o_orderpriority",))
        )
        assert len(rebuilt.data_sections) == 0

    def test_statistics(self, orders_schema):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        module.create_relation_bee(self._layout(orders_schema, ("o_orderstatus",)))
        module.tuple_bee_id("orders", ("O",))
        module.get_evj("inner", 1)
        stats = module.statistics()
        assert stats["relation_bees"] == 1
        assert stats["tuple_bees"] == 1
        assert stats["evj_routines"] == 1


class TestBeeCachePersistence:
    def test_save_and_load(self, orders_schema, tmp_path):
        maker = BeeMaker(Ledger())
        cache = BeeCache()
        layout = TupleLayout(orders_schema, ("o_orderstatus",))
        bee = maker.make_relation_bee(layout)
        bee.data_sections.get_or_create(("O",))
        bee.data_sections.get_or_create(("F",))
        cache.put_relation_bee(bee)
        assert cache.save_to(tmp_path) == 1

        fresh = BeeCache()
        loaded = fresh.load_from(tmp_path, BeeMaker(Ledger()), {"orders": layout})
        assert loaded == 1
        restored = fresh.get_relation_bee("orders")
        assert restored.data_sections.get(0) == ("O",)
        assert restored.data_sections.get(1) == ("F",)
        # The reloaded routine still decodes correctly.
        row = [1, 5, "O", 9.9, 100, "2-HIGH", "c", 0, "hi"]
        raw = layout.encode(row, bee_id=0)
        assert restored.gcl.fn(raw, restored.sections_list()) == row

    def test_load_skips_unknown_relations(self, orders_schema, tmp_path):
        maker = BeeMaker(Ledger())
        cache = BeeCache()
        cache.put_relation_bee(
            maker.make_relation_bee(TupleLayout(orders_schema))
        )
        cache.save_to(tmp_path)
        fresh = BeeCache()
        assert fresh.load_from(tmp_path, maker, {}) == 0

    def test_module_flush_and_reload(self, orders_schema, tmp_path):
        module = GenericBeeModule(
            Ledger(), BeeSettings.all_bees(), disk_dir=tmp_path
        )
        layout = TupleLayout(orders_schema)
        module.create_relation_bee(layout)
        assert module.flush_to_disk() == 1
        fresh = GenericBeeModule(
            Ledger(), BeeSettings.all_bees(), disk_dir=tmp_path
        )
        assert fresh.load_from_disk({"orders": layout}) == 1

    def test_flush_without_dir_raises(self):
        module = GenericBeeModule(Ledger(), BeeSettings.all_bees())
        with pytest.raises(RuntimeError):
            module.flush_to_disk()


class TestCollector:
    def test_sweep(self, orders_schema):
        maker = BeeMaker(Ledger())
        cache = BeeCache()
        cache.put_relation_bee(
            maker.make_relation_bee(TupleLayout(orders_schema))
        )
        collector = BeeCollector(cache)
        assert collector.sweep({"orders"}) == 0
        assert collector.sweep(set()) == 1
        assert cache.get_relation_bee("orders") is None

    def test_removes_disk_file(self, orders_schema, tmp_path):
        maker = BeeMaker(Ledger())
        cache = BeeCache()
        cache.put_relation_bee(
            maker.make_relation_bee(TupleLayout(orders_schema))
        )
        cache.save_to(tmp_path)
        collector = BeeCollector(cache, disk_dir=tmp_path)
        collector.collect_relation("orders")
        assert not (tmp_path / "orders.bee.json").exists()

    def test_query_bee_budget(self):
        cache = BeeCache()
        collector = BeeCollector(cache, query_bee_budget=3)
        from repro.bees.maker import QueryBee

        for i in range(5):
            cache.put_query_bee(QueryBee(f"q{i}"))
        assert collector.trim_query_bees() == 2
        assert list(cache.query_bees) == ["q2", "q3", "q4"]


class TestPlacement:
    def test_icache_geometry(self):
        model = ICacheModel(size=32768, line=64, assoc=4)
        assert model.n_sets == 128

    def test_optimized_not_worse_than_naive(self):
        optimizer = BeePlacementOptimizer()
        bees = [(f"b{i}", 256 + 128 * i, 1.0 + i) for i in range(10)]
        naive = optimizer.evaluate(optimizer.naive_placement(bees))
        optimized = optimizer.evaluate(optimizer.optimize(bees))
        assert optimized["added_conflict"] <= naive["added_conflict"] + 1e-9

    def test_optimized_regions_do_not_overlap(self):
        optimizer = BeePlacementOptimizer()
        bees = [(f"b{i}", 512, 2.0) for i in range(6)]
        placed = sorted(optimizer.optimize(bees), key=lambda r: r.start)
        for a, b in zip(placed, placed[1:]):
            assert a.start + a.size <= b.start

    def test_effect_is_small(self):
        """The paper's observation: placement effects are ~trivial."""
        optimizer = BeePlacementOptimizer()
        bees = [(f"b{i}", 600, 1.5) for i in range(8)]
        report = optimizer.evaluate(optimizer.optimize(bees))
        assert report["miss_rate_delta"] < 0.01
