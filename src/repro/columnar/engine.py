"""Vectorized column-scan pipeline with micro-specialization hooks.

Demonstrates the paper's orthogonality claim (Sections I, VII, VIII):
micro-specialization applies to a column-oriented architecture just as it
does to the row store.  The pipeline is scan -> filter -> aggregate over
column chunks; two code paths exist for each stage:

* **generic (vectorized)** — MonetDB-style execution: per-chunk primitive
  dispatch, one pass per expression node with intermediate result
  vectors, per-value column decode with a width switch;
* **specialized** — a **CDL** ("ColumnsToVectors") bee routine generated
  per (relation, column set) that block-copies typed buffers, plus a
  fused predicate kernel (one generated pass, no intermediates — the
  columnar analog of EVP).

The generic columnar baseline is already much cheaper per value than the
row store's interpreted `ExecQual`, so the specialization gains here are
the *incremental* ones the paper predicts for column stores — smaller
than row-store gains but still present.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bees.routines.base import BeeRoutine, compile_routine
from repro.bees.routines.evp import generate_evp
from repro.cost import constants as C
from repro.cost.ledger import Ledger
from repro.engine.expr import Expr, bind, is_bound
from repro.columnar.store import ColumnStore

CHUNK = 1024


def count_nodes(expr: Expr) -> int:
    """Number of nodes in an expression tree (primitive count)."""
    return 1 + sum(count_nodes(child) for child in expr.children())


def generate_cdl(
    store: ColumnStore, column_names: list[str], ledger: Ledger, fn_name: str
) -> BeeRoutine:
    """Generate the CDL routine: typed block extraction of a column set."""
    if not column_names:
        raise ValueError("CDL needs at least one column")
    cost = C.COL_CHUNK_OVERHEAD
    namespace: dict = {
        "_charge": ledger.charge_fn,
        "_COST": cost,
        "_PER_VALUE": C.COL_DECODE_SPEC * len(column_names),
    }
    lines = [
        f"def {fn_name}(store, start, end):",
        '    """Specialized column-chunk extraction (generated)."""',
        f"    _charge({fn_name!r}, _COST + _PER_VALUE * (end - start))",
        "    cols = store.columns",
    ]
    outs = []
    for i, name in enumerate(column_names):
        sql_type = store.column(name).sql_type
        if sql_type.struct_fmt == "B":
            lines.append(
                f"    v{i} = [bool(b) for b in cols[{name!r}].data[start:end]]"
            )
        elif sql_type.struct_fmt:
            # Typed block copy: array slicing + tolist is the Python
            # analog of a memcpy of the packed column page.
            lines.append(f"    v{i} = cols[{name!r}].data[start:end].tolist()")
        else:
            lines.append(f"    v{i} = cols[{name!r}].data[start:end]")
        outs.append(f"v{i}")
    lines.append(f"    return ({', '.join(outs)},)")
    source = "\n".join(lines) + "\n"
    fn = compile_routine(source, fn_name, namespace)
    return BeeRoutine(name=fn_name, fn=fn, cost=cost, source=source)


@dataclass
class ColumnarQueryResult:
    """Result + accounting for one columnar aggregate query."""

    value: float | int
    rows_scanned: int
    rows_passed: int
    instructions: int


class ColumnarExecutor:
    """Chunked scan -> filter -> sum pipeline over a column store."""

    def __init__(self, store: ColumnStore, ledger: Ledger | None = None,
                 specialized: bool = False) -> None:
        self.store = store
        self.ledger = ledger or Ledger()
        self.specialized = specialized
        self._cdl_cache: dict[tuple[str, ...], BeeRoutine] = {}
        self._kernel_cache: dict[int, tuple[Expr, BeeRoutine]] = {}

    # -- decode stage ------------------------------------------------------------

    def _chunk_reader(self, column_names: list[str]):
        if not self.specialized:
            columns = [self.store.column(name) for name in column_names]

            def read(start: int, end: int):
                return tuple(
                    col.decode_chunk_generic(start, end, self.ledger)
                    for col in columns
                )

            return read
        key = tuple(column_names)
        routine = self._cdl_cache.get(key)
        if routine is None:
            routine = generate_cdl(
                self.store, column_names, self.ledger,
                f"CDL_{self.store.schema.name}_{len(self._cdl_cache)}",
            )
            self._cdl_cache[key] = routine

        def read(start: int, end: int):
            return routine.fn(self.store, start, end)

        return read

    # -- predicate stage -----------------------------------------------------------

    def _predicate(self, qual: Expr, columns: list[str]):
        """Returns ``(per_chunk_charge_fn, per_row_test_fn)``."""
        if not is_bound(qual):
            bind(qual, columns)
        nodes = count_nodes(qual)
        ledger = self.ledger
        if not self.specialized:
            # Vectorized generic: one primitive per node, intermediates.
            def charge_chunk(n_values: int) -> None:
                ledger.charge_fn(
                    "vectorized_qual",
                    C.VECTOR_OP_DISPATCH * nodes
                    + C.VECTOR_OP_PER_VALUE * nodes * n_values,
                )

            return charge_chunk, qual.evaluate

        entry = self._kernel_cache.get(id(qual))
        if entry is None or entry[0] is not qual:
            # The fused kernel reuses EVP codegen for the row test; its
            # cost is charged per chunk below, so a charge-free variant
            # is built against a throwaway ledger.
            silent = Ledger()
            routine = generate_evp(
                qual, silent, f"FUSED_{len(self._kernel_cache)}", True
            )
            self._kernel_cache[id(qual)] = (qual, routine)
        else:
            routine = entry[1]

        def charge_chunk(n_values: int) -> None:
            ledger.charge_fn(
                routine.name,
                C.FUSED_DISPATCH + C.FUSED_PER_VALUE * nodes * n_values,
            )

        return charge_chunk, routine.fn

    # -- the query -------------------------------------------------------------------

    def sum_where(
        self, qual: Expr, qual_columns: list[str], sum_expr: Expr,
        sum_columns: list[str],
    ) -> ColumnarQueryResult:
        """``SELECT sum(<expr>) WHERE <qual>`` over the column store.

        *qual_columns* / *sum_columns* name the columns each expression
        reads — the column-store planner's projection pushdown; only
        those columns' pages are touched.
        """
        ledger = self.ledger
        before = ledger.snapshot()
        all_columns = list(dict.fromkeys(qual_columns + sum_columns))
        read = self._chunk_reader(all_columns)
        charge_qual, test = self._predicate(qual, all_columns)
        if not is_bound(sum_expr):
            bind(sum_expr, all_columns)
        sum_eval = sum_expr.evaluate
        sum_cost = (
            C.AGG_TRANSITION
            + (sum_expr.evp_cost if self.specialized else sum_expr.generic_cost)
        )
        pages = self.store.page_count(all_columns)
        ledger.charge_fn("column_page_access", C.COL_PAGE_ACCESS * pages)

        # Start the accumulator as int so integer sums stay exact — a
        # float accumulator rounds away small addends once BIGINT-scale
        # values (~2^63) enter the sum; Python promotes to float on the
        # first float addend, matching the row engine's SUM semantics.
        total = 0
        passed = 0
        n = len(self.store)
        per_row = C.COL_SCAN_PER_ROW
        for start in range(0, n, CHUNK):
            end = min(start + CHUNK, n)
            vectors = read(start, end)
            n_values = end - start
            charge_qual(n_values)
            ledger.charge(per_row * n_values)
            for i in range(n_values):
                row = [vector[i] for vector in vectors]
                if test(row) is True:
                    ledger.charge(sum_cost)
                    value = sum_eval(row)
                    if value is not None:
                        total += value
                    passed += 1
        delta = ledger.delta_since(before)
        return ColumnarQueryResult(
            value=total,
            rows_scanned=n,
            rows_passed=passed,
            instructions=delta.total,
        )
