"""Morsel-driven parallel tier: equivalence, invalidation, resilience.

The worker pool must return the same rows as the serial tiers (up to
row order and float re-association), observe query-epoch bumps, survive
worker loss and stale snapshots by degrading or retrying, and keep its
mutable state declared in the swarmcheck registry.
"""

from __future__ import annotations

import pickle

import pytest

from repro.bees.settings import BeeSettings
from repro.engine import expr as E
from repro.engine.aggregates import AggSpec
from repro.oracle import rows_equivalent, sorted_canonical
from repro.parallel.coordinator import (
    MORSEL_PAGES,
    MORSELS_PER_WORKER,
    _morsel_ranges,
)
from repro.swarmcheck.registry import lookup
from repro.wagglecheck.rewrite import expr_equal
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import build_tpch_database, generate_rows
from repro.workloads.tpch.queries import QUERIES

# Small enough to load fast, big enough that lineitem clears the
# MIN_PARALLEL_PAGES bypass threshold.
SCALE_FACTOR = 0.002


@pytest.fixture(scope="module")
def tpch():
    rows = generate_rows(TPCHGenerator(SCALE_FACTOR, 0))
    with build_tpch_database(
        BeeSettings.parallelized(), rows=rows, parallel_workers=2
    ) as db:
        yield db


def _serial(db):
    return db.use_settings(db.settings.enabling(parallel=False))


# -- result equivalence ------------------------------------------------------


@pytest.mark.parametrize("number", [1, 3, 6, 14])
def test_parallel_matches_serial(tpch, number):
    parallel_rows = QUERIES[number](tpch)
    with _serial(tpch):
        serial_rows = QUERIES[number](tpch)
    assert rows_equivalent(parallel_rows, serial_rows)


def test_parallel_tier_actually_engages(tpch):
    coordinator = tpch.parallel_coordinator()
    before = coordinator.stats.morsels_dispatched
    QUERIES[6](tpch)
    assert coordinator.stats.morsels_dispatched > before
    assert coordinator.stats.workers_spawned >= 2


def test_small_relation_bypasses_pool(tpch):
    coordinator = tpch.parallel_coordinator()
    before = coordinator.stats.bypassed
    rows = tpch.sql("SELECT r_name FROM region").rows
    assert len(rows) == 5
    assert coordinator.stats.bypassed > before


# -- epoch protocol ----------------------------------------------------------


def test_query_epoch_bump_invalidates_pool(tpch):
    QUERIES[6](tpch)   # warm the pool and sync the epoch
    coordinator = tpch.parallel_coordinator()
    before = coordinator.stats.epoch_invalidations
    tpch.bee_module.invalidate_query_bees()   # the ALTER path
    rows = QUERIES[6](tpch)
    assert coordinator.stats.epoch_invalidations == before + 1
    with _serial(tpch):
        assert rows_equivalent(rows, QUERIES[6](tpch))


# -- chaos: worker loss and stale snapshots ----------------------------------


def test_worker_loss_degrades_not_wrong(tpch):
    coordinator = tpch.parallel_coordinator()
    coordinator.ensure_workers()
    crashes = coordinator.stats.worker_crashes
    degradations = coordinator.stats.degradations
    coordinator._chaos_kill_next = True
    rows = QUERIES[6](tpch)
    assert coordinator.stats.worker_crashes > crashes
    assert coordinator.stats.degradations > degradations
    with _serial(tpch):
        assert rows_equivalent(rows, QUERIES[6](tpch))


def test_stale_snapshot_reships_and_retries(tpch):
    coordinator = tpch.parallel_coordinator()
    QUERIES[6](tpch)   # warm snapshots so staleness must be forced
    retries = coordinator.stats.stale_retries
    coordinator._chaos_stale_next = True
    rows = QUERIES[6](tpch)
    assert coordinator.stats.stale_retries > retries
    with _serial(tpch):
        assert rows_equivalent(rows, QUERIES[6](tpch))


# -- stats surface -----------------------------------------------------------


def test_stats_snapshot_is_a_copy(tpch):
    QUERIES[6](tpch)
    snapshot = tpch.stats()["parallel"]
    assert snapshot["statements"] > 0
    snapshot["statements"] = -1
    assert tpch.stats()["parallel"]["statements"] != -1


# -- mergeable aggregate accumulators ----------------------------------------


@pytest.mark.parametrize("func", ["count", "sum", "avg", "min", "max"])
def test_agg_state_merge_equals_whole(func):
    arg = None if func == "count" else E.Col("x", 0)
    spec = AggSpec(func, arg)
    values = [3, None, 7, 1, None, 4, 10, 2]
    whole = spec.make_state()
    left, right = spec.make_state(), spec.make_state()
    for i, value in enumerate(values):
        if func != "count" and value is None:
            continue   # count(expr) NULL-skipping happens upstream
        whole.update(value)
        (left if i < 4 else right).update(value)
    left.merge(right)
    assert left.result() == whole.result()


def test_distinct_state_merge_unions():
    spec = AggSpec("count", E.Col("x", 0), distinct=True)
    left, right = spec.make_state(), spec.make_state()
    for value in (1, 2, 2, 3):
        left.update(value)
    for value in (3, 4, 1):
        right.update(value)
    left.merge(right)
    assert left.result() == 4


def test_merge_of_empty_partial_preserves_null_result():
    spec = AggSpec("max", E.Col("x", 0))
    left, right = spec.make_state(), spec.make_state()
    left.merge(right)
    assert left.result() is None


# -- the worker protocol's pickled surface -----------------------------------


def test_expr_pickle_roundtrip():
    exprs = [
        E.Cmp("<", E.Col("a", 0), E.Const(3)),
        E.Arith("*", E.Col("b", 1), E.Arith("-", E.Const(1), E.Col("c", 2))),
        E.Func("extract_year", E.Col("d", 3)),
        E.And(
            E.Between(E.Col("e", 4), 1, 9),
            E.Not(E.IsNull(E.Col("f", 5))),
        ),
    ]
    for expr in exprs:
        clone = pickle.loads(pickle.dumps(expr))
        assert expr_equal(expr, clone)


# -- morsel geometry ---------------------------------------------------------


def test_morsel_ranges_cover_and_coalesce():
    for n_pages in (16, 17, 100, 1000):
        for workers in (1, 2, 4):
            ranges = _morsel_ranges(n_pages, workers)
            assert ranges[0][0] == 0 and ranges[-1][1] == n_pages
            assert all(
                a[1] == b[0] for a, b in zip(ranges, ranges[1:])
            )
            # every morsel but the last amortizes at least a full page run
            assert all(hi - lo >= MORSEL_PAGES for lo, hi in ranges[:-1])
            # adaptive stride: bounded by ~MORSELS_PER_WORKER per worker
            # (or by the MORSEL_PAGES floor for small inputs)
            cap = max(
                MORSELS_PER_WORKER * workers,
                -(-n_pages // MORSEL_PAGES),
            )
            assert len(ranges) <= cap


# -- comparison helpers ------------------------------------------------------


def test_rows_equivalent_is_order_insensitive_and_float_tolerant():
    a = [(1, 1.0000000001), (2, 3.5)]
    b = [(2, 3.5), (1, 1.0)]
    assert rows_equivalent(a, b)


def test_rows_equivalent_is_type_exact():
    assert not rows_equivalent([(1,)], [(1.0,)])
    assert not rows_equivalent([(1.0,)], [(1.5,)])
    assert not rows_equivalent([(1,)], [(1,), (1,)])


def test_sorted_canonical_groups_float_noise():
    rows = [(0.1 + 0.2,), (0.3,)]
    ordered = sorted_canonical(rows)
    assert len(ordered) == 2   # both kept, adjacent under the sort key


# -- the shared-state contract -----------------------------------------------


def test_registry_declares_parallel_coordinator_state():
    for attr in ("_workers", "_shipped", "_epoch", "_stmt_seq"):
        entry = lookup("ParallelCoordinator", attr)
        assert entry is not None, attr
        assert entry.guard == "parallel_lock"
    assert (
        lookup("ParallelCoordinator", "_epoch").epoch
        == "GenericBeeModule.query_epoch"
    )
    assert lookup("Database", "_parallel") is not None
