"""Tests for the ``python -m repro.bench`` experiment CLI."""

import subprocess
import sys

import pytest

from repro.bench.cli import run


class TestCLIInProcess:
    def test_case_study_only(self, capsys):
        assert run(["--sf", "0.001", "--only", "case-study"]) == 0
        out = capsys.readouterr().out
        assert "Section II case study" in out
        assert "paper ~340" in out

    def test_fig8_only(self, capsys):
        assert run(["--sf", "0.001", "--only", "fig8"]) == 0
        out = capsys.readouterr().out
        assert "bulk-loading improvement" in out
        assert "lineitem" in out

    def test_fig7_only(self, capsys):
        assert run(["--sf", "0.001", "--only", "fig7"]) == 0
        out = capsys.readouterr().out
        assert "GCL+EVP+EVJ" in out

    def test_tpcc_only(self, capsys):
        assert run([
            "--only", "tpcc", "--warehouses", "1", "--transactions", "30",
        ]) == 0
        out = capsys.readouterr().out
        assert "TPC-C throughput" in out
        assert "query_only" in out

    def test_bad_experiment_rejected(self):
        with pytest.raises(SystemExit):
            run(["--only", "fig99"])


def test_cli_as_module():
    result = subprocess.run(
        [
            sys.executable, "-m", "repro.bench",
            "--sf", "0.001", "--only", "case-study",
        ],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0
    assert "case study" in result.stdout
