"""Beeshield: registry state machine, guarded fallback, quarantine
lifecycle, per-statement timeouts, torn-WAL recovery, and the chaos
campaign's own plumbing."""

from __future__ import annotations

import pytest

from repro.bees.settings import BeeSettings
from repro.bees.walcache import BeeCacheWAL
from repro.db import Database
from repro.resilience import QueryTimeout, ResilienceRegistry
from repro.resilience.campaign import run_site, run_wal_lane
from repro.resilience.chaos import SITES, ChaosInjector, _raising_copy
from repro.resilience.registry import (
    BACKOFF_BASE,
    BACKOFF_MAX,
    CONSECUTIVE_FAILURES,
    EVENT_LOG_LIMIT,
)


def _fail(registry, key="GCL_t", n=1):
    for _ in range(n):
        health = registry.record_failure(key, site="gcl", kind="exception")
    return health


class TestRegistry:
    def test_quarantine_after_consecutive_failures(self):
        registry = ResilienceRegistry()
        health = _fail(registry, n=CONSECUTIVE_FAILURES - 1)
        assert not health.quarantined
        health = _fail(registry)
        assert health.quarantined
        assert health.window == BACKOFF_BASE
        assert registry.quarantined() == ["GCL_t"]

    def test_success_resets_consecutive(self):
        registry = ResilienceRegistry()
        _fail(registry, n=CONSECUTIVE_FAILURES - 1)
        registry.record_success("GCL_t")
        health = _fail(registry)
        assert health.consecutive == 1
        assert not health.quarantined

    def test_backoff_window_doubles_and_caps(self):
        registry = ResilienceRegistry()
        health = _fail(registry, n=CONSECUTIVE_FAILURES)
        expected = BACKOFF_BASE
        for _ in range(8):
            assert health.window == min(expected, BACKOFF_MAX)
            # Drain the window: each denied admission counts down.
            for _ in range(health.window - 1):
                assert not registry.admit("GCL_t")
            assert registry.admit("GCL_t")     # the probe
            assert health.probing
            _fail(registry)                    # probe fails: re-quarantine
            assert health.quarantined
            expected *= 2
        assert health.window == BACKOFF_MAX

    def test_probe_success_readmits(self):
        registry = ResilienceRegistry()
        health = _fail(registry, n=CONSECUTIVE_FAILURES)
        for _ in range(health.window):
            registry.admit("GCL_t")
        assert health.probing
        registry.record_success("GCL_t")
        assert not health.probing
        assert not health.quarantined
        assert registry.admit("GCL_t")

    def test_clear_prefix_drops_matching_health(self):
        registry = ResilienceRegistry()
        _fail(registry, key="GCL_orders", n=3)
        _fail(registry, key="EVP:Cmp('<')", n=3)
        assert registry.clear_prefix("GCL_orders") == 1
        assert registry.quarantined() == ["EVP:Cmp('<')"]

    def test_event_log_bounded(self):
        registry = ResilienceRegistry()
        for i in range(EVENT_LOG_LIMIT + 50):
            registry.record_event("tick", n=i)
        events = registry.report()["events"]
        assert len(events) == EVENT_LOG_LIMIT
        assert events[-1]["n"] == EVENT_LOG_LIMIT + 49


def _small_db(settings=None) -> Database:
    db = Database(settings or BeeSettings.all_bees())
    db.sql(
        "CREATE TABLE t (id int NOT NULL, kind char(4) NOT NULL, "
        "qty int NOT NULL, ANNOTATE (kind))"
    )
    db.copy_from(
        "t", [[i, ["AAAA", "BBBB"][i % 2], i * 3 % 50] for i in range(40)]
    )
    return db


def _select(db, **kwargs):
    return sorted(
        tuple(row) for row in db.sql(
            "SELECT id, qty FROM t WHERE qty < 25", **kwargs
        ).rows
    )


class TestGuardedFallback:
    def test_raising_gcl_degrades_to_generic(self):
        db = _small_db()
        expected = _select(db, bees=False)
        rel = db.relation("t")
        rel.bee.gcl = _raising_copy(rel.bee.gcl, "test", ChaosInjector())
        assert _select(db) == expected
        report = db.resilience.report()
        assert report["faults"] > 0
        assert "GCL_t" in report["bees"]

    def test_raising_scl_falls_back_per_row(self):
        db = _small_db()
        rel = db.relation("t")
        rel.bee.scl = _raising_copy(rel.bee.scl, "test", ChaosInjector())
        db.insert("t", [99, "CCCC", 7])
        rows = db.sql("SELECT qty FROM t WHERE id = 99").rows
        assert [tuple(r) for r in rows] == [(7,)]
        assert db.resilience.report()["bees"]["SCL_t"]["failures"] > 0

    def test_statement_succeeds_with_unattributable_fault(self):
        # A fault with no <bee:> frame degrades the whole statement to
        # generic execution rather than raising to the caller.
        db = _small_db()
        expected = _select(db, bees=False)
        rel = db.relation("t")
        inner = rel.bee.gcl.fn

        def plain_wrapper(raw, sections):   # no bee-attributable frame
            raise RuntimeError("anonymous fault")

        rel.bee.gcl.fn = plain_wrapper
        assert _select(db) == expected
        bees = db.resilience.report()["bees"]
        assert "STMT:unattributed" in bees
        rel.bee.gcl.fn = inner

    def test_shield_off_exposes_raw_fault(self):
        db = _small_db(BeeSettings.all_bees().enabling(shield=False))
        rel = db.relation("t")
        rel.bee.gcl = _raising_copy(rel.bee.gcl, "test", ChaosInjector())
        from repro.resilience.errors import ChaosFault

        with pytest.raises(ChaosFault):
            _select(db)


class TestQuarantineLifecycle:
    def test_consecutive_faults_quarantine_then_probe_readmits(self):
        db = _small_db()
        expected = _select(db, bees=False)
        rel = db.relation("t")
        good = rel.bee.gcl
        rel.bee.gcl = _raising_copy(good, "test", ChaosInjector())

        # Every faulting statement still returns correct rows.
        for _ in range(CONSECUTIVE_FAILURES):
            assert _select(db) == expected
        health = db.resilience.health_or_none("GCL_t")
        assert health.quarantined
        assert health.window == BACKOFF_BASE
        fired_at_quarantine = health.failures

        # While quarantined: admissions denied, bee never invoked.
        for _ in range(health.window - 1):
            assert _select(db) == expected
        assert health.failures == fired_at_quarantine

        # Repair the bee; the next admission is the probe and succeeds.
        rel.bee.gcl = good
        assert _select(db) == expected
        assert not health.quarantined
        assert not health.probing

    def test_failed_probe_doubles_window(self):
        db = _small_db()
        rel = db.relation("t")
        rel.bee.gcl = _raising_copy(rel.bee.gcl, "test", ChaosInjector())
        expected = _select(db, bees=False)
        health = None
        for _ in range(CONSECUTIVE_FAILURES + BACKOFF_BASE + 1):
            assert _select(db) == expected
            health = db.resilience.health_or_none("GCL_t")
        assert health.quarantines == 2
        assert health.window == BACKOFF_BASE * 2

    def test_drop_table_clears_quarantine(self):
        db = _small_db()
        _fail(db.resilience, key="GCL_t", n=CONSECUTIVE_FAILURES)
        _fail(db.resilience, key="SCL_t", n=CONSECUTIVE_FAILURES)
        assert db.resilience.quarantined() == ["GCL_t", "SCL_t"]
        db.drop_table("t")
        assert db.resilience.quarantined() == []

    def test_invalidation_clears_query_bee_quarantine(self):
        # The hiveaudit invalidation edge (ALTER and friends) must also
        # clear quarantine state for query bees: the routines it
        # described no longer exist.
        db = _small_db()
        _fail(db.resilience, key="EVP:Cmp('<', qty, 25)", n=3)
        _fail(db.resilience, key="GCL_t", n=3)
        db.bee_module.invalidate_query_bees()
        assert db.resilience.quarantined() == ["GCL_t"]

    def test_stats_exposes_resilience_report(self):
        db = _small_db()
        _fail(db.resilience, key="GCL_t", n=1)
        stats = db.stats()
        assert "bees" in stats and "resilience" in stats
        assert stats["resilience"]["faults"] == 1
        assert "gcl/exception" in stats["resilience"]["by_site"]


class TestQueryTimeout:
    def _join_db(self) -> Database:
        db = Database(BeeSettings.all_bees())
        db.sql("CREATE TABLE t1 (k1 int NOT NULL, a int NOT NULL)")
        db.sql("CREATE TABLE t2 (k2 int NOT NULL, b int NOT NULL)")
        # All keys equal: the equi-join degenerates to a cross product
        # (400 x 400 = 160k output rows).
        db.copy_from("t1", [[1, i] for i in range(400)])
        db.copy_from("t2", [[1, i] for i in range(400)])
        return db

    def test_pathological_join_times_out_and_db_stays_usable(self):
        db = self._join_db()
        before = db.ledger.total
        with pytest.raises(QueryTimeout):
            db.sql(
                "SELECT a, b FROM t1 JOIN t2 ON k1 = k2", timeout=0.001
            )
        assert db.ledger.total == before      # ledger rolled back
        assert db._deadline is None           # statement budget cleared
        rows = db.sql("SELECT a FROM t1 WHERE a < 3").rows
        assert sorted(tuple(r) for r in rows) == [(0,), (1,), (2,)]

    def test_generous_timeout_passes(self):
        db = self._join_db()
        result = db.sql(
            "SELECT a, b FROM t1 JOIN t2 ON k1 = k2 WHERE a < 1 AND b < 1",
            timeout=60.0,
        )
        assert [tuple(r) for r in result.rows] == [(0, 0)]


class TestTornWAL:
    def test_every_truncation_offset_of_final_record(self, tmp_path):
        """Crash mid-append at every byte of the final record: recovery
        must keep all committed records and log the truncation."""
        registry = ResilienceRegistry()
        reference = tmp_path / "ref.wal"
        wal = BeeCacheWAL(reference)
        wal.log_delete("alpha")
        wal.commit()
        wal.log_delete("beta")
        text = reference.read_text()
        body = text[:-1]
        start = body.rfind("\n") + 1
        for cut in range(start + 1, len(text) + 1):
            path = tmp_path / f"cut_{cut}.wal"
            path.write_text(text[:cut])
            reopened = BeeCacheWAL(path, registry)
            records = reopened.committed_records()
            assert [r["relation"] for r in records] == ["alpha"], (
                f"committed records lost at cut={cut}"
            )
        # Every true tear (unterminated partial) was logged.
        assert registry.wal_truncations >= len(text) - start - 1

    def test_repair_reterminates_torn_newline(self, tmp_path):
        path = tmp_path / "t.wal"
        wal = BeeCacheWAL(path)
        wal.log_delete("alpha")
        wal.commit()
        path.write_text(path.read_text()[:-1])   # only the newline torn
        reopened = BeeCacheWAL(path)
        assert [r["relation"] for r in reopened.committed_records()] == ["alpha"]
        assert reopened.path.read_text().endswith("\n")

    def test_midfile_corruption_still_raises(self, tmp_path):
        from repro.bees.walcache import WALCorruptionError

        path = tmp_path / "t.wal"
        wal = BeeCacheWAL(path)
        wal.log_delete("alpha")
        wal.commit()
        path.write_text(path.read_text().replace("delete", "detele"))
        with pytest.raises(WALCorruptionError):
            BeeCacheWAL(path).committed_records()

    def test_wal_lane(self):
        lane = run_wal_lane(seed=7, rounds=4)
        assert lane["ok"]
        assert lane["truncations"] == 4


class TestServerLane:
    def test_server_sites_are_catalogued(self):
        server_sites = {name for name, s in SITES.items() if s.server}
        assert server_sites == {
            "server-client-disconnect", "server-lock-timeout",
            "server-fsync-fail", "server-kill-mid-commit",
        }

    def test_kill_mid_commit_recovers_prefix_state(self):
        from repro.resilience.serverlane import _lane_kill_mid_commit

        lane = _lane_kill_mid_commit(seed=3)
        assert lane["ok"], lane["failures"]
        assert lane["truncations"] > 0

    def test_fsync_failure_degrades_not_corrupts(self):
        from repro.resilience.serverlane import _lane_fsync_fail

        lane = _lane_fsync_fail(seed=3)
        assert lane["ok"], lane["failures"]
        assert lane["wal_failures"] == 1

    def test_unlatched_selftest_sees_torn_reads(self):
        from repro.resilience.serverlane import run_unlatched_selftest

        verdict = run_unlatched_selftest()
        assert verdict["caught"], verdict
        assert verdict["mismatches"]
        assert verdict["latched_detections"] == []


@pytest.fixture(scope="module")
def tiny_tpch():
    from repro.workloads.tpch.dbgen import TPCHGenerator
    from repro.workloads.tpch.loader import generate_rows

    from repro.resilience.campaign import _expected_outcomes

    rows = generate_rows(TPCHGenerator(0.001, 20120401))
    return rows, _expected_outcomes(rows)


class TestCampaign:
    def test_site_catalog_is_stable(self):
        assert {"gcl-raise", "evp-wrong-type", "stale-epoch",
                "budget-overrun", "section-flip"} <= set(SITES)

    def test_generation_fault_site_passes(self, tiny_tpch):
        rows, expected = tiny_tpch
        result = run_site("evp-gen-raise", rows, expected, seed=1)
        assert result.ok, (result.mismatches, result.escapes)
        assert result.fired > 0

    def test_stale_epoch_site_detects_missed_invalidation(self, tiny_tpch):
        rows, expected = tiny_tpch
        result = run_site("stale-epoch", rows, expected, seed=1)
        assert result.ok, (result.mismatches, result.escapes)

    def test_self_test_catches_unshielded_escape(self, tiny_tpch):
        rows, expected = tiny_tpch
        from repro.resilience.campaign import _site_settings

        unshielded = _site_settings(SITES["gcl-raise"]).enabling(shield=False)
        result = run_site(
            "gcl-raise", rows, expected, seed=1, settings=unshielded
        )
        assert result.escapes, "unshielded raising bee must escape"
