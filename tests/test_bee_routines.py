"""Tests for GCL/SCL/EVP/EVJ code generation — correctness and costs."""

import pytest

from repro.bees.routines.evj import GENERIC_JOIN, instantiate_evj
from repro.bees.routines.evp import generate_evp
from repro.bees.routines.gcl import gcl_cost, generate_gcl
from repro.bees.routines.scl import generate_scl, scl_cost
from repro.catalog import BOOL, INT4, INT8, char, make_schema, varchar
from repro.cost import Ledger
from repro.cost import constants as C
from repro.engine import expr as E
from repro.storage import TupleLayout


@pytest.fixture
def ledger():
    return Ledger()


class TestGCL:
    def test_matches_reference_decode(self, orders_schema, orders_row, ledger):
        layout = TupleLayout(orders_schema)
        routine = generate_gcl(layout, ledger, "GCL_t")
        raw = layout.encode(orders_row)
        assert routine.fn(raw, None) == orders_row

    def test_tuple_bee_holes(self, orders_schema, orders_row, ledger):
        layout = TupleLayout(
            orders_schema, ("o_orderstatus", "o_orderpriority")
        )
        routine = generate_gcl(layout, ledger, "GCL_t")
        raw = layout.encode(orders_row, bee_id=1)
        sections = [("X", "other"), ("O", "5-LOW")]
        assert routine.fn(raw, sections) == orders_row

    def test_null_slow_path(self, mixed_schema, ledger):
        layout = TupleLayout(mixed_schema)
        routine = generate_gcl(layout, ledger, "GCL_t")
        row = ["v", 1, "ab", None, None, 2.5]
        raw = layout.encode(row, [value is None for value in row])
        assert routine.fn(raw, None) == row

    def test_charges_cost(self, orders_schema, orders_row, ledger):
        layout = TupleLayout(orders_schema)
        routine = generate_gcl(layout, ledger, "GCL_t")
        raw = layout.encode(orders_row)
        before = ledger.total
        routine.fn(raw, None)
        assert ledger.total - before == routine.cost

    def test_cost_calibration_orders(self, orders_schema):
        """Paper Section II: specialized GCL ~146 instructions on orders."""
        cost = gcl_cost(TupleLayout(orders_schema))
        assert 120 <= cost <= 170

    def test_cost_cheaper_with_tuple_bees(self, orders_schema):
        plain = gcl_cost(TupleLayout(orders_schema))
        hollow = gcl_cost(
            TupleLayout(orders_schema, ("o_orderstatus", "o_orderpriority"))
        )
        assert hollow < plain

    def test_source_is_listing2_shaped(self, orders_schema, ledger):
        layout = TupleLayout(
            orders_schema, ("o_orderstatus", "o_orderpriority")
        )
        routine = generate_gcl(layout, ledger, "GCL_orders")
        assert "def GCL_orders(raw, sections):" in routine.source
        assert "_bv = sections[" in routine.source      # beeID data section
        assert "unpack_from" in routine.source          # folded fixed prefix

    def test_leading_varlena_schema(self, ledger):
        schema = make_schema("t", [("v", varchar(9)), ("i", INT4)])
        layout = TupleLayout(schema)
        routine = generate_gcl(layout, ledger, "GCL_t")
        raw = layout.encode(["abc", 7])
        assert routine.fn(raw, None) == ["abc", 7]

    def test_single_column(self, ledger):
        schema = make_schema("t", [("i", INT8)])
        layout = TupleLayout(schema)
        routine = generate_gcl(layout, ledger, "GCL_t")
        assert routine.fn(layout.encode([-5]), None) == [-5]

    def test_bool_column(self, ledger):
        schema = make_schema("t", [("b", BOOL), ("v", varchar(4)), ("c", BOOL)])
        layout = TupleLayout(schema)
        routine = generate_gcl(layout, ledger, "GCL_t")
        assert routine.fn(layout.encode([True, "x", False]), None) == [
            True, "x", False,
        ]

    def test_all_attrs_bee_resident(self, ledger):
        schema = make_schema("t", [("a", char(1)), ("b", char(2))])
        layout = TupleLayout(schema, ("a", "b"))
        routine = generate_gcl(layout, ledger, "GCL_t")
        raw = layout.encode(["x", "yy"], bee_id=0)
        assert routine.fn(raw, [("x", "yy")]) == ["x", "yy"]


class TestSCL:
    def test_matches_reference_encode(self, orders_schema, orders_row, ledger):
        layout = TupleLayout(orders_schema)
        routine = generate_scl(layout, ledger, "SCL_t")
        assert routine.fn(orders_row, 0) == layout.encode(orders_row)

    def test_tuple_bee_encode(self, orders_schema, orders_row, ledger):
        layout = TupleLayout(
            orders_schema, ("o_orderstatus", "o_orderpriority")
        )
        routine = generate_scl(layout, ledger, "SCL_t")
        assert routine.fn(orders_row, 9) == layout.encode(
            orders_row, bee_id=9
        )

    def test_null_slow_path(self, mixed_schema, ledger):
        layout = TupleLayout(mixed_schema)
        routine = generate_scl(layout, ledger, "SCL_t")
        row = ["v", 1, "ab", None, None, 2.5]
        expected = layout.encode(row, [value is None for value in row])
        assert routine.fn(row, 0) == expected

    def test_cost_calibration(self, orders_schema):
        cost = scl_cost(TupleLayout(orders_schema))
        assert 0 < cost < 200

    def test_round_trip_through_gcl(self, orders_schema, orders_row, ledger):
        layout = TupleLayout(orders_schema)
        scl = generate_scl(layout, ledger, "SCL_t")
        gcl = generate_gcl(layout, ledger, "GCL_t")
        assert gcl.fn(scl.fn(orders_row, 0), None) == orders_row


class TestEVP:
    def _routine(self, expression, columns, not_null=False):
        E.bind(expression, columns)
        return generate_evp(expression, Ledger(), "EVP_t", not_null)

    def test_simple_predicate(self):
        routine = self._routine(
            E.Cmp(">", E.Col("x"), E.Const(10)), ["x"], not_null=True
        )
        assert routine.fn([11]) is True
        assert routine.fn([10]) is False

    def test_guarded_null_handling(self):
        routine = self._routine(E.Cmp(">", E.Col("x"), E.Const(10)), ["x"])
        assert routine.fn([None]) is None

    def test_guarded_and(self):
        expression = E.And(
            E.Cmp(">", E.Col("x"), E.Const(0)),
            E.Cmp("<", E.Col("y"), E.Const(10)),
        )
        routine = self._routine(expression, ["x", "y"])
        assert routine.fn([1, 5]) is True
        assert routine.fn([-1, 5]) is False
        assert routine.fn([None, 5]) is None
        assert routine.fn([None, 50]) is False   # False dominates unknown

    def test_like_in_between_case(self):
        expression = E.And(
            E.Like(E.Col("s"), "PROMO%"),
            E.InList(E.Col("m"), ["AIR", "MAIL"]),
            E.Between(E.Col("q"), 1, 10),
            E.Cmp(
                "=",
                E.Case(
                    [(E.Cmp(">", E.Col("q"), E.Const(5)), E.Const("hi"))],
                    E.Const("lo"),
                ),
                E.Const("hi"),
            ),
        )
        for not_null in (False, True):
            routine = self._routine(
                E.bind(expression, ["s", "m", "q"]), ["s", "m", "q"], not_null
            )
            assert routine.fn(["PROMO X", "AIR", 7]) is True
            assert routine.fn(["PROMO X", "AIR", 3]) is False
            assert routine.fn(["BASIC", "AIR", 7]) is False

    def test_unbound_rejected(self):
        with pytest.raises(ValueError):
            generate_evp(E.Col("x"), Ledger(), "EVP_t")

    def test_charges_specialized_cost(self):
        ledger = Ledger()
        expression = E.bind(E.Cmp("=", E.Col("x"), E.Const(1)), ["x"])
        routine = generate_evp(expression, ledger, "EVP_t", True)
        before = ledger.total
        routine.fn([1])
        charged = ledger.total - before
        assert charged == routine.cost
        assert charged < expression.generic_cost

    def test_constants_inlined_in_source(self):
        expression = E.bind(E.Cmp("=", E.Col("x"), E.Const(42)), ["x"])
        routine = generate_evp(expression, Ledger(), "EVP_t", True)
        assert "42" in routine.source


class TestEVJ:
    def test_templates_per_join_type(self):
        for join_type in ("inner", "left", "semi", "anti"):
            routine = instantiate_evj(join_type, 2, f"EVJ_{join_type}")
            assert routine.join_type == join_type
            assert routine.cost_per_compare == C.EVJ_DISPATCH + 2 * C.EVJ_COMPARE
            assert join_type in routine.source

    def test_cheaper_than_generic(self):
        for n_keys in (1, 2, 3):
            specialized = instantiate_evj("inner", n_keys, "EVJ_t")
            assert (
                specialized.cost_per_compare < GENERIC_JOIN.per_compare(n_keys)
            )

    def test_unknown_join_type(self):
        with pytest.raises(ValueError):
            instantiate_evj("full", 1, "EVJ_t")

    def test_negative_keys_rejected(self):
        with pytest.raises(ValueError):
            instantiate_evj("inner", -1, "EVJ_t")
