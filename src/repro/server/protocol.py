"""Hive Gate wire protocol: newline-delimited JSON over TCP.

One connection ↔ one :class:`~repro.server.core.Session`.  The client
sends one request object per line::

    {"sql": "SELECT ...", "timeout": 1.5}

and receives one response line::

    {"ok": true, "status": "SELECT 3", "columns": [...], "rows": [...]}
    {"ok": false, "error": "QueryTimeout", "message": "..."}

Errors are *statement* failures — the connection survives them; the
session only ends when the client disconnects or the listener shuts
down.  A client that disconnects mid-statement does not hurt anyone
else: the handler thread finishes (or fails) the statement, counts a
``disconnects``, closes the session, and exits.  The socket shell does
no engine writes itself — every statement runs through
``HiveServer.execute`` exactly like an in-process session.
"""

from __future__ import annotations

import json
import socket
import threading

from repro.sql.session import SQLResult


class RemoteStatementError(Exception):
    """A statement failed on the server; ``kind`` is the server-side
    exception type name."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


def _encode_value(value):
    # JSON has no tuple/bytes; rows are lists of scalars already.
    if isinstance(value, bytes):
        return value.decode("utf-8", "replace")
    return value


class HiveListener:
    """Threaded socket front-end: one daemon thread per connection."""

    def __init__(self, server, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.server = server
        self._sock = socket.create_server((host, port))
        self.address = self._sock.getsockname()
        self._closed = False
        self._threads: list[threading.Thread] = []
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="hive-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._sock.accept()
            except OSError:
                return  # listener socket closed
            thread = threading.Thread(
                target=self._serve, args=(conn,),
                name="hive-conn", daemon=True,
            )
            thread.start()
            self._threads.append(thread)

    def _serve(self, conn: socket.socket) -> None:
        session = self.server.session()
        try:
            with conn, conn.makefile("r", encoding="utf-8") as reader:
                for line in reader:
                    line = line.strip()
                    if not line:
                        continue
                    response = self._respond(session, line)
                    payload = (json.dumps(response) + "\n").encode()
                    try:
                        conn.sendall(payload)
                    except OSError:
                        # Client went away mid-statement: the statement
                        # already completed server-side; just hang up.
                        self.server.note_disconnect()
                        return
        except OSError:
            self.server.note_disconnect()
        finally:
            session.close()

    def _respond(self, session, line: str) -> dict:
        try:
            request = json.loads(line)
            result = session.sql(
                request["sql"], timeout=request.get("timeout")
            )
        except Exception as exc:  # noqa: BLE001 — wire boundary
            return {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
        return {
            "ok": True,
            "status": result.status,
            "columns": result.columns,
            "rows": [
                [_encode_value(v) for v in row] for row in result.rows
            ],
        }

    def close(self) -> None:
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._accept_thread.join(timeout=2.0)
        for thread in self._threads:
            thread.join(timeout=2.0)


class HiveClient:
    """Minimal blocking client for the line protocol."""

    def __init__(self, address) -> None:
        self._sock = socket.create_connection(address)
        self._reader = self._sock.makefile("r", encoding="utf-8")

    def sql(self, statement: str,
            timeout: float | None = None) -> SQLResult:
        request = {"sql": statement}
        if timeout is not None:
            request["timeout"] = timeout
        self._sock.sendall((json.dumps(request) + "\n").encode())
        line = self._reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        response = json.loads(line)
        if not response["ok"]:
            raise RemoteStatementError(
                response["error"], response["message"]
            )
        return SQLResult(
            response["status"],
            [tuple(row) for row in response["rows"]],
            response["columns"],
        )

    def close(self) -> None:
        # The makefile reader holds a reference on the socket's fd;
        # both must close before the server sees EOF.
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "HiveClient":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()
