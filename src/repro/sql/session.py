"""SQL entry point: parse, plan, execute against a Database."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.sql import ast
from repro.sql.parser import parse
from repro.sql.planner import lower_expr, plan_select, schema_from_create

if TYPE_CHECKING:
    from repro.db import Database


class SQLResult:
    """Result of one SQL statement: rows (for SELECT) plus a status tag."""

    def __init__(self, status: str, rows: list[tuple] | None = None,
                 columns: list[str] | None = None) -> None:
        self.status = status
        self.rows = rows if rows is not None else []
        self.columns = columns or []

    def __iter__(self) -> Iterator[tuple]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def __repr__(self) -> str:
        return f"SQLResult({self.status}, {len(self.rows)} rows)"


def execute_sql(db: "Database", sql: str) -> SQLResult:
    """Execute one SQL statement against *db*.

    SELECT returns rows; CREATE TABLE (with the paper's ``ANNOTATE``
    clause), INSERT, and DROP TABLE return status-only results.
    """
    stmt = parse(sql)
    if isinstance(stmt, ast.SelectStmt):
        plan = plan_select(db, stmt)
        rows = db.execute(plan)
        return SQLResult(f"SELECT {len(rows)}", rows, list(plan.columns))
    if isinstance(stmt, ast.CreateTableStmt):
        schema = schema_from_create(stmt)
        db.create_table(schema, annotate=stmt.annotate)
        return SQLResult("CREATE TABLE")
    if isinstance(stmt, ast.InsertStmt):
        for row in stmt.rows:
            db.insert(stmt.table, row)
        return SQLResult(f"INSERT {len(stmt.rows)}")
    if isinstance(stmt, ast.DropTableStmt):
        db.drop_table(stmt.name)
        return SQLResult("DROP TABLE")
    if isinstance(stmt, ast.DeleteStmt):
        predicate = _row_predicate(db, stmt.table, stmt.where)
        count = db.delete_where(stmt.table, predicate)
        return SQLResult(f"DELETE {count}")
    if isinstance(stmt, ast.UpdateStmt):
        schema = db.relation(stmt.table).schema
        columns = schema.column_names()
        assignments = [
            (schema.attnum(column), _bound_expr(db, stmt.table, expr))
            for column, expr in stmt.assignments
        ]
        predicate = _row_predicate(db, stmt.table, stmt.where)

        def updater(values: list) -> list:
            new_values = list(values)
            for attnum, expr in assignments:
                new_values[attnum] = expr.evaluate(values)
            return new_values

        count = db.update_where(stmt.table, predicate, updater)
        return SQLResult(f"UPDATE {count}")
    if isinstance(stmt, ast.VacuumStmt):
        report = db.vacuum(stmt.table)
        return SQLResult(
            f"VACUUM {report['pages_before']} -> {report['pages_after']} pages"
        )
    if isinstance(stmt, ast.ExplainStmt):
        from repro.engine.executor import explain

        plan = plan_select(db, stmt.select)
        lines = explain(plan).splitlines()
        return SQLResult("EXPLAIN", [(line,) for line in lines], ["plan"])
    raise TypeError(f"unhandled statement {type(stmt).__name__}")


def _bound_expr(db: "Database", table: str, expr_ast: ast.Expression) -> Any:
    """Lower and bind an expression against a relation's schema columns."""
    from repro.engine.expr import bind

    columns = db.relation(table).schema.column_names()
    return bind(lower_expr(expr_ast, columns), columns)


def _row_predicate(
    db: "Database", table: str, where: ast.Expression | None
) -> Callable[[list], bool]:
    """A values-list callable for UPDATE/DELETE WHERE clauses."""
    if where is None:
        return lambda _values: True
    bound = _bound_expr(db, table, where)
    return lambda values: bound.evaluate(values) is True
