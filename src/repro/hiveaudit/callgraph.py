"""Pass 3 support — an engine-wide call graph with listener edges.

The graph is intentionally coarse: nodes are functions/methods keyed
``Class.method`` (or a bare name at module top level), and edges come
from three resolvers, tried in order per call site:

1. ``self.m(...)`` → the same class's ``m`` when it exists;
2. ``recv.m(...)`` where ``recv``'s class is known — learned from
   constructor assignments (``x = Cls(...)``, ``self.x = Cls(...)``),
   dataclass/attribute annotations, and annotated function parameters;
3. a bare-name union over every function named ``m`` anywhere in the
   analyzed modules (sound-but-coarse fallback).

Constructor calls are deliberately *not* resolved to ``__init__`` —
building a fresh object is never how the engine invalidates caches, and
those edges would only manufacture spurious "reaches" witnesses.

Catalog listener dispatch is modeled explicitly: a call to
``_notify("<event>", ...)`` gains edges to every handler registered via
``on("<event>", handler)`` anywhere in the analyzed modules, so DDL
paths flow through ``Catalog._notify`` into ``Database._on_drop`` /
``Database._on_alter`` the same way they do at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

# Modules the lifecycle analysis spans: DDL entry points, DML, the bee
# lifecycle, and the storage layer.
GRAPH_MODULES = (
    "db.py",
    "catalog/catalog.py",
    "engine/dml.py",
    "bees/module.py",
    "bees/cache.py",
    "bees/collector.py",
    "bees/maker.py",
    "bees/datasection.py",
    "parallel/coordinator.py",
    "storage/heapfile.py",
    "storage/buffer.py",
    "storage/layout.py",
)


@dataclass
class FunctionInfo:
    """One node of the call graph."""

    qualname: str  # "Class.method" or bare function name
    module: str
    lineno: int
    node: ast.FunctionDef
    cls: str | None = None
    calls: list = field(default_factory=list)  # (recv, name, lineno)
    notifies: list = field(default_factory=list)  # event literals
    registrations: list = field(default_factory=list)  # (event, handler)


class _CallCollector(ast.NodeVisitor):
    def __init__(self, info: FunctionInfo) -> None:
        self.info = info

    def visit_Call(self, node: ast.Call) -> None:
        recv = None
        name = None
        if isinstance(node.func, ast.Attribute):
            name = node.func.attr
            if isinstance(node.func.value, ast.Name):
                recv = node.func.value.id
            elif (
                isinstance(node.func.value, ast.Attribute)
                and isinstance(node.func.value.value, ast.Name)
                and node.func.value.value.id == "self"
            ):
                # self.attr.m(...) — receiver is the attribute name,
                # resolvable when its class was learned.
                recv = node.func.value.attr
        elif isinstance(node.func, ast.Name):
            name = node.func.id
        if name is not None:
            self.info.calls.append((recv, name, node.lineno))
        if name == "_notify" and node.args:
            first = node.args[0]
            if isinstance(first, ast.Constant) and isinstance(first.value, str):
                self.info.notifies.append(first.value)
        if name == "on" and len(node.args) >= 2:
            event, handler = node.args[0], node.args[1]
            if (
                isinstance(event, ast.Constant)
                and isinstance(event.value, str)
                and isinstance(handler, ast.Attribute)
            ):
                self.info.registrations.append((event.value, handler.attr))
        self.generic_visit(node)


class CallGraph:
    """Resolvable call graph over *modules* (:data:`GRAPH_MODULES` by
    default; swarmcheck passes a wider, execution-path module set)."""

    def __init__(self, source, modules: tuple = GRAPH_MODULES) -> None:
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[str]] = {}
        self.attr_types: dict[str, str] = {}  # attr/var name -> class name
        self.classes: dict[str, set[str]] = {}  # class -> method names
        self._listeners: dict[str, list[str]] = {}  # event -> qualnames
        self.class_module: dict[str, str] = {}  # class -> defining module
        for module in modules:
            self._collect_module(module, source.tree(module))
        self._wire_listeners()

    # -- construction --------------------------------------------------------

    def _add_function(
        self, module: str, fn: ast.FunctionDef, cls: str | None
    ) -> None:
        qual = f"{cls}.{fn.name}" if cls else fn.name
        info = FunctionInfo(qual, module, fn.lineno, fn, cls)
        _CallCollector(info).visit(fn)
        self.functions[qual] = info
        self.by_name.setdefault(fn.name, []).append(qual)
        if cls:
            self.classes.setdefault(cls, set()).add(fn.name)
        self._learn_types(fn)

    def _collect_module(self, module: str, tree: ast.Module) -> None:
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                self._add_function(module, node, None)
            elif isinstance(node, ast.ClassDef):
                self.classes.setdefault(node.name, set())
                self.class_module.setdefault(node.name, module)
                for item in node.body:
                    if isinstance(item, ast.FunctionDef):
                        self._add_function(module, item, node.name)
                    elif isinstance(item, ast.AnnAssign) and isinstance(
                        item.target, ast.Name
                    ):
                        self._learn_annotation(
                            item.target.id, item.annotation
                        )

    def _learn_types(self, fn: ast.FunctionDef) -> None:
        for arg in fn.args.args + fn.args.kwonlyargs:
            if arg.annotation is not None:
                self._learn_annotation(arg.arg, arg.annotation)
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = node.value.func
                if isinstance(ctor, ast.Name) and ctor.id[:1].isupper():
                    for target in node.targets:
                        attr = self._attr_or_name(target)
                        if attr:
                            self.attr_types[attr] = ctor.id
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Name
            ):
                # self._ledger = ledger — propagate the parameter's
                # annotated class onto the stored attribute name.
                known = self.attr_types.get(node.value.id)
                if known is not None:
                    for target in node.targets:
                        attr = self._attr_or_name(target)
                        if attr:
                            self.attr_types.setdefault(attr, known)
            elif isinstance(node, ast.AnnAssign):
                attr = self._attr_or_name(node.target)
                if attr:
                    self._learn_annotation(attr, node.annotation)

    @staticmethod
    def _attr_or_name(target) -> str | None:
        if isinstance(target, ast.Name):
            return target.id
        if (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            return target.attr
        return None

    def _learn_annotation(self, name: str, annotation: ast.expr) -> None:
        # Accept `Cls`, `Cls | None`, `Optional[Cls]`, and string forms.
        for node in ast.walk(annotation):
            if isinstance(node, ast.Name) and node.id[:1].isupper():
                if node.id not in ("None", "Optional", "Union"):
                    self.attr_types.setdefault(name, node.id)
                    return
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                ident = node.value.strip().split("|")[0].strip()
                if ident[:1].isupper():
                    self.attr_types.setdefault(name, ident)
                    return

    def _wire_listeners(self) -> None:
        for info in self.functions.values():
            for event, handler in info.registrations:
                for qual in self.by_name.get(handler, []):
                    self._listeners.setdefault(event, []).append(qual)

    # -- resolution ----------------------------------------------------------

    def resolve(self, caller: FunctionInfo, recv, name) -> list[str]:
        """Candidate callee qualnames for one call site in *caller*."""
        if name == "__init__":
            return []
        if recv == "self" and caller.cls:
            if name in self.classes.get(caller.cls, ()):  # same-class method
                return [f"{caller.cls}.{name}"]
        if recv is not None:
            cls = self.attr_types.get(recv)
            if cls is not None and name in self.classes.get(cls, ()):
                return [f"{cls}.{name}"]
        return list(self.by_name.get(name, []))

    def successors(self, qual: str) -> list[str]:
        info = self.functions.get(qual)
        if info is None:
            return []
        out: list[str] = []
        seen = set()
        for recv, name, _lineno in info.calls:
            for callee in self.resolve(info, recv, name):
                if callee not in seen:
                    seen.add(callee)
                    out.append(callee)
        for event in info.notifies:
            for callee in self._listeners.get(event, []):
                if callee not in seen:
                    seen.add(callee)
                    out.append(callee)
        return out

    def reaches(self, start: str, targets) -> list[str] | None:
        """Witness call path from *start* to any of *targets*, else None.

        *start* itself counts: a mutation inside ``BeeCache.drop_relation_bee``
        would trivially satisfy a rule targeting that function.
        """
        targets = set(targets)
        if start in targets:
            return [start]
        parent: dict[str, str] = {start: ""}
        queue = [start]
        while queue:
            current = queue.pop(0)
            for nxt in self.successors(current):
                if nxt in parent:
                    continue
                parent[nxt] = current
                if nxt in targets:
                    path = [nxt]
                    while parent[path[-1]]:
                        path.append(parent[path[-1]])
                    return list(reversed(path))
                queue.append(nxt)
        return None
