"""Calibrated virtual-instruction costs for engine code paths.

Each constant is the number of x86-ish instructions the corresponding
compiled-C code path would execute.  The deform/fill constants are calibrated
so that on the TPC-H ``orders`` relation (9 attributes, one trailing varlena,
no nulls) the generic ``slot_deform_tuple`` loop costs ~340 instructions per
tuple and the specialized GCL bee routine ~146, matching the paper's
Section II case study.  The pipeline constants are calibrated so that
``select o_comment from orders`` shows a ~8.5% whole-query instruction
reduction from GCL alone, matching the paper's callgrind totals
(3.447B -> 3.153B instructions).

Tests in ``tests/test_cost_calibration.py`` pin these calibration points.
"""

# --------------------------------------------------------------------------
# Generic slot_deform_tuple (Listing 1 in the paper).
# Cost per tuple = DEFORM_PROLOGUE + sum over attributes of
#   DEFORM_LOOP + (DEFORM_NULL_CHECK if relation has nullable attrs)
#   + path cost + DEFORM_FETCH.
# --------------------------------------------------------------------------
DEFORM_PROLOGUE = 30          # function entry, slot bookkeeping, isnull init
DEFORM_LOOP = 10               # loop counter increment, bound check, att load
DEFORM_NULL_CHECK = 6         # hasnulls && att_isnull(attnum, bp)
DEFORM_NULL_TAKEN = 8         # null short-path: store Datum 0, set slow
DEFORM_CACHED_OFFSET = 13     # attcacheoff >= 0 fast path
DEFORM_VARLENA = 24           # attlen == -1: align_pointer, VARSIZE, slow set
DEFORM_FIXED_ALIGN = 16       # post-varlena fixed attr: att_align_nominal
DEFORM_FETCH = 11              # fetchatt + att_addlength_pointer
DEFORM_BEE_LOOKUP = 15        # generic engine fetching a bee-resident value

# --------------------------------------------------------------------------
# Specialized GCL (GetColumnsToLongs) bee routine, per tuple.
# Cost = GCL_PROLOGUE + GCL_ISNULL_ZERO per 8 attributes + per-attribute
# emission costs (counted by the bee maker while generating code).
# --------------------------------------------------------------------------
GCL_PROLOGUE = 18             # call, argument setup, early-exit checks
GCL_ISNULL_ZERO = 2           # one long-store zeroes 8 isnull bytes
GCL_FIXED = 12                # unrolled `values[i] = *(T*)(data + K)`
GCL_VARLENA = 24              # alignment test + VARSIZE + pointer store
GCL_TUPLE_BEE = 4             # `values[i] = <data-section constant>`
GCL_NULLABLE = 6              # per nullable attribute: bitmap test retained

# --------------------------------------------------------------------------
# Generic heap_fill_tuple (tuple construction on insert/COPY).
# --------------------------------------------------------------------------
FILL_PROLOGUE = 30            # header setup, bitmap allocation
FILL_LOOP = 8                 # per-attribute loop overhead
FILL_NULL_CHECK = 6           # isnull[] test per attribute
FILL_FIXED = 22               # align, switch on attlen, store by width
FILL_VARLENA = 34             # SET_VARSIZE, memcpy of payload, align
FILL_FETCH = 7                # data pointer advance / bookkeeping

# Specialized SCL (SetColumnsFromLongs) bee routine.
SCL_PROLOGUE = 20
SCL_FIXED = 10                # unrolled store at constant offset
SCL_VARLENA = 26              # length store + memcpy
SCL_TUPLE_BEE = 5             # value lives in data section: beeID compare path
SCL_NULLABLE = 6

# --------------------------------------------------------------------------
# Tuple-bee creation (during insert / bulk load).
# --------------------------------------------------------------------------
TUPLE_BEE_MEMCMP = 3          # per existing data section compared
TUPLE_BEE_CLONE = 160         # slab slot carve-out + value substitution

# --------------------------------------------------------------------------
# Generic expression interpretation (ExecQual / FuncExprState dispatch).
# Cost per evaluated node = EXPR_NODE_DISPATCH + node-specific work;
# the specialized EVP routine charges EVP_* instead.
# --------------------------------------------------------------------------
EXPR_NODE_DISPATCH = 14       # recursive ExecEvalExpr indirection per node
EXPR_CONST = 4
EXPR_COLUMN = 8               # slot_getattr on an already-deformed slot
EXPR_COMPARISON = 18          # fmgr call: FunctionCall2 + comparator body
EXPR_ARITH = 12
EXPR_BOOL_PER_ARG = 7         # AND/OR step with isnull tracking
EXPR_LIKE_PER_CHAR = 3        # pattern scan
EXPR_LIKE_BASE = 30
EXPR_CASE_PER_ARM = 10
EXPR_FUNC = 22                # generic catalog-dispatched function call
EXPR_IN_PER_ITEM = 9

EVP_PROLOGUE = 10             # specialized predicate: one direct call
EVP_NODE = 5                  # constants folded, comparators inlined

# --------------------------------------------------------------------------
# Join machinery.
# --------------------------------------------------------------------------
JOIN_GENERIC_DISPATCH = 26    # JoinState interpretation per tuple pair:
                              # join-type branch, qual setup, fmgr compare
JOIN_HASH_COMPUTE = 110        # hash of a join key
JOIN_HASH_PROBE = 170          # bucket lookup + chain step
JOIN_EMIT = 80                # form joined tuple (projection handled apart)
EVJ_DISPATCH = 9              # specialized join: type branch folded away
EVJ_COMPARE = 6               # inlined key comparison

# --------------------------------------------------------------------------
# Other executor node costs (charged identically in both systems; they
# dilute the deform/predicate share of total work exactly as PostgreSQL's
# surrounding executor does).
# --------------------------------------------------------------------------
SEQSCAN_NEXT = 700            # heap_getnext: page walk, visibility check
INDEXSCAN_NEXT = 640          # B-tree descent step amortized + heap fetch
SLOT_STORE = 45               # ExecStoreTuple
PROJECT_PER_COLUMN = 24       # ExecProject target-list entry
AGG_TRANSITION = 110           # advance_transition_function per agg per row
AGG_HASH_LOOKUP = 200          # hash aggregation group lookup
SORT_COMPARE = 45             # qsort comparator via fmgr
SORT_PER_ROW = 120             # tuplesort puttuple/gettuple
MATERIALIZE_ROW = 40
EMIT_ROW_BASE = 510          # printtup: DataRow assembly + client send path
EMIT_ROW_PER_COLUMN = 150     # per-column output function + copy
EXECUTOR_PER_ROW = 300        # ExecProcNode chain, CHECK_FOR_INTERRUPTS, etc.
NUMERIC_OP = 55               # NUMERIC add/mul via fmgr (q1-style arithmetic)
PAGE_ACCESS = 420             # ReadBuffer + pin/unpin + header checks
INSERT_PER_ROW = 2000          # heap_insert, buffer dirty, WAL record
COPY_PER_ROW = 1900            # COPY input parsing + heap_insert path

# --------------------------------------------------------------------------
# Time model.
# --------------------------------------------------------------------------
CPU_HZ = 2.8e9                # paper's Intel i7 860
IPC = 1.45                    # sustained instructions per cycle for this mix
SEQ_PAGE_READ_S = 8192 / (110 * 1024 * 1024)   # ~110 MB/s sequential HDD
RAND_PAGE_READ_S = 0.004      # ~4 ms random seek+read
PAGE_SIZE = 8192

# I-cache model used by the bee placement optimizer.
ICACHE_SIZE = 32 * 1024
ICACHE_LINE = 64
ICACHE_ASSOC = 4
ICACHE_MISS_PENALTY_CYCLES = 20

NODE_OVERHEAD = 110            # ExecProcNode indirection per node per row

# --------------------------------------------------------------------------
# Pipeline bees (fused batch-at-a-time compilation over the Volcano chain).
# One generated function per fusable pipeline runs the whole
# deform -> qual -> project/probe/transition loop over a page's tuples;
# the ExecProcNode ping-pong (NODE_OVERHEAD per node per row), the slot
# store between nodes, and the per-call routine prologues all fold away.
# --------------------------------------------------------------------------
PIPE_BATCH_OVERHEAD = 90      # per page batch: fused call + loop setup
PIPE_NEXT = 170               # per tuple: line-pointer advance + visibility
                              # check, amortized inside the fused loop
PIPE_EMIT_BASE = 25           # per emitted row: append into the batch vector
PIPE_EMIT_PER_COLUMN = 10     # per output column of an emitted row

# Index maintenance (key extraction + structure modification per entry).
IDX_GENERIC_BASE = 30         # generic key-extraction loop over key columns
IDX_GENERIC_PER_COL = 10
IDX_SPEC_BASE = 8             # specialized: unrolled tuple build
IDX_SPEC_PER_COL = 2
INDEX_MAINTAIN = 60           # b-tree/hash structure modification itself

# Column-store extension (paper Section VIII: micro-specialization is
# orthogonal to architectural specialization, e.g. column stores).
COL_DECODE_GENERIC = 6        # per value per column: width switch + fetch
COL_DECODE_SPEC = 2           # specialized: typed block copy
COL_CHUNK_OVERHEAD = 120      # per chunk per column: page/pin bookkeeping
COL_PAGE_ACCESS = 420         # column-page read (same as row PAGE_ACCESS)
COL_SCAN_PER_ROW = 25         # chunk-loop + row materialization (both paths)
VECTOR_OP_PER_VALUE = 3       # per expr node per value: generic primitive
                              # with intermediate result vectors
VECTOR_OP_DISPATCH = 150      # per chunk per primitive: MAL-style dispatch
FUSED_PER_VALUE = 1           # per expr node per value in a fused kernel
FUSED_DISPATCH = 60           # per chunk: single generated-kernel call

# --------------------------------------------------------------------------
# Vector bees (the third execution tier: fused pipelines compiled into
# columnar NumPy kernels over chunk-cached typed arrays).  Chunk decode is
# paid once per heap version (the cache amortizes it across statements);
# the kernel itself replaces the fused per-row Python loop with a handful
# of whole-column primitives, so its per-row constants sit well below
# PIPE_NEXT.  Calibrated against bench_vector.py the way the PIPE_*
# constants were against bench_pipeline.py.
# --------------------------------------------------------------------------
VEC_DECODE_PER_VALUE = 5      # per value on a chunk miss: reference decode
                              # + column append (page-at-a-time transpose)
VEC_CHUNK_BUILD = 130         # per column per page on a miss: ndarray
                              # assembly + null-mask packing
VEC_CHUNK_HIT = 40            # per page on a warm chunk: cache probe +
                              # version/layout validation, amortized
VEC_KERNEL_DISPATCH = 200     # per kernel call: arg marshal + charge
VEC_KERNEL_PER_VALUE = 1      # per expr node per row lane inside a
                              # vectorized primitive (SIMD-friendly)
VEC_SELECT_PER_ROW = 2        # per input row: mask build + index compaction
VEC_EMIT_BASE = 14            # per selected row: batched row materialization
VEC_EMIT_PER_COLUMN = 6       # per output column of a materialized row
VEC_PROBE_PER_ROW = 300       # per selected row: key tuple + hash probe +
                              # join emission (a per-row Python transition)
VEC_GROUP_PER_ROW = 160       # per selected row: group bucket lookup/append

VACUUM_PER_TUPLE = 150        # move live tuple + line-pointer rewrite

# --------------------------------------------------------------------------
# Parallel tier (morsel-driven execution across worker processes).  The
# coordinator charges its own ledger with the *makespan*: the largest
# per-worker ledger delta for the statement, so db.measure() reports the
# modeled wall clock of the slowest worker plus the coordinator-side
# dispatch/merge work below.  Dispatch constants are kept small relative
# to PAGE_ACCESS so fan-out wins once a morsel covers a few pages.
# --------------------------------------------------------------------------
PAR_DISPATCH = 260            # per morsel: task encode + pipe send/recv
PAR_PREPARE = 900             # per statement per worker: spec ship +
                              # fingerprint probe (compile amortized away)
PAR_SNAPSHOT_PER_PAGE = 60    # per page when shipping a heap snapshot to
                              # a worker (read-only copy-on-write share)
PAR_MERGE_PER_ROW = 8         # per gathered row: coordinator-side concat
PAR_MERGE_PER_GROUP = 45      # per partial group merged into the global
                              # hash table (AggState.merge)
