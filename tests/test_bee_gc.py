"""Bee cache eviction and collector GC invariants.

The collector must (a) keep the query-bee cache within its budget by
evicting in insertion order, (b) never collect a relation bee whose
relation is still live, and (c) remove a dropped relation's on-disk bee
file along with its in-memory bee — including through the full
``Database.sql("DROP TABLE ...")`` path.
"""

import pytest

from repro.bees.cache import BeeCache
from repro.bees.collector import BeeCollector
from repro.bees.maker import QueryBee
from repro.bees.settings import BeeSettings
from repro.db import Database


def _cache_with_query_bees(n: int) -> BeeCache:
    cache = BeeCache()
    for i in range(n):
        cache.put_query_bee(QueryBee(f"q{i}"))
    return cache


class TestQueryBeeTrim:
    def test_within_budget_is_untouched(self):
        cache = _cache_with_query_bees(5)
        collector = BeeCollector(cache, query_bee_budget=5)
        assert collector.trim_query_bees() == 0
        assert len(cache.query_bees) == 5
        assert collector.collected_query_bees == 0

    def test_evicts_oldest_past_budget(self):
        cache = _cache_with_query_bees(8)
        collector = BeeCollector(cache, query_bee_budget=5)
        assert collector.trim_query_bees() == 3
        assert list(cache.query_bees) == ["q3", "q4", "q5", "q6", "q7"]
        assert collector.collected_query_bees == 3
        # idempotent once within budget again
        assert collector.trim_query_bees() == 0

    def test_module_registration_respects_budget(self):
        db = Database(BeeSettings.all_bees())
        module = db.bee_module
        module.collector.query_bee_budget = 4
        for i in range(10):
            module.register_query_bee(f"plan-{i}")
        assert len(module.cache.query_bees) <= 4
        # the most recent plan survives; the earliest was evicted
        assert module.cache.get_query_bee("plan-9") is not None
        assert module.cache.get_query_bee("plan-0") is None


class TestRelationBeeGC:
    def _bee_db(self, tmp_path=None):
        db = Database(
            BeeSettings.all_bees(),
            bee_cache_dir=str(tmp_path) if tmp_path else None,
        )
        db.sql(
            "CREATE TABLE gctab (id int NOT NULL, kind char(3) NOT NULL, "
            "ANNOTATE (kind))"
        )
        db.sql("INSERT INTO gctab VALUES (1, 'aa'), (2, 'bb')")
        db.sql("CREATE TABLE keepme (id int NOT NULL)")
        db.sql("INSERT INTO keepme VALUES (7)")
        return db

    def test_sweep_spares_live_relations(self):
        db = self._bee_db()
        cache = db.bee_module.cache
        live = set(cache.relation_bees)
        assert "gctab" in live
        assert db.bee_module.collector.sweep(live) == 0
        assert set(cache.relation_bees) == live

    def test_sweep_collects_dead_relations(self):
        db = self._bee_db()
        collector = db.bee_module.collector
        assert collector.sweep(live_relations={"keepme"}) >= 1
        assert db.bee_module.cache.get_relation_bee("gctab") is None
        assert collector.collected_relation_bees >= 1

    def test_drop_table_collects_bee_and_disk_file(self, tmp_path):
        db = self._bee_db(tmp_path)
        assert db.bee_module.flush_to_disk() >= 1
        bee_file = tmp_path / "gctab.bee.json"
        assert bee_file.exists()
        db.sql("DROP TABLE gctab")
        assert db.bee_module.cache.get_relation_bee("gctab") is None
        assert not bee_file.exists()
        # the surviving relation's bee (and file) are untouched
        assert db.bee_module.cache.get_relation_bee("keepme") is not None
        assert (tmp_path / "keepme.bee.json").exists()
        # and the dropped relation really is gone from the engine
        with pytest.raises(Exception):
            db.sql("SELECT * FROM gctab")

    def test_collect_relation_is_idempotent(self, tmp_path):
        db = self._bee_db(tmp_path)
        collector = db.bee_module.collector
        assert collector.collect_relation("gctab") is True
        assert collector.collect_relation("gctab") is False
        assert collector.collected_relation_bees == 1


class TestInvalidationEdges:
    """Regression tests for the invalidation edges hiveaudit proves.

    Each of these corresponds to an injection case in
    ``repro.hiveaudit.selftest`` — the static analysis flags the edge's
    removal; these tests pin the runtime behavior the edge provides.
    """

    def test_alter_event_reconstructs_bee_and_evicts_query_memos(self):
        db = Database(BeeSettings.all_bees())
        db.sql("CREATE TABLE t (a int NOT NULL, b int NOT NULL)")
        db.sql("INSERT INTO t VALUES (1, 2)")
        bee_before = db.relation("t").bee
        db.sql("SELECT a FROM t WHERE b > 1")
        module = db.bee_module
        assert module._evp_by_expr
        module.register_query_bee("plan-x")

        db.catalog.alter_relation(db.relation("t").schema)

        assert db.relation("t").bee is not bee_before
        assert not module._evp_by_expr
        assert not module.cache.query_bees
        assert module.collector.collected_query_bees >= 1

    def test_load_from_unlinks_stale_bee_file(self, tmp_path):
        db = Database(BeeSettings.all_bees(), bee_cache_dir=str(tmp_path))
        db.sql("CREATE TABLE keepme (id int NOT NULL)")
        db.sql("CREATE TABLE dropme (id int NOT NULL)")
        assert db.bee_module.flush_to_disk() == 2
        stale = tmp_path / "dropme.bee.json"
        assert stale.exists()

        # A fresh server whose catalog no longer contains `dropme` must
        # discard the orphaned file during load, not resurrect the bee.
        reborn = Database(BeeSettings.all_bees(), bee_cache_dir=str(tmp_path))
        reborn.sql("CREATE TABLE keepme (id int NOT NULL)")
        layouts = {"keepme": reborn.relation("keepme").layout}
        loaded = reborn.bee_module.cache.load_from(
            tmp_path, reborn.bee_module.maker, layouts
        )
        assert loaded == 1
        assert not stale.exists()
        assert reborn.bee_module.cache.get_relation_bee("dropme") is None

    def test_drop_purges_idx_routine_memo(self):
        db = Database(BeeSettings.future())
        db.sql("CREATE TABLE t (a int NOT NULL, b int NOT NULL)")
        db.create_index("t", "t_a", ["a"])
        module = db.bee_module
        assert ("t", "t_a") in module._idx_by_index
        db.sql("DROP TABLE t")
        assert ("t", "t_a") not in module._idx_by_index
