"""swarmcheck — purity & sharing-safety static analysis for the hive.

Certifies the engine for a future morsel-parallel execution tier with
three machine-checked proofs:

1. **Purity** (:mod:`repro.swarmcheck.purity`) — every generated bee is
   pure modulo declared sinks: no scope escapes, mutation only through
   owned locals or sink parameters, all captured namespace state frozen.
2. **Shared state** (:mod:`repro.swarmcheck.sharedstate`) — every write
   reachable from the session surface is statement-local or matches a
   declared :class:`~repro.swarmcheck.registry.SharedState` entry naming
   its guard and invalidation epoch.
3. **Escape** (:mod:`repro.swarmcheck.escape`) — no code path mutates a
   NumPy array after it enters the :class:`ChunkCache`.

Run it: ``python -m repro.swarmcheck [--check]``.
"""

from repro.swarmcheck.registry import LOCAL, REGISTRY, SHARED, SharedState
from repro.swarmcheck.report import PASSES, Finding, SwarmReport

__all__ = [
    "Finding",
    "LOCAL",
    "PASSES",
    "REGISTRY",
    "SHARED",
    "SharedState",
    "SwarmReport",
]
