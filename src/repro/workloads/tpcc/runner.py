"""TPC-C throughput driver: transaction mixes over a simulated clock.

The paper measures tpmC over 1-hour wall-clock runs with 100 terminals; we
run a fixed transaction count and divide by *simulated* minutes (ledger
costs priced through the time model), which removes run-to-run variance
while preserving the stock-vs-bees throughput ratio.  The three mixes are
the paper's Section VI-C scenarios.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.cost.timemodel import SimulatedClock
from repro.workloads.tpcc.loader import TPCCConfig
from repro.workloads.tpcc.transactions import TransactionContext

# The paper's three scenarios (New-Order fixed at 45%).
MIXES: dict[str, dict[str, float]] = {
    # TPC-C default: modification-heavy (Payment at 43%).
    "default": {
        "new_order": 0.45,
        "payment": 0.43,
        "order_status": 0.04,
        "delivery": 0.04,
        "stock_level": 0.04,
    },
    # Scenario 1: the four secondary slots given to the two query-only
    # transaction types (27% Order-Status, 28% Stock-Level).
    "query_only": {
        "new_order": 0.45,
        "payment": 0.0,
        "order_status": 0.27,
        "delivery": 0.0,
        "stock_level": 0.28,
    },
    # Scenario 2: modifications and queries equally weighted
    # (Payment+Delivery 27%, Order-Status+Stock-Level 28%).
    "balanced": {
        "new_order": 0.45,
        "payment": 0.135,
        "order_status": 0.14,
        "delivery": 0.135,
        "stock_level": 0.14,
    },
}


@dataclass
class TPCCResult:
    """Throughput outcome of one mix run."""

    mix: str
    transactions: int
    simulated_minutes: float
    counts: dict[str, int] = field(default_factory=dict)

    @property
    def tpm_total(self) -> float:
        """All transactions per simulated minute (the paper's headline)."""
        if self.simulated_minutes <= 0:
            return 0.0
        return self.transactions / self.simulated_minutes

    @property
    def tpmC(self) -> float:
        """New-Order transactions per simulated minute."""
        if self.simulated_minutes <= 0:
            return 0.0
        return self.counts.get("new_order", 0) / self.simulated_minutes


def transaction_schedule(
    mix: str, n_transactions: int, seed: int = 99
) -> list[str]:
    """A deterministic shuffled schedule following the mix weights.

    The same schedule is replayed against the stock and bee-enabled
    databases so both execute the identical workload.
    """
    weights = MIXES[mix]
    schedule: list[str] = []
    for name, weight in weights.items():
        schedule.extend([name] * round(weight * n_transactions))
    while len(schedule) < n_transactions:
        schedule.append("new_order")
    schedule = schedule[:n_transactions]
    random.Random(seed).shuffle(schedule)
    return schedule


def run_mix(
    db,
    config: TPCCConfig,
    mix: str = "default",
    n_transactions: int = 400,
    seed: int = 99,
) -> TPCCResult:
    """Execute a transaction schedule against *db*; returns throughput."""
    ctx = TransactionContext(db, config, seed=seed)
    clock = SimulatedClock(db.time_model)
    schedule = transaction_schedule(mix, n_transactions, seed)
    w_rng = random.Random(seed + 1)
    counts: dict[str, int] = {}
    for name in schedule:
        w_id = w_rng.randint(1, config.warehouses)
        before = db.ledger.snapshot()
        getattr(ctx, name)(w_id)
        clock.advance_for(db.ledger.delta_since(before))
        counts[name] = counts.get(name, 0) + 1
    return TPCCResult(
        mix=mix,
        transactions=len(schedule),
        simulated_minutes=clock.now_s / 60.0,
        counts=counts,
    )
