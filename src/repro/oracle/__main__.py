"""``python -m repro.oracle`` entry point."""

import sys

from repro.oracle.cli import run

sys.exit(run())
