"""TPC-H schema (TPC-H spec rev. 2.x), with low-cardinality annotations.

The paper "added DDL clauses to identify the handful of low-cardinality
attributes [of] the TPC-H relations" and enabled tuple bees for the
``lineitem``, ``orders``, ``part``, and ``nation`` relations; the
``ANNOTATIONS`` map mirrors that, keeping every annotated combination under
the 256 data-section soft cap.
"""

from __future__ import annotations

from repro.catalog import (
    DATE,
    INT4,
    NUMERIC,
    RelationSchema,
    char,
    make_schema,
    varchar,
)


def region_schema() -> RelationSchema:
    return make_schema(
        "region",
        [
            ("r_regionkey", INT4),
            ("r_name", char(25)),
            ("r_comment", varchar(152)),
        ],
        ("r_regionkey",),
    )


def nation_schema() -> RelationSchema:
    return make_schema(
        "nation",
        [
            ("n_nationkey", INT4),
            ("n_name", char(25)),
            ("n_regionkey", INT4),
            ("n_comment", varchar(152)),
        ],
        ("n_nationkey",),
    )


def supplier_schema() -> RelationSchema:
    return make_schema(
        "supplier",
        [
            ("s_suppkey", INT4),
            ("s_name", char(25)),
            ("s_address", varchar(40)),
            ("s_nationkey", INT4),
            ("s_phone", char(15)),
            ("s_acctbal", NUMERIC),
            ("s_comment", varchar(101)),
        ],
        ("s_suppkey",),
    )


def customer_schema() -> RelationSchema:
    return make_schema(
        "customer",
        [
            ("c_custkey", INT4),
            ("c_name", varchar(25)),
            ("c_address", varchar(40)),
            ("c_nationkey", INT4),
            ("c_phone", char(15)),
            ("c_acctbal", NUMERIC),
            ("c_mktsegment", char(10)),
            ("c_comment", varchar(117)),
        ],
        ("c_custkey",),
    )


def part_schema() -> RelationSchema:
    return make_schema(
        "part",
        [
            ("p_partkey", INT4),
            ("p_name", varchar(55)),
            ("p_mfgr", char(25)),
            ("p_brand", char(10)),
            ("p_type", varchar(25)),
            ("p_size", INT4),
            ("p_container", char(10)),
            ("p_retailprice", NUMERIC),
            ("p_comment", varchar(23)),
        ],
        ("p_partkey",),
    )


def partsupp_schema() -> RelationSchema:
    return make_schema(
        "partsupp",
        [
            ("ps_partkey", INT4),
            ("ps_suppkey", INT4),
            ("ps_availqty", INT4),
            ("ps_supplycost", NUMERIC),
            ("ps_comment", varchar(199)),
        ],
        ("ps_partkey", "ps_suppkey"),
    )


def orders_schema() -> RelationSchema:
    return make_schema(
        "orders",
        [
            ("o_orderkey", INT4),
            ("o_custkey", INT4),
            ("o_orderstatus", char(1)),
            ("o_totalprice", NUMERIC),
            ("o_orderdate", DATE),
            ("o_orderpriority", char(15)),
            ("o_clerk", char(15)),
            ("o_shippriority", INT4),
            ("o_comment", varchar(79)),
        ],
        ("o_orderkey",),
    )


def lineitem_schema() -> RelationSchema:
    return make_schema(
        "lineitem",
        [
            ("l_orderkey", INT4),
            ("l_partkey", INT4),
            ("l_suppkey", INT4),
            ("l_linenumber", INT4),
            ("l_quantity", NUMERIC),
            ("l_extendedprice", NUMERIC),
            ("l_discount", NUMERIC),
            ("l_tax", NUMERIC),
            ("l_returnflag", char(1)),
            ("l_linestatus", char(1)),
            ("l_shipdate", DATE),
            ("l_commitdate", DATE),
            ("l_receiptdate", DATE),
            ("l_shipinstruct", char(25)),
            ("l_shipmode", char(10)),
            ("l_comment", varchar(44)),
        ],
        ("l_orderkey", "l_linenumber"),
    )


ALL_SCHEMAS = {
    "region": region_schema,
    "nation": nation_schema,
    "supplier": supplier_schema,
    "customer": customer_schema,
    "part": part_schema,
    "partsupp": partsupp_schema,
    "orders": orders_schema,
    "lineitem": lineitem_schema,
}

# Low-cardinality DDL annotations (paper Section VI-A: tuple bees were
# enabled for lineitem, orders, part, and nation).  Combination counts:
# lineitem 3*2*4*7 = 168, orders 3*5 = 15, part 5*25 = 125, nation 25.
ANNOTATIONS: dict[str, tuple[str, ...]] = {
    "lineitem": ("l_returnflag", "l_linestatus", "l_shipinstruct", "l_shipmode"),
    "orders": ("o_orderstatus", "o_orderpriority"),
    "part": ("p_mfgr", "p_brand"),
    "nation": ("n_name",),
}
