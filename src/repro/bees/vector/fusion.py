"""Vector fusion: promote fused pipeline drivers to vector drivers.

The vector tier deliberately matches *exactly* the segments the
pipeline fuser matches: :func:`fuse_vector_plan` first runs
:func:`repro.bees.pipeline.fusion.fuse_plan`, then walks the result and
wraps every pipeline driver in its columnar counterpart — same spec,
and the pipeline driver itself kept as the anchor, so a quarantined or
generation-faulted vector bee falls back to the *fused pipeline* (which
in turn anchors on the generic subtree).  That nesting is what gives
the runtime its vector → pipeline → routine-bees → generic ladder
without any tier knowing about the ones below it.

Interior generic nodes are rebuilt with the same shallow-copy
discipline as pipeline fusion; untouched subtrees are shared.
"""

from __future__ import annotations

import copy

from repro.engine.nodes import PlanNode
from repro.bees.pipeline.fusion import _CHILD_ATTRS, fuse_plan
from repro.bees.pipeline.nodes import PipelineAgg, PipelineJoin, PipelineScan
from repro.bees.vector.nodes import VectorAgg, VectorJoin, VectorScan


def _vectorize(plan: PlanNode, db) -> PlanNode:
    if type(plan) is PipelineScan:
        return VectorScan(plan.spec, plan)
    if type(plan) is PipelineAgg:
        return VectorAgg(plan.spec, plan)
    if type(plan) is PipelineJoin:
        return VectorJoin(plan.spec, plan, _vectorize(plan.build, db))
    attrs = _CHILD_ATTRS.get(type(plan))
    if not attrs:
        return plan
    children = {name: _vectorize(getattr(plan, name), db) for name in attrs}
    if all(children[name] is getattr(plan, name) for name in attrs):
        return plan
    clone = copy.copy(plan)
    for name, child in children.items():
        setattr(clone, name, child)
    return clone


def fuse_vector_plan(plan: PlanNode, db) -> PlanNode:
    """Return *plan* rewritten around vector drivers where fusable.

    Segments the pipeline fuser declines stay generic here too; the
    vector tier never widens the fusable language, it only compiles the
    same specs to columnar kernels.
    """
    return _vectorize(fuse_plan(plan, db), db)
