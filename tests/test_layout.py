"""Tests for the physical tuple layout, including property-based checks."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.catalog import BOOL, DATE, INT4, INT8, NUMERIC, char, make_schema, varchar
from repro.storage import INFOMASK_HAS_BEEID, INFOMASK_HAS_NULLS, TupleLayout


class TestBasicRoundTrip:
    def test_orders_round_trip(self, orders_schema, orders_row):
        layout = TupleLayout(orders_schema)
        values, isnull = layout.decode(layout.encode(orders_row))
        assert values == orders_row
        assert not any(isnull)

    def test_mixed_round_trip(self, mixed_schema):
        layout = TupleLayout(mixed_schema)
        row = ["hi", 2**40, "abc", "xy", -7, 3.25]
        values, isnull = layout.decode(layout.encode(row))
        assert values == row

    def test_char_trailing_spaces_insignificant(self):
        schema = make_schema("t", [("c", char(8))])
        layout = TupleLayout(schema)
        values, _ = layout.decode(layout.encode(["ab"]))
        assert values == ["ab"]

    def test_bool_round_trip(self):
        schema = make_schema("t", [("b", BOOL), ("c", BOOL)])
        layout = TupleLayout(schema)
        values, _ = layout.decode(layout.encode([True, False]))
        assert values == [True, False]

    def test_empty_varchar(self):
        schema = make_schema("t", [("v", varchar(5)), ("i", INT4)])
        layout = TupleLayout(schema)
        values, _ = layout.decode(layout.encode(["", 9]))
        assert values == ["", 9]

    def test_char_overflow_rejected(self):
        schema = make_schema("t", [("c", char(3))])
        with pytest.raises(ValueError):
            TupleLayout(schema).encode(["toolong"])


class TestNulls:
    def test_null_round_trip(self, mixed_schema):
        layout = TupleLayout(mixed_schema)
        row = ["x", 1, "ab", None, None, 0.5]
        isnull = [value is None for value in row]
        values, decoded_null = layout.decode(layout.encode(row, isnull))
        assert decoded_null == isnull
        for value, null in zip(values, decoded_null):
            if null:
                assert value is None

    def test_nulls_occupy_no_space(self, mixed_schema):
        layout = TupleLayout(mixed_schema)
        full = layout.encode(["x", 1, "ab", "12345678", 5, 0.5])
        sparse = layout.encode(
            ["x", 1, "ab", None, None, 0.5], [False] * 3 + [True, True, False]
        )
        assert len(sparse) < len(full)

    def test_null_infomask_flag(self, mixed_schema):
        layout = TupleLayout(mixed_schema)
        raw = layout.encode(
            ["x", 1, "ab", None, 5, 0.5],
            [False, False, False, True, False, False],
        )
        assert raw[0] & INFOMASK_HAS_NULLS
        raw2 = layout.encode(["x", 1, "ab", "d", 5, 0.5])
        assert not raw2[0] & INFOMASK_HAS_NULLS


class TestTupleBeeLayout:
    def test_bee_attrs_not_stored(self, orders_schema, orders_row):
        plain = TupleLayout(orders_schema)
        hollowed = TupleLayout(
            orders_schema, ("o_orderstatus", "o_orderpriority")
        )
        assert len(hollowed.encode(orders_row, bee_id=3)) < len(
            plain.encode(orders_row)
        )

    def test_bee_id_round_trip(self, orders_schema, orders_row):
        layout = TupleLayout(orders_schema, ("o_orderstatus",))
        raw = layout.encode(orders_row, bee_id=77)
        assert raw[0] & INFOMASK_HAS_BEEID
        assert layout.read_bee_id(raw) == 77

    def test_decode_with_sections(self, orders_schema, orders_row):
        layout = TupleLayout(
            orders_schema, ("o_orderstatus", "o_orderpriority")
        )
        raw = layout.encode(orders_row, bee_id=0)
        values, _ = layout.decode(raw, bee_values=("O", "5-LOW"))
        assert values == orders_row

    def test_decode_without_sections_raises(self, orders_schema, orders_row):
        layout = TupleLayout(orders_schema, ("o_orderstatus",))
        raw = layout.encode(orders_row, bee_id=0)
        with pytest.raises(ValueError):
            layout.decode(raw)

    def test_bee_key_extraction(self, orders_schema, orders_row):
        layout = TupleLayout(
            orders_schema, ("o_orderstatus", "o_orderpriority")
        )
        assert layout.bee_key(orders_row) == ("O", "5-LOW")

    def test_unknown_bee_attr_rejected(self, orders_schema):
        with pytest.raises(ValueError):
            TupleLayout(orders_schema, ("nope",))

    def test_read_bee_id_on_plain_tuple_raises(self, orders_schema, orders_row):
        layout = TupleLayout(orders_schema)
        with pytest.raises(ValueError):
            layout.read_bee_id(layout.encode(orders_row))


class TestStoredOffsets:
    def test_stored_offsets_shift_when_hollowed(self, orders_schema):
        layout = TupleLayout(orders_schema, ("o_orderstatus",))
        # The remaining stored attributes re-pack contiguously.
        offsets = [
            layout.stored_offset(i) for i in range(len(layout.stored_attrs))
        ]
        assert offsets[0] == 0
        assert all(
            b >= a for a, b in zip(offsets, offsets[1:]) if b >= 0
        )

    def test_header_is_8_aligned(self, orders_schema):
        for bee_attrs in ((), ("o_orderstatus",)):
            layout = TupleLayout(orders_schema, bee_attrs)
            assert layout.header_size(False) % 8 == 0
            assert layout.header_size(True) % 8 == 0


# -- property-based: arbitrary schemas and values round-trip ------------------

_TYPES = st.sampled_from(
    [INT4, INT8, NUMERIC, DATE, BOOL, char(1), char(7), varchar(12), varchar(3)]
)


@st.composite
def schema_and_rows(draw):
    n_cols = draw(st.integers(min_value=1, max_value=8))
    cols = []
    for i in range(n_cols):
        sql_type = draw(_TYPES)
        nullable = draw(st.booleans())
        cols.append((f"c{i}", sql_type, nullable))
    schema = make_schema("prop", cols)
    n_rows = draw(st.integers(min_value=1, max_value=4))
    rows = []
    for _ in range(n_rows):
        row = []
        for name, sql_type, nullable in cols:
            if nullable and draw(st.booleans()):
                row.append(None)
            elif sql_type.struct_fmt == "i":
                row.append(draw(st.integers(-2**31, 2**31 - 1)))
            elif sql_type.struct_fmt == "q":
                row.append(draw(st.integers(-2**63, 2**63 - 1)))
            elif sql_type.struct_fmt == "d":
                row.append(
                    draw(st.floats(allow_nan=False, allow_infinity=False))
                )
            elif sql_type.struct_fmt == "B":
                row.append(draw(st.booleans()))
            elif sql_type.attlen >= 0:
                text = draw(
                    st.text(
                        alphabet=st.characters(
                            min_codepoint=33, max_codepoint=126
                        ),
                        max_size=sql_type.attlen,
                    )
                )
                row.append(text)
            else:
                row.append(
                    draw(
                        st.text(
                            alphabet=st.characters(
                                min_codepoint=32, max_codepoint=126
                            ),
                            max_size=20,
                        )
                    )
                )
        rows.append(row)
    return schema, rows


@settings(max_examples=120, deadline=None)
@given(schema_and_rows())
def test_layout_round_trip_property(data):
    """encode -> decode is the identity on any schema and row."""
    schema, rows = data
    layout = TupleLayout(schema)
    for row in rows:
        isnull = [value is None for value in row]
        values, decoded_null = layout.decode(layout.encode(row, isnull))
        assert decoded_null == isnull
        for original, value, null in zip(row, values, decoded_null):
            if null:
                assert value is None
            else:
                assert value == original
