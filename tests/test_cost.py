"""Tests for the ledger, time model, simulated clock, and profiler."""

import pytest

from repro.cost import FunctionProfile, Ledger, SimulatedClock, TimeModel
from repro.cost import constants as C
from repro.cost.profiler import profile_report


class TestLedger:
    def test_charge_accumulates(self):
        ledger = Ledger()
        ledger.charge(100)
        ledger.charge(50)
        assert ledger.total == 150

    def test_charge_fn_without_profiling(self):
        ledger = Ledger()
        ledger.charge_fn("f", 10)
        assert ledger.total == 10
        assert ledger.by_function == {}

    def test_charge_fn_with_profiling(self):
        ledger = Ledger()
        ledger.profiling = True
        ledger.charge_fn("f", 10)
        ledger.charge_fn("f", 5)
        ledger.charge_fn("g", 1)
        assert ledger.by_function == {"f": 15, "g": 1}

    def test_io_counters(self):
        ledger = Ledger()
        ledger.read_page(sequential=True)
        ledger.read_page(sequential=False)
        ledger.hit_page()
        assert ledger.seq_pages_read == 1
        assert ledger.rand_pages_read == 1
        assert ledger.pages_hit == 1

    def test_snapshot_delta(self):
        ledger = Ledger()
        ledger.charge(10)
        snap = ledger.snapshot()
        ledger.charge(7)
        ledger.read_page()
        delta = ledger.delta_since(snap)
        assert delta.total == 7
        assert delta.seq_pages_read == 1

    def test_reset(self):
        ledger = Ledger()
        ledger.charge(10)
        ledger.read_page()
        ledger.reset()
        assert ledger.total == 0
        assert ledger.seq_pages_read == 0


class TestTimeModel:
    def test_cpu_seconds(self):
        model = TimeModel(cpu_hz=1e9, ipc=1.0)
        ledger = Ledger()
        ledger.charge(2_000_000_000)
        assert model.cpu_seconds(ledger) == pytest.approx(2.0)

    def test_io_seconds(self):
        model = TimeModel(seq_page_s=0.001, rand_page_s=0.01)
        ledger = Ledger()
        ledger.read_page(sequential=True)
        ledger.read_page(sequential=False)
        assert model.io_seconds(ledger) == pytest.approx(0.011)

    def test_total(self):
        model = TimeModel(cpu_hz=1e9, ipc=1.0, seq_page_s=0.5)
        ledger = Ledger()
        ledger.charge(1_000_000_000)
        ledger.read_page()
        assert model.seconds(ledger) == pytest.approx(1.5)

    def test_default_constants(self):
        model = TimeModel()
        assert model.cpu_hz == C.CPU_HZ
        assert model.ipc == C.IPC


class TestSimulatedClock:
    def test_advance(self):
        clock = SimulatedClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now_s == pytest.approx(2.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            SimulatedClock().advance(-1)

    def test_advance_for_delta(self):
        clock = SimulatedClock(TimeModel(cpu_hz=1e6, ipc=1.0))
        ledger = Ledger()
        snap = ledger.snapshot()
        ledger.charge(1_000_000)
        seconds = clock.advance_for(ledger.delta_since(snap))
        assert seconds == pytest.approx(1.0)
        assert clock.now_s == pytest.approx(1.0)


class TestFunctionProfile:
    def test_scoped_attribution(self):
        ledger = Ledger()
        ledger.charge_fn("outside", 99)
        with FunctionProfile(ledger) as profile:
            ledger.charge_fn("inside", 42)
            ledger.charge(8)
        assert profile.counts == {"inside": 42}
        assert profile.total == 50
        assert profile.instructions_for("inside") == 42
        assert profile.instructions_for("outside") == 0
        assert ledger.profiling is False

    def test_nested_profiles_restore_state(self):
        ledger = Ledger()
        with FunctionProfile(ledger):
            with FunctionProfile(ledger) as inner:
                ledger.charge_fn("f", 1)
            assert ledger.profiling is True
            assert inner.counts == {"f": 1}
        assert ledger.profiling is False

    def test_report_format(self):
        report = profile_report({"f": 80, "g": 10}, 100)
        assert "f" in report
        assert "80.0%" in report
        assert "<unattributed>" in report
        assert "TOTAL" in report

    def test_report_empty(self):
        report = profile_report({}, 0)
        assert "TOTAL" in report


class TestConstantsSanity:
    def test_specialized_always_cheaper(self):
        assert C.GCL_FIXED < C.DEFORM_LOOP + C.DEFORM_CACHED_OFFSET + C.DEFORM_FETCH
        assert C.SCL_FIXED < C.FILL_LOOP + C.FILL_FIXED + C.FILL_FETCH
        assert C.EVP_NODE < C.EXPR_NODE_DISPATCH
        assert C.EVJ_DISPATCH < C.JOIN_GENERIC_DISPATCH
        assert C.EVJ_COMPARE < C.EXPR_COMPARISON

    def test_io_slower_than_cpu_work(self):
        # One random page read should cost more time than 10k instructions.
        model = TimeModel()
        assert C.RAND_PAGE_READ_S > 10_000 / (C.CPU_HZ * C.IPC)
        assert model.rand_page_s > model.seq_page_s
