"""Pass orchestration: one routine in, one :class:`RoutineReport` out.

The checker runs the four passes in cheapest-first order (lint, absint,
costaudit, transval) and records every finding; ``enforce`` raises
:class:`BeecheckError` so the bee maker can refuse to hand a bad routine
to the executor when ``verify_on_generate`` is set.
"""

from __future__ import annotations

from repro.storage.layout import TupleLayout
from repro.beecheck import absint, costaudit, lint, transval
from repro.beecheck.report import BeecheckError, RoutineReport


def check_gcl(routine, layout: TupleLayout) -> RoutineReport:
    """Run all passes over one generated GCL routine."""
    report = RoutineReport(routine.name, "gcl", layout.schema.name)
    report.add("lint", lint.lint_gcl(routine.source, routine.name))
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("absint", absint.check_gcl(routine, layout))
    report.add("costaudit", costaudit.audit_gcl(routine, layout))
    report.add("transval", transval.validate_gcl(routine, layout))
    return report


def check_scl(routine, layout: TupleLayout) -> RoutineReport:
    """Run all passes over one generated SCL routine."""
    report = RoutineReport(routine.name, "scl", layout.schema.name)
    report.add("lint", lint.lint_scl(routine.source, routine.name))
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("absint", absint.check_scl(routine, layout))
    report.add("costaudit", costaudit.audit_scl(routine, layout))
    report.add("transval", transval.validate_scl(routine, layout))
    return report


def check_evp(routine, expr) -> RoutineReport:
    """Run all passes over one generated EVP routine (either variant)."""
    report = RoutineReport(routine.name, "evp", repr(expr))
    report.add("lint", lint.lint_evp(routine.source, routine.name))
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("absint", absint.check_evp(routine, expr))
    report.add("costaudit", costaudit.audit_evp(routine, expr))
    report.add("transval", transval.validate_evp(routine, expr))
    return report


def enforce(report: RoutineReport) -> RoutineReport:
    """Raise :class:`BeecheckError` if *report* carries findings."""
    if not report.ok:
        raise BeecheckError(report.routine, report.findings)
    return report


def verify_gcl(routine, layout: TupleLayout) -> None:
    enforce(check_gcl(routine, layout))


def verify_scl(routine, layout: TupleLayout) -> None:
    enforce(check_scl(routine, layout))


def verify_evp(routine, expr) -> None:
    enforce(check_evp(routine, expr))

def check_evj(routine) -> RoutineReport:
    """Run the static passes over one cloned EVJ template.

    EVJ routines are C text with no compiled function; the transval lane
    interprets the template instead of executing it.
    """
    report = RoutineReport(
        routine.name, "evj", f"{routine.join_type}/{routine.n_keys}"
    )
    report.add("lint", lint.lint_evj(routine.source))
    report.add(
        "determinism", lint.lint_determinism(routine.source, c_text=True)
    )
    report.add("absint", absint.check_evj(routine))
    report.add("costaudit", costaudit.audit_evj(routine))
    report.add("transval", transval.validate_evj(routine))
    return report


def check_agg(routine, specs, assume_not_null: bool = False) -> RoutineReport:
    """Run all passes over one generated AGG transition routine."""
    subject = ",".join(
        f"{spec.func}({'*' if spec.arg is None else spec.arg!r})"
        for spec in specs
    )
    report = RoutineReport(routine.name, "agg", subject)
    report.add("lint", lint.lint_agg(routine.source, routine.name))
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("absint", absint.check_agg(routine, specs))
    report.add(
        "costaudit", costaudit.audit_agg(routine, specs, assume_not_null)
    )
    report.add(
        "transval", transval.validate_agg(routine, specs, assume_not_null)
    )
    return report


def check_pipeline(routine, spec) -> RoutineReport:
    """Run all passes over one fused pipeline bee.

    *spec* is the :class:`repro.bees.pipeline.codegen.PipelineSpec` the
    routine was generated from — the lint keys its grammar off the sink,
    and the translation validator replays the spec's unfused semantics.
    """
    report = RoutineReport(
        routine.name, "pipeline", f"{spec.relation}/{spec.sink}"
    )
    report.add(
        "lint", lint.lint_pipeline(routine.source, routine.name, spec.sink)
    )
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("absint", absint.check_pipeline(routine, spec))
    report.add("costaudit", costaudit.audit_pipeline(routine, spec))
    report.add("transval", transval.validate_pipeline(routine, spec))
    return report


def check_vector(routine, spec) -> RoutineReport:
    """Run the vector passes over one columnar kernel.

    *spec* is the same :class:`repro.bees.pipeline.codegen.PipelineSpec`
    the pipeline tier fuses (vector bees compile the identical plan
    shape to a different program).  No absint lane: kernels do no offset
    arithmetic — chunk decode is generic library code — so the passes
    are lint (columnar grammar), costaudit (charge constants), and
    transval (kernel vs interpreter over enumerated chunks).
    """
    report = RoutineReport(
        routine.name, "vector", f"{spec.relation}/{spec.sink}"
    )
    report.add(
        "lint", lint.lint_vector(routine.source, routine.name, spec.sink)
    )
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("costaudit", costaudit.audit_vector(routine, spec))
    report.add("transval", transval.validate_vector(routine, spec))
    return report


def check_idx(routine, key_indexes) -> RoutineReport:
    """Run all passes over one generated IDX key-extraction routine."""
    report = RoutineReport(routine.name, "idx", repr(list(key_indexes)))
    report.add("lint", lint.lint_idx(routine.source, routine.name))
    report.add("determinism", lint.lint_determinism(routine.source))
    report.add("absint", absint.check_idx(routine, key_indexes))
    report.add("costaudit", costaudit.audit_idx(routine, key_indexes))
    report.add("transval", transval.validate_idx(routine, key_indexes))
    return report


def verify_evj(routine) -> None:
    enforce(check_evj(routine))


def verify_agg(routine, specs, assume_not_null: bool = False) -> None:
    enforce(check_agg(routine, specs, assume_not_null))


def verify_idx(routine, key_indexes) -> None:
    enforce(check_idx(routine, key_indexes))


def verify_pipeline(routine, spec) -> None:
    enforce(check_pipeline(routine, spec))


def verify_vector(routine, spec) -> None:
    enforce(check_vector(routine, spec))
