"""Heap files: the paged storage behind each relation."""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.cost import constants
from repro.cost.ledger import Ledger
from repro.storage.buffer import BufferPool
from repro.storage.page import HeapPage, PageFullError


class TID(NamedTuple):
    """Tuple identifier: (page number, slot number)."""

    pageno: int
    slot: int


class HeapFile:
    """A relation's pages, with charged access through the buffer pool."""

    #: Monotonic instance counter: ``uid`` keys derived caches (the vector
    #: tier's chunk cache) without the id()-recycling hazard.
    _next_uid = 0

    def __init__(self, name: str, ledger: Ledger, buffer_pool: BufferPool) -> None:
        self.name = name
        self.ledger = ledger
        self.buffer_pool = buffer_pool
        self.pages: list[HeapPage] = []
        self.live_count = 0
        HeapFile._next_uid += 1
        self.uid = HeapFile._next_uid
        #: Bumped on every mutation; derived caches validate against it.
        self.version = 0

    # -- modification ----------------------------------------------------------

    def insert(self, tuple_bytes: bytes) -> TID:
        """Append a tuple (filling the last page first); returns its TID."""
        if not self.pages:
            self.pages.append(HeapPage())
            self.buffer_pool.install(self.name, 0)
        pageno = len(self.pages) - 1
        try:
            slot = self.pages[pageno].insert(tuple_bytes)
        except PageFullError:
            self.pages.append(HeapPage())
            pageno += 1
            self.buffer_pool.install(self.name, pageno)
            slot = self.pages[pageno].insert(tuple_bytes)
        self.live_count += 1
        self.version += 1
        return TID(pageno, slot)

    def delete(self, tid: TID) -> None:
        """Mark the tuple at *tid* dead."""
        self.pages[tid.pageno].delete(tid.slot)
        self.live_count -= 1
        self.version += 1

    def update(self, tid: TID, tuple_bytes: bytes) -> TID:
        """Delete the old version and insert the new one (append-style)."""
        self.delete(tid)
        return self.insert(tuple_bytes)

    # -- access ----------------------------------------------------------------

    def fetch(self, tid: TID, sequential: bool = False) -> bytes:
        """Read one tuple by TID, charging buffer access + page cost."""
        self.buffer_pool.access(self.name, tid.pageno, sequential=sequential)
        self.ledger.charge(constants.PAGE_ACCESS)
        return self.pages[tid.pageno].read(tid.slot)

    def scan(self) -> Iterator[tuple[TID, bytes]]:
        """Sequentially yield ``(tid, tuple_bytes)`` for live tuples.

        Charges one buffer access + PAGE_ACCESS per visited page; per-tuple
        costs (``heap_getnext``) are charged by the SeqScan executor node.
        """
        access = self.buffer_pool.access
        charge = self.ledger.charge
        name = self.name
        for pageno, page in enumerate(self.pages):
            access(name, pageno, sequential=True)
            charge(constants.PAGE_ACCESS)
            for slot, raw in page.live_tuples():
                yield TID(pageno, slot), raw

    @property
    def page_count(self) -> int:
        """Number of allocated pages (the relation's footprint)."""
        return len(self.pages)

    def size_bytes(self) -> int:
        """Total storage footprint in bytes."""
        return self.page_count * constants.PAGE_SIZE
