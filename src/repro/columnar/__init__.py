"""Column-store extension: micro-specialization on a columnar architecture.

The paper argues micro-specialization is orthogonal to architectural
specialization and names column stores as a target (Sections I, VII,
VIII).  This package provides a minimal column-oriented store plus a
vectorized scan/filter/sum pipeline with generic and bee-specialized
(CDL + EVP) code paths, so the orthogonality claim can be measured:
the column store is faster than the row store on selective scans *and*
micro-specialization still improves it by a similar factor.
"""

from repro.columnar.engine import (
    CHUNK,
    ColumnarExecutor,
    ColumnarQueryResult,
    generate_cdl,
)
from repro.columnar.store import Column, ColumnStore

__all__ = [
    "CHUNK",
    "Column",
    "ColumnStore",
    "ColumnarExecutor",
    "ColumnarQueryResult",
    "generate_cdl",
]
