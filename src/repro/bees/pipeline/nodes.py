"""Pipeline driver nodes: the executor side of fused pipeline bees.

Each driver wraps one :class:`~repro.bees.pipeline.codegen.PipelineSpec`
plus the *anchor* — the generic subtree it replaced, kept both for
EXPLAIN and as the cache key for the generated routine (pipeline bees
are memoized per plan node in :class:`repro.bees.module.GenericBeeModule`
and evicted with the other query bees on DDL).

Drivers expose the usual ``rows(ctx)`` generator for compatibility, but
also ``batches(ctx)`` yielding page-sized lists of output rows; the
executor prefers ``batches`` so emission cost is charged per batch.

Under beeshield (``ctx.shield``), routine acquisition is guarded: a
quarantined or generation-faulted pipeline bee makes the driver drain
its anchor subtree — the generic plan it replaced — instead, and
wrong-width output batches raise the statement-retry signal.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.cost import constants as C
from repro.engine.nodes import ExecContext, PlanNode, Row, output_nullability

#: Fallback batch size when draining the generic anchor subtree.
_GENERIC_BATCH = 256


def _page_batches(rel) -> Iterator[list]:
    """Yield each heap page's live raw tuples as one batch, charging
    buffer access + PAGE_ACCESS per page exactly like ``HeapFile.scan``."""
    heap = rel.heap
    access = heap.buffer_pool.access
    charge = heap.ledger.charge
    name = heap.name
    for pageno, page in enumerate(heap.pages):
        access(name, pageno, sequential=True)
        charge(C.PAGE_ACCESS)
        batch = [raw for _slot, raw in page.live_tuples()]
        if batch:
            yield batch


class _PipelineNode(PlanNode):
    """Shared driver plumbing: spec + anchor + routine resolution."""

    def __init__(self, spec, anchor: PlanNode) -> None:
        self.spec = spec
        self.anchor = anchor
        self.columns = list(anchor.columns)
        self.nullable = output_nullability(anchor)

    def node_label(self) -> str:
        fused = " <- ".join(self.spec.fused_nodes)
        return f"{type(self).__name__}[{fused}]"

    def _acquire(self, ctx: ExecContext):
        """Resolve the pipeline routine: ``(fn_or_None, health_key)``.

        ``None`` means the driver must fall back to the anchor subtree
        (quarantined bee, or the generator faulted under the shield).
        """
        shield = ctx.shield
        if shield is None:
            return ctx.bees.get_pipeline(self.spec, self.anchor).fn, None
        routine, key = shield.pipeline(ctx, self.spec, self.anchor)
        if routine is None:
            return None, key
        return shield.maybe_timed(routine.fn, "pipelines", key), key

    def _anchor_batches(self, ctx: ExecContext) -> Iterator[list]:
        """Generic fallback: drain the replaced subtree, chunked."""
        batch: list[Row] = []
        for row in self.anchor.rows(ctx):
            batch.append(row)
            if len(batch) >= _GENERIC_BATCH:
                yield batch
                batch = []
        if batch:
            yield batch

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        for batch in self.batches(ctx):
            yield from batch

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        raise NotImplementedError


class PipelineScan(_PipelineNode):
    """Fused Scan -> Filter* -> Project pipeline (the ``rows`` sink)."""

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        fn, key = self._acquire(ctx)
        if fn is None:
            yield from self._anchor_batches(ctx)
            return
        rel = ctx.db.relation(self.spec.relation)
        shield = ctx.shield
        if shield is not None:
            shield.scrub_sections(rel)
        sections = rel.sections_list()
        width = len(self.columns)
        for batch in _page_batches(rel):
            out = fn(batch, sections)
            if out:
                if shield is not None and len(out[0]) != width:
                    shield.fault("pipelines", key, "arity")
                yield out


class PipelineJoin(_PipelineNode):
    """Hash join whose probe side is fused (the ``probe`` sink).

    The build side stays a generic (possibly itself fused) subtree; the
    build phase below is charged exactly like :class:`HashJoin`'s.
    """

    def __init__(self, spec, anchor, build: PlanNode) -> None:
        super().__init__(spec, anchor)
        self.build = build

    def children(self) -> tuple[PlanNode, ...]:
        return (self.build,)

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        fn, key = self._acquire(ctx)
        if fn is None:
            yield from self._anchor_batches(ctx)
            return
        charge = ctx.ledger.charge
        build_idx = self.anchor.build_idx
        n_keys = len(build_idx)
        build_cost = (
            C.NODE_OVERHEAD + C.JOIN_HASH_COMPUTE + C.EXPR_COLUMN * n_keys
        )
        table: dict[tuple, list[Row]] = defaultdict(list)
        for row in self.build.rows(ctx):
            charge(build_cost)
            build_key = tuple(row[i] for i in build_idx)
            if None in build_key:
                continue  # NULL keys never match
            table[build_key].append(row)
        table = dict(table)   # drop defaultdict insertion-on-miss
        rel = ctx.db.relation(self.spec.relation)
        shield = ctx.shield
        if shield is not None:
            shield.scrub_sections(rel)
        sections = rel.sections_list()
        width = len(self.columns)
        for batch in _page_batches(rel):
            out = fn(batch, sections, table)
            if out:
                if shield is not None and len(out[0]) != width:
                    shield.fault("pipelines", key, "arity")
                yield out


class PipelineAgg(_PipelineNode):
    """Hash aggregation whose input is fused (the ``agg`` sink).

    The fused function advances accumulators in place; the final pass
    (one row per group, NODE_OVERHEAD each) mirrors ``HashAgg.rows``.
    """

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        fn, _key = self._acquire(ctx)
        if fn is None:
            yield from self._anchor_batches(ctx)
            return
        charge = ctx.ledger.charge
        aggs = self.spec.aggs
        make_states = lambda: [spec.make_state() for spec in aggs]
        groups: dict[tuple, list] = {}
        if not self.spec.group_exprs:
            groups[()] = make_states()
        rel = ctx.db.relation(self.spec.relation)
        shield = ctx.shield
        if shield is not None:
            shield.scrub_sections(rel)
        sections = rel.sections_list()
        for batch in _page_batches(rel):
            fn(batch, sections, groups, make_states)
        out = []
        for group_key, states in groups.items():
            charge(C.NODE_OVERHEAD)
            out.append(list(group_key) + [state.result() for state in states])
        if out:
            yield out
