"""Pipeline-bee benchmark: stock vs routine bees vs fused pipelines.

Runs all 22 TPC-H queries, warm cache, on four databases sharing one
generated dataset:

* **stock** — no specialization,
* **bees** — the paper's evaluated system (GCL/SCL/EVP/EVJ/tuple bees),
* **noshield** — the same with beeshield's guarded invocation disabled,
* **pipelines** — bees plus fused pipeline bees.

For each query we record the best-of-``--repeat`` wall-clock seconds and
the (deterministic) priced instruction count, assert the engines agree
on every result, and report per-query ratios plus geometric means.
The JSON report lands in ``results/BENCH_pipeline.json``; ``--check``
additionally gates two claims for CI: pipelines beat routine bees on
the wall-clock geomean, and the shield's healthy-path overhead
(bees vs noshield, same run, same machine) stays under
``--shield-tolerance`` (default 1.05 — the zero-overhead guardrail).

Usage::

    PYTHONPATH=src python benchmarks/bench_pipeline.py --sf 0.01 --check
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from pathlib import Path

from repro.bees.settings import BeeSettings
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import build_tpch_database, generate_rows
from repro.workloads.tpch.queries import QUERIES

ENGINES = ("stock", "bees", "noshield", "pipelines")


def build_databases(scale_factor: float, seed: int):
    rows = generate_rows(TPCHGenerator(scale_factor, seed))
    return {
        "stock": build_tpch_database(BeeSettings.stock(), rows=rows),
        "bees": build_tpch_database(BeeSettings.all_bees(), rows=rows),
        "noshield": build_tpch_database(
            BeeSettings.all_bees().enabling(shield=False), rows=rows
        ),
        "pipelines": build_tpch_database(
            BeeSettings.pipelined(), rows=rows
        ),
    }


def run_query(db, query_number: int, repeat: int):
    """Best-of-*repeat* wall seconds + priced instructions + result."""
    best_wall = math.inf
    run = None
    for _ in range(repeat):
        db.warm_cache()
        started = time.perf_counter()
        run = db.measure(lambda: QUERIES[query_number](db))
        best_wall = min(best_wall, time.perf_counter() - started)
    return best_wall, run.instructions, run.result


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_suite(databases, repeat: int) -> dict:
    queries = {}
    for number in sorted(QUERIES):
        per_engine = {}
        results = {}
        for engine in ENGINES:
            wall, instructions, result = run_query(
                databases[engine], number, repeat
            )
            per_engine[engine] = {
                "wall_seconds": wall,
                "instructions": instructions,
            }
            results[engine] = result
        baseline = results["stock"]
        if any(results[engine] != baseline for engine in ENGINES):
            raise AssertionError(
                f"q{number}: engines disagree — benchmark numbers would "
                f"be meaningless"
            )
        for engine in ("bees", "noshield", "pipelines"):
            per_engine[engine]["wall_ratio_vs_bees"] = (
                per_engine[engine]["wall_seconds"]
                / per_engine["bees"]["wall_seconds"]
            )
            per_engine[engine]["instr_ratio_vs_stock"] = (
                per_engine[engine]["instructions"]
                / per_engine["stock"]["instructions"]
            )
        queries[f"q{number}"] = per_engine
    return queries


def summarize(queries: dict) -> dict:
    def ratio(metric, a, b):
        return geomean(
            q[a][metric] / q[b][metric] for q in queries.values()
        )

    return {
        "wall_geomean_pipelines_vs_bees": ratio(
            "wall_seconds", "pipelines", "bees"
        ),
        "wall_geomean_pipelines_vs_stock": ratio(
            "wall_seconds", "pipelines", "stock"
        ),
        "instr_geomean_pipelines_vs_bees": ratio(
            "instructions", "pipelines", "bees"
        ),
        "instr_geomean_bees_vs_stock": ratio(
            "instructions", "bees", "stock"
        ),
        # The zero-overhead guardrail: shielded vs unshielded bees in
        # the same run, so machine speed cancels out of the ratio.
        "wall_geomean_bees_vs_noshield": ratio(
            "wall_seconds", "bees", "noshield"
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="TPC-H pipeline-bee benchmark (stock / bees / fused)."
    )
    parser.add_argument("--sf", type=float, default=0.01,
                        help="TPC-H scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=20120401)
    parser.add_argument("--repeat", type=int, default=3,
                        help="wall-clock runs per query; best is kept")
    parser.add_argument("--out", type=Path,
                        default=Path("results") / "BENCH_pipeline.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless fused pipelines beat "
                             "routine bees on the wall-clock geomean")
    parser.add_argument("--tolerance", type=float, default=1.0,
                        help="--check passes while the pipelines/bees "
                             "wall geomean is below this (default 1.0)")
    parser.add_argument("--shield-tolerance", type=float, default=1.05,
                        help="--check also fails when the shielded/"
                             "unshielded wall geomean reaches this "
                             "(default 1.05: beeshield may cost at most "
                             "5%% on the healthy path)")
    args = parser.parse_args(argv)

    databases = build_databases(args.sf, args.seed)
    queries = run_suite(databases, args.repeat)
    summary = summarize(queries)
    report = {
        "scale_factor": args.sf,
        "seed": args.seed,
        "repeat": args.repeat,
        "engines": {
            name: databases[name].settings.label() or "stock"
            for name in ENGINES
        },
        "summary": summary,
        "queries": queries,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for name, value in summary.items():
        print(f"{name}: {value:.3f}")
    print(f"report: {args.out}")

    if args.check:
        ratio = summary["wall_geomean_pipelines_vs_bees"]
        if ratio >= args.tolerance:
            print(
                f"CHECK FAILED: pipelines/bees wall geomean {ratio:.3f} "
                f">= {args.tolerance}"
            )
            return 1
        overhead = summary["wall_geomean_bees_vs_noshield"]
        if overhead >= args.shield_tolerance:
            print(
                f"CHECK FAILED: shield overhead {overhead:.3f} "
                f">= {args.shield_tolerance} (shielded vs unshielded "
                f"wall geomean)"
            )
            return 1
        print(
            f"check passed: pipelines/bees {ratio:.3f} < {args.tolerance}, "
            f"shield overhead {overhead:.3f} < {args.shield_tolerance}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
