"""Chaos harness: seeded fault injection at named bee sites.

Every site plants one specific fault class into the bee machinery —
a generated routine that raises, a routine with the wrong result shape,
a generator that fails, flipped data-section bytes, page evictions under
a reader, a stale invalidation epoch, a per-call budget overrun — and
the campaign (:mod:`repro.resilience.campaign`) asserts that query
results under every fault plan match the stock engine, with no
:class:`~repro.resilience.errors.ChaosFault` escaping to the caller.

Faults are planted where the oracle's bug injection plants bugs: the
generator attributes of :mod:`repro.bees.maker` (which imports the
generators into its own namespace) and the lazily imported generator
modules for the experimental AGG/IDX families.  Raising variants are
compiled through :func:`repro.bees.routines.base.compile_routine` with
the routine's own ``<bee:NAME>`` filename, so the executor's traceback
attribution resolves them exactly like a real faulting bee.

Two arming styles exist (see :attr:`ChaosSite.arm_with_db`):

* **generator sites** are armed *before* the database is built, so
  relation bees created at DDL time are already tampered;
* **database sites** (section flips, buffer evictions, stale epochs,
  budget overruns) tamper with a live database and are armed after it
  is loaded.

``kick`` hooks run between statements (e.g. re-flipping a section or
silently bumping the invalidation epoch) so mid-campaign state changes
are exercised, not just initial ones.
"""

from __future__ import annotations

import dataclasses
import random
from collections import Counter
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable

from repro.bees.routines.base import compile_routine
from repro.resilience.errors import ChaosFault


class ChaosInjector:
    """Seeded fault driver: owns the RNG and the per-site fire counts."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.fired: Counter[str] = Counter()

    def boom(self, site: str) -> ChaosFault:
        """Count one planted fault and build the exception to raise."""
        self.fired[site] += 1
        return ChaosFault(site)

    @contextmanager
    def armed(self, site_name: str, db=None):
        """Arm one named site for the duration of the block."""
        site = SITES[site_name]
        with site.arm(self, db):
            yield site

    def kick(self, site_name: str, db) -> None:
        """Between-statement hook for the named site (no-op for most)."""
        site = SITES[site_name]
        if site.kick is not None:
            site.kick(self, db)


@dataclass(frozen=True)
class ChaosSite:
    """One named fault-injection point.

    ``arm(chaos, db)`` is a context manager planting the fault;
    ``kick(chaos, db)`` (optional) re-plants it between statements;
    ``evidence(chaos, db)`` decides whether the fault demonstrably
    triggered during the run (the default checks the fire counter —
    sites whose faults are detected by the shield rather than raised by
    the harness inspect the resilience registry instead).
    """

    name: str
    description: str
    arm: Callable
    arm_with_db: bool = False
    kick: Callable | None = None
    evidence: Callable | None = None
    #: Run with plan fusion enabled.  Fused pipelines inline their own
    #: deform/filter/aggregate loops, bypassing the GCL/EVP/AGG routines
    #: entirely — so sites targeting those families must run unfused or
    #: their fault would never be reached.
    fused: bool = False
    #: Run with the columnar vector tier enabled on top of fusion.
    #: Vector sites need the full ladder armed (vectors over pipelines)
    #: so degradation has both lower tiers to land on.
    vectored: bool = False
    #: Run with the morsel-parallel tier enabled on top of the ladder.
    #: Parallel sites compare with the float-tolerant equivalence
    #: (morsel partial sums re-associate) instead of exact equality.
    parallel: bool = False
    #: A Hive Gate server fault: driven by the resilience *server lane*
    #: (:mod:`repro.resilience.serverlane`) against a concurrent
    #: multi-session harness instead of the single-session campaign
    #: scenario.  ``arm`` receives the :class:`HiveServer` as its second
    #: argument, not a Database.
    server: bool = False

    def triggered(self, chaos: ChaosInjector, db) -> bool:
        if self.evidence is not None:
            return self.evidence(chaos, db)
        return chaos.fired[self.name] > 0


# ----------------------------------------------------------------------
# routine tampering helpers

def _raising_copy(routine, site: str, chaos: ChaosInjector):
    """A copy of *routine* whose body raises ChaosFault — compiled with
    the routine's own ``<bee:NAME>`` filename so traceback attribution
    resolves it like a genuine generated-code fault."""
    namespace = {"_chaos_boom": lambda: chaos.boom(site)}
    source = f"def {routine.name}(*args):\n    raise _chaos_boom()\n"
    fn = compile_routine(source, routine.name, namespace)
    return dataclasses.replace(routine, fn=fn, source=source)


def _patched_generator(module, attr: str, wrap):
    """Context manager factory: swap ``module.attr`` for ``wrap(original)``."""

    @contextmanager
    def arm(chaos, _db):
        original = getattr(module, attr)
        setattr(module, attr, wrap(chaos, original))
        try:
            yield
        finally:
            setattr(module, attr, original)

    return arm


def _gen_raise(site: str):
    """Wrap a generator so every routine it emits raises at call time."""

    def wrap(chaos, original):
        def patched(*args, **kwargs):
            return _raising_copy(original(*args, **kwargs), site, chaos)

        return patched

    return wrap


# ----------------------------------------------------------------------
# shape-tamper wrappers (plain Python: the guard's inline checks detect
# the wrong shape, no traceback attribution needed)

def _gcl_arity_wrap(chaos, original):
    def patched(layout, ledger, fn_name):
        routine = original(layout, ledger, fn_name)
        inner = routine.fn

        def truncated(raw, sections):
            chaos.fired["gcl-arity"] += 1
            return inner(raw, sections)[:-1]

        return dataclasses.replace(routine, fn=truncated)

    return patched


def _evp_type_wrap(chaos, original):
    def patched(expr, ledger, fn_name, assume_not_null=False):
        routine = original(expr, ledger, fn_name, assume_not_null)
        inner = routine.fn

        def stringly(row):
            verdict = inner(row)
            if isinstance(verdict, bool):
                chaos.fired["evp-wrong-type"] += 1
                return "yes" if verdict else "no"
            return verdict

        return dataclasses.replace(routine, fn=stringly)

    return patched


def _evp_gen_wrap(chaos, original):
    def patched(expr, ledger, fn_name, assume_not_null=False):
        raise chaos.boom("evp-gen-raise")

    return patched


def _pipeline_arity_wrap(chaos, original):
    def patched(spec, ledger, fn_name):
        routine = original(spec, ledger, fn_name)
        inner = routine.fn

        def widened(*args):
            out = inner(*args)
            if out:
                chaos.fired["pipeline-arity"] += 1
                return [tuple(row) + (None,) for row in out]
            return out

        return dataclasses.replace(routine, fn=widened)

    return patched


def _fusion_raise_wrap(chaos, original):
    def patched(plan, db):
        raise chaos.boom("fusion-raise")

    return patched


def _vector_shape_wrap(chaos, original):
    """Kernels whose output rows grow one phantom column: the vector
    node's inline arity check must fault and degrade to the pipeline
    anchor (and, statement-level, vectors -> pipelines -> generic)."""

    def patched(spec, ledger, fn_name):
        routine = original(spec, ledger, fn_name)
        inner = routine.fn

        def widened(*args):
            out = inner(*args)
            if out:
                chaos.fired["vector-shape"] += 1
                return [list(row) + [None] for row in out]
            return out

        return dataclasses.replace(routine, fn=widened)

    return patched


def _vector_gen_wrap(chaos, original):
    def patched(spec, ledger, fn_name):
        raise chaos.boom("vector-gen-raise")

    return patched


# ----------------------------------------------------------------------
# database sites

@contextmanager
def _arm_section_flip(chaos, db):
    _flip_sections(chaos, db)
    yield


def _flip_sections(chaos, db) -> None:
    """Corrupt one random data-section slab entry per relation bee.

    The shadow copy is left intact — this models a bit flip in the
    section memory, which :meth:`DataSectionStore.scrub` detects and
    repairs before the next scan.
    """
    for bee in db.bee_module.cache.relation_bees.values():
        store = bee.data_sections
        if store is None or len(store) == 0:
            continue
        bee_id = chaos.rng.randrange(len(store))
        slab, slot = store._slab_slot(bee_id)
        if slab[slot] is None:
            continue
        slab[slot] = ("\x00chaos",) * len(slab[slot])
        chaos.fired["section-flip"] += 1


@contextmanager
def _arm_buffer_evict(chaos, db):
    pool = db.buffer_pool
    original = pool.access
    rng = chaos.rng

    def evicting_access(relation, pageno, sequential=True):
        resident = pool._resident
        if resident and rng.random() < 0.25:
            victim = rng.choice(list(resident))
            del resident[victim]
            chaos.fired["buffer-evict"] += 1
        return original(relation, pageno, sequential)

    pool.access = evicting_access
    try:
        yield
    finally:
        del pool.access   # restore the bound method


@contextmanager
def _arm_stale_epoch(chaos, _db):
    yield


def _kick_stale_epoch(chaos, db) -> None:
    """Simulate a missed invalidation: bump the epoch, keep the memos.

    The guard's staleness check must notice the mismatch at the next
    acquisition, evict the stale routine, and regenerate it under the
    current epoch (recorded as a ``stale`` fault).
    """
    db.bee_module.query_epoch += 1
    chaos.fired["stale-epoch"] += 1


def _stale_evidence(chaos, db) -> bool:
    report = db.resilience.report()
    return any(key.endswith("/stale") for key in report["by_site"])


@contextmanager
def _arm_budget(chaos, db):
    db.resilience.call_budget_s = 0.0   # every timed call overruns
    try:
        yield
    finally:
        db.resilience.call_budget_s = None


def _budget_evidence(chaos, db) -> bool:
    report = db.resilience.report()
    return any(key.endswith("/budget") for key in report["by_site"])


@contextmanager
def _arm_parallel_kill(chaos, db):
    _kick_parallel_kill(chaos, db)
    yield


def _kick_parallel_kill(chaos, db) -> None:
    """Lose a worker with its morsel in flight (one-shot per statement).

    The coordinator's dispatch loop must observe the pipe EOF, record
    the loss, shut the pool down, and degrade the statement to its
    serial anchor — never hang on the dead worker or mis-merge a
    partial result set.
    """
    db.parallel_coordinator()._chaos_kill_next = True
    chaos.fired["parallel-worker-loss"] += 1


@contextmanager
def _arm_parallel_stale(chaos, db):
    _kick_parallel_stale(chaos, db)
    yield


def _kick_parallel_stale(chaos, db) -> None:
    """Hand one worker a statement without its heap snapshot.

    The worker must answer ``stale`` (snapshot-token mismatch) rather
    than compute over missing or outdated pages; the coordinator then
    re-ships the snapshot and resends the morsel.
    """
    db.parallel_coordinator()._chaos_stale_next = True
    chaos.fired["parallel-stale-epoch"] += 1


def _parallel_event_evidence(event_name: str):
    def evidence(chaos, db) -> bool:
        return any(
            event["event"] == event_name
            for event in db.resilience.report()["events"]
        )

    return evidence


def _section_evidence(chaos, db) -> bool:
    if chaos.fired["section-flip"] == 0:
        return False
    return any(
        event["event"] == "section_repaired"
        for event in db.resilience.report()["events"]
    )


# ----------------------------------------------------------------------
# server sites (armed by the resilience server lane, which passes the
# HiveServer — not a Database — as the harness object)

#: The balanced-pair scratch relation every server lane runs against.
SERVER_LANE_TABLE = "gate_ledger"


@contextmanager
def _arm_server_noop(chaos, _server):
    """The lane itself injects the fault (socket resets, WAL tears);
    arming is a no-op so the site still fits the campaign shape."""
    yield


@contextmanager
def _arm_latch_hijack(chaos, server):
    """Hold the lane table's write latch from outside any session, so
    every statement touching it exhausts its lock-wait budget."""
    latch = server.locks.relation_lock.latch(SERVER_LANE_TABLE)
    latch.acquire_write(None)
    chaos.fired["server-lock-timeout"] += 1
    try:
        yield
    finally:
        latch.release_write()


@contextmanager
def _arm_fsync_fail(chaos, server):
    """One-shot fsync failure in the data WAL's durability hook."""
    with server.locks.wal_lock:
        server.wal._chaos_fsync_fail = 1
    chaos.fired["server-fsync-fail"] += 1
    try:
        yield
    finally:
        with server.locks.wal_lock:
            server.wal._chaos_fsync_fail = 0


def _server_stat_evidence(counter: str):
    def evidence(_chaos, server):
        return getattr(server.stats, counter) > 0

    return evidence


def _server_event_evidence(event: str):
    def evidence(_chaos, server):
        return any(
            entry.get("event") == event
            for entry in server.db.resilience.report()["events"]
        )

    return evidence


# ----------------------------------------------------------------------
# the catalog

def _maker_module():
    import repro.bees.maker as maker

    return maker


def _agg_module():
    import repro.bees.routines.agg as agg

    return agg


def _idx_module():
    import repro.bees.routines.idx as idx

    return idx


def _pipeline_package():
    import repro.bees.pipeline as pipeline

    return pipeline


def _build_sites() -> dict[str, ChaosSite]:
    maker = _maker_module()
    sites = [
        ChaosSite(
            "gcl-raise",
            "specialized deform raises mid-scan",
            _patched_generator(maker, "generate_gcl", _gen_raise("gcl-raise")),
        ),
        ChaosSite(
            "gcl-arity",
            "specialized deform returns a short row",
            _patched_generator(maker, "generate_gcl", _gcl_arity_wrap),
        ),
        ChaosSite(
            "scl-raise",
            "specialized fill raises on insert",
            _patched_generator(maker, "generate_scl", _gen_raise("scl-raise")),
        ),
        ChaosSite(
            "evp-raise",
            "specialized predicate raises per row",
            _patched_generator(maker, "generate_evp", _gen_raise("evp-raise")),
        ),
        ChaosSite(
            "evp-wrong-type",
            "specialized predicate returns strings, not bools",
            _patched_generator(maker, "generate_evp", _evp_type_wrap),
        ),
        ChaosSite(
            "evp-gen-raise",
            "predicate generator fails outright",
            _patched_generator(maker, "generate_evp", _evp_gen_wrap),
        ),
        ChaosSite(
            "evj-shape",
            "join routine advertises a negative compare cost",
            _patched_generator(maker, "instantiate_evj", _evj_instantiate_wrap),
        ),
        ChaosSite(
            "agg-raise",
            "aggregate transition routine raises",
            _patched_generator(
                _agg_module(), "generate_agg", _gen_raise("agg-raise")
            ),
        ),
        ChaosSite(
            "idx-raise",
            "index key extractor raises during maintenance",
            _patched_generator(
                _idx_module(), "generate_idx", _gen_raise("idx-raise")
            ),
        ),
        ChaosSite(
            "pipeline-raise",
            "fused pipeline body raises mid-batch",
            _patched_generator(
                maker, "generate_pipeline", _gen_raise("pipeline-raise")
            ),
            fused=True,
        ),
        ChaosSite(
            "pipeline-arity",
            "fused pipeline emits wide batches",
            _patched_generator(maker, "generate_pipeline", _pipeline_arity_wrap),
            fused=True,
        ),
        ChaosSite(
            "fusion-raise",
            "plan fusion matcher raises",
            _patched_generator(
                _pipeline_package(), "fuse_plan", _fusion_raise_wrap
            ),
            fused=True,
        ),
        ChaosSite(
            "vector-shape",
            "columnar kernel emits shape-corrupted rows",
            _patched_generator(maker, "generate_vector", _vector_shape_wrap),
            fused=True,
            vectored=True,
        ),
        ChaosSite(
            "vector-gen-raise",
            "vector kernel generator fails outright",
            _patched_generator(maker, "generate_vector", _vector_gen_wrap),
            fused=True,
            vectored=True,
        ),
        ChaosSite(
            "parallel-worker-loss",
            "worker process killed with a morsel in flight",
            _arm_parallel_kill,
            arm_with_db=True,
            kick=_kick_parallel_kill,
            evidence=_parallel_event_evidence("parallel_worker_lost"),
            fused=True,
            vectored=True,
            parallel=True,
        ),
        ChaosSite(
            "parallel-stale-epoch",
            "worker dispatched a statement without its snapshot",
            _arm_parallel_stale,
            arm_with_db=True,
            kick=_kick_parallel_stale,
            evidence=_parallel_event_evidence("parallel_stale_retry"),
            fused=True,
            vectored=True,
            parallel=True,
        ),
        ChaosSite(
            "section-flip",
            "data-section byte flips under a reader",
            _arm_section_flip,
            arm_with_db=True,
            kick=lambda chaos, db: _flip_sections(chaos, db),
            evidence=_section_evidence,
        ),
        ChaosSite(
            "buffer-evict",
            "seeded page evictions under a reader",
            _arm_buffer_evict,
            arm_with_db=True,
        ),
        ChaosSite(
            "stale-epoch",
            "invalidation epoch bumped without clearing memos",
            _arm_stale_epoch,
            arm_with_db=True,
            kick=_kick_stale_epoch,
            evidence=_stale_evidence,
        ),
        ChaosSite(
            "budget-overrun",
            "per-call wall-clock budget set to zero",
            _arm_budget,
            arm_with_db=True,
            evidence=_budget_evidence,
        ),
        ChaosSite(
            "server-client-disconnect",
            "client resets its connection mid-statement",
            _arm_server_noop,
            arm_with_db=True,
            evidence=_server_stat_evidence("disconnects"),
            server=True,
        ),
        ChaosSite(
            "server-lock-timeout",
            "a hung writer holds a relation latch past the wait budget",
            _arm_latch_hijack,
            arm_with_db=True,
            evidence=_server_stat_evidence("lock_timeouts"),
            server=True,
        ),
        ChaosSite(
            "server-fsync-fail",
            "fsync fails during group commit",
            _arm_fsync_fail,
            arm_with_db=True,
            evidence=_server_event_evidence("wal_fsync_failed"),
            server=True,
        ),
        ChaosSite(
            "server-kill-mid-commit",
            "server killed with a commit group half-written",
            _arm_server_noop,
            arm_with_db=True,
            server=True,
        ),
    ]
    return {site.name: site for site in sites}


def _evj_instantiate_wrap(chaos, original):
    def patched(join_type, n_keys, fn_name):
        routine = original(join_type, n_keys, fn_name)
        chaos.fired["evj-shape"] += 1
        routine.cost_per_compare = -1
        return routine

    return patched


SITES: dict[str, ChaosSite] = _build_sites()

#: Site names in deterministic campaign order.
SITE_NAMES: tuple[str, ...] = tuple(SITES)
