"""Design-choice ablations called out in DESIGN.md.

1. **Tuple-bee cardinality sweep** — the 256-section soft cap: bulk-load
   gain as annotated-attribute cardinality grows (the memcmp scan gets
   linearly more expensive; past the cap the trade turns negative).
2. **Clone-and-patch vs recompile** — query-bee instantiation must be
   cheap: cloning a pre-compiled EVJ template vs generating + compiling
   an EVP routine from source.
3. **Bee placement on/off** — the simulated I-cache model confirms the
   paper's observation that placement's effect is small (L1-I miss rates
   are already ~0.3%).
"""

from __future__ import annotations

import pytest

from repro.bees.maker import BeeMaker
from repro.bees.placement import BeePlacementOptimizer
from repro.bees.settings import BeeSettings
from repro.bench.reporting import emit, improvement, table
from repro.catalog import INT4, char, make_schema, varchar
from repro.cost.ledger import Ledger
from repro.db import Database
from repro.engine.expr import And, Between, Cmp, Col, Const, bind


def _sweep_schema():
    return make_schema(
        "sweep",
        [
            ("k", INT4),
            ("tag", char(12)),
            ("payload", varchar(40)),
        ],
        ("k",),
    )


def _load(settings: BeeSettings, cardinality: int, n_rows: int) -> float:
    db = Database(settings)
    db.create_table(_sweep_schema(), annotate=("tag",))
    rows = [
        [i, f"tag-{i % cardinality:05d}", f"payload text {i}"]
        for i in range(n_rows)
    ]
    run = db.measure(lambda: db.copy_from("sweep", rows))
    return run.seconds


@pytest.fixture(scope="module")
def cardinality_sweep():
    n_rows = 4000
    rows = []
    for cardinality in (2, 16, 64, 256, 1024):
        stock = _load(BeeSettings.stock(), cardinality, n_rows)
        bees = _load(BeeSettings.all_bees(), cardinality, n_rows)
        rows.append([cardinality, round(improvement(stock, bees), 1)])
    emit("\n=== Ablation: tuple-bee cardinality vs bulk-load gain ===")
    emit(table(["cardinality", "bulk-load improvement %"], rows))
    return {cardinality: gain for cardinality, gain in rows}


def test_tuplebee_cardinality_sweep(benchmark, cardinality_sweep):
    benchmark(lambda: None)
    # Low cardinality wins; the gain decays as the memcmp scan lengthens.
    assert cardinality_sweep[2] > cardinality_sweep[1024]
    assert cardinality_sweep[2] > 0


@pytest.fixture(scope="module")
def bound_predicate():
    expr = And(
        Between(Col("a"), 10, 20),
        Cmp("=", Col("b"), Const("x")),
    )
    return bind(expr, ["a", "b"])


def test_querybee_clone_evj(benchmark):
    """Clone-and-patch: per-query EVJ instantiation (the cheap path)."""
    maker = BeeMaker(Ledger())
    routine = benchmark(maker.make_evj, "inner", 2)
    assert routine.cost_per_compare > 0


def test_querybee_recompile_evp(benchmark, bound_predicate):
    """Recompile: EVP codegen + compile() per query (the expensive path).

    The paper avoids this on the query path by pre-compiling templates;
    this pair of benchmarks quantifies why.
    """
    maker = BeeMaker(Ledger())
    routine = benchmark(maker.make_evp, bound_predicate, True)
    assert routine.fn([15, "x"]) is True


@pytest.fixture(scope="module")
def placement_report():
    optimizer = BeePlacementOptimizer()
    bees = [(f"bee{i}", 512 + 64 * i, 1.0 + i / 4) for i in range(12)]
    naive = optimizer.evaluate(optimizer.naive_placement(bees))
    optimized = optimizer.evaluate(optimizer.optimize(bees))
    emit("\n=== Ablation: bee placement (simulated 32KB L1-I) ===")
    emit(table(
        ["placement", "added conflict", "miss-rate delta"],
        [
            ["naive", round(naive["added_conflict"], 2),
             f"{naive['miss_rate_delta']:.5f}"],
            ["optimized", round(optimized["added_conflict"], 2),
             f"{optimized['miss_rate_delta']:.5f}"],
        ],
    ))
    return naive, optimized


def test_placement_optimizer(benchmark, placement_report):
    optimizer = BeePlacementOptimizer()
    bees = [(f"bee{i}", 512, 1.0) for i in range(8)]
    benchmark(optimizer.optimize, bees)
    naive, optimized = placement_report
    assert optimized["added_conflict"] <= naive["added_conflict"]
    # The paper's observation: the whole effect is small.
    assert optimized["miss_rate_delta"] < 0.01
