"""Wagglecheck findings and the sweep report."""

from __future__ import annotations

from dataclasses import dataclass, field

#: Pass names, in the order the analyzer runs them.
PASSES = ("typeflow", "rewrite", "sections")


@dataclass
class Finding:
    """One violated plan property, attributed to the pass that proved it."""

    pass_name: str
    subject: str        # plan label or relation name
    message: str

    def __str__(self) -> str:
        return f"[{self.pass_name}] {self.subject}: {self.message}"

    def to_dict(self) -> dict[str, str]:
        return {
            "pass": self.pass_name,
            "subject": self.subject,
            "message": self.message,
        }


@dataclass
class WaggleReport:
    """One full ``python -m repro.wagglecheck`` run."""

    seed: int
    statements: int = 0
    plans_checked: int = 0
    nodes_checked: int = 0
    relations_checked: int = 0
    rewrites_checked: int = 0
    sections_checked: int = 0
    findings: list[Finding] = field(default_factory=list)
    selftest: dict[str, bool] = field(default_factory=dict)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.findings and all(self.selftest.values())

    def to_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "statements": self.statements,
            "elapsed_seconds": round(self.elapsed, 3),
            "plans_checked": self.plans_checked,
            "nodes_checked": self.nodes_checked,
            "relations_checked": self.relations_checked,
            "rewrites_checked": self.rewrites_checked,
            "sections_checked": self.sections_checked,
            "findings": [f.to_dict() for f in self.findings],
            "selftest": dict(self.selftest),
            "ok": self.ok,
        }

    def summary(self) -> str:
        from repro.analysis import format_selftest

        lines = [
            f"wagglecheck seed={self.seed}: {self.plans_checked} plans "
            f"({self.nodes_checked} nodes), {self.rewrites_checked} rewrites, "
            f"{self.relations_checked} relation layouts, "
            f"{self.sections_checked} data sections, "
            f"{self.statements} corpus statements in {self.elapsed:.1f}s",
        ]
        if self.selftest:
            lines.append(
                f"injection self-test: {format_selftest(self.selftest)}"
            )
        if self.findings:
            lines.append(f"{len(self.findings)} FINDING(S):")
            lines.extend(f"  {finding}" for finding in self.findings)
        else:
            lines.append("all passes clean")
        return "\n".join(lines)
