"""Tests for wagglecheck: contracts, typeflow, rewrite replay, sections,
the shared analysis scaffolding, and the CLI end-to-end."""

import json

import pytest

from repro import BeeSettings, Database
from repro.catalog import DATE, INT4, NUMERIC, make_schema, varchar
from repro.catalog.types import BOOL, FLOAT8, INT8, TEXT, char
from repro.engine import expr as E
from repro.engine.nodes import Filter, Project, SeqScan
from repro.wagglecheck.contracts import (
    ColumnContract,
    TypeChecker,
    comparable,
    contracts_from_schema,
    kind_of_sql_type,
    kind_of_value,
)
from repro.wagglecheck.report import Finding, WaggleReport
from repro.wagglecheck.rewrite import RewriteChecker, expr_equal
from repro.wagglecheck.sections import value_violation
from repro.wagglecheck.typeflow import check_plan, check_relation


@pytest.fixture()
def db():
    database = Database(BeeSettings.all_bees().enabling(pipelines=True))
    database.create_table(
        make_schema(
            "t",
            [
                ("id", INT4),
                ("price", NUMERIC),
                ("name", varchar(12)),
                ("day", DATE),
                ("flag", INT4, True),
            ],
            ("id",),
        )
    )
    return database


def _scan(db, relation="t"):
    scan = SeqScan(relation)
    scan.bind_schema(db.relation(relation).schema)
    return scan


class TestContracts:
    def test_kind_mapping(self):
        assert kind_of_sql_type(INT4) == "int"
        assert kind_of_sql_type(INT8) == "int"
        assert kind_of_sql_type(FLOAT8) == "float"
        assert kind_of_sql_type(NUMERIC) == "float"
        assert kind_of_sql_type(BOOL) == "bool"
        assert kind_of_sql_type(DATE) == "date"
        assert kind_of_sql_type(TEXT) == "string"
        assert kind_of_sql_type(char(7)) == "string"
        assert kind_of_sql_type(varchar(20)) == "string"

    def test_kind_of_value_bool_before_int(self):
        assert kind_of_value(True) == "bool"
        assert kind_of_value(1) == "int"
        assert kind_of_value(1.5) == "float"
        assert kind_of_value("x") == "string"
        assert kind_of_value(None) == "any"

    def test_declared_coercions(self):
        assert comparable("int", "float")
        assert comparable("int", "date")
        assert comparable("int", "bool")
        assert comparable("any", "string")
        assert not comparable("float", "date")
        assert not comparable("string", "int")
        assert not comparable("string", "date")

    def test_contracts_from_schema(self):
        schema = make_schema(
            "r", [("a", INT4), ("b", varchar(9), True)]
        )
        contracts = contracts_from_schema(schema)
        assert [c.name for c in contracts] == ["a", "b"]
        assert contracts[0] == ColumnContract("a", "int", False, 4, "int4")
        assert contracts[1].nullable and contracts[1].kind == "string"

    def test_case_arm_unification(self):
        checker = TypeChecker("case")
        inputs = [ColumnContract("n", "int", False)]
        mixed_numeric = E.Case(
            [(E.Cmp("<", E.Col("n", 0), E.Const(1)), E.Const(1))],
            E.Const(2.0),
        )
        assert checker.type_expr(mixed_numeric, inputs).kind == "float"
        assert not checker.findings
        disjoint = E.Case(
            [(E.Cmp("<", E.Col("n", 0), E.Const(1)), E.Const("a"))],
            E.Const(2),
        )
        checker.type_expr(disjoint, inputs)
        assert any("CASE arms" in f.message for f in checker.findings)


class TestTypeflow:
    def test_clean_plan(self, db):
        plan = Filter(
            _scan(db),
            E.And(
                E.Cmp("<", E.Col("id"), E.Const(10)),
                E.Like(E.Col("name"), "a%"),
            ),
        )
        findings, nodes = check_plan(plan, db, "clean")
        assert findings == []
        assert nodes == 2

    def test_date_comparison_is_declared(self, db):
        plan = Filter(_scan(db), E.Cmp(">", E.Col("day"), E.Const(9000)))
        findings, _ = check_plan(plan, db, "date")
        assert findings == []

    def test_nullable_column_flows_through_project(self, db):
        plan = Project(
            _scan(db), [E.Arith("+", E.Col("flag"), E.Const(1))], ["f1"]
        )
        checker_findings, _ = check_plan(plan, db, "proj")
        assert checker_findings == []
        assert plan.nullable == [True]

    def test_unknown_relation(self, db):
        findings, _ = check_plan(SeqScan("ghost"), db, "ghost")
        assert any("unknown relation" in f.message for f in findings)

    def test_clean_relation_layout(self, db):
        assert check_relation(db.relation("t"), "t") == []


class TestRewrite:
    def test_expr_equal_structural(self):
        a = E.And(E.Cmp("<", E.Col("x", 0), E.Const(5)), E.Not(E.Col("b", 1)))
        b = E.And(E.Cmp("<", E.Col("x", 0), E.Const(5)), E.Not(E.Col("b", 1)))
        assert expr_equal(a, b)
        c = E.And(E.Cmp("<", E.Col("x", 0), E.Const(6)), E.Not(E.Col("b", 1)))
        assert not expr_equal(a, c)

    def test_expr_equal_const_type_exact(self):
        assert not expr_equal(E.Const(1), E.Const(1.0))
        assert not expr_equal(E.Const(1), E.Const(True))
        assert expr_equal(E.Const(None), E.Const(None))

    def test_clean_fusion(self, db):
        from repro.bees.pipeline.fusion import fuse_plan

        plan = Filter(_scan(db), E.Cmp("<", E.Col("id"), E.Const(5)))
        fused = fuse_plan(plan, db)
        checker = RewriteChecker("clean", db)
        checker.compare(fused, plan)
        assert checker.findings == []
        assert checker.rewrites_checked == 1

    def test_tampered_relation_detected(self, db):
        from repro.bees.pipeline.fusion import fuse_plan

        db.create_table(make_schema("t2", [("id", INT4)]))
        plan = Filter(_scan(db), E.Cmp("<", E.Col("id"), E.Const(5)))
        fused = fuse_plan(plan, db)
        fused.spec.relation = "t2"
        checker = RewriteChecker("tamper", db)
        checker.compare(fused, plan)
        assert any("scans" in f.message for f in checker.findings)

    def test_fused_label_trail_checked(self, db):
        from repro.bees.pipeline.fusion import fuse_plan

        plan = Filter(_scan(db), E.Cmp("<", E.Col("id"), E.Const(5)))
        fused = fuse_plan(plan, db)
        fused.spec.fused_nodes = ("Filter", "Filter", "SeqScan(t)")
        checker = RewriteChecker("labels", db)
        checker.compare(fused, plan)
        assert any("fused-node trail" in f.message for f in checker.findings)


class TestSections:
    def _attr(self, sql_type, nullable=False):
        from repro.catalog.schema import Attribute

        return Attribute("col", sql_type, nullable)

    def test_values_accepted(self):
        assert value_violation(self._attr(INT4), 42) is None
        assert value_violation(self._attr(NUMERIC), 1.5) is None
        assert value_violation(self._attr(NUMERIC), 2) is None
        assert value_violation(self._attr(varchar(5)), "abc") is None
        assert value_violation(self._attr(DATE), 12345) is None
        assert value_violation(self._attr(INT4, nullable=True), None) is None

    def test_violations(self):
        assert value_violation(self._attr(INT4), "x") is not None
        assert value_violation(self._attr(INT4), True) is not None
        assert value_violation(self._attr(INT4), 2**40) is not None
        assert value_violation(self._attr(INT8), 2**40) is None
        assert value_violation(self._attr(varchar(3)), "toolong") is not None
        assert value_violation(self._attr(char(2)), 9) is not None
        assert value_violation(self._attr(INT4), None) is not None


class TestReport:
    def test_ok_and_dict(self):
        report = WaggleReport(seed=7, plans_checked=3)
        assert report.ok
        report.selftest = {"case": True}
        assert report.ok
        report.findings.append(Finding("typeflow", "s", "boom"))
        assert not report.ok
        payload = report.to_dict()
        assert payload["seed"] == 7
        assert payload["findings"][0]["pass"] == "typeflow"
        assert payload["ok"] is False
        json.dumps(payload)     # serializable

    def test_missed_injection_fails(self):
        report = WaggleReport(seed=0, selftest={"a": True, "b": False})
        assert not report.ok


class TestSelftest:
    def test_all_injections_caught(self):
        from repro.wagglecheck.selftest import run_selftest

        results = run_selftest()
        assert len(results) >= 8
        missed = [name for name, caught in results.items() if not caught]
        assert missed == []


class TestAnalysisScaffold:
    def test_write_report(self, tmp_path):
        from repro.analysis import write_report

        path = write_report({"ok": True}, tmp_path / "x")
        assert path.read_text() == '{\n  "ok": true\n}\n'

    def test_exit_code_policy(self):
        from repro.analysis import exit_code

        assert exit_code(True) == 0
        assert exit_code(False) == 1
        assert exit_code(False, gate=False) == 0

    def test_run_injections_crash_is_missed(self):
        from repro.analysis import run_injections

        def boom():
            raise RuntimeError("planted")

        results = run_injections([("ok", lambda: True), ("bad", boom)])
        assert results == {"ok": True, "bad": False}


class TestEndToEnd:
    def test_small_run_clean(self, tmp_path):
        from repro.wagglecheck.cli import main

        code = main(
            [
                "--statements", "5",
                "--no-selftest",
                "--out", str(tmp_path),
                "--check",
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["ok"] is True
        assert payload["plans_checked"] > 20
        assert payload["rewrites_checked"] > 0
        assert payload["sections_checked"] > 0
        assert payload["findings"] == []
