"""Columnar chunks: heap pages decoded page-at-a-time into typed arrays.

A :class:`Chunk` is one relation's live tuples transposed into NumPy
columns — ``int64``/``float64``/``bool_`` for scalar types, ``object``
for CHAR/varchar — plus a boolean null mask per *nullable* attribute
(``None`` for NOT NULL columns, so generated kernels can skip the mask
statically).  NULL lanes hold a type-stable fill (``0``/``0.0``/
``False``/``""``) that vectorized primitives can run over safely; the
mask is consulted wherever NULL semantics matter.

Decode goes through :meth:`repro.storage.layout.TupleLayout.decode` —
the reference decoder — one page at a time, charging buffer access +
``PAGE_ACCESS`` per page plus per-value decode work, exactly the costs
the row tiers pay on their first pass.  The :class:`ChunkCache` then
amortizes that across statements: entries are keyed by the heap file's
``uid`` and validated against its mutation ``version`` and the
relation's current layout *identity* (DDL builds a new
:class:`TupleLayout`, so a stale entry can never serve a reannotated or
altered relation).  A warm hit charges only ``VEC_CHUNK_HIT`` per page
— the columnar chunk cache stands in for the buffer pool on the vector
path, which is where the tier's cold/warm asymmetry comes from.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.cost import constants as C

#: struct format character -> ndarray dtype (strings stay object lanes).
_DTYPES = {"i": np.int64, "q": np.int64, "d": np.float64, "B": np.bool_}

#: struct format character -> NULL-lane fill value.
_FILLS = {"i": 0, "q": 0, "d": 0.0, "B": False}


@dataclass
class Chunk:
    """One relation's columns: ``cols[a]`` / ``nulls[a]`` per attnum."""

    cols: list
    nulls: list          # per attnum: bool ndarray, or None for NOT NULL
    n: int


def _dtype_and_fill(sql_type):
    fmt = sql_type.struct_fmt
    if fmt:
        return _DTYPES[fmt], _FILLS[fmt]
    return object, ""    # CHAR(n) / varchar decode to str


def chunk_from_rows(schema, rows: list) -> Chunk:
    """Transpose schema-ordered *rows* (``None`` = NULL) into a chunk.

    The shared assembly path: page decode below and the beecheck
    translation validator both build kernel inputs through it, so the
    validated representation is the executed one.
    """
    natts = schema.natts
    col_lists: list[list] = [[] for _ in range(natts)]
    null_lists: list[list | None] = [
        [] if attr.nullable else None for attr in schema.attributes
    ]
    fills = [_dtype_and_fill(attr.sql_type)[1] for attr in schema.attributes]
    for row in rows:
        for a in range(natts):
            value = row[a]
            if value is None:
                col_lists[a].append(fills[a])
                if null_lists[a] is not None:
                    null_lists[a].append(True)
            else:
                col_lists[a].append(value)
                if null_lists[a] is not None:
                    null_lists[a].append(False)
    cols = []
    nulls: list = []
    for a, attr in enumerate(schema.attributes):
        dtype, _fill = _dtype_and_fill(attr.sql_type)
        cols.append(np.array(col_lists[a], dtype=dtype))
        if null_lists[a] is None:
            nulls.append(None)
        else:
            nulls.append(np.array(null_lists[a], dtype=np.bool_))
    return Chunk(cols, nulls, len(rows))


def freeze_chunk(chunk: Chunk) -> Chunk:
    """Mark every column/null array read-only (in place; returns *chunk*).

    Cached chunks are shared across statements — and, once the morsel
    tier lands, across workers — so the arrays must be immutable after
    insertion.  Kernels never write their inputs (swarmcheck's escape
    pass proves it statically); the writeable flag turns any future
    violation into a hard ``ValueError`` at the write site instead of a
    silent cross-statement corruption.
    """
    for arr in chunk.cols:
        arr.setflags(write=False)
    for mask in chunk.nulls:
        if mask is not None:
            mask.setflags(write=False)
    return chunk


def decode_relation(rel) -> Chunk:
    """Decode every live tuple of *rel* into one chunk, page at a time.

    Charges mirror a first sequential scan (buffer access + PAGE_ACCESS
    per page) plus the transpose work the row tiers never pay:
    ``VEC_DECODE_PER_VALUE`` per decoded value and ``VEC_CHUNK_BUILD``
    per column per page for array assembly.
    """
    layout = rel.layout
    schema = layout.schema
    heap = rel.heap
    sections = rel.sections_list()
    access = heap.buffer_pool.access
    charge = heap.ledger.charge
    natts = schema.natts
    rows: list[list] = []
    for pageno, page in enumerate(heap.pages):
        access(heap.name, pageno, sequential=True)
        charge(C.PAGE_ACCESS + C.VEC_CHUNK_BUILD * natts)
        page_rows = 0
        for _slot, raw in page.live_tuples():
            bee_values = (
                sections[layout.read_bee_id(raw)] if sections else None
            )
            values, isnull = layout.decode(raw, bee_values)
            for a, null in enumerate(isnull):
                if null:
                    values[a] = None
            rows.append(values)
            page_rows += 1
        charge(C.VEC_DECODE_PER_VALUE * natts * page_rows)
    return chunk_from_rows(schema, rows)


class ChunkCache:
    """Small LRU cache of per-relation chunks, validated by heap version.

    Keyed by ``HeapFile.uid`` (monotonic, never recycled); an entry
    serves only while the heap's ``version`` and the relation's layout
    object are the ones it was decoded under.  DML bumps the version;
    ALTER/reannotate build a new layout (or a new heap entirely), so
    both invalidate without the cache having to observe DDL.
    """

    def __init__(self, capacity: int = 16, lock=None) -> None:
        self.capacity = capacity
        self._lock = lock if lock is not None else threading.RLock()
        self._entries: OrderedDict[int, tuple[int, object, Chunk]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0

    def get(self, rel) -> Chunk:
        """The current chunk for *rel*: cached, or decoded and cached.

        Runs wholly under the cache's lock (the materialized
        ``chunk_lock`` guard): lookup, validation, LRU maintenance, and
        the decode itself — concurrent readers of a cold relation decode
        it once, not once each, and frozen chunks are shared read-only.
        """
        with self._lock:
            heap = rel.heap
            entry = self._entries.get(heap.uid)
            if (
                entry is not None
                and entry[0] == heap.version
                and entry[1] is rel.layout
            ):
                self._entries.move_to_end(heap.uid)
                self.hits += 1
                heap.ledger.charge(C.VEC_CHUNK_HIT * max(1, heap.page_count))
                return entry[2]
            self.misses += 1
            chunk = freeze_chunk(decode_relation(rel))
            self._entries[heap.uid] = (heap.version, rel.layout, chunk)
            self._entries.move_to_end(heap.uid)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
            return chunk

    def invalidate(self, uid: int | None = None) -> None:
        """Drop one heap's entry, or everything."""
        with self._lock:
            if uid is None:
                self._entries.clear()
            else:
                self._entries.pop(uid, None)

    def statistics(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }
