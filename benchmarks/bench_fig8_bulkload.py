"""E6/E8 — Fig. 8: bulk-loading run-time improvement per relation.

Paper: every relation loads faster bee-enabled (SCL + tuple bees); orders
improves ~8.3%; the profile shows heap_fill_tuple at 4.6B instructions
replaced by SCL at 2.4B (a ~1.9x routine-level reduction), with the rest
of the gain coming from attribute-value (tuple-bee) storage savings.
Like the paper, region and nation are loaded from inflated row files
(their natural two pages are unmeasurable).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import emit, bar_chart
from repro.bench.tpch_experiments import BULK_RELATIONS, bulk_loading
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import create_tables, generate_rows
from repro.bees.settings import BeeSettings
from repro.db import Database

from conftest import TPCH_SF


@pytest.fixture(scope="module")
def bulk_report():
    report = bulk_loading(scale_factor=TPCH_SF, small_relation_rows=5000)
    labels = list(report)
    values = [report[name]["time_improvement"] for name in labels]
    emit("\n=== E6 / Fig. 8: bulk-loading run time improvement ===")
    emit(bar_chart(labels, values, "Per-relation % improvement", vmax=12.0))
    orders = report["orders"]
    ratio = (
        orders["stock"]["fill_instructions"]
        / max(1, orders["bees"]["fill_instructions"])
    )
    emit(
        "E8 profile (orders): heap_fill_tuple "
        f"{orders['stock']['fill_instructions']:,} instr vs SCL "
        f"{orders['bees']['fill_instructions']:,} instr "
        f"(ratio {ratio:.2f}x; paper 4.6B/2.4B = 1.92x)"
    )
    return report


@pytest.fixture(scope="module")
def orders_rows():
    return generate_rows(TPCHGenerator(TPCH_SF))["orders"]


def _load_orders(settings, rows):
    db = Database(settings)
    create_tables(db)
    db.copy_from("orders", rows)
    return db


def test_fig8_copy_orders_stock(benchmark, bulk_report, orders_rows):
    benchmark(_load_orders, BeeSettings.stock(), orders_rows)


def test_fig8_copy_orders_bees(benchmark, bulk_report, orders_rows):
    benchmark(_load_orders, BeeSettings.all_bees(), orders_rows)


def test_fig8_shape(benchmark, bulk_report):
    """All six relations improve; fill-routine ratio is close to paper's."""
    benchmark(lambda: None)
    for name in BULK_RELATIONS:
        assert bulk_report[name]["time_improvement"] > 0, (
            f"{name} bulk load regressed"
        )
    orders = bulk_report["orders"]
    ratio = (
        orders["stock"]["fill_instructions"]
        / max(1, orders["bees"]["fill_instructions"])
    )
    assert 1.4 <= ratio <= 4.0
    assert 4.0 <= orders["time_improvement"] <= 16.0
