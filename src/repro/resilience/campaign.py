"""Oracle-style chaos campaign: every fault plan must match stock.

For each named chaos site (:mod:`repro.resilience.chaos`) the campaign
builds a fully bee-enabled, shielded database over a tiny TPC-H dataset,
arms the site, and runs a fixed scenario — four TPC-H queries, a scratch
table's DML life cycle (create with annotations, bulk load, index build,
selects), and a repeated-plan pair that exercises routine memo reuse.
Every outcome is compared against a stock database running the same
scenario; three things must hold per site:

* **no escapes** — a :class:`~repro.resilience.errors.ChaosFault`
  reaching the caller is, by construction, a guard hole;
* **no mismatches** — degraded execution must still produce exactly the
  stock results;
* **evidence** — the fault demonstrably triggered (a campaign that never
  fires its faults proves nothing).

Three extra lanes ride along: a *ladder* lane arms the vector and
pipeline shape faults together — proving a statement can degrade
vector → pipeline → generic within one campaign and still match stock —
a WAL lane tears the bee-cache log at seeded offsets and checks
recovery, and a *server* lane
(:mod:`repro.resilience.serverlane`) drives the four ``server=True``
sites against the Hive Gate front-end under real concurrency.
:func:`run_self_test` re-runs two sites with the shield *disabled* —
plus the server harness with its relation latches disabled — to prove
the harness reports exactly the failures the defenses exist to prevent
(escapes for raising routines, silent wrong results for shape bugs,
torn reads for unlatched writers).
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

from repro.bees.settings import BeeSettings
from repro.bees.walcache import BeeCacheWAL
from repro.resilience.chaos import SITE_NAMES, SITES, ChaosInjector
from repro.resilience.errors import ChaosFault
from repro.resilience.registry import ResilienceRegistry

#: TPC-H queries covering scans, filters, joins, and aggregation.
CAMPAIGN_QUERIES = (1, 3, 6, 14)

_SCRATCH_DDL = (
    "CREATE TABLE chaos_scratch (id int NOT NULL, kind char(4) NOT NULL, "
    "qty int NOT NULL, ANNOTATE (kind))"
)


def _scratch_rows(start: int, count: int) -> list[list]:
    kinds = ["AAAA", "BBBB", "CCCC"]
    return [
        [i, kinds[i % len(kinds)], (i * 7) % 100]
        for i in range(start, start + count)
    ]


def _build_scenario(db) -> list[tuple[str, object]]:
    """The per-database statement list: ``(label, thunk)`` pairs.

    Thunks return an outcome payload; building the repeated plan once
    (outside its two thunks) is deliberate — the second execution reuses
    the same plan object, so memoized query routines are re-acquired and
    the staleness guard has something to catch.
    """
    from repro.engine.expr import Cmp, Col, Const
    from repro.engine.nodes import Filter, SeqScan
    from repro.workloads.tpch.queries import QUERIES

    steps: list[tuple[str, object]] = []
    for number in CAMPAIGN_QUERIES:
        steps.append(
            (f"tpch-q{number:02d}",
             lambda number=number: ("rows", QUERIES[number](db)))
        )
    steps.append(
        ("scratch-create", lambda: ("status", db.sql(_SCRATCH_DDL).status))
    )
    steps.append(
        ("scratch-load",
         lambda: ("status", f"COPY {db.copy_from('chaos_scratch', _scratch_rows(0, 48))}"))
    )
    steps.append(
        ("scratch-index",
         lambda: (
             "status",
             db.create_index("chaos_scratch", "chaos_scratch_id", ["id"])
             or "CREATE INDEX",
         ))
    )
    steps.append(
        ("scratch-load-indexed",
         lambda: ("status", f"COPY {db.copy_from('chaos_scratch', _scratch_rows(48, 24))}"))
    )
    steps.append(
        ("scratch-select",
         lambda: ("rows", [
             tuple(row)
             for row in db.sql(
                 "SELECT kind, qty FROM chaos_scratch WHERE qty < 50"
             ).rows
         ]))
    )
    # The scratch table does not exist yet when the steps are built, so
    # the repeated plan is constructed lazily on first use and reused by
    # the second step — plan-object reuse is what re-acquires memoized
    # routines (the staleness guard's trigger).
    holder: dict[str, object] = {}

    def repeat():
        plan = holder.get("plan")
        if plan is None:
            node = SeqScan("chaos_scratch")
            node.bind_schema(db.relation("chaos_scratch").schema)
            plan = Filter(node, Cmp("<", Col("qty"), Const(30)))
            holder["plan"] = plan
        return ("rows", db.execute(plan))

    steps.append(("repeat-filter-1", repeat))
    steps.append(("repeat-filter-2", repeat))
    return steps


def _capture(thunk):
    """Run one step, reducing it to a comparable outcome (never raises).

    ChaosFault is kept distinct from ordinary errors: it must never
    reach this frame when the shield is on, and its appearance here is
    exactly what the self-test looks for.
    """
    try:
        return thunk()
    except ChaosFault as fault:
        return ("escape", fault.site)
    except Exception as exc:  # noqa: BLE001 — the comparison IS the handler
        return ("error", type(exc).__name__)


@dataclass
class SiteResult:
    site: str
    description: str
    statements: int = 0
    mismatches: list = field(default_factory=list)
    escapes: list = field(default_factory=list)
    fired: int = 0
    faults_recorded: int = 0
    quarantined: list = field(default_factory=list)
    evidence: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.escapes and self.evidence

    def to_dict(self) -> dict:
        return {
            "site": self.site,
            "description": self.description,
            "statements": self.statements,
            "mismatches": self.mismatches,
            "escapes": self.escapes,
            "fired": self.fired,
            "faults_recorded": self.faults_recorded,
            "quarantined": self.quarantined,
            "evidence": self.evidence,
            "ok": self.ok,
        }


@dataclass
class CampaignReport:
    seed: int
    scale_factor: float
    sites: list[SiteResult] = field(default_factory=list)
    ladder: dict = field(default_factory=dict)
    wal: dict = field(default_factory=dict)
    server: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return (
            all(site.ok for site in self.sites)
            and self.ladder.get("ok", False)
            and self.wal.get("ok", False)
            and self.server.get("ok", False)
        )

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "scale_factor": self.scale_factor,
            "ok": self.ok,
            "sites": [site.to_dict() for site in self.sites],
            "ladder": self.ladder,
            "wal": self.wal,
            "server": self.server,
        }

    def summary(self) -> str:
        lines = [
            f"chaos campaign: seed={self.seed} sf={self.scale_factor} "
            f"sites={len(self.sites)}"
        ]
        for site in self.sites:
            status = "ok" if site.ok else "FAIL"
            detail = (
                f"fired={site.fired} faults={site.faults_recorded} "
                f"quarantined={len(site.quarantined)}"
            )
            if site.mismatches:
                detail += f" mismatches={site.mismatches}"
            if site.escapes:
                detail += f" escapes={site.escapes}"
            if not site.evidence:
                detail += " (fault never triggered)"
            lines.append(f"  [{status:4}] {site.site:16} {detail}")
        ladder_status = "ok" if self.ladder.get("ok") else "FAIL"
        lines.append(
            f"  [{ladder_status:4}] ladder           "
            f"vector_fired={self.ladder.get('vector_fired')} "
            f"pipeline_fired={self.ladder.get('pipeline_fired')}"
        )
        wal_status = "ok" if self.wal.get("ok") else "FAIL"
        lines.append(
            f"  [{wal_status:4}] wal-torn         rounds={self.wal.get('rounds')} "
            f"truncations={self.wal.get('truncations')}"
        )
        for name, lane in self.server.get("sites", {}).items():
            status = "ok" if lane.get("ok") else "FAIL"
            detail = f"fired={lane.get('fired')}"
            if lane.get("failures"):
                detail += f" failures={lane['failures']}"
            lines.append(f"  [{status:4}] {name:24} {detail}")
        lines.append(f"result: {'PASS' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def _expected_outcomes(rows) -> dict[str, tuple]:
    """Run the scenario once on a stock database; outcomes are ground truth."""
    from repro.workloads.tpch.loader import build_tpch_database

    db = build_tpch_database(BeeSettings.stock(), rows=rows)
    return {
        label: _capture(thunk) for label, thunk in _build_scenario(db)
    }


def _site_settings(site) -> BeeSettings:
    # Every family on, so each site has a specialized routine to break;
    # verification stays OFF so planted faults reach the runtime guards
    # instead of being rejected at generation time.  Plan fusion is only
    # enabled for sites targeting the fused path — fused pipelines
    # inline their own deform/filter/aggregate loops, so GCL/EVP/AGG
    # faults would never be reached under fusion.  Vector sites arm the
    # whole ladder (vectors over pipelines) so a faulting kernel has
    # both the pipeline anchor and the generic interpreter to land on;
    # parallel sites arm the morsel tier on top of that full ladder.
    return BeeSettings.future().enabling(
        pipelines=site.fused, vectors=site.vectored, parallel=site.parallel
    )


def run_site(
    site_name: str,
    rows,
    expected: dict[str, tuple],
    seed: int,
    settings: BeeSettings | None = None,
) -> SiteResult:
    """Arm one site, run the scenario, compare against *expected*."""
    from repro.oracle.normalize import outcomes_equal, outcomes_equivalent
    from repro.workloads.tpch.loader import build_tpch_database

    site = SITES[site_name]
    chaos = ChaosInjector(seed)
    settings = settings if settings is not None else _site_settings(site)
    result = SiteResult(site.name, site.description)
    # Parallel sites compare with the float-tolerant equivalence: morsel
    # partial sums re-associate, so aggregate floats may differ from
    # stock in the last ulps without being wrong.
    agree = outcomes_equivalent if site.parallel else outcomes_equal

    def run_all(db):
        for label, thunk in _build_scenario(db):
            outcome = _capture(thunk)
            result.statements += 1
            if outcome[0] == "escape":
                result.escapes.append(label)
            elif not agree(outcome, expected[label]):
                result.mismatches.append(label)
            chaos.kick(site.name, db)

    if site.arm_with_db:
        db = build_tpch_database(settings, rows=rows)
        with site.arm(chaos, db):
            run_all(db)
    else:
        with site.arm(chaos, None):
            db = build_tpch_database(settings, rows=rows)
            run_all(db)

    report = db.resilience.report()
    result.fired = chaos.fired[site.name]
    result.faults_recorded = report["faults"]
    result.quarantined = report["quarantined"]
    result.evidence = site.triggered(chaos, db)
    db.close()   # release the worker pool, if one spawned
    return result


def run_ladder_lane(rows, expected: dict[str, tuple], seed: int) -> dict:
    """Arm the vector- and pipeline-shape faults *together*.

    With both fused tiers emitting corrupt rows, every specialized
    statement must walk the whole degradation ladder — vector kernel
    faults to the pipeline anchor, the pipeline faults to the generic
    interpreter — and still reproduce the stock results.  Both faults
    must demonstrably fire: a run where the pipeline tamper never
    triggers did not prove the middle rung exists.
    """
    from repro.oracle.normalize import outcomes_equal
    from repro.workloads.tpch.loader import build_tpch_database

    chaos = ChaosInjector(seed)
    settings = BeeSettings.future().enabling(pipelines=True, vectors=True)
    mismatches: list = []
    escapes: list = []
    vector_site = SITES["vector-shape"]
    pipeline_site = SITES["pipeline-arity"]
    with vector_site.arm(chaos, None), pipeline_site.arm(chaos, None):
        db = build_tpch_database(settings, rows=rows)
        for label, thunk in _build_scenario(db):
            outcome = _capture(thunk)
            if outcome[0] == "escape":
                escapes.append(label)
            elif not outcomes_equal(outcome, expected[label]):
                mismatches.append(label)
    vector_fired = chaos.fired["vector-shape"]
    pipeline_fired = chaos.fired["pipeline-arity"]
    return {
        "vector_fired": vector_fired,
        "pipeline_fired": pipeline_fired,
        "faults_recorded": db.resilience.report()["faults"],
        "mismatches": mismatches,
        "escapes": escapes,
        "ok": (
            not mismatches
            and not escapes
            and vector_fired > 0
            and pipeline_fired > 0
        ),
    }


def run_wal_lane(seed: int, rounds: int = 16) -> dict:
    """Tear the bee-cache WAL at seeded offsets; recovery must hold.

    Each round writes a committed record followed by one more appended
    record, then truncates the file at a random byte offset inside that
    final record (simulating a crash mid-``_append``).  Reopening the
    WAL must repair the tear, keep every committed record, and log the
    truncation to the resilience registry.
    """
    rng = random.Random(seed)
    registry = ResilienceRegistry()
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(rounds):
            path = Path(tmp) / f"torn_{i}.wal"
            wal = BeeCacheWAL(path, registry)
            wal.log_delete("alpha")
            wal.commit()
            wal.log_delete("beta")
            text = path.read_text()
            body = text[:-1]                      # drop final newline
            start = body.rfind("\n") + 1          # final record start
            cut = rng.randrange(start + 1, len(body) + 1)
            path.write_text(text[:cut])
            reopened = BeeCacheWAL(path, registry)
            try:
                records = reopened.committed_records()
            except Exception as exc:  # noqa: BLE001 — lane verdict, not control flow
                failures.append(f"round {i}: {type(exc).__name__}")
                continue
            if [r["relation"] for r in records] != ["alpha"]:
                failures.append(f"round {i}: committed records lost")
    return {
        "rounds": rounds,
        "truncations": registry.wal_truncations,
        "failures": failures,
        "ok": not failures and registry.wal_truncations > 0,
    }


def run_campaign(
    seed: int = 0,
    scale_factor: float = 0.002,
    sites: tuple[str, ...] | None = None,
) -> CampaignReport:
    """The full chaos campaign: every site plus the WAL lane."""
    from repro.workloads.tpch.dbgen import TPCHGenerator
    from repro.workloads.tpch.loader import generate_rows

    from repro.resilience import serverlane

    rows = generate_rows(TPCHGenerator(scale_factor, 20120401))
    expected = _expected_outcomes(rows)
    report = CampaignReport(seed, scale_factor)
    for name in sites or SITE_NAMES:
        # server=True sites need clients and latches; they run in the
        # server lane below, not the single-session site harness.
        if not SITES[name].server:
            report.sites.append(run_site(name, rows, expected, seed))
    report.ladder = run_ladder_lane(rows, expected, seed)
    report.wal = run_wal_lane(seed)
    report.server = serverlane.run_server_lane(seed)
    return report


def run_self_test(seed: int = 0, scale_factor: float = 0.002) -> dict:
    """Prove the harness detects what the shield normally absorbs.

    Three deliberately *undefended* runs: a raising deform must surface
    as a ChaosFault escape, a wrong-type predicate as silent result
    mismatches, and — with the server's relation latches disabled — a
    half-applied flip as a torn read.  If any run comes back clean, the
    harness could not have caught a real hole either — the self-test
    fails.
    """
    from repro.resilience import serverlane
    from repro.workloads.tpch.dbgen import TPCHGenerator
    from repro.workloads.tpch.loader import generate_rows

    rows = generate_rows(TPCHGenerator(scale_factor, 20120401))
    expected = _expected_outcomes(rows)
    verdicts = {}
    for name, expect in (("gcl-raise", "escapes"), ("evp-wrong-type", "mismatches")):
        unshielded = _site_settings(SITES[name]).enabling(shield=False)
        result = run_site(name, rows, expected, seed, settings=unshielded)
        detected = bool(result.escapes) or bool(result.mismatches)
        verdicts[name] = {
            "expected": expect,
            "escapes": result.escapes,
            "mismatches": result.mismatches,
            "caught": detected,
        }
    verdicts["server-unlatched"] = serverlane.run_unlatched_selftest(seed)
    return verdicts
