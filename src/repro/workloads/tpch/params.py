"""TPC-H substitution parameters (spec clause 2.4).

The spec varies each query's parameters between runs; the paper's claim is
that micro-specialization helps across the board, not just at the
validation values.  ``parameter_sets`` draws deterministic random parameter
sets per query from the spec's domains, and ``run_with_params`` applies
them to the plan builders, so robustness tests can assert improvements
hold across draws.

Only queries whose builders expose parameters are varied; the rest run at
their defaults (which is itself a valid draw).
"""

from __future__ import annotations

import datetime
import random

from repro.catalog.types import date_to_days
from repro.workloads.tpch.dbgen import (
    REGIONS,
    SEGMENTS,
    SHIP_MODES,
    TYPE_SYLLABLE_3,
)
from repro.workloads.tpch.queries import QUERIES


def _date(rng: random.Random, start_year: int, end_year: int) -> int:
    year = rng.randint(start_year, end_year)
    month = rng.randint(1, 12)
    return date_to_days(datetime.date(year, month, 1))


def parameter_sets(
    query_number: int, count: int = 3, seed: int = 777
) -> list[dict]:
    """Deterministic parameter draws for one query (may be empty dicts)."""
    rng = random.Random(f"{seed}:{query_number}")
    draws: list[dict] = []
    for _ in range(count):
        if query_number == 1:
            draws.append({"delta_days": rng.randint(60, 120)})
        elif query_number == 2:
            draws.append({
                "size": rng.randint(1, 50),
                "type_suffix": rng.choice(TYPE_SYLLABLE_3),
                "region": rng.choice(REGIONS),
            })
        elif query_number == 3:
            draws.append({
                "segment": rng.choice(SEGMENTS),
                "date": _date(rng, 1995, 1995),
            })
        elif query_number == 4:
            draws.append({"date": _date(rng, 1993, 1997)})
        elif query_number == 5:
            draws.append({
                "region": rng.choice(REGIONS),
                "date": date_to_days(
                    datetime.date(rng.randint(1993, 1997), 1, 1)
                ),
            })
        elif query_number == 6:
            draws.append({
                "date": date_to_days(
                    datetime.date(rng.randint(1993, 1997), 1, 1)
                ),
                "discount": rng.randint(2, 9) / 100.0,
                "quantity": rng.choice([24, 25]),
            })
        elif query_number == 10:
            draws.append({"date": _date(rng, 1993, 1994)})
        elif query_number == 12:
            mode1, mode2 = rng.sample(SHIP_MODES, 2)
            draws.append({
                "mode1": mode1,
                "mode2": mode2,
                "date": date_to_days(
                    datetime.date(rng.randint(1993, 1997), 1, 1)
                ),
            })
        elif query_number == 14:
            draws.append({"date": _date(rng, 1993, 1997)})
        elif query_number == 18:
            draws.append({"quantity": rng.randint(200, 400)})
        else:
            draws.append({})
    return draws


def run_with_params(db, query_number: int, params: dict):
    """Execute one query with a parameter draw."""
    return QUERIES[query_number](db, **params)
