"""TPC-C workload: schema, loader, the five transactions, throughput driver."""

from repro.workloads.tpcc.loader import TPCCConfig, build_tpcc_database, load_tpcc
from repro.workloads.tpcc.runner import MIXES, TPCCResult, run_mix, transaction_schedule
from repro.workloads.tpcc.schema import ALL_SCHEMAS, INDEXES
from repro.workloads.tpcc.transactions import TRANSACTION_TYPES, TransactionContext

__all__ = [
    "ALL_SCHEMAS",
    "INDEXES",
    "MIXES",
    "TPCCConfig",
    "TPCCResult",
    "TRANSACTION_TYPES",
    "TransactionContext",
    "build_tpcc_database",
    "load_tpcc",
    "run_mix",
    "transaction_schedule",
]
