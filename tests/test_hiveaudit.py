"""Hiveaudit: the whole-engine invalidation-soundness analysis.

The audit is itself code under test here, at three levels: the taint
extraction must prove what each bee kind embeds (and that settings are
*never* embedded), the mutation scan must find the known lifecycle
sites, and the clean engine must audit green while every planted bug in
the injection corpus turns it red *at the right site*.
"""

import json

import pytest

from repro.hiveaudit import CASES, run_audit, run_selftest
from repro.hiveaudit.cli import main as hiveaudit_main
from repro.hiveaudit.extract import EXPECTED_EMBEDDINGS
from repro.hiveaudit.source import EngineSource


@pytest.fixture(scope="module")
def report():
    return run_audit()


class TestExtraction:
    def test_every_kind_meets_its_floor(self, report):
        for kind, expected in EXPECTED_EMBEDDINGS.items():
            assert kind in report.extraction, f"kind {kind} not analyzed"
            got = report.extraction[kind].classes
            assert expected <= got, (
                f"{kind}: expected {sorted(expected)}, proved {sorted(got)}"
            )

    def test_relation_bees_embed_schema_and_offsets(self, report):
        for kind in ("gcl", "scl"):
            classes = report.extraction[kind].classes
            assert "catalog.schema" in classes
            assert "layout.offsets" in classes

    def test_query_bees_embed_plan_constants(self, report):
        for kind in ("evp", "evj", "agg"):
            assert "plan.constants" in report.extraction[kind].classes

    def test_tuple_bees_embed_section_values(self, report):
        assert "datasection.values" in report.extraction["tuple"].classes

    def test_settings_are_never_embedded(self, report):
        for kind, ext in report.extraction.items():
            assert "settings.flags" not in ext.classes, (
                f"bee kind {kind} embeds BeeSettings — a settings swap "
                "would stale it with no invalidation edge"
            )
        assert not any(
            f.rule == "settings-never-embedded" for f in report.findings
        )

    def test_evidence_carries_source_locations(self, report):
        for kind, ext in report.extraction.items():
            assert ext.evidence, f"{kind} proved classes without evidence"
            for emb in ext.evidence:
                assert emb.lineno > 0
                assert emb.module.endswith(".py")


class TestMutationScan:
    def test_known_lifecycle_sites_found(self, report):
        sites = {(s.qualname, s.invariant, s.verb) for s in report.mutations}
        expected = {
            ("Catalog.create_relation", "catalog.schema", "create"),
            ("Catalog.alter_relation", "catalog.schema", "replace"),
            ("Catalog.drop_relation", "catalog.schema", "destroy"),
            ("Database.vacuum", "storage.heap", "rebuild"),
            ("RowWriter.write", "storage.heap", "row-insert"),
            ("DataSectionStore.get_or_create", "datasection.values",
             "append"),
        }
        missing = expected - sites
        assert not missing, f"mutation scan lost sites: {sorted(missing)}"

    def test_settings_swap_sites_found(self, report):
        swaps = [
            s for s in report.mutations
            if s.invariant == "settings.flags" and s.verb == "swap"
        ]
        assert any(s.qualname == "Database.use_settings" for s in swaps)


class TestCleanEngine:
    def test_baseline_audits_green(self, report):
        assert report.ok, report.summary()

    def test_every_rule_match_is_proven_or_exempted(self, report):
        assert len(report.proofs) >= 10
        for proof in report.proofs:
            assert proof["witness"], f"proof without witness: {proof}"
            assert proof["witness"][0] == proof["function"]

    def test_vacuum_reinsert_is_the_only_exemption(self, report):
        assert [e["function"] for e in report.exempted] == [
            "Database.vacuum"
        ]


class TestSelfTest:
    def test_corpus_is_large_enough(self):
        assert len(CASES) >= 6

    def test_every_planted_bug_is_caught_with_attribution(self, report):
        results = run_selftest(baseline=report)
        missed = [r for r in results if not r["caught"]]
        assert not missed, f"audit missed planted bugs: {missed}"

    def test_patches_do_not_touch_disk(self, report):
        before = {
            case.module: EngineSource().text(case.module) for case in CASES
        }
        run_selftest(baseline=report)
        for module, text in before.items():
            assert EngineSource().text(module) == text


class TestCLI:
    def test_writes_report_and_exits_zero(self, tmp_path):
        status = hiveaudit_main(["--out", str(tmp_path), "--no-selftest"])
        assert status == 0
        payload = json.loads((tmp_path / "report.json").read_text())
        assert payload["ok"] is True
        assert payload["extraction"]
        assert payload["mutations"]
        assert payload["proofs"]
