"""Server lane: Hive Gate chaos under real concurrency.

The campaign's per-site harness is single-session by design; the four
``server=True`` chaos sites need clients, latches, and a WAL to hurt.
Every lane here runs against the same **balanced-pair** scratch
relation: ``gate_ledger(id, pair, qty)`` holds one ``+q`` and one
``-q`` row per pair, so ``SUM(qty) = 0`` is an invariant that every
committed statement preserves — the flip ``UPDATE ... SET qty = 0 - qty
WHERE pair = P`` negates both rows of a pair atomically.  A non-zero
sum is therefore *proof* of a torn read or a corrupted recovery, which
gives each lane a self-checking workload:

* **client disconnect** — sockets reset (``SO_LINGER 0`` → RST) with a
  statement in flight; the server must count the disconnect, close the
  session, keep the invariant, and keep serving other clients.
* **lock timeout** — a hijacked relation latch must surface as a clean
  ``LockTimeout`` statement error, never a stuck session; service
  resumes the moment the latch is released.
* **fsync failure** — group commit's fsync raises mid-run; durability
  degrades (the server says so) while statements keep succeeding, and
  the on-disk WAL stays a valid committed prefix that still recovers.
* **kill mid-commit** — the WAL is torn at a seeded offset inside the
  final commit group; :func:`~repro.server.wal.recover_database` must
  repair the tear and land exactly on a statement-prefix state.

:func:`run_unlatched_selftest` is the lane's harness proof: with the
relation latches *disabled* and a drowsy updater holding a flip half
done, a concurrent reader must observe the torn state (a non-zero sum
or a :class:`~repro.server.core.SnapshotViolation`); with latches on,
the identical schedule must be clean.  A harness that cannot see the
fault the latches prevent would prove nothing by passing.
"""

from __future__ import annotations

import json
import random
import socket
import struct
import tempfile
import threading
import time
from pathlib import Path

from repro.bees.settings import BeeSettings
from repro.resilience.chaos import SERVER_LANE_TABLE, SITES, ChaosInjector

#: Balanced pairs loaded into the lane table (2 rows each).
PAIRS = 12

_GATE_DDL = (
    f"CREATE TABLE {SERVER_LANE_TABLE} (id int NOT NULL, "
    "pair int NOT NULL, qty int NOT NULL)"
)
_SUM_SQL = f"SELECT SUM(qty) FROM {SERVER_LANE_TABLE}"
_ROWS_SQL = f"SELECT id, pair, qty FROM {SERVER_LANE_TABLE}"


def _flip_sql(pair: int) -> str:
    return (
        f"UPDATE {SERVER_LANE_TABLE} SET qty = 0 - qty WHERE pair = {pair}"
    )


def _pair_qty(pair: int) -> int:
    return 10 + pair


def build_gate_db():
    """A fresh lane database: the *base backup* every recovery replays
    onto.  Setup runs outside any server so it is never WAL-logged —
    the WAL holds only the flips the lanes commit."""
    from repro.db import Database
    from repro.sql.session import execute_sql

    settings = BeeSettings.future().enabling(parallel=False)
    db = Database(settings)
    execute_sql(db, _GATE_DDL)
    rows = []
    for pair in range(PAIRS):
        qty = _pair_qty(pair)
        rows.append([2 * pair, pair, qty])
        rows.append([2 * pair + 1, pair, -qty])
    db.copy_from(SERVER_LANE_TABLE, rows)
    return db


def _table_rows(db) -> list[tuple]:
    from repro.sql.session import execute_sql

    return sorted(execute_sql(db, _ROWS_SQL).rows)


def _expected_rows(flips) -> list[tuple]:
    """The table contents after applying *flips* (a pair-number
    sequence) to the freshly loaded state."""
    counts: dict[int, int] = {}
    for pair in flips:
        counts[pair] = counts.get(pair, 0) + 1
    rows = []
    for pair in range(PAIRS):
        sign = -1 if counts.get(pair, 0) % 2 else 1
        qty = _pair_qty(pair)
        rows.append((2 * pair, pair, sign * qty))
        rows.append((2 * pair + 1, pair, sign * -qty))
    return sorted(rows)


def _fresh_server(wal_path=None, **kwargs):
    from repro.server.core import HiveServer

    db = build_gate_db()
    return db, HiveServer(db, wal_path, **kwargs)


def _sum_via(session) -> int:
    return session.sql(_SUM_SQL).rows[0][0]


# ----------------------------------------------------------------------
# lanes


def _lane_disconnect(seed: int) -> dict:
    """RST-close connections with a flip in flight; the server must
    stay consistent and keep serving."""
    from repro.server.protocol import HiveClient, HiveListener

    site = SITES["server-client-disconnect"]
    chaos = ChaosInjector(seed)
    db, server = _fresh_server()
    listener = HiveListener(server)
    failures: list[str] = []
    rounds = 4
    with site.arm(chaos, server):
        for i in range(rounds):
            conn = socket.create_connection(listener.address)
            request = json.dumps({"sql": _flip_sql(i % PAIRS)}) + "\n"
            conn.sendall(request.encode())
            # SO_LINGER(on, 0): close() sends RST, not FIN — the
            # handler sees a genuine reset, not a polite EOF.
            conn.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER,
                struct.pack("ii", 1, 0),
            )
            conn.close()
            chaos.fired[site.name] += 1
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if server.sessions_active == 0:
                break
            time.sleep(0.01)
        else:
            failures.append("disconnected sessions never closed")
        # The server must still serve a well-behaved client, and every
        # flip — applied or not — preserved the invariant.
        with HiveClient(listener.address) as client:
            total = client.sql(_SUM_SQL).rows[0][0]
        if total != 0:
            failures.append(f"invariant broken after disconnects: {total}")
    evidence = site.triggered(chaos, server)
    stats = server.stats_snapshot()
    listener.close()
    db.close()
    if not evidence:
        failures.append("no disconnect was ever counted")
    return {
        "description": site.description,
        "rounds": rounds,
        "fired": chaos.fired[site.name],
        "disconnects": stats["disconnects"],
        "sessions_closed": stats["sessions_closed"],
        "failures": failures,
        "ok": not failures,
    }


def _lane_lock_timeout(seed: int) -> dict:
    """A hijacked write latch: statements fail fast with LockTimeout,
    nothing wedges, service resumes on release."""
    from repro.server.locks import LockTimeout

    site = SITES["server-lock-timeout"]
    chaos = ChaosInjector(seed)
    db, server = _fresh_server(lock_timeout=0.05)
    failures: list[str] = []
    timed_out = 0
    with server.session() as session:
        with site.arm(chaos, server):
            for sql in (_SUM_SQL, _flip_sql(0)):
                try:
                    session.sql(sql)
                except LockTimeout:
                    timed_out += 1
                except Exception as exc:  # noqa: BLE001 — lane verdict
                    failures.append(
                        f"expected LockTimeout, got {type(exc).__name__}"
                    )
                else:
                    failures.append(f"statement ran under a held latch: {sql}")
        # Latch released: the same session must work immediately.
        try:
            if _sum_via(session) != 0:
                failures.append("invariant broken after latch release")
            session.sql(_flip_sql(1))
            session.sql(_flip_sql(1))
            if _sum_via(session) != 0:
                failures.append("invariant broken after recovery flips")
        except Exception as exc:  # noqa: BLE001 — lane verdict
            failures.append(f"service did not resume: {type(exc).__name__}")
    evidence = site.triggered(chaos, server)
    stats = server.stats_snapshot()
    db.close()
    if not evidence:
        failures.append("no lock timeout was ever counted")
    return {
        "description": site.description,
        "timed_out": timed_out,
        "fired": chaos.fired[site.name],
        "lock_timeouts": stats["lock_timeouts"],
        "failures": failures,
        "ok": not failures,
    }


def _lane_fsync_fail(seed: int) -> dict:
    """Group commit's fsync fails once: durability degrades loudly, the
    server keeps serving, and the on-disk WAL stays a recoverable
    committed prefix."""
    from repro.server.wal import DataWAL, recover_database

    site = SITES["server-fsync-fail"]
    chaos = ChaosInjector(seed)
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        wal_path = Path(tmp) / "gate.wal"
        db, server = _fresh_server(wal_path)
        with server.session() as session:
            session.sql(_flip_sql(0))
            session.sql(_flip_sql(1))
            if server.durability != "wal":
                failures.append("durability not 'wal' before the fault")
            with site.arm(chaos, server):
                result = session.sql(_flip_sql(2))
            if result.status != "UPDATE 2":
                failures.append(f"degraded statement failed: {result.status}")
            if server.durability != "degraded":
                failures.append(
                    f"durability is {server.durability!r}, not 'degraded'"
                )
            # Still serving, still consistent — just not durable.
            session.sql(_flip_sql(3))
            if _sum_via(session) != 0:
                failures.append("invariant broken after fsync failure")
        evidence = site.triggered(chaos, server)
        stats = server.stats_snapshot()
        live_rows = _table_rows(db)
        server.shutdown()
        db.close()
        if live_rows != _expected_rows([0, 1, 2, 3]):
            failures.append("live state lost a committed flip")
        # The on-disk log must be a statement prefix ending at the
        # failed group: the two durable flips for sure, plus the failed
        # group's flip if its bytes landed before the fsync raised (a
        # real crash may or may not preserve them — both are valid
        # prefixes).  The post-degradation flip must NOT appear.
        logged = [r["sql"] for r in DataWAL(wal_path).committed_statements()]
        if logged not in (
            [_flip_sql(p) for p in (0, 1)],
            [_flip_sql(p) for p in (0, 1, 2)],
        ):
            failures.append(f"WAL is not a committed prefix: {logged}")
        recovered, applied = recover_database(wal_path, build_gate_db)
        if _table_rows(recovered) != _expected_rows(range(applied)):
            failures.append("recovery from the degraded WAL diverged")
        recovered.close()
    if not evidence:
        failures.append("wal_fsync_failed was never recorded")
    return {
        "description": site.description,
        "fired": chaos.fired[site.name],
        "wal_failures": stats["wal_failures"],
        "logged_statements": len(logged),
        "recovered_statements": applied,
        "failures": failures,
        "ok": not failures,
    }


def _lane_kill_mid_commit(seed: int) -> dict:
    """Tear the WAL inside the final commit group (the crash the group
    committer's one-fsync-per-group protocol makes survivable);
    recovery must land exactly on a statement-prefix state."""
    from repro.server.wal import recover_database

    site = SITES["server-kill-mid-commit"]
    chaos = ChaosInjector(seed)
    rng = random.Random(seed)
    failures: list[str] = []
    rounds, statements = 4, 6
    truncations = 0
    with tempfile.TemporaryDirectory() as tmp:
        for i in range(rounds):
            wal_path = Path(tmp) / f"gate_{i}.wal"
            db, server = _fresh_server(wal_path)
            flips = [rng.randrange(PAIRS) for _ in range(statements)]
            with site.arm(chaos, server), server.session() as session:
                for pair in flips:
                    session.sql(_flip_sql(pair))
            server.shutdown()
            db.close()
            # The kill: cut at a seeded byte offset inside the final
            # line (the last group's COMMIT marker or record).
            text = wal_path.read_text()
            body = text[:-1]
            start = body.rfind("\n") + 1
            cut = rng.randrange(start + 1, len(body) + 1)
            wal_path.write_text(text[:cut])
            chaos.fired[site.name] += 1
            recovered, applied = recover_database(wal_path, build_gate_db)
            truncations += recovered.resilience.wal_truncations
            if applied not in (statements - 1, statements):
                failures.append(f"round {i}: applied {applied} statements")
            if _table_rows(recovered) != _expected_rows(flips[:applied]):
                failures.append(f"round {i}: recovery is not a prefix state")
            recovered.close()
    if truncations == 0:
        failures.append("no tear was ever repaired — the kill never bit")
    return {
        "description": site.description,
        "rounds": rounds,
        "fired": chaos.fired[site.name],
        "truncations": truncations,
        "failures": failures,
        "ok": not failures,
    }


def run_server_lane(seed: int = 0) -> dict:
    """All four server sites; the campaign's ``server`` section."""
    lanes = {
        "server-client-disconnect": _lane_disconnect,
        "server-lock-timeout": _lane_lock_timeout,
        "server-fsync-fail": _lane_fsync_fail,
        "server-kill-mid-commit": _lane_kill_mid_commit,
    }
    sites = {name: lane(seed) for name, lane in lanes.items()}
    return {"sites": sites, "ok": all(r["ok"] for r in sites.values())}


# ----------------------------------------------------------------------
# harness self-test


def _torn_probe(latching: bool) -> list[str]:
    """Run one drowsy half-flip with a concurrent reader; returns the
    detections (torn sums / snapshot violations / reader errors)."""
    import repro.engine.dml as dml

    db = build_gate_db()
    db.locks.relation_lock.enabled = latching
    from repro.server.core import HiveServer

    server = HiveServer(db, lock_timeout=5.0)
    started = threading.Event()
    resume = threading.Event()
    original = dml.update_rows

    def drowsy(db_, relation, predicate, updater):
        calls = {"n": 0}

        def slow(values):
            calls["n"] += 1
            if calls["n"] == 2:
                # One row of the pair is already rewritten: this is the
                # torn window.  Hold it open until the reader has run.
                started.set()
                resume.wait(timeout=1.5)
            return updater(values)

        return original(db_, relation, predicate, slow)

    detections: list[str] = []
    writer_error: list[str] = []

    def write_flip():
        try:
            with server.session() as session:
                session.sql(_flip_sql(0))
        except Exception as exc:  # noqa: BLE001 — probe verdict
            writer_error.append(type(exc).__name__)

    dml.update_rows = drowsy
    try:
        writer = threading.Thread(target=write_flip)
        writer.start()
        started.wait(timeout=2.0)
        try:
            with server.session() as session:
                total = _sum_via(session)
            if total != 0:
                detections.append(f"torn-sum({total})")
        except Exception as exc:  # noqa: BLE001 — probe verdict
            detections.append(type(exc).__name__)
        finally:
            resume.set()
        writer.join(timeout=5.0)
    finally:
        dml.update_rows = original
        db.close()
    detections.extend(writer_error)
    return detections


def run_unlatched_selftest(seed: int = 0) -> dict:
    """With relation latches disabled, the probe MUST see the torn
    half-flip; with latches on, the same schedule must be clean."""
    del seed  # the probe is event-coordinated, not seeded
    unlatched = _torn_probe(latching=False)
    latched = _torn_probe(latching=True)
    return {
        "expected": "mismatches",
        "escapes": [],
        "mismatches": unlatched,
        "latched_detections": latched,
        "caught": bool(unlatched) and not latched,
    }
