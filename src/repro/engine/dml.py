"""DML paths: insert, update, delete, and COPY-style bulk loading.

The write path is where SCL (specialized fill) and tuple-bee creation live:
each inserted row is encoded by the SCL bee routine (or the generic
``heap_fill_tuple``), after the annotated attribute values are resolved to
a beeID through the relation bee's data sections.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cost import constants as C


class RowWriter:
    """Shared machinery for insert/COPY against one relation."""

    def __init__(self, db, relation_name: str) -> None:
        self.db = db
        self.rel = db.relation(relation_name)
        self.ledger = db.ledger
        settings = db.settings
        bee = self.rel.bee
        if settings.scl and bee is not None:
            shield = getattr(db, "shield", None)
            if shield is not None and getattr(settings, "shield", True):
                # Beeshield: per-call guard — fill is stateless, so a
                # faulting SCL is redone generically for that row.
                self._fill = shield.fill(bee.scl, self.rel.generic_filler)
            else:
                self._fill = bee.scl.fn      # charges its own cost
        else:
            self._fill = self.rel.generic_filler
        self._layout = self.rel.layout
        self._needs_bee_id = self._layout.has_beeid
        self._bee_key = self._layout.bee_key if self._needs_bee_id else None

    def encode(self, values: Sequence) -> bytes:
        """Resolve the tuple bee (if any) and encode the row."""
        values = list(values)
        if len(values) != self._layout.schema.natts:
            raise ValueError(
                f"row has {len(values)} values, relation "
                f"{self.rel.schema.name!r} has {self._layout.schema.natts}"
            )
        bee_id = 0
        if self._needs_bee_id:
            bee_id = self.db.bee_module.tuple_bee_id(
                self.rel.schema.name, self._bee_key(values)
            )
        return self._fill(values, bee_id)

    def write(self, values: Sequence, per_row_cost: int):
        """Encode, store, and index one row; returns its TID."""
        self.ledger.charge(per_row_cost)
        raw = self.encode(values)
        tid = self.rel.heap.insert(raw)
        self.rel.index_insert(list(values), tid)
        return tid


def insert_row(db, relation_name: str, values: Sequence):
    """Single-row INSERT; returns the new tuple's TID."""
    writer = RowWriter(db, relation_name)
    return writer.write(values, C.INSERT_PER_ROW)


def copy_from(db, relation_name: str, rows: Iterable[Sequence]) -> int:
    """Bulk load *rows* (the COPY path measured in Fig. 8); returns count."""
    writer = RowWriter(db, relation_name)
    count = 0
    for values in rows:
        writer.write(values, C.COPY_PER_ROW)
        count += 1
    return count


def delete_rows(db, relation_name: str, predicate) -> int:
    """Delete every row matching *predicate* (a values-list callable)."""
    rel = db.relation(relation_name)
    sections = rel.sections_list()
    doomed = []
    for tid, raw in rel.heap.scan():
        db.ledger.charge(C.SEQSCAN_NEXT)
        values = rel.generic_deformer(raw, sections)
        if predicate(values):
            doomed.append((tid, values))
    for tid, values in doomed:
        rel.heap.delete(tid)
        rel.index_delete(values, tid)
        db.ledger.charge(C.INSERT_PER_ROW // 2)
    return len(doomed)


def update_rows(db, relation_name: str, predicate, updater) -> int:
    """Update matching rows: *updater* maps old values to new values."""
    rel = db.relation(relation_name)
    writer = RowWriter(db, relation_name)
    sections = rel.sections_list()
    matches = []
    for tid, raw in rel.heap.scan():
        db.ledger.charge(C.SEQSCAN_NEXT)
        values = rel.generic_deformer(raw, sections)
        if predicate(values):
            matches.append((tid, values))
    for tid, old_values in matches:
        new_values = updater(list(old_values))
        rel.heap.delete(tid)
        rel.index_delete(old_values, tid)
        writer.write(new_values, C.INSERT_PER_ROW)
    return len(matches)


def update_by_tid(db, relation_name: str, tid, new_values: Sequence):
    """Update one row identified by TID (index-driven OLTP path)."""
    rel = db.relation(relation_name)
    raw = rel.heap.fetch(tid, sequential=False)
    sections = rel.sections_list()
    old_values = rel.generic_deformer(raw, sections)
    writer = RowWriter(db, relation_name)
    rel.heap.delete(tid)
    rel.index_delete(old_values, tid)
    return writer.write(new_values, C.INSERT_PER_ROW)


def delete_by_tid(db, relation_name: str, tid) -> None:
    """Delete one row identified by TID, maintaining indexes."""
    rel = db.relation(relation_name)
    raw = rel.heap.fetch(tid, sequential=False)
    values = rel.generic_deformer(raw, rel.sections_list())
    rel.heap.delete(tid)
    rel.index_delete(values, tid)
    db.ledger.charge(C.INSERT_PER_ROW // 2)
