"""Metamorphic checks: TLP predicate partitioning and no-op rewrites.

These catch bee bugs that *both* engines share (a differential check would
pass) and predicate-handling bugs in the specialized EVP path:

* **TLP** (ternary logic partitioning, after SQLancer): for any predicate
  ``p``, every row satisfies exactly one of ``p``, ``NOT p``, and
  ``p IS NULL`` under SQL's three-valued logic — so the unfiltered query's
  multiset must equal the disjoint union of the three partitions.
* **No-op rewrites**: wrapping the predicate in ``NOT (NOT (…))``,
  ``(…) AND TRUE``, ``(…) OR FALSE``, or ``TRUE AND (…)`` must not change
  the result, but *does* change the compiled EVP routine's shape.
"""

from __future__ import annotations

from collections import Counter

from repro.oracle.generator import TLPCase
from repro.oracle.normalize import run_statement, tag_row


def tlp_statements(tlp: TLPCase) -> dict[str, str]:
    """The unfiltered base query and its three TLP partitions."""
    base = f"SELECT {tlp.items_sql} FROM {tlp.table}"
    p = tlp.predicate_sql
    return {
        "base": base,
        "true": f"{base} WHERE {p}",
        "false": f"{base} WHERE NOT ({p})",
        "null": f"{base} WHERE (({p})) IS NULL",
    }


def rewrite_statements(tlp: TLPCase) -> list[tuple[str, str]]:
    """Semantics-preserving predicate rewrites of the filtered query."""
    base = f"SELECT {tlp.items_sql} FROM {tlp.table}"
    p = tlp.predicate_sql
    return [
        ("not-not", f"{base} WHERE NOT (NOT ({p}))"),
        ("and-true", f"{base} WHERE ({p}) AND TRUE"),
        ("or-false", f"{base} WHERE ({p}) OR FALSE"),
        ("true-and", f"{base} WHERE TRUE AND ({p})"),
    ]


def check_tlp(db, tlp: TLPCase) -> str | None:
    """Run the TLP partitions on *db*; return a detail string on violation."""
    statements = tlp_statements(tlp)
    outcomes = {}
    for label, sql in statements.items():
        outcome = run_statement(db, sql)
        if outcome[0] != "rows":
            return f"TLP query {label!r} did not return rows: {outcome}"
        outcomes[label] = outcome[1]
    whole = Counter(map(tag_row, outcomes["base"]))
    parts = Counter()
    for label in ("true", "false", "null"):
        parts.update(map(tag_row, outcomes[label]))
    if whole != parts:
        missing = whole - parts
        extra = parts - whole
        return (
            f"TLP partition mismatch for predicate ({tlp.predicate_sql}): "
            f"missing={dict(missing)} extra={dict(extra)}"
        )
    return None
