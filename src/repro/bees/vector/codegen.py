"""VEC — columnar NumPy kernel generation for fused pipelines.

The vector tier compiles the *same* :class:`PipelineSpec` bundles the
pipeline fuser matches — Scan→Filter*→Project, join probe, HashAgg
input — but instead of a fused per-row Python loop it emits a **vector
program**: a straight-line kernel over typed column arrays
(:mod:`repro.bees.vector.chunks`) that evaluates the predicate as a
boolean mask, compacts the selected row indexes once, and feeds the
sink from gathered columns.

NULL semantics are carried as parallel mask arrays under the invariant
that every boolean value lane is ``False`` where its null lane is set
(Kleene strict-true selection then needs no separate guard), and every
data lane holds a type-stable fill.  Expressions outside the vectorized
set — LIKE, functions, CASE, IN-lists, and any arithmetic touching
integer/boolean columns (NumPy would wrap or round where Python is
exact) — fall back to an *object lane*: the bound interpreter expression
itself, evaluated over rows materialized from the chunk, so the kernel
never trades correctness for vectorization.

Emitted rows are converted back to plain Python values (``tolist`` +
NULL re-materialization): downstream operators, the oracle's typed row
tags, and the beecheck translation validator all see exactly what the
interpreter produces.  Aggregation groups and finalizes *inside* the
kernel with insertion-ordered buckets and sequential Python reductions,
bit-identical to ``_PlainState``/``_DistinctState`` folds.

The generated source carries exactly one ledger charge —
``_charge('VEC_n', _C0 + _C1 * n + _C2 * _m)`` — whose constants the
beecheck cost audit recomputes from the spec (``n`` input rows, ``_m``
selected rows).  Division runs under ``errstate(raise)`` so a lane the
interpreter would fault on raises out of the kernel and the shield
degrades the statement vector→pipeline→generic.
"""

from __future__ import annotations

import numpy as np

from repro.cost import constants as C
from repro.engine import expr as E
from repro.bees.pipeline.codegen import PipelineSpec, _referenced
from repro.bees.routines.base import BeeRoutine, compile_routine

#: The vector tier reuses the pipeline's spec as-is: same plan-invariant
#: bundle, different compilation target.
VectorSpec = PipelineSpec

#: Expression nodes with a direct whole-column emission.
_FAST_EXPRS = (
    E.Const, E.Col, E.Cmp, E.Arith, E.And, E.Or, E.Not, E.IsNull, E.Between,
)

_CMP_NUMPY = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: struct formats whose arithmetic must stay on the Python object lane:
#: int64 wraps (Python promotes) and bool ``+`` is logical (Python is 2).
_EXACT_ARITH_FMTS = ("i", "q", "B")


def _expr_nodes(expr: E.Expr) -> int:
    """Node count of *expr* (the per-lane work unit the charge prices)."""
    return 1 + sum(_expr_nodes(child) for child in expr.children())


def _vectorizable(expr: E.Expr, schema) -> bool:
    """True when *expr* has an exact whole-column emission."""
    if not isinstance(expr, _FAST_EXPRS):
        return False
    if isinstance(expr, E.Arith):
        acc: set = set()
        _referenced(expr, acc)
        for index in acc:
            fmt = schema.attributes[index].sql_type.struct_fmt
            if fmt in _EXACT_ARITH_FMTS:
                return False
    return all(_vectorizable(child, schema) for child in expr.children())


# -- runtime helpers (injected into every kernel's namespace) ----------------


def _obj(values, mask, m: int) -> list:
    """Materialize a value lane as a plain Python list with NULLs."""
    if isinstance(values, np.ndarray):
        vals = values.tolist()
    else:
        vals = [values] * m
    if mask is False or mask is None:
        return vals
    if mask is True:
        return [None] * m
    return [None if f else v for f, v in zip(mask.tolist(), vals)]


def _zip_rows(columns: list) -> list:
    """Transpose output column lists into row lists."""
    return [list(row) for row in zip(*columns)]


def _materialize(cols, nulls, idx) -> list:
    """Chunk → Python rows (object-lane evaluation domain)."""
    columns = []
    for arr, mask in zip(cols, nulls):
        if idx is not None:
            arr = arr[idx]
            if mask is not None:
                mask = mask[idx]
        vals = arr.tolist()
        if mask is not None:
            vals = [None if f else v for f, v in zip(mask.tolist(), vals)]
        columns.append(vals)
    return [list(row) for row in zip(*columns)]


def _div(numer, denom, denom_null):
    """Vectorized true division with the interpreter's error contract.

    NULL-divisor lanes are patched to 1 (their results are masked out);
    a genuine zero or invalid lane raises, so the shield can degrade the
    statement exactly where ``a / b`` would raise ``ZeroDivisionError``
    on the generic path.
    """
    if denom_null is not False and denom_null is not None:
        denom = np.where(denom_null, 1, denom)
    with np.errstate(divide="raise", invalid="raise"):
        return np.true_divide(numer, denom)


# -- emission ----------------------------------------------------------------


class _KernelEmitter:
    """Builds kernel body lines; every composite value gets a ``t{n}``.

    Fragments are *atoms* — parameter subscripts, interned constants
    (``_K{n}``), temps — or the literals ``"True"``/``"False"`` for
    statically-known null lanes, so symbolic simplification never needs
    parentheses.
    """

    def __init__(self, namespace: dict, schema) -> None:
        self.lines: list[str] = []
        self.namespace = namespace
        self.schema = schema
        self._n_temp = 0
        self._n_const = 0
        self._n_expr = 0
        self._cache: dict = {}
        self.gather = ""       # becomes "[_idx]" after selection
        self._rows: dict = {}  # materialized object-lane row domains

    def temp(self, src: str) -> str:
        name = f"t{self._n_temp}"
        self._n_temp += 1
        self.lines.append(f"    {name} = {src}")
        return name

    def const(self, value) -> str:
        name = f"_K{self._n_const}"
        self._n_const += 1
        self.namespace[name] = value
        return name

    def intern_expr(self, expr: E.Expr) -> str:
        name = f"_E{self._n_expr}"
        self._n_expr += 1
        self.namespace[name] = expr
        return name

    # symbolic boolean combiners over atom/literal fragments ---------------

    def not_(self, frag: str) -> str:
        if frag == "True":
            return "False"
        if frag == "False":
            return "True"
        key = ("not", frag, self.gather)
        if key not in self._cache:
            self._cache[key] = self.temp(f"~{frag}")
        return self._cache[key]

    def and_(self, a: str, b: str) -> str:
        if a == "False" or b == "False":
            return "False"
        if a == "True":
            return b
        if b == "True":
            return a
        return self.temp(f"{a} & {b}")

    def or_(self, a: str, b: str) -> str:
        if a == "True" or b == "True":
            return "True"
        if a == "False":
            return b
        if b == "False":
            return a
        return self.temp(f"{a} | {b}")

    # value emission -------------------------------------------------------

    def col(self, index: int) -> tuple[str, str]:
        """``(value_frag, null_frag)`` for column *index*."""
        gather = self.gather
        key = ("col", index, gather)
        if key not in self._cache:
            if gather:
                self._cache[key] = self.temp(f"cols[{index}]{gather}")
            else:
                self._cache[key] = f"cols[{index}]"
        val = self._cache[key]
        if not self.schema.attributes[index].nullable:
            return val, "False"
        nkey = ("nul", index, gather)
        if nkey not in self._cache:
            if gather:
                self._cache[nkey] = self.temp(f"nulls[{index}]{gather}")
            else:
                self._cache[nkey] = f"nulls[{index}]"
        return val, self._cache[nkey]

    def emit(self, expr: E.Expr) -> tuple[str, str]:
        """Vectorized ``(value, null)`` emission (fast exprs only).

        Invariant: wherever the null fragment is set, a boolean value
        fragment is ``False`` and a data fragment holds the type fill.
        """
        if isinstance(expr, E.Const):
            if expr.value is None:
                return "False", "True"
            return self.const(expr.value), "False"
        if isinstance(expr, E.Col):
            return self.col(expr.index)
        if isinstance(expr, E.Cmp):
            lv, lu = self.emit(expr.left)
            rv, ru = self.emit(expr.right)
            u = self.or_(lu, ru)
            if u == "True":
                return "False", "True"
            t = self.temp(f"{lv} {_CMP_NUMPY[expr.op]} {rv}")
            if u != "False":
                t = self.and_(t, self.not_(u))
            return t, u
        if isinstance(expr, E.Arith):
            lv, lu = self.emit(expr.left)
            rv, ru = self.emit(expr.right)
            u = self.or_(lu, ru)
            if u == "True":
                return "False", "True"
            if expr.op == "/":
                return self.temp(f"_div({lv}, {rv}, {ru})"), u
            return self.temp(f"{lv} {expr.op} {rv}"), u
        if isinstance(expr, E.And):
            pairs = [self.emit(arg) for arg in expr.args]
            value = pairs[0][0]
            for v, _u in pairs[1:]:
                value = self.and_(value, v)
            if all(u == "False" for _v, u in pairs):
                return value, "False"
            # Kleene: a definitely-false conjunct silences the NULLs.
            definite = "False"
            for v, u in pairs:
                definite = self.or_(definite, self.and_(self.not_(v),
                                                        self.not_(u)))
            unknown = "False"
            for _v, u in pairs:
                unknown = self.or_(unknown, u)
            return value, self.and_(unknown, self.not_(definite))
        if isinstance(expr, E.Or):
            pairs = [self.emit(arg) for arg in expr.args]
            value = pairs[0][0]
            for v, _u in pairs[1:]:
                value = self.or_(value, v)
            if all(u == "False" for _v, u in pairs):
                return value, "False"
            unknown = "False"
            for _v, u in pairs:
                unknown = self.or_(unknown, u)
            return value, self.and_(unknown, self.not_(value))
        if isinstance(expr, E.Not):
            v, u = self.emit(expr.arg)
            return self.and_(self.not_(v), self.not_(u)), u
        if isinstance(expr, E.IsNull):
            _v, u = self.emit(expr.arg)
            value = self.not_(u) if expr.negate else u
            return value, "False"
        if isinstance(expr, E.Between):
            v, u = self.emit(expr.arg)
            if u == "True":
                return "False", "True"
            low = self.const(expr.low)
            high = self.const(expr.high)
            t = self.and_(
                self.temp(f"{low} <= {v}"), self.temp(f"{v} <= {high}")
            )
            if u != "False":
                t = self.and_(t, self.not_(u))
            return t, u
        raise ValueError(f"no vector emission for {type(expr).__name__}")

    # object lane ----------------------------------------------------------

    def rows_domain(self) -> str:
        """Python rows for the current domain (full or selected)."""
        key = self.gather
        if key not in self._rows:
            idx = "_idx" if self.gather else "None"
            self._rows[key] = self.temp(f"_materialize(cols, nulls, {idx})")
        return self._rows[key]

    def object_mask(self, expr: E.Expr) -> str:
        """Strict-true qualification mask via the interpreter itself."""
        name = self.intern_expr(expr)
        rows = self.rows_domain()
        return self.temp(
            f"_np.fromiter(({name}.evaluate(_r) is True for _r in {rows}), "
            f"_np.bool_, n)"
        )

    def object_values(self, expr: E.Expr) -> str:
        """Value list via the interpreter over the current domain."""
        name = self.intern_expr(expr)
        rows = self.rows_domain()
        return self.temp(f"[{name}.evaluate(_r) for _r in {rows}]")

    def output_list(self, expr: E.Expr) -> str:
        """Emit *expr* as a plain Python value list over the domain."""
        if _vectorizable(expr, self.schema):
            v, u = self.emit(expr)
            return self.temp(f"_obj({v}, {u}, _m)")
        return self.object_values(expr)

    def column_list(self, index: int) -> str:
        """A bare schema column as a Python value list over the domain."""
        v, u = self.col(index)
        return self.temp(f"_obj({v}, {u}, _m)")


def _expr_charge(expr: E.Expr, schema) -> int:
    """Per-selected-row cost of one sink expression."""
    if isinstance(expr, E.Col):
        return 0
    if _vectorizable(expr, schema):
        return C.VEC_KERNEL_PER_VALUE * _expr_nodes(expr)
    return expr.generic_cost


def generate_vector(spec: PipelineSpec, ledger, fn_name: str) -> BeeRoutine:
    """Compile *spec* into one columnar kernel routine.

    The generated function's signature depends on the sink:

    * ``rows``:  ``fn(cols, nulls, n) -> list[row]``
    * ``probe``: ``fn(cols, nulls, n, table) -> list[row]``
    * ``agg``:   ``fn(cols, nulls, n) -> list[row]`` (finalized groups)

    where *cols*/*nulls* are the relation chunk's arrays and *n* its row
    count.  Unlike the pipeline tier the aggregate sink groups **and**
    finalizes inside the kernel, so every sink returns finished rows and
    the drivers share one arity check.
    """
    layout = spec.layout
    schema = layout.schema
    natts = schema.natts
    exprs = list(spec.group_exprs) + [
        s.arg for s in spec.aggs if s.arg is not None
    ]
    if spec.qual is not None:
        exprs.append(spec.qual)
    if spec.output is not None:
        exprs.extend(spec.output)
    for expr in exprs:
        if not E.is_bound(expr):
            raise ValueError(
                "vector specialization requires bound expressions"
            )

    namespace = {
        "_np": np,
        "_charge": ledger.charge_fn,
        "_obj": _obj,
        "_zip_rows": _zip_rows,
        "_materialize": _materialize,
        "_div": _div,
    }
    em = _KernelEmitter(namespace, schema)
    params = "cols, nulls, n, table" if spec.sink == "probe" else "cols, nulls, n"
    header = [
        f"def {fn_name}({params}):",
        f'    """Vector {spec.sink} kernel over relation '
        f'{spec.relation!r} (generated)."""',
    ]

    # -- selection: one mask, one compaction --------------------------------
    qual_cost = 0
    if spec.qual is None:
        mask = "True"
    elif _vectorizable(spec.qual, schema):
        mask, _u = em.emit(spec.qual)
        qual_cost = C.VEC_KERNEL_PER_VALUE * _expr_nodes(spec.qual)
    else:
        mask = em.object_mask(spec.qual)
        qual_cost = spec.qual.generic_cost
    if mask == "True":
        em.lines.append("    _m = n")
    elif mask == "False":
        nosel = np.array([], dtype=np.intp)
        nosel.setflags(write=False)  # captured state must be frozen
        namespace["_NOSEL"] = nosel
        em.lines.append("    _idx = _NOSEL")
        em.lines.append("    _m = 0")
        em.gather = "[_idx]"
    else:
        em.lines.append(f"    _idx = _np.nonzero({mask})[0]")
        em.lines.append("    _m = len(_idx)")
        em.gather = "[_idx]"

    # -- sink ----------------------------------------------------------------
    c1 = C.VEC_SELECT_PER_ROW + qual_cost
    costs = {"_C0": C.VEC_KERNEL_DISPATCH, "_C1": c1}
    if spec.sink == "rows":
        if spec.output is None:
            items = [em.column_list(i) for i in range(natts)]
            expr_cost = 0
        else:
            items = [em.output_list(expr) for expr in spec.output]
            expr_cost = sum(
                _expr_charge(expr, schema) for expr in spec.output
            )
        em.lines.append(f"    out = _zip_rows([{', '.join(items)}])")
        costs["_C2"] = (
            C.VEC_EMIT_BASE + C.VEC_EMIT_PER_COLUMN * len(items) + expr_cost
        )
    elif spec.sink == "probe":
        items = [em.column_list(i) for i in range(natts)]
        em.lines.append(f"    _rows = _zip_rows([{', '.join(items)}])")
        em.lines.append("    out = []")
        em.lines.append("    _append = out.append")
        em.lines.append("    _get = table.get")
        em.lines.append("    for _r in _rows:")
        keys = ", ".join(f"_r[{i}]" for i in spec.probe_idx)
        key_tuple = f"({keys},)" if len(spec.probe_idx) == 1 else f"({keys})"
        em.lines.append(f"        _k = {key_tuple}")
        nullable_keys = [
            f"_r[{i}]"
            for i in spec.probe_idx
            if schema.attributes[i].nullable
        ]
        if nullable_keys:
            guard = " and ".join(f"{k} is not None" for k in nullable_keys)
            em.lines.append(
                f"        _cands = _get(_k, ()) if {guard} else ()"
            )
        else:
            em.lines.append("        _cands = _get(_k, ())")
        if spec.join_type == "inner":
            em.lines.append("        for _b in _cands:")
            em.lines.append("            _append(_r + _b)")
        elif spec.join_type == "left":
            em.lines.append("        if _cands:")
            em.lines.append("            for _b in _cands:")
            em.lines.append("                _append(_r + _b)")
            em.lines.append("        else:")
            em.lines.append("            _append(_r + _PAD)")
            namespace["_PAD"] = [None] * spec.build_width
        elif spec.join_type == "semi":
            em.lines.append("        if _cands:")
            em.lines.append("            _append(_r)")
        else:   # anti
            em.lines.append("        if not _cands:")
            em.lines.append("            _append(_r)")
        costs["_C2"] = (
            C.VEC_PROBE_PER_ROW + C.VEC_EMIT_PER_COLUMN * natts
        )
    else:   # agg
        group_lists = [em.output_list(expr) for expr in spec.group_exprs]
        arg_lists = {}
        for i, agg in enumerate(spec.aggs):
            if agg.arg is not None:
                arg_lists[i] = em.output_list(agg.arg)
        if spec.group_exprs:
            key = ", ".join(f"{g}[_i]" for g in group_lists)
            key_tuple = f"({key},)" if len(group_lists) == 1 else f"({key})"
            em.lines.append("    _buckets = {}")
            em.lines.append("    for _i in range(_m):")
            em.lines.append(f"        _k = {key_tuple}")
            em.lines.append("        _b = _buckets.get(_k)")
            em.lines.append("        if _b is None:")
            em.lines.append("            _buckets[_k] = _b = []")
            em.lines.append("        _b.append(_i)")
        else:
            em.lines.append("    _buckets = {(): list(range(_m))}")
        em.lines.append("    out = []")
        em.lines.append("    for _k, _ix in _buckets.items():")
        em.lines.append("        _row = list(_k)")
        for i, agg in enumerate(spec.aggs):
            if agg.arg is None:   # count(*)
                em.lines.append("        _row.append(len(_ix))")
                continue
            values = arg_lists[i]
            # Sequential Python folds over the selected positions, in
            # row order: bit-identical to the generic accumulators.
            if agg.distinct:
                em.lines.append(
                    f"        _vals = {{v for v in "
                    f"({values}[_i] for _i in _ix) if v is not None}}"
                )
            else:
                em.lines.append(
                    f"        _vals = [v for v in "
                    f"({values}[_i] for _i in _ix) if v is not None]"
                )
            if agg.func == "count":
                em.lines.append("        _row.append(len(_vals))")
            elif agg.func == "sum":
                em.lines.append(
                    "        _row.append(sum(_vals) if _vals else None)"
                )
            elif agg.func == "avg":
                em.lines.append(
                    "        _row.append(sum(_vals) / len(_vals) "
                    "if _vals else None)"
                )
            elif agg.func == "min":
                em.lines.append(
                    "        _row.append(min(_vals) if _vals else None)"
                )
            else:   # max
                em.lines.append(
                    "        _row.append(max(_vals) if _vals else None)"
                )
        em.lines.append("        out.append(_row)")
        costs["_C2"] = (
            C.VEC_GROUP_PER_ROW
            + C.VEC_EMIT_PER_COLUMN
            * (len(spec.group_exprs) + len(arg_lists))
            + sum(_expr_charge(expr, schema) for expr in spec.group_exprs)
            + sum(
                _expr_charge(agg.arg, schema)
                for agg in spec.aggs
                if agg.arg is not None
            )
        )

    namespace.update(costs)
    em.lines.append(f"    _charge({fn_name!r}, _C0 + _C1 * n + _C2 * _m)")
    em.lines.append("    return out")
    source = "\n".join(header + em.lines) + "\n"
    fn = compile_routine(source, fn_name, namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=c1, source=source, namespace=namespace,
    )
