"""Tests for relation schemas, the catalog, and annotations."""

import pytest

from repro.catalog import (
    Catalog,
    CatalogError,
    INT4,
    INT8,
    AnnotationSet,
    char,
    infer_annotations,
    make_schema,
    varchar,
)


class TestSchemaLayout:
    def test_attnums_sequential(self, orders_schema):
        for i, attr in enumerate(orders_schema.attributes):
            assert attr.attnum == i

    def test_cached_offsets_before_varlena(self, orders_schema):
        # All eight fixed attributes before o_comment have known offsets.
        for attr in orders_schema.attributes[:8]:
            assert attr.attcacheoff >= 0

    def test_varlena_itself_is_cacheable(self, orders_schema):
        assert orders_schema.attribute("o_comment").attcacheoff >= 0

    def test_offsets_respect_alignment(self, orders_schema):
        for attr in orders_schema.attributes:
            if attr.attcacheoff >= 0:
                assert attr.attcacheoff % attr.attalign == 0

    def test_offsets_after_varlena_unknown(self):
        schema = make_schema(
            "t", [("a", varchar(10)), ("b", INT4), ("c", char(2))]
        )
        assert schema.attribute("a").attcacheoff == 0
        assert schema.attribute("b").attcacheoff == -1
        assert schema.attribute("c").attcacheoff == -1

    def test_int8_alignment_gap(self):
        schema = make_schema("t", [("a", INT4), ("b", INT8)])
        assert schema.attribute("b").attcacheoff == 8

    def test_natts(self, orders_schema):
        assert orders_schema.natts == 9

    def test_has_nullable(self):
        schema = make_schema("t", [("a", INT4), ("b", INT4, True)])
        assert schema.has_nullable
        assert not make_schema("t", [("a", INT4)]).has_nullable

    def test_column_lookup(self, orders_schema):
        assert orders_schema.attnum("o_orderdate") == 4
        assert "o_comment" in orders_schema
        assert "nope" not in orders_schema
        with pytest.raises(KeyError):
            orders_schema.attribute("nope")


class TestSchemaValidation:
    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            make_schema("t", [])

    def test_duplicate_column_rejected(self):
        with pytest.raises(ValueError):
            make_schema("t", [("a", INT4), ("a", INT4)])

    def test_unknown_pk_column_rejected(self):
        with pytest.raises(ValueError):
            make_schema("t", [("a", INT4)], primary_key=("b",))


class TestCatalog:
    def test_create_and_get(self, orders_schema):
        catalog = Catalog()
        relid = catalog.create_relation(orders_schema)
        assert relid >= 16384
        assert catalog.get("orders") is orders_schema
        assert catalog.relid("orders") == relid
        assert "orders" in catalog
        assert len(catalog) == 1

    def test_duplicate_create_rejected(self, orders_schema):
        catalog = Catalog()
        catalog.create_relation(orders_schema)
        with pytest.raises(CatalogError):
            catalog.create_relation(orders_schema)

    def test_get_unknown_raises(self):
        with pytest.raises(CatalogError):
            Catalog().get("ghost")

    def test_drop(self, orders_schema):
        catalog = Catalog()
        catalog.create_relation(orders_schema)
        catalog.drop_relation("orders")
        assert "orders" not in catalog
        with pytest.raises(CatalogError):
            catalog.drop_relation("orders")

    def test_alter_unknown_rejected(self, orders_schema):
        with pytest.raises(CatalogError):
            Catalog().alter_relation(orders_schema)

    def test_relids_are_distinct(self):
        catalog = Catalog()
        a = catalog.create_relation(make_schema("a", [("x", INT4)]))
        b = catalog.create_relation(make_schema("b", [("x", INT4)]))
        assert a != b

    def test_listeners_fire(self, orders_schema):
        catalog = Catalog()
        events = []
        for name in ("create", "alter", "drop"):
            catalog.on(name, lambda n, s, e=name: events.append((e, n)))
        catalog.create_relation(orders_schema)
        catalog.alter_relation(orders_schema)
        catalog.drop_relation("orders")
        assert events == [
            ("create", "orders"), ("alter", "orders"), ("drop", "orders"),
        ]

    def test_unknown_event_rejected(self):
        with pytest.raises(ValueError):
            Catalog().on("explode", lambda n, s: None)

    def test_drop_clears_annotations(self, orders_schema):
        catalog = Catalog()
        catalog.create_relation(orders_schema)
        catalog.annotations.annotate("orders", "o_orderstatus")
        catalog.drop_relation("orders")
        assert not catalog.annotations.is_annotated("orders")


class TestAnnotations:
    def test_annotate_and_query(self):
        annotations = AnnotationSet()
        annotations.annotate("orders", "o_orderstatus", "o_orderpriority")
        assert annotations.annotated_attributes("orders") == (
            "o_orderstatus", "o_orderpriority",
        )
        assert annotations.is_annotated("orders")
        assert not annotations.is_annotated("lineitem")

    def test_annotation_order_preserved_and_deduped(self):
        annotations = AnnotationSet()
        annotations.annotate("t", "b")
        annotations.annotate("t", "a", "b")
        assert annotations.annotated_attributes("t") == ("b", "a")

    def test_empty_annotate_rejected(self):
        with pytest.raises(ValueError):
            AnnotationSet().annotate("t")

    def test_clear(self):
        annotations = AnnotationSet()
        annotations.annotate("t", "a")
        annotations.clear("t")
        assert annotations.annotated_attributes("t") == ()


class TestInference:
    def test_infers_low_cardinality_char(self, orders_schema):
        rows = [
            [i, 0, "OF P"[i % 3], 1.0, 0, "1-URGENT", "clerk", 0, "c"]
            for i in range(100)
        ]
        suggested = infer_annotations(rows, orders_schema)
        assert "o_orderstatus" in suggested
        assert "o_orderpriority" in suggested
        # High-cardinality char column is not suggested.
        assert "o_clerk" not in [
            s for s in suggested
        ] or len({r[6] for r in rows}) <= 16

    def test_empty_rows(self, orders_schema):
        assert infer_annotations([], orders_schema) == []

    def test_varchar_never_suggested(self, orders_schema):
        rows = [[i, 0, "O", 1.0, 0, "p", "c", 0, "same"] for i in range(10)]
        assert "o_comment" not in infer_annotations(rows, orders_schema)
