"""Per-bee health registry: failure accounting, quarantine, backoff.

Keys are *stable* identities, not generated routine names (an EVP is
``EVP_17`` in one statement and ``EVP_23`` in the next): relation bees
use their routine name (``GCL_orders``), query bees use a content key
(``EVP:<expr repr>``, ``AGG:<spec signature>``, ``PIPE:<relation>:<sink>``).

State machine per bee (see docs/RESILIENCE.md):

    healthy --(CONSECUTIVE_FAILURES faults in a row)--> quarantined
    quarantined --(window admissions denied)--> probing
    probing --(one successful specialized call)--> healthy
    probing --(fault)--> quarantined (window doubled, capped)

The backoff window is counted in *denied admissions* rather than wall
clock so behaviour is deterministic under test and under the chaos
harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# Consecutive faults before a bee is quarantined.
CONSECUTIVE_FAILURES = 3
# First backoff window (admissions denied before a probe), then doubled
# per re-quarantine up to the cap.
BACKOFF_BASE = 8
BACKOFF_MAX = 256
# How many raw events report() retains.
EVENT_LOG_LIMIT = 200


@dataclass
class BeeHealth:
    key: str
    failures: int = 0
    consecutive: int = 0
    quarantined: bool = False
    probing: bool = False
    quarantines: int = 0
    window: int = 0
    denied: int = 0
    last_site: str = ""
    last_kind: str = ""
    last_error: str = ""


@dataclass
class ResilienceRegistry:
    """Shared fault log + quarantine book-keeping for one Database."""

    _health: dict[str, BeeHealth] = field(default_factory=dict)
    _events: list[dict] = field(default_factory=list)
    _counts: dict[tuple[str, str], int] = field(default_factory=dict)
    wal_truncations: int = 0
    # Optional per-call wall-clock budget for specialized routines, in
    # seconds.  None (the default) compiles guards without any timing
    # code, keeping the hot path free of clock reads.
    call_budget_s: float | None = None

    # ------------------------------------------------------------------
    # event log

    def record_event(self, event: str, **fields) -> None:
        entry = {"event": event, **fields}
        self._events.append(entry)
        if len(self._events) > EVENT_LOG_LIMIT:
            del self._events[: len(self._events) - EVENT_LOG_LIMIT]

    # ------------------------------------------------------------------
    # fault accounting

    def health_or_none(self, key: str) -> BeeHealth | None:
        """Fast-path lookup: healthy bees have no entry at all."""
        return self._health.get(key)

    def record_failure(
        self, key: str, *, site: str, kind: str, error: BaseException | None = None
    ) -> BeeHealth:
        """Record one guarded fault; returns the (possibly new) health entry."""
        h = self._health.get(key)
        if h is None:
            h = self._health[key] = BeeHealth(key)
        h.failures += 1
        h.consecutive += 1
        h.last_site = site
        h.last_kind = kind
        h.last_error = "" if error is None else f"{type(error).__name__}: {error}"
        self._counts[(site, kind)] = self._counts.get((site, kind), 0) + 1
        self.record_event(
            "bee_fault", bee=key, site=site, kind=kind, error=h.last_error
        )
        if h.probing or (not h.quarantined and h.consecutive >= CONSECUTIVE_FAILURES):
            self._quarantine(h)
        return h

    def _quarantine(self, h: BeeHealth) -> None:
        h.quarantined = True
        h.probing = False
        h.quarantines += 1
        h.window = min(BACKOFF_BASE * (2 ** (h.quarantines - 1)), BACKOFF_MAX)
        h.denied = 0
        self.record_event("quarantine", bee=h.key, window=h.window)

    def admit(self, key: str) -> bool:
        """May the specialized path be used for this bee right now?"""
        h = self._health.get(key)
        if h is None:
            return True
        return self.admit_health(h)

    def admit_health(self, h: BeeHealth) -> bool:
        if not h.quarantined:
            return True
        h.denied += 1
        if h.denied >= h.window:
            h.quarantined = False
            h.probing = True
            h.consecutive = 0
            self.record_event("probe", bee=h.key)
            return True
        return False

    def record_success(self, key: str) -> None:
        """A specialized call completed cleanly; closes an open probe."""
        h = self._health.get(key)
        if h is None:
            return
        h.consecutive = 0
        if h.probing:
            h.probing = False
            self.record_event("readmitted", bee=h.key)

    def record_wal_truncation(self, path: str, dropped: int) -> None:
        self.wal_truncations += 1
        self.record_event("wal_truncated", path=path, dropped_bytes=dropped)

    # ------------------------------------------------------------------
    # invalidation edges (ALTER/DROP): stale quarantine state must not
    # outlive the bees it described.

    def clear_prefix(self, *prefixes: str) -> int:
        doomed = [
            key
            for key in self._health
            if any(key.startswith(p) for p in prefixes)
        ]
        for key in doomed:
            del self._health[key]
        if doomed:
            self.record_event("health_cleared", bees=sorted(doomed))
        return len(doomed)

    # ------------------------------------------------------------------
    # reporting

    def quarantined(self) -> list[str]:
        return sorted(k for k, h in self._health.items() if h.quarantined)

    def total_faults(self) -> int:
        return sum(self._counts.values())

    def report(self) -> dict:
        return {
            "faults": self.total_faults(),
            "by_site": {
                f"{site}/{kind}": n
                for (site, kind), n in sorted(self._counts.items())
            },
            "wal_truncations": self.wal_truncations,
            "quarantined": self.quarantined(),
            "bees": {
                key: {
                    "failures": h.failures,
                    "consecutive": h.consecutive,
                    "quarantined": h.quarantined,
                    "probing": h.probing,
                    "quarantines": h.quarantines,
                    "window": h.window,
                    "denied": h.denied,
                    "last_site": h.last_site,
                    "last_kind": h.last_kind,
                    "last_error": h.last_error,
                }
                for key, h in sorted(self._health.items())
            },
            "events": list(self._events),
        }
