"""Command-line experiment runner: ``python -m repro.bench [options]``.

Runs every experiment from the paper (or a selected subset) and prints the
paper-style tables; optionally writes them to a results directory.  This is
the no-pytest path to the reproduction.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.reporting import bar_chart, table
from repro.bench.tpcc_experiments import run_tpcc_comparison
from repro.bench.tpch_experiments import (
    build_suite_pair,
    bulk_loading,
    case_study,
    compare_queries,
    run_ablation,
)
from repro.workloads.tpcc.loader import TPCCConfig

EXPERIMENTS = (
    "case-study", "fig4", "fig5", "fig6", "fig7", "fig8", "tpcc",
)


def _print_suite(suite, title: str, paper_avg1: float) -> None:
    ordered = sorted(suite.comparisons)
    print(bar_chart(
        [f"q{n}" for n in ordered],
        [suite.comparisons[n].time_improvement for n in ordered],
        title,
    ))
    print(f"Avg1 = {suite.avg1('time'):.1f}%  (paper {paper_avg1}%)")
    print(f"Avg2 = {suite.avg2('time'):.1f}%")
    print()


def run(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Reproduce the ICDE 2012 micro-specialization experiments",
    )
    parser.add_argument(
        "--sf", type=float, default=0.005,
        help="TPC-H scale factor (paper used 1.0; default 0.005)",
    )
    parser.add_argument(
        "--warehouses", type=int, default=1,
        help="TPC-C warehouses (paper used 10; default 1)",
    )
    parser.add_argument(
        "--transactions", type=int, default=300,
        help="TPC-C transactions per mix (default 300)",
    )
    parser.add_argument(
        "--only", choices=EXPERIMENTS, action="append",
        help="run only the named experiment(s); repeatable",
    )
    args = parser.parse_args(argv)
    selected = set(args.only) if args.only else set(EXPERIMENTS)
    started = time.time()

    if "case-study" in selected:
        print("=" * 72)
        print("E1 / Section II case study: select o_comment from orders")
        print("=" * 72)
        report = case_study(scale_factor=args.sf)
        print(
            f"deform instr/tuple: generic "
            f"{report['stock']['deform_per_tuple']:.0f} (paper ~340), "
            f"GCL {report['bees']['deform_per_tuple']:.0f} (paper ~146)"
        )
        print(
            f"whole-query reduction {report['instruction_improvement']:.1f}%"
            " (paper 8.5%)\n"
        )

    needs_pair = selected & {"fig4", "fig5", "fig6"}
    if needs_pair:
        print(f"building TPC-H pair at SF={args.sf} ...")
        stock, bees = build_suite_pair(scale_factor=args.sf)
        warm = compare_queries(stock, bees, cold=False)
        if "fig4" in selected:
            print("=" * 72)
            print("E2 / Fig. 4: run-time improvement (warm cache)")
            print("=" * 72)
            _print_suite(warm, "warm-cache % improvement", 12.4)
        if "fig5" in selected:
            print("=" * 72)
            print("E3 / Fig. 5: run-time improvement (cold cache)")
            print("=" * 72)
            cold = compare_queries(stock, bees, cold=True)
            _print_suite(cold, "cold-cache % improvement", 12.9)
        if "fig6" in selected:
            print("=" * 72)
            print("E4 / Fig. 6: instruction-count reduction")
            print("=" * 72)
            ordered = sorted(warm.comparisons)
            print(bar_chart(
                [f"q{n}" for n in ordered],
                [
                    warm.comparisons[n].instruction_improvement
                    for n in ordered
                ],
                "% fewer instructions executed",
            ))
            print(f"Avg1 = {warm.avg1('instructions'):.1f}% (paper 14.7%)\n")

    if "fig7" in selected:
        print("=" * 72)
        print("E5 / Fig. 7: ablation GCL -> +EVP -> +EVJ")
        print("=" * 72)
        ablation = run_ablation(scale_factor=args.sf)
        steps = list(ablation)
        rows = [
            [step, round(ablation[step].avg1("time"), 1),
             round(ablation[step].avg2("time"), 1)]
            for step in steps
        ]
        print(table(["routines", "Avg1 %", "Avg2 %"], rows))
        print("(paper Avg1: 7.6 -> 11.5 -> 12.4)\n")

    if "fig8" in selected:
        print("=" * 72)
        print("E6 / Fig. 8: bulk-loading improvement per relation")
        print("=" * 72)
        bulk = bulk_loading(scale_factor=args.sf)
        print(bar_chart(
            list(bulk),
            [bulk[name]["time_improvement"] for name in bulk],
            "% faster COPY, bee-enabled",
            vmax=12.0,
        ))
        print()

    if "tpcc" in selected:
        print("=" * 72)
        print("E7: TPC-C throughput, three mixes")
        print("=" * 72)
        config = TPCCConfig(warehouses=args.warehouses)
        report = run_tpcc_comparison(config, n_transactions=args.transactions)
        rows = [
            [mix, round(c.stock.tpm_total), round(c.bees.tpm_total),
             f"{c.throughput_improvement:+.1f}%"]
            for mix, c in report.items()
        ]
        print(table(["mix", "stock tpm", "bees tpm", "improvement"], rows))
        print("(paper: default +7.3%, query-only +18%, balanced +11.1%)\n")

    print(f"all selected experiments finished in {time.time() - started:.0f}s")
    return 0


if __name__ == "__main__":
    sys.exit(run())
