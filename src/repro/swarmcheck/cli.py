"""``python -m repro.swarmcheck`` — certify the hive for sharing.

Runs the four passes (purity over the routine corpus, shared-state
classification over everything reachable from the session surface,
escape analysis for cached chunk arrays, and lock materialization —
every declared guard resolves to a live lock that guarded writes hold)
plus the bug-injection self-test, and writes
``results/swarmcheck/report.json``.  With ``--check``, exits non-zero
on any finding or missed injection — the CI gate the morsel-parallel
tier and the Hive Gate server stand on.
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.analysis import add_standard_args, exit_code, write_report as _write
from repro.hiveaudit.source import EngineSource
from repro.swarmcheck import corpus as corpus_mod
from repro.swarmcheck import escape as escape_mod
from repro.swarmcheck import locks as locks_mod
from repro.swarmcheck import purity as purity_mod
from repro.swarmcheck import registry as registry_mod
from repro.swarmcheck import selftest as selftest_mod
from repro.swarmcheck import sharedstate as shared_mod
from repro.swarmcheck.report import SwarmReport

DEFAULT_STATEMENTS = 200


def run_swarmcheck(
    seed: int = 0,
    statements: int = DEFAULT_STATEMENTS,
    with_selftest: bool = True,
) -> SwarmReport:
    started = time.perf_counter()
    source = EngineSource()
    report = SwarmReport(seed=seed, statements=0)

    corpus, executed = corpus_mod.collect(seed, statements)
    report.statements = executed

    findings, counts = purity_mod.run_purity(corpus)
    report.routines_checked = counts
    report.findings.extend(findings)

    sites, findings, stats = shared_mod.classify_writes(source)
    report.findings.extend(findings)
    for site in sites:
        report.sites[site.classification] = (
            report.sites.get(site.classification, 0) + 1
        )
    report.shared_state = [
        entry.to_dict() for entry in registry_mod.REGISTRY
    ]
    report.unused_registry = stats["unused_registry_keys"]

    findings, escape_stats = escape_mod.run_escape(source, corpus)
    report.findings.extend(findings)
    report.escape = escape_stats

    findings, locks_stats = locks_mod.run_locks(source)
    report.findings.extend(findings)
    report.locks = locks_stats

    if with_selftest:
        report.selftest = selftest_mod.run_selftest(source, corpus)

    report.elapsed = time.perf_counter() - started
    return report


def write_report(report: SwarmReport, out_dir: Path) -> Path:
    return _write(report.to_dict(), out_dir)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.swarmcheck",
        description=(
            "Purity and sharing-safety static analysis over the bee "
            "corpus and the engine execution path."
        ),
    )
    add_standard_args(
        parser,
        out_default="results/swarmcheck",
        statements_default=DEFAULT_STATEMENTS,
    )
    args = parser.parse_args(argv)

    report = run_swarmcheck(
        seed=args.seed,
        statements=args.statements,
        with_selftest=not args.no_selftest,
    )
    path = write_report(report, args.out)
    print(report.summary())
    print(f"report: {path}")
    return exit_code(report.ok, gate=args.check)
