"""The generic bee module: micro-specialization support for the DBMS.

Exports the module facade, settings, and routine generators.  See
DESIGN.md for the mapping from the paper's Fig. 3 components to the
submodules here.
"""

from repro.bees.cache import BeeCache
from repro.bees.collector import BeeCollector
from repro.bees.datasection import SLAB_SIZE, SOFT_CAP, DataSectionStore
from repro.bees.maker import BeeMaker, QueryBee, RelationBee
from repro.bees.module import GenericBeeModule
from repro.bees.placement import (
    BeePlacementOptimizer,
    CodeRegion,
    ICacheModel,
)
from repro.bees.routines.agg import generate_agg
from repro.bees.routines.base import BeeRoutine
from repro.bees.routines.idx import generate_idx
from repro.bees.routines.evj import EVJRoutine, instantiate_evj
from repro.bees.routines.evp import generate_evp
from repro.bees.routines.gcl import gcl_cost, generate_gcl
from repro.bees.routines.scl import generate_scl, scl_cost
from repro.bees.settings import BeeSettings
from repro.bees.walcache import BeeCacheWAL, StableBeeCache

__all__ = [
    "BeeCache",
    "BeeCollector",
    "BeeMaker",
    "BeePlacementOptimizer",
    "BeeRoutine",
    "BeeSettings",
    "CodeRegion",
    "DataSectionStore",
    "EVJRoutine",
    "GenericBeeModule",
    "ICacheModel",
    "QueryBee",
    "RelationBee",
    "SLAB_SIZE",
    "SOFT_CAP",
    "BeeCacheWAL",
    "StableBeeCache",
    "gcl_cost",
    "generate_agg",
    "generate_idx",
    "generate_evp",
    "generate_gcl",
    "generate_scl",
    "instantiate_evj",
    "scl_cost",
]
