"""The plan corpus wagglecheck sweeps.

Three sources, mirroring what the engine actually runs:

* the 22 TPC-H queries against a loaded scale-0.01 database (their
  hand-built plans, including every sub-plan executed along the way,
  captured by hooking ``db.execute``);
* a hand-written TPC-C statement set covering the planner surface the
  OLTP schema exercises (nullable columns, DATE arithmetic, DISTINCT,
  LEFT JOIN, HAVING) planned through the SQL front end;
* a fuzzed oracle run, which also populates the bee module's memoized
  pipeline/vector driver caches — every cached spec is replayed by the
  rewrite pass against the anchor it was compiled from.

Captured plans are handed to *on_plan* immediately after each
successful execution: that is the moment the plan is fully bound and
the catalog still matches it (the oracle drops and recreates tables, so
deferring the analysis would manufacture false unknown-relation and
stale-layout findings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable


@dataclass
class Corpus:
    """What remains to check after the per-plan callbacks ran."""

    #: ``(subject, spec, anchor, db)`` — memoized driver specs to replay.
    cached: list[tuple] = field(default_factory=list)
    #: ``(label, db)`` — layout cross-check + data-section audit inputs.
    databases: list[tuple] = field(default_factory=list)
    statements: int = 0


# Planner-surface coverage over the TPC-C schema: nullable columns,
# dates, DISTINCT, LEFT JOIN, HAVING, LIKE, IS NULL, LIMIT.
TPCC_STATEMENTS = (
    "SELECT * FROM warehouse",
    "SELECT w_id, w_name FROM warehouse WHERE w_tax > 0.05",
    "SELECT d_w_id, count(*) FROM district GROUP BY d_w_id",
    "SELECT c_last, c_balance FROM tpcc_customer "
    "WHERE c_balance < 0 ORDER BY c_balance LIMIT 10",
    "SELECT DISTINCT c_credit FROM tpcc_customer",
    "SELECT count(DISTINCT o_c_id) FROM oorder",
    "SELECT o_id, o_entry_d FROM oorder WHERE o_carrier_id IS NULL",
    "SELECT ol_w_id, sum(ol_amount), avg(ol_quantity) FROM order_line "
    "GROUP BY ol_w_id HAVING sum(ol_amount) > 0",
    "SELECT o_id, c_last FROM oorder "
    "INNER JOIN tpcc_customer ON o_c_id = c_id",
    "SELECT o_id, ol_amount FROM oorder "
    "LEFT JOIN order_line ON o_id = ol_o_id",
    "SELECT i_name, s_quantity FROM item "
    "INNER JOIN stock ON i_id = s_i_id WHERE s_quantity < 50",
    "SELECT no_w_id, no_d_id, min(no_o_id) FROM new_order "
    "GROUP BY no_w_id, no_d_id",
    "SELECT h_w_id, sum(h_amount) FROM history "
    "WHERE h_date > DATE '2024-01-01' GROUP BY h_w_id",
    "SELECT s_i_id FROM stock WHERE s_data LIKE '%original%'",
    "SELECT max(ol_delivery_d) FROM order_line "
    "WHERE ol_delivery_d IS NOT NULL",
)

OnPlan = Callable[[str, object, object], None]


def _capture(db, label: str, on_plan: OnPlan, run) -> None:
    """Run *run(db)* with ``db.execute`` hooked: every plan that executes
    successfully is handed to *on_plan* while its bindings are live."""
    original = db.execute
    counter = 0

    def hooked(plan, *pargs, **kwargs):
        nonlocal counter
        subject = f"{label}[{counter}]"
        counter += 1
        result = original(plan, *pargs, **kwargs)
        on_plan(subject, plan, db)
        return result

    db.execute = hooked
    try:
        run(db)
    finally:
        del db.execute     # restore the bound method


def _tpch(corpus: Corpus, on_plan: OnPlan) -> None:
    from repro.bees.settings import BeeSettings
    from repro.workloads.tpch.loader import build_tpch_database
    from repro.workloads.tpch.queries import QUERIES

    db = build_tpch_database(
        BeeSettings.all_bees().enabling(pipelines=True), scale_factor=0.01
    )
    for number in sorted(QUERIES):
        query = QUERIES[number]
        _capture(db, f"tpch/q{number:02d}", on_plan, query)
        corpus.statements += 1
    corpus.databases.append(("tpch", db))


def _tpcc(corpus: Corpus, on_plan: OnPlan) -> None:
    from repro.bees.settings import BeeSettings
    from repro.db import Database
    from repro.workloads.tpcc.schema import ALL_SCHEMAS

    db = Database(BeeSettings.all_bees().enabling(pipelines=True))
    for name in ALL_SCHEMAS:
        db.create_table(ALL_SCHEMAS[name]())
    for index, statement in enumerate(TPCC_STATEMENTS):
        _capture(
            db, f"tpcc/{index}", on_plan,
            lambda d, s=statement: d.sql(s),
        )
        corpus.statements += 1
    corpus.databases.append(("tpcc", db))


def _oracle(corpus: Corpus, on_plan: OnPlan, seed: int, statements: int) -> None:
    from repro.bees.settings import BeeSettings
    from repro.db import Database
    from repro.oracle.generator import StatementGenerator
    from repro.oracle.normalize import run_statement

    def drive(db, label: str) -> None:
        generator = StatementGenerator(seed)
        pending = list(generator.bootstrap())
        count = 0
        while count < statements:
            stmt = pending.pop(0) if pending else generator.next_statement()
            _capture(
                db, f"{label}/{count}:{stmt.kind}", on_plan,
                lambda d, s=stmt.sql: run_statement(d, s),
            )
            count += 1
        corpus.statements += count

    db = Database(BeeSettings.all_bees().enabling(pipelines=True))
    drive(db, "oracle")
    corpus.databases.append(("oracle", db))
    for key, (anchor, spec, _routine) in sorted(
        db.bee_module._pipeline_by_node.items()
    ):
        corpus.cached.append((f"cache/pipeline/{key}", spec, anchor, db))

    vdb = Database(BeeSettings.vectorized())
    drive(vdb, "oracle-vec")
    corpus.databases.append(("oracle-vec", vdb))
    for key, (anchor, spec, _routine) in sorted(
        vdb.bee_module._vector_by_node.items()
    ):
        corpus.cached.append((f"cache/vector/{key}", spec, anchor, vdb))


def collect(seed: int, statements: int, on_plan: OnPlan) -> Corpus:
    """Drive the full corpus, calling *on_plan* per executed plan."""
    corpus = Corpus()
    _tpch(corpus, on_plan)
    _tpcc(corpus, on_plan)
    _oracle(corpus, on_plan, seed, statements)
    return corpus
