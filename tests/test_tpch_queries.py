"""Tests for the 22 TPC-H query plans.

The central invariant is the paper's: the bee-enabled system returns
*identical results* to the stock system on every query while charging
fewer instructions.  A few queries also get semantic spot checks against
independently computed answers over the generated rows.
"""

import pytest

from repro.workloads.tpch import QUERIES, build_pair
from repro.workloads.tpch.queries import d


@pytest.fixture(scope="module")
def pair():
    return build_pair(scale_factor=0.002)


@pytest.mark.parametrize("query_number", sorted(QUERIES))
def test_query_equivalence_and_improvement(pair, query_number):
    stock, bees, _rows = pair
    s0 = stock.ledger.snapshot()
    stock_result = QUERIES[query_number](stock)
    stock_cost = stock.ledger.delta_since(s0).total
    b0 = bees.ledger.snapshot()
    bees_result = QUERIES[query_number](bees)
    bees_cost = bees.ledger.delta_since(b0).total
    assert stock_result == bees_result
    assert bees_cost < stock_cost


class TestSemanticSpotChecks:
    def test_q01_matches_manual_aggregation(self, pair):
        stock, _bees, rows = pair
        cutoff = d(1998, 12, 1) - 90
        expected = {}
        for item in rows["lineitem"]:
            if item[10] <= cutoff:
                key = (item[8], item[9])
                group = expected.setdefault(key, [0.0, 0])
                group[0] += item[4]
                group[1] += 1
        result = QUERIES[1](stock)
        assert len(result) == len(expected)
        for row in result:
            key = (row[0], row[1])
            assert row[2] == pytest.approx(expected[key][0])   # sum_qty
            assert row[9] == expected[key][1]                  # count_order

    def test_q01_sorted_by_flags(self, pair):
        stock, _bees, _rows = pair
        result = QUERIES[1](stock)
        keys = [(row[0], row[1]) for row in result]
        assert keys == sorted(keys)

    def test_q06_matches_manual_sum(self, pair):
        stock, _bees, rows = pair
        lo, hi = d(1994, 1, 1), d(1994, 1, 1) + 364
        expected = sum(
            item[5] * item[6]
            for item in rows["lineitem"]
            if lo <= item[10] <= hi
            and 0.05 <= item[6] <= 0.07
            and item[4] < 24
        )
        result = QUERIES[6](stock)
        assert result[0][0] == pytest.approx(expected)

    def test_q04_counts_match_manual(self, pair):
        stock, _bees, rows = pair
        lo = d(1993, 7, 1)
        late_orders = {
            item[0] for item in rows["lineitem"] if item[11] < item[12]
        }
        expected = {}
        for order in rows["orders"]:
            if lo <= order[4] <= lo + 91 and order[0] in late_orders:
                expected[order[5]] = expected.get(order[5], 0) + 1
        result = dict(QUERIES[4](stock))
        assert result == expected

    def test_q03_limit_and_order(self, pair):
        stock, _bees, _rows = pair
        result = QUERIES[3](stock)
        assert len(result) <= 10
        revenues = [row[1] for row in result]
        assert revenues == sorted(revenues, reverse=True)

    def test_q13_distribution_sums_to_customers(self, pair):
        stock, _bees, rows = pair
        result = QUERIES[13](stock)
        assert sum(row[1] for row in result) == len(rows["customer"])

    def test_q14_is_percentage(self, pair):
        stock, _bees, _rows = pair
        result = QUERIES[14](stock)
        assert 0.0 <= result[0][0] <= 100.0

    def test_q15_returns_max_revenue_supplier(self, pair):
        stock, _bees, _rows = pair
        result = QUERIES[15](stock)
        assert len(result) >= 1
        revenues = {row[4] for row in result}
        assert len(revenues) == 1   # all share the maximum

    def test_q18_threshold_filters(self, pair):
        stock, _bees, _rows = pair
        result = QUERIES[18](stock, quantity=100)
        for row in result:
            assert row[5] > 100    # sum_qty over the threshold

    def test_q22_customers_have_no_orders(self, pair):
        stock, _bees, rows = pair
        result = QUERIES[22](stock)
        # Every reported country code group counts customers above the
        # average balance; counts are positive when present.
        for row in result:
            assert row[1] > 0

    def test_parameterized_query(self, pair):
        stock, bees, _rows = pair
        a = QUERIES[6](stock, discount=0.05, quantity=30)
        b = QUERIES[6](bees, discount=0.05, quantity=30)
        assert a == b
