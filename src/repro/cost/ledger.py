"""The instruction ledger: where every engine code path charges its cost."""

from __future__ import annotations

from collections import defaultdict


class Ledger:
    """Accumulates virtual instruction counts and simulated I/O events.

    One ledger is owned by each :class:`repro.db.Database`; executor nodes,
    the storage manager, and bee routines charge into it.  Per-function
    attribution (the callgrind-style profile) is optional because it is the
    hot path of the whole simulator.

    Usage::

        ledger.charge(340)                  # anonymous instructions
        ledger.charge_fn("slot_deform_tuple", 340)   # attributed
        ledger.read_page(sequential=True)   # simulated I/O
    """

    __slots__ = (
        "total",
        "profiling",
        "by_function",
        "seq_pages_read",
        "rand_pages_read",
        "pages_hit",
    )

    def __init__(self) -> None:
        self.total = 0
        self.profiling = False
        self.by_function: dict[str, int] = defaultdict(int)
        self.seq_pages_read = 0
        self.rand_pages_read = 0
        self.pages_hit = 0

    # -- instruction charging ------------------------------------------------

    def charge(self, n: int) -> None:
        """Charge *n* virtual instructions without function attribution."""
        self.total += n

    def charge_fn(self, fn: str, n: int) -> None:
        """Charge *n* virtual instructions attributed to function *fn*.

        Attribution is recorded only while :attr:`profiling` is enabled;
        the total is always maintained.
        """
        self.total += n
        if self.profiling:
            self.by_function[fn] += n

    # -- simulated I/O --------------------------------------------------------

    def read_page(self, sequential: bool = True) -> None:
        """Record a simulated physical page read (buffer-pool miss)."""
        if sequential:
            self.seq_pages_read += 1
        else:
            self.rand_pages_read += 1

    def hit_page(self) -> None:
        """Record a buffer-pool hit (no physical I/O)."""
        self.pages_hit += 1

    # -- lifecycle ------------------------------------------------------------

    def reset(self) -> None:
        """Zero all counters (used between experiment runs)."""
        self.total = 0
        self.by_function.clear()
        self.seq_pages_read = 0
        self.rand_pages_read = 0
        self.pages_hit = 0

    def snapshot(self) -> "LedgerSnapshot":
        """Capture current counters so a later delta can be computed."""
        return LedgerSnapshot(
            total=self.total,
            seq_pages_read=self.seq_pages_read,
            rand_pages_read=self.rand_pages_read,
            pages_hit=self.pages_hit,
        )

    def rollback_to(self, snap: "LedgerSnapshot") -> None:
        """Restore counters to *snap* (statement retry / clean timeout).

        Per-function attribution accumulated since the snapshot is *not*
        unwound — ``by_function`` is a profiling aid, and profiling runs
        do not exercise the retry path.
        """
        self.total = snap.total
        self.seq_pages_read = snap.seq_pages_read
        self.rand_pages_read = snap.rand_pages_read
        self.pages_hit = snap.pages_hit

    def delta_since(self, snap: "LedgerSnapshot") -> "LedgerSnapshot":
        """Return counters accumulated since *snap* was taken."""
        return LedgerSnapshot(
            total=self.total - snap.total,
            seq_pages_read=self.seq_pages_read - snap.seq_pages_read,
            rand_pages_read=self.rand_pages_read - snap.rand_pages_read,
            pages_hit=self.pages_hit - snap.pages_hit,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ledger(total={self.total}, seq={self.seq_pages_read}, "
            f"rand={self.rand_pages_read}, hit={self.pages_hit})"
        )


class LedgerSnapshot:
    """Immutable view of ledger counters, used for before/after deltas."""

    __slots__ = ("total", "seq_pages_read", "rand_pages_read", "pages_hit")

    def __init__(
        self,
        total: int = 0,
        seq_pages_read: int = 0,
        rand_pages_read: int = 0,
        pages_hit: int = 0,
    ) -> None:
        self.total = total
        self.seq_pages_read = seq_pages_read
        self.rand_pages_read = rand_pages_read
        self.pages_hit = pages_hit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LedgerSnapshot(total={self.total}, seq={self.seq_pages_read}, "
            f"rand={self.rand_pages_read}, hit={self.pages_hit})"
        )
