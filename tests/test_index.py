"""Tests for hash and B-tree indexes, including a hypothesis model check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.storage.heapfile import TID
from repro.storage.index import (
    BTreeIndex,
    DuplicateKeyError,
    HashIndex,
    build_index,
)


class TestHashIndex:
    def test_insert_lookup(self):
        index = HashIndex("i", "r", ("k",))
        index.insert((1,), TID(0, 0))
        index.insert((1,), TID(0, 1))
        index.insert((2,), TID(0, 2))
        assert sorted(index.lookup((1,))) == [TID(0, 0), TID(0, 1)]
        assert index.lookup((3,)) == []
        assert len(index) == 3

    def test_unique_violation(self):
        index = HashIndex("i", "r", ("k",), unique=True)
        index.insert((1,), TID(0, 0))
        with pytest.raises(DuplicateKeyError):
            index.insert((1,), TID(0, 1))

    def test_delete(self):
        index = HashIndex("i", "r", ("k",))
        index.insert((1,), TID(0, 0))
        index.delete((1,), TID(0, 0))
        assert index.lookup((1,)) == []
        index.delete((1,), TID(0, 0))   # idempotent

    def test_composite_keys(self):
        index = HashIndex("i", "r", ("a", "b"))
        index.insert((1, "x"), TID(0, 0))
        assert index.lookup((1, "x")) == [TID(0, 0)]
        assert index.lookup((1, "y")) == []


class TestBTreeIndex:
    def test_point_lookup(self):
        index = BTreeIndex("i", "r", ("k",))
        for i in (5, 3, 9, 3):
            index.insert((i,), TID(0, i))
        assert len(index.lookup((3,))) == 2
        assert index.lookup((4,)) == []

    def test_range_lookup_ordered(self):
        index = BTreeIndex("i", "r", ("k",))
        for i in (5, 1, 9, 3, 7):
            index.insert((i,), TID(0, i))
        tids = index.range_lookup((3,), (7,))
        assert [t.slot for t in tids] == [3, 5, 7]

    def test_range_unbounded_high(self):
        index = BTreeIndex("i", "r", ("k",))
        for i in range(5):
            index.insert((i,), TID(0, i))
        assert [t.slot for t in index.range_lookup((3,), None)] == [3, 4]

    def test_prefix_range_on_composite(self):
        index = BTreeIndex("i", "r", ("a", "b"))
        index.insert((1, 10), TID(0, 0))
        index.insert((1, 20), TID(0, 1))
        index.insert((2, 5), TID(0, 2))
        tids = index.range_lookup((1,), (1,))
        assert [t.slot for t in tids] == [0, 1]

    def test_unique_violation(self):
        index = BTreeIndex("i", "r", ("k",), unique=True)
        index.insert((1,), TID(0, 0))
        with pytest.raises(DuplicateKeyError):
            index.insert((1,), TID(0, 1))

    def test_delete_specific_tid(self):
        index = BTreeIndex("i", "r", ("k",))
        index.insert((1,), TID(0, 0))
        index.insert((1,), TID(0, 1))
        index.delete((1,), TID(0, 0))
        assert index.lookup((1,)) == [TID(0, 1)]

    def test_min_key(self):
        index = BTreeIndex("i", "r", ("k",))
        assert index.min_key() is None
        index.insert((9,), TID(0, 0))
        index.insert((2,), TID(0, 1))
        assert index.min_key() == (2,)


class TestBuildIndex:
    def test_factory(self):
        assert build_index("hash", "i", "r", ["k"]).kind == "hash"
        assert build_index("btree", "i", "r", ["k"]).kind == "btree"

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            build_index("gin", "i", "r", ["k"])

    def test_empty_columns(self):
        with pytest.raises(ValueError):
            build_index("hash", "i", "r", [])


@settings(max_examples=80, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 20), st.integers(0, 1000)),
        max_size=60,
    ),
    st.tuples(st.integers(0, 20), st.integers(0, 20)),
)
def test_btree_matches_naive_model(entries, bounds):
    """B-tree range results match a brute-force filtered sort."""
    index = BTreeIndex("i", "r", ("k",))
    model = []
    for seq, (key, payload) in enumerate(entries):
        tid = TID(payload, seq)
        index.insert((key,), tid)
        model.append((key, tid))
    low, high = min(bounds), max(bounds)
    got = index.range_lookup((low,), (high,))
    expected = [tid for key, tid in sorted(model, key=lambda e: e[0])
                if low <= key <= high]
    assert sorted(got) == sorted(expected)
    # Order is by key (stable within equal keys by insertion).
    got_keys = [key for key, _ in index.range_entries((low,), (high,))]
    assert got_keys == sorted(got_keys)
