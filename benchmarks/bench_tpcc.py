"""E7 — Section VI-C: TPC-C throughput under three transaction mixes.

Paper (10 warehouses, 100 terminals, 1-hour runs):

* default mix (Payment 43%): 1760 -> 1898 tpm, +7.3%
* query-only scenario (Order-Status 27% / Stock-Level 28%): 3135 -> 3699,
  +18%
* balanced scenario: 1998 -> 2220, +11.1%

We replay identical deterministic schedules on both systems and measure
throughput on the simulated clock; absolute tpm differs (no terminals,
no think time — see EXPERIMENTS.md) but the ranking query-only >
balanced > default and the improvement magnitudes carry over.
"""

from __future__ import annotations

import pytest

from repro.bees.settings import BeeSettings
from repro.bench.reporting import emit, table
from repro.bench.tpcc_experiments import run_tpcc_comparison
from repro.workloads.tpcc.loader import TPCCConfig, build_tpcc_database
from repro.workloads.tpcc.runner import run_mix

from conftest import TPCC_TXNS, TPCC_WAREHOUSES

PAPER = {"default": 7.3, "query_only": 18.0, "balanced": 11.1}


@pytest.fixture(scope="module")
def tpcc_config():
    return TPCCConfig(
        warehouses=TPCC_WAREHOUSES, customers_per_district=100, items=800
    )


@pytest.fixture(scope="module")
def tpcc_report(tpcc_config):
    report = run_tpcc_comparison(tpcc_config, n_transactions=TPCC_TXNS)
    rows = []
    for mix, comparison in report.items():
        rows.append([
            mix,
            round(comparison.stock.tpm_total),
            round(comparison.bees.tpm_total),
            round(comparison.throughput_improvement, 1),
            PAPER[mix],
        ])
    emit("\n=== E7: TPC-C throughput (transactions / simulated minute) ===")
    emit(table(
        ["mix", "stock tpm", "bees tpm", "improvement %", "paper %"], rows
    ))
    return report


@pytest.fixture(scope="module")
def tpcc_pair(tpcc_config):
    return (
        build_tpcc_database(BeeSettings.stock(), tpcc_config),
        build_tpcc_database(BeeSettings.all_bees(), tpcc_config),
    )


def test_tpcc_default_mix_stock(benchmark, tpcc_pair, tpcc_config, tpcc_report):
    stock, _ = tpcc_pair
    benchmark(run_mix, stock, tpcc_config, "default", 50)


def test_tpcc_default_mix_bees(benchmark, tpcc_pair, tpcc_config, tpcc_report):
    _, bees = tpcc_pair
    benchmark(run_mix, bees, tpcc_config, "default", 50)


def test_tpcc_shape(benchmark, tpcc_report):
    """All mixes improve; the query-heavy mix gains at least as much as
    the default modification-heavy mix (the paper's ordering)."""
    benchmark(lambda: None)
    for mix, comparison in tpcc_report.items():
        assert comparison.throughput_improvement > 0, f"{mix} regressed"
    assert (
        tpcc_report["query_only"].throughput_improvement
        >= tpcc_report["default"].throughput_improvement - 0.5
    )
