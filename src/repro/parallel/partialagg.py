"""Vector-form partial aggregation for worker morsels.

The serial vector tier's ``agg`` kernel groups **and finalizes** inside
the kernel, which makes its output unmergeable across morsels — so the
first cut of this tier ran aggregate morsels through the pipeline-form
per-row loop, and promptly lost to the serial vector tier: four workers
each ~25x slower per row is a net slowdown.

:func:`generate_partial_agg` closes that gap.  It reuses the vector
tier's kernel emitter — identical mask evaluation, compaction, and
insertion-ordered bucketing over the morsel chunk — but its epilogue
bulk-fills one :class:`~repro.engine.aggregates.AggState` per aggregate
per bucket (``count``/``total``/``extreme``/``seen``) instead of
producing finished rows.  The coordinator folds those partials with
``AggState.merge`` in morsel order and the :class:`ParallelAgg` driver
finalizes, so workers keep columnar speed while the result stays
combinable.  The folds inside each bucket are the same sequential
Python reductions the finalizing kernel runs (``sum``/``min``/``max``
over selected positions in row order); only the cross-morsel re-
association of float sums can differ from serial, in the last ulps.

The charge formula is the finalizing agg kernel's, verbatim:
``_C0 + _C1 * n + _C2 * _m`` with the same ``VEC_*`` constants — the
per-row work is identical and state construction replaces row emission
in the per-group epilogue.
"""

from __future__ import annotations

from repro.cost import constants as C
from repro.bees.routines.base import BeeRoutine, compile_routine
from repro.bees.vector.codegen import (
    PipelineSpec,
    _div,
    _expr_charge,
    _expr_nodes,
    _KernelEmitter,
    _materialize,
    _obj,
    _vectorizable,
    np,
)
from repro.engine import expr as E


def generate_partial_agg(
    spec: PipelineSpec, ledger, fn_name: str
) -> BeeRoutine:
    """Compile *spec* (an ``agg`` sink) into a partial-agg kernel.

    The generated ``fn(cols, nulls, n) -> list[(group_key, [AggState])]``
    runs over one morsel chunk; pairs arrive in first-seen group order.
    A grand aggregate (no GROUP BY) always yields its single ``()``
    bucket, even over zero selected rows, matching ``HashAgg``.
    """
    if spec.sink != "agg":
        raise ValueError("partial-agg kernels require an agg-sink spec")
    layout = spec.layout
    schema = layout.schema
    exprs = list(spec.group_exprs) + [
        s.arg for s in spec.aggs if s.arg is not None
    ]
    if spec.qual is not None:
        exprs.append(spec.qual)
    for expr in exprs:
        if not E.is_bound(expr):
            raise ValueError(
                "vector specialization requires bound expressions"
            )

    namespace = {
        "_np": np,
        "_charge": ledger.charge_fn,
        "_obj": _obj,
        "_materialize": _materialize,
        "_div": _div,
    }
    em = _KernelEmitter(namespace, schema)
    header = [
        f"def {fn_name}(cols, nulls, n):",
        f'    """Partial-agg kernel over relation '
        f'{spec.relation!r} (generated)."""',
    ]

    # -- selection: same one-mask/one-compaction shape as generate_vector --
    qual_cost = 0
    if spec.qual is None:
        mask = "True"
    elif _vectorizable(spec.qual, schema):
        mask, _u = em.emit(spec.qual)
        qual_cost = C.VEC_KERNEL_PER_VALUE * _expr_nodes(spec.qual)
    else:
        mask = em.object_mask(spec.qual)
        qual_cost = spec.qual.generic_cost
    if mask == "True":
        em.lines.append("    _m = n")
    elif mask == "False":
        nosel = np.array([], dtype=np.intp)
        nosel.setflags(write=False)  # captured state must be frozen
        namespace["_NOSEL"] = nosel
        em.lines.append("    _idx = _NOSEL")
        em.lines.append("    _m = 0")
        em.gather = "[_idx]"
    else:
        em.lines.append(f"    _idx = _np.nonzero({mask})[0]")
        em.lines.append("    _m = len(_idx)")
        em.gather = "[_idx]"

    # -- bucketing (identical to the finalizing kernel) --------------------
    group_lists = [em.output_list(expr) for expr in spec.group_exprs]
    arg_lists = {}
    for i, agg in enumerate(spec.aggs):
        if agg.arg is not None:
            arg_lists[i] = em.output_list(agg.arg)
    if spec.group_exprs:
        key = ", ".join(f"{g}[_i]" for g in group_lists)
        key_tuple = f"({key},)" if len(group_lists) == 1 else f"({key})"
        em.lines.append("    _buckets = {}")
        em.lines.append("    for _i in range(_m):")
        em.lines.append(f"        _k = {key_tuple}")
        em.lines.append("        _b = _buckets.get(_k)")
        em.lines.append("        if _b is None:")
        em.lines.append("            _buckets[_k] = _b = []")
        em.lines.append("        _b.append(_i)")
    else:
        em.lines.append("    _buckets = {(): list(range(_m))}")

    # -- epilogue: bulk-fill one mergeable state per agg per bucket --------
    em.lines.append("    out = []")
    em.lines.append("    for _k, _ix in _buckets.items():")
    em.lines.append("        _states = []")
    for i, agg in enumerate(spec.aggs):
        mk = f"_mk{i}"
        namespace[mk] = agg.make_state
        em.lines.append(f"        _s = {mk}()")
        if agg.arg is None:   # count(*): every bucketed row counts
            em.lines.append("        _s.count = len(_ix)")
            em.lines.append("        _states.append(_s)")
            continue
        values = arg_lists[i]
        if agg.distinct:
            em.lines.append(
                f"        _s.seen = {{v for v in "
                f"({values}[_i] for _i in _ix) if v is not None}}"
            )
            em.lines.append("        _states.append(_s)")
            continue
        # Sequential Python folds over the selected positions, in row
        # order: the same reductions the finalizing kernel runs.
        em.lines.append(
            f"        _vals = [v for v in "
            f"({values}[_i] for _i in _ix) if v is not None]"
        )
        em.lines.append("        _s.count = len(_vals)")
        if agg.func in ("sum", "avg"):
            em.lines.append("        _s.total = sum(_vals)")
        elif agg.func == "min":
            em.lines.append(
                "        _s.extreme = min(_vals) if _vals else None"
            )
        elif agg.func == "max":
            em.lines.append(
                "        _s.extreme = max(_vals) if _vals else None"
            )
        em.lines.append("        _states.append(_s)")
    em.lines.append("        out.append((_k, _states))")

    c1 = C.VEC_SELECT_PER_ROW + qual_cost
    costs = {
        "_C0": C.VEC_KERNEL_DISPATCH,
        "_C1": c1,
        "_C2": (
            C.VEC_GROUP_PER_ROW
            + C.VEC_EMIT_PER_COLUMN
            * (len(spec.group_exprs) + len(arg_lists))
            + sum(_expr_charge(expr, schema) for expr in spec.group_exprs)
            + sum(
                _expr_charge(agg.arg, schema)
                for agg in spec.aggs
                if agg.arg is not None
            )
        ),
    }
    namespace.update(costs)
    em.lines.append(f"    _charge({fn_name!r}, _C0 + _C1 * n + _C2 * _m)")
    em.lines.append("    return out")
    source = "\n".join(header + em.lines) + "\n"
    fn = compile_routine(source, fn_name, namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=c1, source=source, namespace=namespace,
    )


__all__ = ["generate_partial_agg"]
