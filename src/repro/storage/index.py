"""Secondary indexes: hash (equality) and B-tree-style (ordered) indexes.

TPC-C transactions are point/range lookups; without indexes the Python
executor would need full scans per transaction.  Both index kinds map key
tuples to heap TIDs and are maintained by the database on insert, update,
and delete.  Ordered lookups use ``bisect`` over a sorted key list — the
asymptotics of a B+-tree without the node machinery (charged like one).
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import defaultdict
from typing import Iterable, Iterator

from repro.storage.heapfile import TID


class DuplicateKeyError(Exception):
    """Raised on inserting a duplicate key into a unique index."""


class HashIndex:
    """Equality-only index: key tuple -> list of TIDs."""

    kind = "hash"

    def __init__(
        self, name: str, relation: str, key_columns: tuple[str, ...],
        unique: bool = False,
    ) -> None:
        self.name = name
        self.relation = relation
        self.key_columns = key_columns
        self.unique = unique
        self._buckets: dict[tuple, list[TID]] = defaultdict(list)

    def insert(self, key: tuple, tid: TID) -> None:
        """Add an entry; enforces uniqueness when configured."""
        bucket = self._buckets[key]
        if self.unique and bucket:
            raise DuplicateKeyError(
                f"duplicate key {key!r} in unique index {self.name!r}"
            )
        bucket.append(tid)

    def delete(self, key: tuple, tid: TID) -> None:
        """Remove one entry (missing entries are ignored)."""
        bucket = self._buckets.get(key)
        if bucket and tid in bucket:
            bucket.remove(tid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: tuple) -> list[TID]:
        """All TIDs for *key* (empty list when absent)."""
        return list(self._buckets.get(key, ()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class BTreeIndex:
    """Ordered index supporting point and range lookups."""

    kind = "btree"

    def __init__(
        self, name: str, relation: str, key_columns: tuple[str, ...],
        unique: bool = False,
    ) -> None:
        self.name = name
        self.relation = relation
        self.key_columns = key_columns
        self.unique = unique
        self._keys: list[tuple] = []          # sorted (key..., seq) entries
        self._tids: dict[tuple, TID] = {}
        self._seq = 0

    def insert(self, key: tuple, tid: TID) -> None:
        """Add an entry; enforces uniqueness when configured."""
        if self.unique:
            lo = bisect_left(self._keys, (key,) if False else key + (-1,))
            if lo < len(self._keys) and self._keys[lo][:-1] == key:
                raise DuplicateKeyError(
                    f"duplicate key {key!r} in unique index {self.name!r}"
                )
        entry = key + (self._seq,)
        self._seq += 1
        insort(self._keys, entry)
        self._tids[entry] = tid

    def delete(self, key: tuple, tid: TID) -> None:
        """Remove the entry for ``(key, tid)`` if present."""
        lo = bisect_left(self._keys, key + (-1,))
        while lo < len(self._keys) and self._keys[lo][:-1] == key:
            entry = self._keys[lo]
            if self._tids.get(entry) == tid:
                del self._keys[lo]
                del self._tids[entry]
                return
            lo += 1

    def lookup(self, key: tuple) -> list[TID]:
        """All TIDs whose full key equals *key*."""
        return [tid for _entry, tid in self.range_entries(key, key)]

    def range_entries(
        self, low: tuple | None, high: tuple | None
    ) -> Iterator[tuple[tuple, TID]]:
        """Yield ``(key, tid)`` for low <= key <= high, in key order.

        Either bound may be None (unbounded).  Bounds compare against the
        key prefix of matching arity, so a 1-tuple bound works against a
        2-column index.
        """
        keys = self._keys
        start = 0 if low is None else bisect_left(keys, low + (-1,) * 0)
        if low is not None:
            start = bisect_left(keys, low)
        for i in range(start, len(keys)):
            entry = keys[i]
            key = entry[:-1]
            if high is not None and key[: len(high)] > high:
                break
            if low is not None and key[: len(low)] < low:
                continue
            yield key, self._tids[entry]

    def range_lookup(
        self, low: tuple | None, high: tuple | None
    ) -> list[TID]:
        """TIDs for keys within [low, high] (inclusive, prefix-compared)."""
        return [tid for _key, tid in self.range_entries(low, high)]

    def min_key(self) -> tuple | None:
        """Smallest key, or None when the index is empty."""
        return self._keys[0][:-1] if self._keys else None

    def __len__(self) -> int:
        return len(self._keys)


def build_index(
    kind: str,
    name: str,
    relation: str,
    key_columns: Iterable[str],
    unique: bool = False,
) -> HashIndex | BTreeIndex:
    """Factory used by :meth:`repro.db.Database.create_index`."""
    key_tuple = tuple(key_columns)
    if not key_tuple:
        raise ValueError("an index needs at least one key column")
    if kind == "hash":
        return HashIndex(name, relation, key_tuple, unique=unique)
    if kind == "btree":
        return BTreeIndex(name, relation, key_tuple, unique=unique)
    raise ValueError(f"unknown index kind {kind!r}")
