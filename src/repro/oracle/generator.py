"""Seed-driven random generation of schemas, data, and SQL statements.

Everything the differential oracle executes comes from here, derived from a
single integer seed: CREATE TABLE statements (including the paper's
ANNOTATE clause, so tuple bees get exercised), INSERT/UPDATE/DELETE
traffic, and SELECT queries spanning the ``repro.sql`` grammar — joins,
aggregates, GROUP BY/HAVING, DISTINCT, ORDER BY/LIMIT, CASE, LIKE,
BETWEEN, IN, IS NULL.  The generator is fully deterministic: one seed, one
statement stream.  That is what makes divergence repros replayable and the
golden corpus baseline (``results/oracle/``) meaningful.

Design notes that keep the stream *comparable* across engines:

* Column names are globally unique (``t3_c1``), so joins never produce
  ambiguous references, and every identifier is checked against the
  lexer's reserved words.
* Float literals are rendered without exponents (the lexer has no
  ``1e6`` form) and floats are generated pre-rounded so ``repr`` stays
  plain.
* Generated arithmetic never divides (no ZeroDivisionError asymmetry)
  and int arithmetic sticks to literal assignment or same-kind column
  copies, so overflow errors — when they happen — happen identically in
  both engines (same ``struct.error``).
* CHAR(n) value pools always include a trailing-space value and the
  generator occasionally emits a deliberately over-width CHAR insert:
  both are regression probes for the padding/width bugs this oracle
  originally found.
"""

from __future__ import annotations

import random
import string as _string
from dataclasses import dataclass, field

from repro.sql import reserved_words

_RESERVED = reserved_words()

# Statement-kind mix (cumulative thresholds over random()).
_MAX_TABLES = 4


@dataclass
class GenColumn:
    """One generated column: its SQL declaration plus value-domain info."""

    name: str
    kind: str  # 'int' | 'float' | 'bool' | 'date' | 'string'
    type_sql: str
    nullable: bool
    width: int = 0  # CHAR/VARCHAR declared width; 0 for TEXT / non-string
    char_fixed: bool = False  # True for CHAR(n) (blank-padded semantics)
    annotated: bool = False
    lo: int = 0
    hi: int = 0
    pool: list = field(default_factory=list)


@dataclass
class GenTable:
    """A generated table the oracle knows the live schema of."""

    name: str
    columns: list[GenColumn]
    approx_rows: int = 0

    def cols(self, kind: str) -> list[GenColumn]:
        return [c for c in self.columns if c.kind == kind]


@dataclass
class TLPCase:
    """Metamorphic eligibility record for a simple filtered SELECT."""

    items_sql: str
    table: str
    predicate_sql: str


@dataclass
class ColumnarCase:
    """Marks a ``SELECT SUM(expr) FROM t WHERE p`` the columnar engine can
    cross-check (table is all-NOT-NULL scalar columns)."""

    table: str


@dataclass
class GenStatement:
    """One generated statement plus the metadata the runner checks with."""

    sql: str
    kind: str  # 'create' | 'insert' | 'select' | 'update' | 'delete' | 'drop'
    table: str | None = None
    ordered: bool = False  # SELECT carries ORDER BY: compare as lists
    tlp: TLPCase | None = None
    columnar: ColumnarCase | None = None


def _quote(text: str) -> str:
    return "'" + text.replace("'", "''") + "'"


class StatementGenerator:
    """Deterministic random SQL generator over an evolving schema."""

    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.tables: dict[str, GenTable] = {}
        self._table_counter = 0

    # -- bootstrap -------------------------------------------------------------

    def bootstrap(self) -> list[GenStatement]:
        """Initial CREATEs plus enough INSERTs that queries see data."""
        statements = [self._create_table() for _ in range(2)]
        for table in list(self.tables.values()):
            for _ in range(3):
                statements.append(self._insert(table))
        return statements

    def next_statement(self) -> GenStatement:
        if not self.tables:
            return self._create_table()
        r = self.rng.random()
        if r < 0.03 and len(self.tables) < _MAX_TABLES:
            return self._create_table()
        if r < 0.05 and len(self.tables) > 1:
            return self._drop_table()
        if r < 0.35:
            return self._insert(self.rng.choice(list(self.tables.values())))
        if r < 0.45:
            return self._update()
        if r < 0.52:
            return self._delete()
        if r < 0.62:
            probe = self._columnar_probe()
            if probe is not None:
                return probe
            return self._select()
        return self._select()

    # -- schema ----------------------------------------------------------------

    def _ident(self, name: str) -> str:
        assert name.upper() not in _RESERVED, name
        return name

    def _make_column(self, name: str) -> GenColumn:
        rng = self.rng
        kind = rng.choices(
            ["int", "float", "string", "date", "bool"],
            weights=[0.32, 0.18, 0.28, 0.12, 0.10],
        )[0]
        nullable = rng.random() < 0.35
        col = GenColumn(
            name=self._ident(name),
            kind=kind,
            type_sql="",
            nullable=nullable,
        )
        if kind == "int":
            big = rng.random() < 0.25
            col.type_sql = "BIGINT" if big else "INT"
            col.lo, col.hi = (
                (-(2**63), 2**63 - 1) if big else (-(2**31), 2**31 - 1)
            )
            col.pool = [0, 1, -1, 2, 7, 100, col.hi, col.lo, col.hi - 13]
            col.pool += [rng.randint(-10_000, 10_000) for _ in range(4)]
        elif kind == "float":
            col.type_sql = "FLOAT"
            col.pool = [0.0, 1.0, -1.0, 2.5, 99.99, 1234.125, -0.125]
            col.pool += [
                round(rng.uniform(-1_000_000, 1_000_000), 3) for _ in range(4)
            ]
        elif kind == "bool":
            col.type_sql = "BOOLEAN"
        elif kind == "date":
            col.type_sql = "DATE"
            col.pool = ["1970-01-01", "2000-02-29"]
            col.pool += [
                f"{rng.randint(1992, 2020):04d}-"
                f"{rng.randint(1, 12):02d}-{rng.randint(1, 28):02d}"
                for _ in range(4)
            ]
        else:  # string
            flavor = rng.choices(
                ["char", "varchar", "text"], weights=[0.45, 0.35, 0.20]
            )[0]
            if flavor == "char":
                col.width = rng.randint(2, 12)
                col.char_fixed = True
                col.type_sql = f"CHAR({col.width})"
            elif flavor == "varchar":
                col.width = rng.randint(3, 16)
                col.type_sql = f"VARCHAR({col.width})"
            else:
                col.width = 20
                col.type_sql = "TEXT"
            col.pool = self._string_pool(col)
        return col

    def _string_pool(self, col: GenColumn) -> list[str]:
        rng = self.rng
        limit = col.width if col.width else 20
        pool = []
        for _ in range(rng.randint(4, 8)):
            length = rng.randint(0, min(limit, 9))
            pool.append(
                "".join(
                    rng.choice(_string.ascii_lowercase) for _ in range(length)
                )
            )
        if col.char_fixed and col.width >= 3:
            # Trailing-space probe (the bee_key canonicalization bug class).
            pool.append(rng.choice(_string.ascii_lowercase) + "  "[: col.width - 1])
        if rng.random() < 0.3:
            pool.append("it''s"[:limit] if limit >= 5 else "a'b"[:limit])
        return pool

    def _create_table(self) -> GenStatement:
        rng = self.rng
        name = self._ident(f"t{self._table_counter}")
        self._table_counter += 1
        columns = [
            self._make_column(f"{name}_c{i}")
            for i in range(rng.randint(2, 6))
        ]
        if not any(c.kind == "int" for c in columns):
            # Joins and columnar probes want at least one int column.
            replacement = self._make_column(columns[0].name + "k")
            while replacement.kind != "int":
                replacement = self._make_column(columns[0].name + "k")
            columns.append(replacement)
        # Annotate up to two low-cardinality NOT NULL columns (tuple bees).
        candidates = [
            c
            for c in columns
            if not c.nullable and c.pool and c.kind in ("int", "string", "date")
        ]
        annotated = []
        if candidates and rng.random() < 0.55:
            annotated = rng.sample(
                candidates, k=min(len(candidates), rng.randint(1, 2))
            )
            for col in annotated:
                col.annotated = True
                # Low cardinality keeps the bee data sections small.
                col.pool = col.pool[: rng.randint(2, 4)]
        defs = [
            f"{c.name} {c.type_sql}{'' if c.nullable else ' NOT NULL'}"
            for c in columns
        ]
        if annotated:
            defs.append(f"ANNOTATE ({', '.join(c.name for c in annotated)})")
        sql = f"CREATE TABLE {name} ({', '.join(defs)})"
        self.tables[name] = GenTable(name=name, columns=columns)
        return GenStatement(sql=sql, kind="create", table=name)

    def _drop_table(self) -> GenStatement:
        name = self.rng.choice(sorted(self.tables))
        del self.tables[name]
        return GenStatement(sql=f"DROP TABLE {name}", kind="drop", table=name)

    # -- values and literals ---------------------------------------------------

    def _value_for(self, col: GenColumn):
        rng = self.rng
        if col.nullable and rng.random() < 0.15:
            return None
        if col.kind == "int":
            if col.pool and rng.random() < 0.7:
                return rng.choice(col.pool)
            return rng.randint(-100_000, 100_000)
        if col.kind == "float":
            if rng.random() < 0.6:
                return rng.choice(col.pool)
            return round(rng.uniform(-1_000_000, 1_000_000), 3)
        if col.kind == "bool":
            return rng.random() < 0.5
        if col.kind == "date":
            return rng.choice(col.pool)
        if col.pool and rng.random() < 0.8:
            return rng.choice(col.pool)
        limit = col.width if col.width else 12
        length = rng.randint(0, min(limit, 9))
        return "".join(
            rng.choice(_string.ascii_lowercase) for _ in range(length)
        )

    def _literal(self, col: GenColumn, value) -> str:
        if value is None:
            return "NULL"
        if col.kind == "int":
            return str(value)
        if col.kind == "float":
            text = repr(float(value))
            if "e" in text or "E" in text:  # lexer has no exponent form
                text = f"{float(value):.6f}"
            return text
        if col.kind == "bool":
            return "TRUE" if value else "FALSE"
        if col.kind == "date":
            return f"DATE {_quote(value)}"
        return _quote(value)

    # -- DML -------------------------------------------------------------------

    def _insert(self, table: GenTable) -> GenStatement:
        rng = self.rng
        overwidth = (
            rng.random() < 0.02
            and any(c.char_fixed and c.width for c in table.columns)
        )
        n_rows = 1 if overwidth else rng.randint(1, 5)
        rows = []
        for _ in range(n_rows):
            values = [self._value_for(c) for c in table.columns]
            rows.append(
                "(" + ", ".join(
                    self._literal(c, v)
                    for c, v in zip(table.columns, values)
                ) + ")"
            )
        if overwidth:
            # Over-width CHAR probe: must raise the same error on every
            # engine (it once silently corrupted the specialized path).
            target = rng.choice(
                [c for c in table.columns if c.char_fixed and c.width]
            )
            values = [self._value_for(c) for c in table.columns]
            values[table.columns.index(target)] = "x" * (target.width + 3)
            rows = [
                "(" + ", ".join(
                    self._literal(c, v)
                    for c, v in zip(table.columns, values)
                ) + ")"
            ]
        else:
            table.approx_rows += n_rows
        sql = f"INSERT INTO {table.name} VALUES {', '.join(rows)}"
        return GenStatement(sql=sql, kind="insert", table=table.name)

    def _assignment(self, table: GenTable, col: GenColumn) -> str:
        rng = self.rng
        same_kind = [c for c in table.columns if c.kind == col.kind and c is not col]
        r = rng.random()
        if col.annotated or r < 0.55 or not same_kind:
            return f"{col.name} = {self._literal(col, self._value_for(col))}"
        other = rng.choice(same_kind)
        if col.kind == "float" and r < 0.8:
            lit = self._literal(col, round(rng.uniform(-10, 10), 2))
            return f"{col.name} = {other.name} + {lit}"
        return f"{col.name} = {other.name}"

    def _update(self) -> GenStatement:
        rng = self.rng
        table = rng.choice(list(self.tables.values()))
        targets = rng.sample(
            table.columns, k=min(len(table.columns), rng.randint(1, 2))
        )
        sets = ", ".join(self._assignment(table, c) for c in targets)
        sql = f"UPDATE {table.name} SET {sets}"
        if rng.random() < 0.8:
            sql += f" WHERE {self._predicate(table.columns, depth=1)}"
        return GenStatement(sql=sql, kind="update", table=table.name)

    def _delete(self) -> GenStatement:
        rng = self.rng
        table = rng.choice(list(self.tables.values()))
        sql = f"DELETE FROM {table.name}"
        if rng.random() < 0.85:
            sql += f" WHERE {self._predicate(table.columns, depth=1)}"
        else:
            table.approx_rows = 0
        return GenStatement(sql=sql, kind="delete", table=table.name)

    # -- predicates ------------------------------------------------------------

    def _predicate(self, columns: list[GenColumn], depth: int) -> str:
        rng = self.rng
        if depth > 0 and rng.random() < 0.4:
            r = rng.random()
            if r < 0.25:
                return f"NOT ({self._predicate(columns, depth - 1)})"
            op = "AND" if r < 0.65 else "OR"
            left = self._predicate(columns, depth - 1)
            right = self._predicate(columns, depth - 1)
            return f"({left}) {op} ({right})"
        return self._leaf_predicate(columns)

    def _leaf_predicate(self, columns: list[GenColumn]) -> str:
        rng = self.rng
        col = rng.choice(columns)
        if col.nullable and rng.random() < 0.18:
            negation = "NOT " if rng.random() < 0.5 else ""
            return f"{col.name} IS {negation}NULL"
        if col.kind == "bool":
            return rng.choice(
                [col.name, f"{col.name} = TRUE", f"NOT {col.name}"]
            )
        cmp_op = rng.choice(["=", "<>", "<", "<=", ">", ">="])
        if col.kind == "string":
            r = rng.random()
            sample = rng.choice(col.pool) if col.pool else "a"
            if r < 0.25 and sample:
                return f"{col.name} LIKE {_quote(self._like_pattern(sample))}"
            if r < 0.45 and col.pool:
                picks = rng.sample(col.pool, k=min(len(col.pool), rng.randint(2, 4)))
                items = ", ".join(_quote(p) for p in picks)
                return f"{col.name} IN ({items})"
            return f"{col.name} {cmp_op} {_quote(sample)}"
        # numeric / date
        if col.kind == "date":
            lo, hi = sorted(rng.sample(col.pool, k=2)) if len(col.pool) >= 2 else (
                col.pool[0], col.pool[0]
            )
            r = rng.random()
            if r < 0.3:
                return (
                    f"{col.name} BETWEEN DATE {_quote(lo)} AND DATE {_quote(hi)}"
                )
            return f"{col.name} {cmp_op} DATE {_quote(rng.choice(col.pool))}"
        r = rng.random()
        peers = [
            c for c in columns
            if c is not col and c.kind in ("int", "float")
        ]
        if r < 0.12 and col.kind in ("int", "float") and peers:
            return f"{col.name} {cmp_op} {rng.choice(peers).name}"
        if r < 0.3:
            a = self._value_for_nonnull(col)
            b = self._value_for_nonnull(col)
            lo, hi = (a, b) if rng.random() < 0.15 else sorted((a, b))
            return (
                f"{col.name} BETWEEN {self._literal(col, lo)}"
                f" AND {self._literal(col, hi)}"
            )
        if r < 0.42 and col.pool:
            picks = rng.sample(col.pool, k=min(len(col.pool), rng.randint(2, 4)))
            items = ", ".join(self._literal(col, p) for p in picks)
            return f"{col.name} IN ({items})"
        return f"{col.name} {cmp_op} {self._literal(col, self._value_for_nonnull(col))}"

    def _value_for_nonnull(self, col: GenColumn):
        value = self._value_for(col)
        while value is None:
            value = self._value_for(col)
        return value

    def _like_pattern(self, sample: str) -> str:
        rng = self.rng
        if not sample:
            return "%"
        k = rng.randint(1, len(sample))
        r = rng.random()
        if r < 0.4:
            return sample[:k] + "%"
        if r < 0.7:
            return "%" + sample[-k:]
        return sample[: k // 2] + "%" + sample[k // 2 + 1 :]

    # -- SELECT ----------------------------------------------------------------

    def _select(self) -> GenStatement:
        rng = self.rng
        tables = list(self.tables.values())
        table = rng.choice(tables)
        join_table = None
        if len(tables) >= 2 and rng.random() < 0.22:
            t1, t2 = rng.sample(tables, k=2)
            if t1.cols("int") and t2.cols("int"):
                table, join_table = t1, t2
        columns = list(table.columns)
        from_sql = f"FROM {table.name}"
        if join_table is not None:
            left = rng.choice(table.cols("int"))
            right = rng.choice(join_table.cols("int"))
            from_sql = (
                f"FROM {table.name} JOIN {join_table.name}"
                f" ON {left.name} = {right.name}"
            )
            columns += join_table.columns
        where_sql = (
            self._predicate(columns, depth=2)
            if rng.random() < 0.78
            else None
        )
        if rng.random() < 0.25:
            return self._agg_select(table, from_sql, columns, where_sql)
        items_sql, plain = self._select_items(columns)
        distinct = rng.random() < 0.12
        head = "SELECT DISTINCT" if distinct else "SELECT"
        sql = f"{head} {items_sql} {from_sql}"
        if where_sql:
            sql += f" WHERE {where_sql}"
        ordered = False
        if rng.random() < 0.3:
            keys = rng.sample(columns, k=min(len(columns), rng.randint(1, 2)))
            parts = [
                f"{c.name}{' DESC' if rng.random() < 0.4 else ''}" for c in keys
            ]
            sql += f" ORDER BY {', '.join(parts)}"
            ordered = True
            if rng.random() < 0.5:
                sql += f" LIMIT {rng.randint(0, 10)}"
        tlp = None
        if (
            join_table is None
            and where_sql
            and not distinct
            and not ordered
            and plain
        ):
            tlp = TLPCase(
                items_sql=items_sql,
                table=table.name,
                predicate_sql=where_sql,
            )
        return GenStatement(
            sql=sql,
            kind="select",
            table=table.name,
            ordered=ordered,
            tlp=tlp,
        )

    def _select_items(self, columns: list[GenColumn]) -> tuple[str, bool]:
        """Build a target list; returns (sql, all_plain_columns)."""
        rng = self.rng
        if rng.random() < 0.35:
            return "*", True
        items = []
        plain = True
        for i in range(rng.randint(1, 3)):
            col = rng.choice(columns)
            r = rng.random()
            if r < 0.7:
                items.append(col.name)
            elif r < 0.85 and col.kind in ("int", "float"):
                lit = self._literal(col, rng.randint(1, 9))
                op = rng.choice(["+", "-", "*"])
                items.append(f"{col.name} {op} {lit} AS x{i}")
                plain = False
            else:
                leaf = self._leaf_predicate(columns)
                items.append(f"CASE WHEN {leaf} THEN 1 ELSE 0 END AS x{i}")
                plain = False
        return ", ".join(items), plain

    def _agg_select(
        self,
        table: GenTable,
        from_sql: str,
        columns: list[GenColumn],
        where_sql: str | None,
    ) -> GenStatement:
        rng = self.rng
        numeric = [c for c in columns if c.kind in ("int", "float")]
        group_col = rng.choice(columns) if rng.random() < 0.5 else None
        items = []
        if group_col is not None:
            items.append(group_col.name)
        for _ in range(rng.randint(1, 2)):
            r = rng.random()
            if r < 0.35 or not numeric:
                items.append("COUNT(*)")
            else:
                func = rng.choice(["SUM", "AVG", "MIN", "MAX", "COUNT"])
                arg = rng.choice(numeric).name
                if rng.random() < 0.15 and func in ("SUM", "AVG", "COUNT"):
                    arg = f"DISTINCT {arg}"
                items.append(f"{func}({arg})")
        sql = f"SELECT {', '.join(items)} {from_sql}"
        if where_sql:
            sql += f" WHERE {where_sql}"
        if group_col is not None:
            sql += f" GROUP BY {group_col.name}"
            if rng.random() < 0.25:
                sql += f" HAVING COUNT(*) >= {rng.randint(1, 3)}"
        return GenStatement(sql=sql, kind="select", table=table.name)

    # -- columnar probe --------------------------------------------------------

    def _columnar_eligible(self, table: GenTable) -> bool:
        scalars = [
            c for c in table.columns if c.kind in ("int", "float", "bool", "date")
        ]
        return (
            any(c.kind in ("int", "float") for c in scalars)
            and all(not c.nullable for c in scalars)
        )

    def _columnar_probe(self) -> GenStatement | None:
        rng = self.rng
        eligible = [
            t for t in self.tables.values() if self._columnar_eligible(t)
        ]
        if not eligible:
            return None
        table = rng.choice(eligible)
        target = rng.choice(
            [c for c in table.columns if c.kind in ("int", "float")]
        )
        r = rng.random()
        if r < 0.6:
            expr_sql = target.name
        elif r < 0.8:
            expr_sql = f"{target.name} * 2"
        else:
            expr_sql = f"{target.name} + {self._literal(target, rng.randint(1, 5))}"
        # The fused columnar kernel is generated with assume_not_null (its
        # documented contract), so the predicate may only touch NOT NULL
        # columns; nullable ones still ride along in the decoded chunks.
        pred_columns = [c for c in table.columns if not c.nullable]
        predicate = self._predicate(pred_columns, depth=1)
        sql = f"SELECT SUM({expr_sql}) FROM {table.name} WHERE {predicate}"
        return GenStatement(
            sql=sql,
            kind="select",
            table=table.name,
            columnar=ColumnarCase(table=table.name),
        )
