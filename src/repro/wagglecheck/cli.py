"""Wagglecheck CLI: sweep the corpus, run the self-test, write the report.

Usage::

    python -m repro.wagglecheck [--seed N] [--statements N]
                                [--out DIR] [--check] [--no-selftest]

``--check`` exits non-zero on any finding or missed injection — the CI
gate.  The committed baseline lives at ``results/wagglecheck/report.json``.
"""

from __future__ import annotations

import argparse
from time import perf_counter

from repro.analysis import add_standard_args, exit_code, write_report
from repro.wagglecheck import rewrite, sections, typeflow
from repro.wagglecheck.corpus import collect
from repro.wagglecheck.report import WaggleReport
from repro.wagglecheck.selftest import run_selftest

DEFAULT_STATEMENTS = 200


def run_wagglecheck(
    seed: int, statements: int, selftest: bool = True
) -> WaggleReport:
    """One full analysis run over the TPC-H + TPC-C + oracle corpus."""
    report = WaggleReport(seed=seed)
    start = perf_counter()

    def on_plan(subject: str, plan, db) -> None:
        findings, nodes = typeflow.check_plan(plan, db, subject)
        report.findings.extend(findings)
        report.plans_checked += 1
        report.nodes_checked += nodes
        findings, rewrites = rewrite.check_fusion(plan, db, subject)
        report.findings.extend(findings)
        report.rewrites_checked += rewrites

    corpus = collect(seed, statements, on_plan)
    report.statements = corpus.statements

    for subject, spec, anchor, db in corpus.cached:
        findings, rewrites = rewrite.check_cached_spec(
            spec, anchor, db, subject
        )
        report.findings.extend(findings)
        report.rewrites_checked += rewrites

    for label, db in corpus.databases:
        for name in sorted(db.table_names()):
            report.findings.extend(
                typeflow.check_relation(db.relation(name), f"{label}/{name}")
            )
            report.relations_checked += 1
        section_findings, checked = sections.check_sections(db)
        for finding in section_findings:
            finding.subject = f"{label}/{finding.subject}"
        report.findings.extend(section_findings)
        report.sections_checked += checked

    if selftest:
        report.selftest = run_selftest()
    report.elapsed = perf_counter() - start
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wagglecheck",
        description="Plan-level type flow and rewrite-soundness analysis.",
    )
    add_standard_args(
        parser,
        out_default="results/wagglecheck",
        statements_default=DEFAULT_STATEMENTS,
    )
    args = parser.parse_args(argv)
    report = run_wagglecheck(
        args.seed, args.statements, selftest=not args.no_selftest
    )
    print(report.summary())
    out_path = write_report(report.to_dict(), args.out)
    print(f"report: {out_path}")
    return exit_code(report.ok, gate=args.check)


if __name__ == "__main__":
    raise SystemExit(main())
