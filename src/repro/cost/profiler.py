"""Callgrind-style per-function instruction profiles.

The paper uses callgrind to attribute executed instructions to functions
(e.g. ``slot_deform_tuple`` vs the GCL bee, ``heap_fill_tuple`` vs SCL).
Enabling :class:`FunctionProfile` turns on per-function attribution in a
ledger for the duration of a ``with`` block and yields a sorted report.
"""

from __future__ import annotations

from types import TracebackType

from repro.cost.ledger import Ledger


class FunctionProfile:
    """Context manager that records a per-function instruction profile.

    Example::

        with FunctionProfile(db.ledger) as prof:
            db.execute(plan)
        print(profile_report(prof.counts, prof.total))
    """

    def __init__(self, ledger: Ledger) -> None:
        self._ledger = ledger
        self._was_profiling = False
        self._start_counts: dict[str, int] = {}
        self._start_total = 0
        self.counts: dict[str, int] = {}
        self.total = 0

    def __enter__(self) -> "FunctionProfile":
        self._was_profiling = self._ledger.profiling
        self._ledger.profiling = True
        self._start_counts = dict(self._ledger.by_function)
        self._start_total = self._ledger.total
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.total = self._ledger.total - self._start_total
        self.counts = {}
        for fn, count in self._ledger.by_function.items():
            delta = count - self._start_counts.get(fn, 0)
            if delta:
                self.counts[fn] = delta
        self._ledger.profiling = self._was_profiling

    def instructions_for(self, fn: str) -> int:
        """Instructions attributed to *fn* during the profiled region."""
        return self.counts.get(fn, 0)


def profile_report(counts: dict[str, int], total: int, top: int = 20) -> str:
    """Format a profile as a callgrind_annotate-style text table."""
    lines = [f"{'Ir':>16}  {'Ir%':>6}  function", "-" * 48]
    ranked = sorted(counts.items(), key=lambda item: item[1], reverse=True)
    for fn, count in ranked[:top]:
        share = (100.0 * count / total) if total else 0.0
        lines.append(f"{count:>16,}  {share:>5.1f}%  {fn}")
    attributed = sum(counts.values())
    other = total - attributed
    if other > 0:
        share = (100.0 * other / total) if total else 0.0
        lines.append(f"{other:>16,}  {share:>5.1f}%  <unattributed>")
    lines.append("-" * 48)
    lines.append(f"{total:>16,}  100.0%  TOTAL")
    return "\n".join(lines)
