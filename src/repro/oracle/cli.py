"""Command-line front-end: ``python -m repro.oracle``.

Examples::

    python -m repro.oracle --seed 0 --iterations 200
    python -m repro.oracle --seed 7 --iterations 500 --time-budget 30
    python -m repro.oracle --self-test
    python -m repro.oracle --seed 3 --inject-bug gcl --iterations 100

Exit status is 0 when every check passed (or, under ``--self-test`` /
``--inject-bug``, when the injected bug WAS caught) and 1 otherwise, so
the command slots directly into CI.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bees.settings import BeeSettings
from repro.oracle.inject import BUG_KINDS, inject_bug
from repro.oracle.runner import run_campaign, run_self_test

_SETTINGS = {
    "all": BeeSettings.all_bees,
    "relation": BeeSettings.relation_bees,
    "future": BeeSettings.future,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer (got {value}); a campaign of zero "
            f"statements would report success without checking anything"
        )
    return value


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.oracle",
        description="Differential + metamorphic correctness oracle for bees.",
    )
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (default 0)")
    parser.add_argument("--iterations", type=_positive_int, default=200,
                        help="statements to execute (default 200)")
    parser.add_argument("--time-budget", type=float, default=None,
                        metavar="SECONDS",
                        help="stop early after this many wall seconds")
    parser.add_argument("--bees", choices=sorted(_SETTINGS), default="all",
                        help="bee settings profile for the specialized "
                             "engine (default: all)")
    parser.add_argument("--inject-bug", choices=BUG_KINDS, default=None,
                        help="run with a deliberately broken bee generator; "
                             "exit 0 only if the oracle catches it")
    parser.add_argument("--self-test", action="store_true",
                        help="inject each bug kind in turn and verify the "
                             "oracle reports divergences")
    parser.add_argument("--parallel", action="store_true",
                        help="add the parallel-vs-serial lane: eligible "
                             "SELECTs re-run through the morsel worker "
                             "pool and must match the serial tiers "
                             "(order-insensitive, float-tolerant)")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip repro minimization (faster)")
    parser.add_argument("--no-verify", action="store_true",
                        help="do not gate generated bees on beecheck "
                             "(verification is on by default; injection "
                             "modes always run unverified so planted bugs "
                             "reach execution)")
    parser.add_argument("--json", type=Path, default=None, metavar="PATH",
                        help="also write the report as JSON")
    parser.add_argument("--divergence-dir", type=Path, default=None,
                        metavar="DIR",
                        help="write each divergence's repro script here")
    return parser


def _write_outputs(report, args) -> None:
    if args.json is not None:
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(report.to_dict(), indent=2) + "\n")
    if args.divergence_dir is not None and report.divergences:
        args.divergence_dir.mkdir(parents=True, exist_ok=True)
        for i, divergence in enumerate(report.divergences):
            path = args.divergence_dir / f"divergence_{i:03d}.sql"
            path.write_text(divergence.script())
        print(f"wrote {len(report.divergences)} repro script(s) to "
              f"{args.divergence_dir}")


def run(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    settings = _SETTINGS[args.bees]()
    if not args.no_verify and args.inject_bug is None and not args.self_test:
        settings = settings.verified()

    if args.self_test:
        reports = run_self_test(args.seed, args.iterations)
        status = 0
        for kind, report in reports.items():
            caught = not report.ok
            print(f"self-test [{kind}]: "
                  f"{'CAUGHT' if caught else 'MISSED'} "
                  f"({len(report.divergences)} divergence(s) over "
                  f"{report.iterations} statements)")
            if not caught:
                status = 1
        return status

    if args.inject_bug is not None:
        with inject_bug(args.inject_bug):
            report = run_campaign(
                args.seed, args.iterations,
                time_budget=args.time_budget,
                bee_settings=settings,
                minimize=not args.no_minimize,
                parallel_lane=args.parallel,
            )
        print(report.summary())
        _write_outputs(report, args)
        caught = not report.ok
        print(f"injected bug {args.inject_bug!r} was "
              f"{'caught' if caught else 'MISSED'}")
        return 0 if caught else 1

    report = run_campaign(
        args.seed, args.iterations,
        time_budget=args.time_budget,
        bee_settings=settings,
        minimize=not args.no_minimize,
        parallel_lane=args.parallel,
    )
    print(report.summary())
    _write_outputs(report, args)
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(run())
