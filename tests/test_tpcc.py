"""Tests for the TPC-C workload: loader, transactions, throughput driver."""

import pytest

from repro.bees.settings import BeeSettings
from repro.workloads.tpcc import (
    MIXES,
    TPCCConfig,
    TransactionContext,
    build_tpcc_database,
    run_mix,
    transaction_schedule,
)


@pytest.fixture(scope="module")
def config():
    return TPCCConfig(warehouses=1, customers_per_district=30, items=120)


@pytest.fixture(scope="module")
def stock_tpcc(config):
    return build_tpcc_database(BeeSettings.stock(), config)


@pytest.fixture(scope="module")
def bees_tpcc(config):
    return build_tpcc_database(BeeSettings.all_bees(), config)


class TestLoader:
    def test_row_counts(self, stock_tpcc, config):
        assert stock_tpcc.relation("warehouse").heap.live_count == 1
        assert stock_tpcc.relation("district").heap.live_count == 10
        assert (
            stock_tpcc.relation("tpcc_customer").heap.live_count
            == 10 * config.customers
        )
        assert stock_tpcc.relation("item").heap.live_count == config.items
        assert stock_tpcc.relation("stock").heap.live_count == config.items

    def test_initial_orders_one_per_customer(self, stock_tpcc, config):
        assert (
            stock_tpcc.relation("oorder").heap.live_count
            == 10 * config.customers
        )

    def test_undelivered_orders_queued(self, stock_tpcc, config):
        new_orders = stock_tpcc.relation("new_order").heap.live_count
        assert new_orders == 10 * (
            config.customers - int(config.customers * 0.7)
        )

    def test_indexes_built(self, stock_tpcc):
        rel = stock_tpcc.relation("tpcc_customer")
        assert rel.indexes["customer_pk"].lookup((1, 1, 1))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TPCCConfig(warehouses=0)


class TestTransactions:
    def _ctx(self, db, config):
        return TransactionContext(db, config, seed=5)

    def test_new_order_inserts(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        orders_before = db.relation("oorder").heap.live_count
        lines_before = db.relation("order_line").heap.live_count
        assert ctx.new_order(1) is True
        assert db.relation("oorder").heap.live_count == orders_before + 1
        assert db.relation("order_line").heap.live_count > lines_before

    def test_new_order_advances_district_sequence(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        before = [row[9] for row in db.read_all("district")]
        ctx.new_order(1)
        after = [row[9] for row in db.read_all("district")]
        assert sum(after) == sum(before) + 1

    def test_payment_moves_money(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        ytd_before = db.read_all("warehouse")[0][7]
        history_before = db.relation("history").heap.live_count
        assert ctx.payment(1) is True
        assert db.read_all("warehouse")[0][7] > ytd_before
        assert db.relation("history").heap.live_count == history_before + 1

    def test_delivery_drains_new_orders(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        before = db.relation("new_order").heap.live_count
        assert ctx.delivery(1) is True
        after = db.relation("new_order").heap.live_count
        assert after == before - 10   # one per district

    def test_delivery_sets_carrier_and_dates(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        ctx.delivery(1)
        # Every order carrying NULL is undelivered; delivered ones have a
        # carrier; at least 10 more are delivered now.
        orders = db.read_all("oorder")
        assert sum(1 for o in orders if o[5] is not None) > 0

    def test_order_status_and_stock_level_read_only(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        counts_before = {
            name: db.relation(name).heap.live_count
            for name in ("oorder", "order_line", "tpcc_customer", "stock")
        }
        assert ctx.order_status(1) is True
        assert ctx.stock_level(1) is True
        for name, count in counts_before.items():
            assert db.relation(name).heap.live_count == count, name

    def test_transactions_charge_instructions(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = self._ctx(db, config)
        before = db.ledger.total
        ctx.new_order(1)
        assert db.ledger.total > before


class TestSchedulesAndMixes:
    def test_mix_weights_sum_to_one(self):
        for name, weights in MIXES.items():
            assert sum(weights.values()) == pytest.approx(1.0), name

    def test_schedule_deterministic(self):
        a = transaction_schedule("default", 100, seed=3)
        b = transaction_schedule("default", 100, seed=3)
        assert a == b
        assert len(a) == 100

    def test_schedule_respects_weights(self):
        schedule = transaction_schedule("default", 1000, seed=3)
        new_orders = schedule.count("new_order")
        assert 400 <= new_orders <= 500

    def test_query_only_mix_has_no_payment(self):
        schedule = transaction_schedule("query_only", 500, seed=3)
        assert "payment" not in schedule
        assert "delivery" not in schedule

    def test_run_mix_produces_throughput(self, stock_tpcc, config):
        result = run_mix(stock_tpcc, config, "default", n_transactions=40)
        assert result.transactions == 40
        assert result.simulated_minutes > 0
        assert result.tpm_total > 0
        assert result.tpmC > 0
        assert result.counts["new_order"] >= 1


class TestBeeParity:
    def test_same_schedule_same_end_state(self, config):
        """Stock and bee-enabled databases reach identical logical states."""
        stock = build_tpcc_database(BeeSettings.stock(), config)
        bees = build_tpcc_database(BeeSettings.all_bees(), config)
        run_mix(stock, config, "default", n_transactions=30, seed=11)
        run_mix(bees, config, "default", n_transactions=30, seed=11)
        for name in ("warehouse", "district", "tpcc_customer", "stock"):
            assert sorted(map(tuple, stock.read_all(name))) == sorted(
                map(tuple, bees.read_all(name))
            ), name

    def test_bees_run_cheaper(self, config):
        stock = build_tpcc_database(BeeSettings.stock(), config)
        bees = build_tpcc_database(BeeSettings.all_bees(), config)
        stock_result = run_mix(stock, config, "default", 30, seed=11)
        bees_result = run_mix(bees, config, "default", 30, seed=11)
        assert bees_result.tpm_total > stock_result.tpm_total


class TestSpecFidelity:
    def test_new_order_rollback_rate(self, config):
        """~1% of New-Order transactions roll back (spec 2.4.1.4)."""
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = TransactionContext(db, config, seed=123)
        outcomes = [ctx.new_order(1) for _ in range(400)]
        rollbacks = outcomes.count(False)
        assert 0 < rollbacks < 20   # ~4 expected out of 400

    def test_rollback_leaves_no_writes(self, config):
        db = build_tpcc_database(BeeSettings.stock(), config)
        ctx = TransactionContext(db, config, seed=123)
        orders_before = db.relation("oorder").heap.live_count
        failures = 0
        for _ in range(400):
            if not ctx.new_order(1):
                failures += 1
        orders_after = db.relation("oorder").heap.live_count
        assert failures > 0
        assert orders_after - orders_before == 400 - failures

    def test_remote_payment_hits_other_warehouse(self):
        cfg = TPCCConfig(warehouses=3, customers_per_district=20, items=80)
        db = build_tpcc_database(BeeSettings.stock(), cfg)
        ctx = TransactionContext(db, cfg, seed=5)
        for _ in range(120):
            ctx.payment(1)
        rows = db.read_all("history")
        remote = [r for r in rows if r[2] != r[4]]   # h_c_w_id != h_w_id
        assert remote, "some payments should be remote with 3 warehouses"
        assert len(remote) < len(rows) / 2
