"""Shared fixtures for the paper-reproduction benchmarks.

Scale is controlled by environment variables so CI can run quick smoke
passes while a full reproduction uses larger data:

* ``REPRO_TPCH_SF`` — TPC-H scale factor (default 0.003; paper used 1.0)
* ``REPRO_TPCC_WAREHOUSES`` — TPC-C warehouses (default 1; paper used 10)
* ``REPRO_TPCC_TXNS`` — transactions per mix run (default 200)

Reported metrics are percentages, which are scale-invariant in the cost
model, so the small defaults still regenerate the paper's shapes.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.tpch_experiments import build_suite_pair

TPCH_SF = float(os.environ.get("REPRO_TPCH_SF", "0.003"))
TPCC_WAREHOUSES = int(os.environ.get("REPRO_TPCC_WAREHOUSES", "1"))
TPCC_TXNS = int(os.environ.get("REPRO_TPCC_TXNS", "200"))


@pytest.fixture(scope="session")
def tpch_pair():
    """(stock, bee-enabled) TPC-H databases over one shared dataset."""
    return build_suite_pair(scale_factor=TPCH_SF)
