"""Parallel fusion: promote serial fused drivers to morsel drivers.

Runs *after* pipeline/vector fusion: :func:`parallelize_plan` walks an
already-fused plan and wraps every vector or pipeline driver in its
morsel-fanned counterpart — same spec, and the serial driver itself
kept as the anchor, so a degraded parallel site falls back to exactly
the tier it replaced (vector when vectors fused, fused pipeline
otherwise).  The fusable language never widens here: the parallel tier
fans out precisely the specs the pipeline fuser matched.

Interior generic nodes are rebuilt with the same shallow-copy
discipline as the other fusers; untouched subtrees are shared.
"""

from __future__ import annotations

import copy

from repro.engine.nodes import PlanNode
from repro.bees.pipeline.fusion import _CHILD_ATTRS
from repro.bees.pipeline.nodes import PipelineAgg, PipelineJoin, PipelineScan
from repro.bees.vector.nodes import VectorAgg, VectorJoin, VectorScan
from repro.parallel.nodes import ParallelAgg, ParallelJoin, ParallelScan


def _parallelize(plan: PlanNode, db) -> PlanNode:
    kind = type(plan)
    if kind is VectorScan:
        return ParallelScan(plan.spec, plan, "vector")
    if kind is VectorAgg:
        return ParallelAgg(plan.spec, plan, "vector")
    if kind is VectorJoin:
        return _parallel_join(plan, db, "vector")
    if kind is PipelineScan:
        return ParallelScan(plan.spec, plan, "pipeline")
    if kind is PipelineAgg:
        return ParallelAgg(plan.spec, plan, "pipeline")
    if kind is PipelineJoin:
        return _parallel_join(plan, db, "pipeline")
    attrs = _CHILD_ATTRS.get(kind)
    if not attrs:
        return plan
    children = {name: _parallelize(getattr(plan, name), db) for name in attrs}
    if all(children[name] is getattr(plan, name) for name in attrs):
        return plan
    clone = copy.copy(plan)
    for name, child in children.items():
        setattr(clone, name, child)
    return clone


def _parallel_join(plan: PlanNode, db, tier: str) -> PlanNode:
    """Morsel-fan a fused join's probe side.

    The build subtree is parallelized too, and — crucially — grafted
    into the serial *anchor* as well: when the probe side bypasses the
    pool (small relation) or the site is quarantined, the drained
    anchor must still compute its build-side aggregates with the same
    tier the rest of the query used, or cross-statement float
    identities (TPC-H Q15 compares a SUM against its own MAX with
    ``=``) break on re-associated partial sums.
    """
    build = _parallelize(plan.build, db)
    anchor = plan
    if build is not plan.build:
        anchor = copy.copy(plan)
        anchor.build = build
    return ParallelJoin(plan.spec, anchor, build, tier)


def parallelize_plan(plan: PlanNode, db) -> PlanNode:
    """Return *plan* rewritten around morsel drivers where fused.

    *plan* must already be pipeline- or vector-fused; segments neither
    fuser matched stay serial (there is no spec to ship to a worker).
    """
    return _parallelize(plan, db)


__all__ = ["parallelize_plan"]
