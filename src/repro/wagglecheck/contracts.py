"""Output contracts and expression type flow.

The abstract domain is deliberately small: every SQL type in the
catalog maps to one of five *kinds* — ``int``, ``float``, ``bool``,
``date``, ``string`` — plus ``any`` for NULL literals and values the
analysis cannot pin down (``any`` compares with everything and keeps
the checker from cascading one unknown into a storm of findings).

Two kinds are *comparable* when they are equal, either is ``any``, or
the pair is a **declared coercion** — a mixing the engine performs on
purpose and the checker therefore accepts:

* ``int`` ↔ ``float`` — numeric widening (NUMERIC is binary float8);
* ``int`` ↔ ``date`` — the parser lowers ``DATE 'yyyy-mm-dd'``
  literals to epoch day counts at parse time, so a date comparison
  reaching the executor *is* an int comparison;
* ``int`` ↔ ``bool`` — bools are stored and compared as small ints.

Everything else (string vs. numeric, float vs. date, ...) is an
undeclared implicit coercion: Python would happily evaluate some of
them with the wrong answer, which is exactly the bug class this pass
rejects.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.catalog.schema import RelationSchema
from repro.catalog.types import SQLType
from repro.engine import expr as E
from repro.wagglecheck.report import Finding

KINDS = ("int", "float", "bool", "date", "string", "any")

_KIND_BY_BASE = {
    "int4": "int",
    "int8": "int",
    "float8": "float",
    "numeric": "float",
    "bool": "bool",
    "date": "date",
    "text": "string",
    "char": "string",
    "varchar": "string",
}

_DECLARED_COERCIONS = frozenset(
    {
        frozenset(("int", "float")),
        frozenset(("int", "date")),
        frozenset(("int", "bool")),
    }
)

_NUMERIC = ("int", "float")


def kind_of_sql_type(sql_type: SQLType) -> str:
    """The abstract kind of a catalog type (``char(12)`` -> string)."""
    base = sql_type.name.split("(", 1)[0]
    return _KIND_BY_BASE.get(base, "any")


def kind_of_value(value: object) -> str:
    """The abstract kind of a Python constant (bool before int!)."""
    if value is None:
        return "any"
    if isinstance(value, bool):
        return "bool"
    if isinstance(value, int):
        return "int"
    if isinstance(value, float):
        return "float"
    if isinstance(value, str):
        return "string"
    return "any"


def comparable(a: str, b: str) -> bool:
    """True when comparing kinds *a* and *b* is well-typed or declared."""
    if a == b or a == "any" or b == "any":
        return True
    return frozenset((a, b)) in _DECLARED_COERCIONS


@dataclass(frozen=True)
class ColumnContract:
    """One column of a plan node's inferred output contract."""

    name: str
    kind: str           # one of KINDS
    nullable: bool
    width: int = -1     # fixed byte width (attlen), -1 when derived/varlena
    type_name: str = "" # catalog type name when schema-backed

    def describe(self) -> str:
        null = "" if self.nullable else " not null"
        return f"{self.name}:{self.type_name or self.kind}{null}"


@dataclass(frozen=True)
class ValueType:
    """The abstract type of one expression: kind + may-be-NULL."""

    kind: str
    nullable: bool


_ANY = ValueType("any", True)

_KIND_WIDTH = {"int": 8, "float": 8, "bool": 1, "date": 4}


def contracts_from_schema(schema: RelationSchema) -> list[ColumnContract]:
    """The catalog-backed contract of a base-relation scan."""
    return [
        ColumnContract(
            name=attr.name,
            kind=kind_of_sql_type(attr.sql_type),
            nullable=attr.nullable,
            width=attr.attlen,
            type_name=attr.sql_type.name,
        )
        for attr in schema.attributes
    ]


class TypeChecker:
    """Accumulates typeflow findings while typing expressions.

    One checker instance covers one *subject* (a plan or relation label);
    the node-walk layer in :mod:`repro.wagglecheck.typeflow` drives it.
    """

    def __init__(self, subject: str) -> None:
        self.subject = subject
        self.findings: list[Finding] = []

    def fail(self, message: str) -> None:
        self.findings.append(Finding("typeflow", self.subject, message))

    # -- expression typing --------------------------------------------------

    def type_expr(
        self, expr: E.Expr, inputs: list[ColumnContract]
    ) -> ValueType:
        """Infer the abstract type of *expr* over the *inputs* contract,
        recording a finding for every ill-typed subexpression."""
        if isinstance(expr, E.Const):
            return ValueType(kind_of_value(expr.value), expr.value is None)
        if isinstance(expr, E.Col):
            if 0 <= expr.index < len(inputs):
                contract = inputs[expr.index]
                return ValueType(contract.kind, contract.nullable)
            self.fail(
                f"column reference {expr.name!r} is unbound or out of "
                f"range (index {expr.index} over {len(inputs)} columns)"
            )
            return _ANY
        if isinstance(expr, E.Cmp):
            left = self.type_expr(expr.left, inputs)
            right = self.type_expr(expr.right, inputs)
            if not comparable(left.kind, right.kind):
                self.fail(
                    f"ill-typed comparison {expr!r}: "
                    f"{left.kind} {expr.op} {right.kind}"
                )
            return ValueType("bool", left.nullable or right.nullable)
        if isinstance(expr, E.Arith):
            left = self.type_expr(expr.left, inputs)
            right = self.type_expr(expr.right, inputs)
            kinds = (left.kind, right.kind)
            for kind in kinds:
                if kind == "string":
                    self.fail(
                        f"arithmetic over non-numeric operand in {expr!r}: "
                        f"{left.kind} {expr.op} {right.kind}"
                    )
                    return ValueType("any", left.nullable or right.nullable)
            if "date" in kinds:
                # Day arithmetic: date +/- int -> date, date - date -> int.
                if expr.op not in ("+", "-"):
                    self.fail(
                        f"unsupported date arithmetic {expr!r}: "
                        f"{left.kind} {expr.op} {right.kind}"
                    )
                    return ValueType("any", left.nullable or right.nullable)
                result = "int" if kinds == ("date", "date") else "date"
                return ValueType(result, left.nullable or right.nullable)
            nullable = left.nullable or right.nullable
            if "any" in kinds:
                return ValueType("any", nullable)
            if expr.op == "/" or "float" in kinds:
                return ValueType("float", nullable)
            return ValueType("int", nullable)
        if isinstance(expr, (E.And, E.Or)):
            nullable = False
            for arg in expr.args:
                arg_type = self.type_expr(arg, inputs)
                if arg_type.kind not in ("bool", "any"):
                    self.fail(
                        f"non-boolean operand ({arg_type.kind}) in "
                        f"{type(expr).__name__}: {arg!r}"
                    )
                nullable = nullable or arg_type.nullable
            return ValueType("bool", nullable)
        if isinstance(expr, E.Not):
            arg = self.type_expr(expr.arg, inputs)
            if arg.kind not in ("bool", "any"):
                self.fail(f"NOT over non-boolean ({arg.kind}): {expr.arg!r}")
            return ValueType("bool", arg.nullable)
        if isinstance(expr, E.Like):
            arg = self.type_expr(expr.arg, inputs)
            if arg.kind not in ("string", "any"):
                self.fail(f"LIKE over non-string ({arg.kind}): {expr!r}")
            return ValueType("bool", arg.nullable)
        if isinstance(expr, E.InList):
            arg = self.type_expr(expr.arg, inputs)
            for value in expr.values:
                value_kind = kind_of_value(value)
                if not comparable(arg.kind, value_kind):
                    self.fail(
                        f"ill-typed IN-list membership: {arg.kind} "
                        f"vs {value_kind} constant {value!r}"
                    )
            return ValueType("bool", arg.nullable)
        if isinstance(expr, E.Between):
            arg = self.type_expr(expr.arg, inputs)
            for bound in (expr.low, expr.high):
                bound_kind = kind_of_value(bound)
                if not comparable(arg.kind, bound_kind):
                    self.fail(
                        f"ill-typed BETWEEN bound: {arg.kind} "
                        f"vs {bound_kind} constant {bound!r}"
                    )
            return ValueType("bool", arg.nullable)
        if isinstance(expr, E.Case):
            nullable = False
            kinds: set[str] = set()
            for cond, value in expr.whens:
                cond_type = self.type_expr(cond, inputs)
                if cond_type.kind not in ("bool", "any"):
                    self.fail(
                        f"non-boolean CASE condition ({cond_type.kind}): "
                        f"{cond!r}"
                    )
                arm = self.type_expr(value, inputs)
                kinds.add(arm.kind)
                nullable = nullable or arm.nullable
            default = self.type_expr(expr.default, inputs)
            kinds.add(default.kind)
            nullable = nullable or default.nullable
            kinds.discard("any")
            if len(kinds) > 1 and not kinds <= set(_NUMERIC):
                self.fail(
                    f"CASE arms disagree on result kind: {sorted(kinds)}"
                )
                return ValueType("any", nullable)
            if not kinds:
                return ValueType("any", nullable)
            if kinds <= set(_NUMERIC) and len(kinds) > 1:
                return ValueType("float", nullable)
            return ValueType(next(iter(kinds)), nullable)
        if isinstance(expr, E.IsNull):
            self.type_expr(expr.arg, inputs)
            return ValueType("bool", False)
        if isinstance(expr, E.Func):
            return self._type_func(expr, inputs)
        # Unknown expression node: conservative.
        for child in expr.children():
            self.type_expr(child, inputs)
        return _ANY

    def _type_func(
        self, expr: E.Func, inputs: list[ColumnContract]
    ) -> ValueType:
        args = [self.type_expr(arg, inputs) for arg in expr.args]
        nullable = any(arg.nullable for arg in args)

        def expect(position: int, *kinds: str) -> None:
            if position < len(args) and args[position].kind not in (
                kinds + ("any",)
            ):
                self.fail(
                    f"{expr.name}() argument {position + 1} has kind "
                    f"{args[position].kind}, expected {'/'.join(kinds)}"
                )

        def arity(n: int) -> bool:
            if len(args) != n:
                self.fail(
                    f"{expr.name}() takes {n} argument(s), got {len(args)}"
                )
                return False
            return True

        if expr.name in ("extract_year", "extract_month"):
            if arity(1):
                expect(0, "date", "int")
            return ValueType("int", nullable)
        if expr.name == "substr":
            if arity(3):
                expect(0, "string")
                expect(1, "int")
                expect(2, "int")
            return ValueType("string", nullable)
        if expr.name == "length":
            if arity(1):
                expect(0, "string")
            return ValueType("int", nullable)
        if expr.name == "abs":
            if arity(1):
                expect(0, "int", "float")
                return ValueType(
                    args[0].kind if args[0].kind in _NUMERIC else "any",
                    nullable,
                )
            return ValueType("any", nullable)
        return ValueType("any", nullable)

    # -- contract helpers ---------------------------------------------------

    def contract_of_expr(
        self, expr: E.Expr, name: str, inputs: list[ColumnContract]
    ) -> ColumnContract:
        """The output contract of one projected expression."""
        value_type = self.type_expr(expr, inputs)
        if isinstance(expr, E.Col) and 0 <= expr.index < len(inputs):
            # Pass-through column: keep catalog width and type name.
            source = inputs[expr.index]
            return ColumnContract(
                name=name,
                kind=source.kind,
                nullable=source.nullable,
                width=source.width,
                type_name=source.type_name,
            )
        return ColumnContract(
            name=name,
            kind=value_type.kind,
            nullable=value_type.nullable,
            width=_KIND_WIDTH.get(value_type.kind, -1),
        )

    def check_recorded_nullability(
        self, node: object, label: str, inferred: list[ColumnContract]
    ) -> None:
        """Cross-check a node's recorded ``nullable`` vector against the
        inferred contract: a column the contract proves may-be-NULL but
        the node records as NOT NULL is a *nullability erasure* — codegen
        trusting the record would drop NULL handling."""
        recorded = getattr(node, "nullable", None)
        if not isinstance(recorded, list) or len(recorded) != len(inferred):
            return  # lazily-bound scans record nothing until first use
        for contract, claimed in zip(inferred, recorded):
            if contract.nullable and not claimed:
                self.fail(
                    f"nullability erasure at {label}: column "
                    f"{contract.name!r} may be NULL but the node records "
                    "it as NOT NULL"
                )
