"""Worker-process side of the morsel-driven parallel tier.

Each worker is a long-lived child process holding its own private hive:
a :class:`repro.cost.Ledger` (virtual instructions accrue locally and
are returned per task so the coordinator can price the makespan), a
read-only heap *snapshot* per relation (live raw tuples shipped by the
coordinator, keyed by ``(heap.uid, heap.version)`` tokens), a bee cache
keyed by spec fingerprint (sha1 of the pickled :class:`PipelineSpec`),
and a per-morsel chunk cache for the vector tier.

The protocol is strictly request/reply over one duplex pipe, processed
in FIFO order:

* ``("snapshot", relation, token, pages, sections, layout)`` — install
  a heap snapshot (no reply).
* ``("invalidate",)`` — the coordinator observed a query-epoch bump
  (DDL/DML): drop every cached bee, chunk, and snapshot (no reply).
* ``("prepare", stmt_id, spec_bytes, tier, table)`` — compile (or fetch
  by fingerprint) the routine for a statement; replies
  ``("ready", stmt_id)``.
* ``("task", stmt_id, morsel_idx, relation, token, lo, hi)`` — run the
  prepared routine over heap pages ``[lo, hi)``; replies
  ``("result", stmt_id, morsel_idx, payload, delta)`` where *delta* is
  the worker-ledger delta ``(total, seq, rand, hit)``, or
  ``("stale", stmt_id, morsel_idx)`` when the task token does not match
  the installed snapshot (the coordinator re-ships and resends).
* ``("stop",)`` — exit; pipe EOF (coordinator/pool death) exits too.

Any exception is reported as ``("error", detail)`` — the coordinator
degrades the statement to the serial tier; workers never crash the
coordinator.  All shared state crossing the process boundary follows
the guard+epoch contract in :mod:`repro.swarmcheck.registry`: snapshots
and shipped bees are immutable on the worker side, and the epoch bump
relayed as ``invalidate`` is the only cross-process invalidation edge.
"""

from __future__ import annotations

import hashlib
import pickle

from repro.cost import constants as C
from repro.cost.ledger import Ledger


def _spec_fingerprint(spec_bytes: bytes, tier: str) -> str:
    return hashlib.sha1(spec_bytes + tier.encode()).hexdigest()


def _decode_rows(layout, raws, sections):
    """Reference-decode raw tuples into schema-ordered value lists."""
    rows = []
    for raw in raws:
        bee_values = sections[layout.read_bee_id(raw)] if sections else None
        values, isnull = layout.decode(raw, bee_values)
        for i, null in enumerate(isnull):
            if null:
                values[i] = None
        rows.append(values)
    return rows


class _WorkerState:
    """Everything one worker process owns (no state is shared back)."""

    def __init__(self) -> None:
        self.ledger = Ledger()
        # relation -> (token, pages, sections, layout)
        self.snapshots: dict = {}
        # fingerprint -> compiled routine fn
        self.bees: dict = {}
        # (relation, token, lo, hi) -> Chunk
        self.chunks: dict = {}
        # stmt_id -> (spec, tier, fn, table)
        self.prepared: dict = {}
        self._seq = 0

    def invalidate(self) -> None:
        """Cross-process epoch bump: drop every cached artifact."""
        self.bees.clear()
        self.chunks.clear()
        self.prepared.clear()
        self.snapshots.clear()

    def install_snapshot(self, relation, token, pages, sections, layout):
        self.snapshots[relation] = (token, pages, sections, layout)
        # Chunks decoded from an older snapshot of this relation are dead.
        for key in [k for k in self.chunks if k[0] == relation]:
            del self.chunks[key]

    def prepare(self, stmt_id, spec_bytes, tier, table) -> None:
        fingerprint = _spec_fingerprint(spec_bytes, tier)
        fn = self.bees.get(fingerprint)
        if fn is None:
            spec = pickle.loads(spec_bytes)
            self._seq += 1
            name = f"PAR_{self._seq}"
            if tier == "vector" and spec.sink == "agg":
                # The serial agg kernel groups *and* finalizes, which
                # cannot be merged across morsels; the partial variant
                # keeps columnar speed and yields combinable states.
                from repro.parallel.partialagg import generate_partial_agg

                fn = generate_partial_agg(spec, self.ledger, name).fn
            elif tier == "vector":
                from repro.bees.vector.codegen import generate_vector

                fn = generate_vector(spec, self.ledger, name).fn
            else:
                from repro.bees.pipeline.codegen import generate_pipeline

                fn = generate_pipeline(spec, self.ledger, name).fn
            self.bees[fingerprint] = fn
        else:
            spec = pickle.loads(spec_bytes)
        self.prepared[stmt_id] = (spec, tier, fn, table)

    # -- task execution ----------------------------------------------------

    def _morsel_chunk(self, relation, token, lo, hi, layout, pages, sections):
        """Columnar chunk for one page range, cached per (range, token)."""
        from repro.bees.vector.chunks import chunk_from_rows, freeze_chunk

        key = (relation, token, lo, hi)
        chunk = self.chunks.get(key)
        natts = layout.schema.natts
        ledger = self.ledger
        if chunk is not None:
            ledger.charge_fn("parallel_chunk_hit", C.VEC_CHUNK_HIT * (hi - lo))
            return chunk
        rows = []
        for raws in pages[lo:hi]:
            # Snapshot pages are worker-resident by construction: the
            # ship already modeled the transfer, so access is a hit.
            ledger.hit_page()
            ledger.charge_fn(
                "parallel_chunk_build", C.PAGE_ACCESS + C.VEC_CHUNK_BUILD * natts
            )
            ledger.charge_fn(
                "parallel_chunk_build", C.VEC_DECODE_PER_VALUE * natts * len(raws)
            )
            rows.extend(_decode_rows(layout, raws, sections))
        chunk = freeze_chunk(chunk_from_rows(layout.schema, rows))
        self.chunks[key] = chunk
        return chunk

    def run_task(self, stmt_id, relation, token, lo, hi):
        """Run the prepared routine over pages ``[lo, hi)``.

        Returns ``(payload, delta)`` or the string ``"stale"`` when the
        installed snapshot does not match the task token.
        """
        spec, tier, fn, table = self.prepared[stmt_id]
        snapshot = self.snapshots.get(relation)
        if snapshot is None or snapshot[0] != token:
            return "stale", None
        _token, pages, sections, layout = snapshot
        ledger = self.ledger
        before = ledger.snapshot()
        if tier == "vector":
            chunk = self._morsel_chunk(
                relation, token, lo, hi, layout, pages, sections
            )
            if spec.sink == "probe":
                payload = fn(chunk.cols, chunk.nulls, chunk.n, table)
            else:
                # rows: finished rows; agg: [(group_key, [AggState])]
                # partials from the partial-agg kernel.
                payload = fn(chunk.cols, chunk.nulls, chunk.n)
        elif spec.sink == "agg":
            aggs = spec.aggs
            make_states = lambda: [agg.make_state() for agg in aggs]
            groups: dict = {}
            if not spec.group_exprs:
                groups[()] = make_states()
            for raws in pages[lo:hi]:
                ledger.hit_page()
                ledger.charge_fn("parallel_page", C.PAGE_ACCESS)
                if raws:
                    fn(raws, sections, groups, make_states)
            payload = list(groups.items())
        else:
            payload = []
            for raws in pages[lo:hi]:
                ledger.hit_page()
                ledger.charge_fn("parallel_page", C.PAGE_ACCESS)
                if not raws:
                    continue
                if spec.sink == "probe":
                    payload.extend(fn(raws, sections, table))
                else:
                    payload.extend(fn(raws, sections))
        delta = ledger.delta_since(before)
        return payload, (
            delta.total,
            delta.seq_pages_read,
            delta.rand_pages_read,
            delta.pages_hit,
        )


def worker_main(conn) -> None:
    """Worker process entry: serve the morsel protocol until stop/EOF."""
    state = _WorkerState()
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        tag = message[0]
        if tag == "stop":
            return
        try:
            if tag == "snapshot":
                _tag, relation, token, pages, sections, layout = message
                state.install_snapshot(relation, token, pages, sections, layout)
            elif tag == "invalidate":
                state.invalidate()
            elif tag == "prepare":
                _tag, stmt_id, spec_bytes, tier, table = message
                state.prepare(stmt_id, spec_bytes, tier, table)
                conn.send(("ready", stmt_id))
            elif tag == "task":
                _tag, stmt_id, morsel_idx, relation, token, lo, hi = message
                payload, delta = state.run_task(stmt_id, relation, token, lo, hi)
                if payload == "stale" and delta is None:
                    conn.send(("stale", stmt_id, morsel_idx))
                else:
                    conn.send(("result", stmt_id, morsel_idx, payload, delta))
            else:
                conn.send(("error", f"unknown message tag {tag!r}"))
        except Exception as exc:  # noqa: BLE001 — reported, never fatal here
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):
                return


__all__ = ["worker_main"]
