"""Hive Gate benchmark: 8-client mixed workload vs a single session.

Two phases over the same balanced-pair workload (one shared hub table
every client reads, one private table per client that only it flips):

1. **Concurrent run + serialized oracle.**  Eight client threads drive
   their statement lists through a live :class:`HiveServer`.  The run
   must finish with zero errors and zero snapshot violations, and the
   recorded schedule must replay single-threaded on a fresh base with
   every statement fingerprint matching — the correctness half of the
   gate.  Real wall time is recorded for transparency.

2. **Modeled makespan.**  Each scheduled statement is re-executed
   serially on a fresh base under ``db.measure``, pricing it in modeled
   seconds (the calibrated cost model every experiment in this repo is
   denominated in — real wall time on a shared/1-CPU GIL box measures
   the host, not the schedule).  A greedy earliest-start simulation
   then replays the schedule under the server's actual concurrency
   rules — statements on one session serialize, reads share a relation,
   writes exclude it — and the **modeled speedup** is serial-sum /
   simulated-makespan.

``--check`` gates both: the replay must be divergence-free and the
modeled speedup at 8 clients must be at least ``--tolerance`` (default
2.0 — the server must buy at least a 2x throughput win over feeding the
same statements through one session).

Usage::

    PYTHONPATH=src python benchmarks/bench_server.py --check
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path

from repro.bees.settings import BeeSettings
from repro.db import Database
from repro.server.core import HiveServer, classify_statement
from repro.server.oracle import statement_fingerprint
from repro.sql.parser import parse
from repro.sql.session import execute_sql

CLIENTS = 8
STATEMENTS_PER_CLIENT = 12
PAIRS = 10

HUB = "gate_hub"


def _pair_rows(pairs: int) -> list[list[int]]:
    rows = []
    for pair in range(pairs):
        qty = 10 + pair
        rows.append([2 * pair, pair, qty])
        rows.append([2 * pair + 1, pair, -qty])
    return rows


def build_base() -> Database:
    """The pre-workload state: hub + one private table per client.
    Built outside any server, so the WAL-free schedule fully describes
    everything that happened after."""
    db = Database(BeeSettings.future().enabling(parallel=False))
    for table in [HUB] + [f"gate_c{i}" for i in range(CLIENTS)]:
        execute_sql(
            db,
            f"CREATE TABLE {table} (id int NOT NULL, pair int NOT NULL, "
            "qty int NOT NULL)",
        )
        db.copy_from(table, _pair_rows(PAIRS))
    return db


def build_workload(seed: int) -> list[list[str]]:
    """Per-client statement lists: reads on the shared hub and the
    occasional neighbour, flips on the client's own table."""
    rng = random.Random(seed)
    workload = []
    for client in range(CLIENTS):
        mine = f"gate_c{client}"
        statements = []
        for step in range(STATEMENTS_PER_CLIENT):
            if step % 2 == 0:
                table = (
                    HUB if rng.random() < 0.6
                    else f"gate_c{rng.randrange(CLIENTS)}"
                )
                statements.append(f"SELECT SUM(qty) FROM {table}")
            else:
                pair = rng.randrange(PAIRS)
                statements.append(
                    f"UPDATE {mine} SET qty = 0 - qty WHERE pair = {pair}"
                )
        workload.append(statements)
    return workload


# ----------------------------------------------------------------------
# phase 1: the concurrent run and its serialized replay


def run_concurrent(workload) -> dict:
    db = build_base()
    server = HiveServer(db)
    errors: list[str] = []

    def client(statements):
        try:
            with server.session() as session:
                for sql in statements:
                    session.sql(sql)
        except Exception as exc:  # noqa: BLE001 — benchmark verdict
            errors.append(f"{type(exc).__name__}: {exc}")

    threads = [
        threading.Thread(target=client, args=(statements,))
        for statements in workload
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    stats = server.stats_snapshot()
    schedule = sorted(server.schedule, key=lambda e: e.seq)
    db.close()
    return {
        "errors": errors,
        "wall_seconds": wall,
        "stats": stats,
        "schedule": schedule,
    }


def replay_and_price(schedule) -> tuple[list, dict]:
    """Re-run the schedule serially on a fresh base, checking every
    fingerprint and pricing every statement in modeled seconds."""
    db = build_base()
    costs = []
    divergences = []
    for entry in schedule:
        run = db.measure(lambda sql=entry.sql: execute_sql(db, sql))
        if statement_fingerprint(run.result) != entry.fingerprint:
            divergences.append(entry.seq)
        costs.append((entry, run.seconds))
    db.close()
    return costs, {
        "statements": len(schedule),
        "divergences": divergences,
        "ok": not divergences,
    }


# ----------------------------------------------------------------------
# phase 2: the modeled makespan


def simulate_makespan(costs) -> dict:
    """Greedy earliest-start replay of the schedule under the server's
    concurrency rules: per-session serialization, shared read latches,
    exclusive write latches — the same constraints the live latches
    enforce, priced by the cost model."""
    session_free: dict[int, float] = {}
    read_free: dict[str, float] = {}
    write_free: dict[str, float] = {}
    makespan = 0.0
    serial = 0.0
    for entry, seconds in costs:
        _kind, relations = classify_statement(parse(entry.sql))
        start = session_free.get(entry.session, 0.0)
        for name in relations:
            start = max(start, write_free.get(name, 0.0))
            if entry.kind != "read":
                start = max(start, read_free.get(name, 0.0))
        end = start + seconds
        session_free[entry.session] = end
        for name in relations:
            if entry.kind == "read":
                read_free[name] = max(read_free.get(name, 0.0), end)
            else:
                write_free[name] = end
        makespan = max(makespan, end)
        serial += seconds
    return {
        "serial_model_seconds": serial,
        "makespan_model_seconds": makespan,
        "modeled_speedup": serial / makespan if makespan else 0.0,
    }


# ----------------------------------------------------------------------
# entry point


def run_benchmark(seed: int) -> dict:
    workload = build_workload(seed)
    concurrent = run_concurrent(workload)
    if concurrent["errors"]:
        raise AssertionError(
            f"concurrent run errored: {concurrent['errors']}"
        )
    costs, replay = replay_and_price(concurrent["schedule"])
    model = simulate_makespan(costs)
    return {
        "clients": CLIENTS,
        "statements_per_client": STATEMENTS_PER_CLIENT,
        "seed": seed,
        "concurrent": {
            "wall_seconds": concurrent["wall_seconds"],
            "errors": concurrent["stats"]["errors"],
            "snapshot_violations": concurrent["stats"][
                "snapshot_violations"
            ],
            "statements": concurrent["stats"]["statements"],
            "queue_high_water": concurrent["stats"]["queue_high_water"],
        },
        "replay": replay,
        "model": model,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Hive Gate 8-client throughput benchmark"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--out", type=Path,
                        default=Path("results") / "BENCH_server.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the serialized replay "
                             "is divergence-free and the modeled "
                             "speedup meets --tolerance")
    parser.add_argument("--tolerance", type=float, default=2.0,
                        help="minimum modeled speedup at 8 clients "
                             "(default 2.0)")
    args = parser.parse_args(argv)

    report = run_benchmark(args.seed)
    replay_ok = report["replay"]["ok"]
    speedup = report["model"]["modeled_speedup"]
    passed = replay_ok and speedup >= args.tolerance
    report["check"] = {
        "tolerance": args.tolerance,
        "replay_ok": replay_ok,
        "modeled_speedup": speedup,
        "passed": passed,
    }

    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")
    print(
        f"hive gate: {report['concurrent']['statements']} statements, "
        f"{report['clients']} clients, "
        f"wall {report['concurrent']['wall_seconds']:.2f}s"
    )
    print(
        f"replay: {'ok' if replay_ok else 'DIVERGED'} "
        f"({report['replay']['statements']} statements)"
    )
    print(
        f"modeled: serial {report['model']['serial_model_seconds']:.4f}s, "
        f"makespan {report['model']['makespan_model_seconds']:.4f}s, "
        f"speedup {speedup:.2f}x (gate {args.tolerance:.2f}x)"
    )
    print(f"wrote {args.out}")
    if args.check and not passed:
        print("CHECK FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
