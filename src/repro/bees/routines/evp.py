"""EVP — the specialized predicate-evaluation query-bee routine.

At query-preparation time the predicate's ``FuncExprState`` analog (an
:class:`repro.engine.expr.Expr` tree) is compiled into straight-line Python:
operator dispatch disappears, constants (including LIKE regexes and IN sets)
are inlined into the routine's data section, and column loads become direct
row indexing.  Two variants are generated:

* the *not-null* variant (used when every referenced column is NOT NULL,
  which the planner knows from the schema) is a single return expression
  with native short-circuiting;
* the *guarded* variant preserves SQL three-valued logic for nullable
  inputs, propagating ``None`` explicitly.

Both agree with the generic interpreter on every input (property-tested).
"""

from __future__ import annotations

from repro.cost import constants as C
from repro.bees.routines.base import BeeRoutine, compile_routine
from repro.engine import expr as E


class _Emitter:
    """Shared state while generating one EVP routine.

    *col_ref* is the source template for a bound column load; EVP reads
    from the deformed row (``row[{}]``), while the pipeline-bee codegen
    substitutes its hoisted per-tuple locals (``v{}``).
    """

    def __init__(self, col_ref: str = "row[{}]") -> None:
        self.lines: list[str] = []
        self.namespace: dict = {}
        self.col_ref = col_ref
        self._temp = 0
        self._const = 0

    def col(self, index: int) -> str:
        return self.col_ref.format(index)

    def temp(self) -> str:
        self._temp += 1
        return f"t{self._temp}"

    def const(self, value) -> str:
        """Inline simple literals; intern others in the data section."""
        if isinstance(value, (int, float, str, bool)) or value is None:
            return repr(value)
        name = f"k{self._const}"
        self._const += 1
        self.namespace[name] = value
        return name

    def add(self, line: str) -> None:
        self.lines.append("    " + line)


def _emit_direct(expr: E.Expr, em: _Emitter) -> str:
    """Not-null variant: return a Python expression string."""
    if isinstance(expr, E.Const):
        return em.const(expr.value)
    if isinstance(expr, E.Col):
        return em.col(expr.index)
    if isinstance(expr, E.Cmp):
        left = _emit_direct(expr.left, em)
        right = _emit_direct(expr.right, em)
        return f"({left} {E._CMP_PY[expr.op]} {right})"
    if isinstance(expr, E.Arith):
        left = _emit_direct(expr.left, em)
        right = _emit_direct(expr.right, em)
        return f"({left} {expr.op} {right})"
    if isinstance(expr, E.And):
        return "(" + " and ".join(_emit_direct(a, em) for a in expr.args) + ")"
    if isinstance(expr, E.Or):
        return "(" + " or ".join(_emit_direct(a, em) for a in expr.args) + ")"
    if isinstance(expr, E.Not):
        return f"(not {_emit_direct(expr.arg, em)})"
    if isinstance(expr, E.Like):
        name = f"re{em._const}"
        em._const += 1
        em.namespace[name] = expr._regex
        inner = f"({name}.match({_emit_direct(expr.arg, em)}) is not None)"
        return f"(not {inner})" if expr.negate else inner
    if isinstance(expr, E.InList):
        name = f"in{em._const}"
        em._const += 1
        em.namespace[name] = expr.values
        return f"({_emit_direct(expr.arg, em)} in {name})"
    if isinstance(expr, E.Between):
        arg = _emit_direct(expr.arg, em)
        return f"({em.const(expr.low)} <= {arg} <= {em.const(expr.high)})"
    if isinstance(expr, E.Case):
        result = _emit_direct(expr.default, em)
        for cond, value in reversed(expr.whens):
            cond_src = _emit_direct(cond, em)
            value_src = _emit_direct(value, em)
            result = f"({value_src} if {cond_src} else {result})"
        return result
    if isinstance(expr, E.IsNull):
        inner = f"({_emit_direct(expr.arg, em)} is None)"
        return f"(not {inner})" if expr.negate else inner
    if isinstance(expr, E.Func):
        name = f"fn{em._const}"
        em._const += 1
        em.namespace[name] = expr._fn
        args = ", ".join(_emit_direct(a, em) for a in expr.args)
        return f"{name}({args})"
    raise TypeError(f"cannot specialize expression node {type(expr).__name__}")


def _emit_guarded(expr: E.Expr, em: _Emitter) -> str:
    """Nullable variant: emit statements, return the temp holding the value."""
    out = em.temp()
    if isinstance(expr, E.Const):
        em.add(f"{out} = {em.const(expr.value)}")
    elif isinstance(expr, E.Col):
        em.add(f"{out} = {em.col(expr.index)}")
    elif isinstance(expr, (E.Cmp, E.Arith)):
        left = _emit_guarded(expr.left, em)
        right = _emit_guarded(expr.right, em)
        op = E._CMP_PY[expr.op] if isinstance(expr, E.Cmp) else expr.op
        em.add(
            f"{out} = None if {left} is None or {right} is None "
            f"else ({left} {op} {right})"
        )
    elif isinstance(expr, E.And):
        args = [_emit_guarded(a, em) for a in expr.args]
        falsy = " or ".join(f"{a} is False" for a in args)
        nully = " or ".join(f"{a} is None" for a in args)
        em.add(f"{out} = False if ({falsy}) else (None if ({nully}) else True)")
    elif isinstance(expr, E.Or):
        args = [_emit_guarded(a, em) for a in expr.args]
        truthy = " or ".join(f"{a} is True" for a in args)
        nully = " or ".join(f"{a} is None" for a in args)
        em.add(f"{out} = True if ({truthy}) else (None if ({nully}) else False)")
    elif isinstance(expr, E.Not):
        arg = _emit_guarded(expr.arg, em)
        em.add(f"{out} = None if {arg} is None else (not {arg})")
    elif isinstance(expr, E.Like):
        arg = _emit_guarded(expr.arg, em)
        name = f"re{em._const}"
        em._const += 1
        em.namespace[name] = expr._regex
        test = f"{name}.match({arg}) is None"
        if not expr.negate:
            test = f"not ({test})"
        em.add(f"{out} = None if {arg} is None else ({test})")
    elif isinstance(expr, E.InList):
        arg = _emit_guarded(expr.arg, em)
        name = f"in{em._const}"
        em._const += 1
        em.namespace[name] = expr.values
        em.add(f"{out} = None if {arg} is None else ({arg} in {name})")
    elif isinstance(expr, E.Between):
        arg = _emit_guarded(expr.arg, em)
        em.add(
            f"{out} = None if {arg} is None else "
            f"({em.const(expr.low)} <= {arg} <= {em.const(expr.high)})"
        )
    elif isinstance(expr, E.Case):
        # Pre-evaluate every arm (expressions are pure), then select; all
        # sub-results carry None through, matching the interpreter.
        arms = [
            (_emit_guarded(cond, em), _emit_guarded(value, em))
            for cond, value in expr.whens
        ]
        default = _emit_guarded(expr.default, em)
        first = True
        for cond, value in arms:
            keyword = "if" if first else "elif"
            em.add(f"{keyword} {cond} is True:")
            em.add(f"    {out} = {value}")
            first = False
        em.add("else:")
        em.add(f"    {out} = {default}")
    elif isinstance(expr, E.IsNull):
        arg = _emit_guarded(expr.arg, em)
        test = f"{arg} is None"
        if expr.negate:
            test = f"{arg} is not None"
        em.add(f"{out} = {test}")
    elif isinstance(expr, E.Func):
        args = [_emit_guarded(a, em) for a in expr.args]
        name = f"fn{em._const}"
        em._const += 1
        em.namespace[name] = expr._fn
        nully = " or ".join(f"{a} is None" for a in args)
        call = f"{name}({', '.join(args)})"
        em.add(f"{out} = None if ({nully}) else {call}")
    else:
        raise TypeError(
            f"cannot specialize expression node {type(expr).__name__}"
        )
    return out


def generate_evp(
    expr: E.Expr, ledger, fn_name: str, assume_not_null: bool = False
) -> BeeRoutine:
    """Compile *expr* (already bound) into an EVP bee routine.

    Args:
        expr: bound expression tree.
        ledger: cost ledger of the owning database.
        fn_name: routine name, used for profiling attribution.
        assume_not_null: emit the faster direct variant; only valid when
            every referenced column comes from NOT NULL attributes.
    """
    if not E.is_bound(expr):
        raise ValueError("EVP specialization requires a bound expression")
    cost = C.EVP_PROLOGUE + expr.evp_cost
    em = _Emitter()
    em.namespace["_charge"] = ledger.charge_fn
    em.namespace["_COST"] = cost
    header = [
        f"def {fn_name}(row):",
        f'    """Specialized predicate (generated query-bee routine)."""',
        f"    _charge({fn_name!r}, _COST)",
    ]
    if assume_not_null:
        body = _emit_direct(expr, em)
        source = "\n".join(header + em.lines + [f"    return {body}"]) + "\n"
    else:
        result = _emit_guarded(expr, em)
        source = "\n".join(header + em.lines + [f"    return {result}"]) + "\n"
    fn = compile_routine(source, fn_name, em.namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=cost, source=source, namespace=em.namespace,
    )
