"""The declared shared-state registry: the engine's mutable surface.

Every attribute/global/container write the shared-state pass finds on a
path reachable from ``Database.sql`` must match exactly one entry here
(or be provably statement-local).  An entry names the *guard* a future
morsel-parallel tier must take before touching the state and the
*epoch* whose bump invalidates anything derived from it — so the
registry is not documentation, it is the machine-checked contract the
parallel PR consumes: partition the entries by guard, and every write
outside the registry is a build failure, not a data race.

Scopes:

* ``shared-mutable`` — outlives a statement and is visible to every
  statement on the session (and, later, to every worker).  Must name a
  guard and an epoch.
* ``statement-local`` — owned by one statement execution (plan nodes,
  exec contexts, DML row buffers); reachable code writes it, but a new
  statement always starts from fresh objects, so workers never contend.
"""

from __future__ import annotations

from dataclasses import dataclass

SHARED = "shared-mutable"
LOCAL = "statement-local"


@dataclass(frozen=True)
class SharedState:
    """One declared mutable location: ``cls.attr`` (cls ``"*"`` matches
    writes whose receiver class static analysis cannot pin)."""

    cls: str
    attr: str
    scope: str          # SHARED | LOCAL
    guard: str = ""     # lock a morsel worker must hold (SHARED only)
    epoch: str = ""     # version whose bump invalidates derived state
    note: str = ""

    @property
    def key(self) -> str:
        return f"{self.cls}.{self.attr}"

    def to_dict(self) -> dict:
        return {
            "cls": self.cls,
            "attr": self.attr,
            "scope": self.scope,
            "guard": self.guard,
            "epoch": self.epoch,
            "note": self.note,
        }


def _shared(cls, attr, guard, epoch, note=""):
    return SharedState(cls, attr, SHARED, guard, epoch, note)


def _local(cls, attr, note=""):
    return SharedState(cls, attr, LOCAL, note=note)


#: The closed registry.  Ordering groups entries by subsystem.
REGISTRY: tuple[SharedState, ...] = (
    # -- cost ledger: every charge is a counter bump -------------------------
    _shared("Ledger", "total", "ledger_lock", "-",
            "monotonic instruction counter; per-worker ledgers merge"),
    _shared("Ledger", "by_function", "ledger_lock", "-",
            "per-function counter dict"),
    _shared("Ledger", "profiling", "ledger_lock", "-",
            "profiling on/off flag"),
    _shared("Ledger", "seq_pages_read", "ledger_lock", "-"),
    _shared("Ledger", "rand_pages_read", "ledger_lock", "-"),
    _shared("Ledger", "pages_hit", "ledger_lock", "-"),

    # -- buffer pool ---------------------------------------------------------
    _shared("BufferPool", "_resident", "buffer_lock", "HeapFile.version",
            "page residency set; morsel workers shard or replicate it"),

    # -- chunk cache (vector tier) ------------------------------------------
    _shared("ChunkCache", "_entries", "chunk_lock", "HeapFile.version",
            "uid -> (version, layout, frozen Chunk); arrays are "
            "read-only after insertion (escape pass)"),
    _shared("ChunkCache", "hits", "chunk_lock", "-"),
    _shared("ChunkCache", "misses", "chunk_lock", "-"),

    # -- bee module memo caches ---------------------------------------------
    _shared("GenericBeeModule", "_evp_by_expr", "hive_lock",
            "GenericBeeModule.query_epoch"),
    _shared("GenericBeeModule", "_evj_by_shape", "hive_lock",
            "GenericBeeModule.query_epoch"),
    _shared("GenericBeeModule", "_agg_by_specs", "hive_lock",
            "GenericBeeModule.query_epoch"),
    _shared("GenericBeeModule", "_agg_counter", "hive_lock", "-",
            "name counter for generated AGG routines"),
    _shared("GenericBeeModule", "_idx_by_index", "hive_lock",
            "GenericBeeModule.query_epoch"),
    _shared("GenericBeeModule", "_pipeline_by_node", "hive_lock",
            "GenericBeeModule.query_epoch"),
    _shared("GenericBeeModule", "_vector_by_node", "hive_lock",
            "GenericBeeModule.query_epoch"),
    _shared("GenericBeeModule", "query_epoch", "hive_lock", "-",
            "the invalidation epoch itself"),

    # -- resilience registry -------------------------------------------------
    _shared("ResilienceRegistry", "_health", "resilience_lock", "-",
            "bee name -> quarantine state machine"),
    _shared("ResilienceRegistry", "_events", "resilience_lock", "-"),
    _shared("ResilienceRegistry", "_counts", "resilience_lock", "-"),

    # -- session/database fields --------------------------------------------
    _shared("Database", "settings", "session", "-",
            "per-statement settings swap (use_settings); sessions get "
            "their own settings view under the server"),
    _shared("Database", "_deadline", "session", "-",
            "per-statement timeout deadline"),

    _shared("Database", "_relations", "catalog_lock", "HeapFile.version",
            "name -> Relation runtime mirror of the catalog; mutated by "
            "DDL via catalog listeners"),

    # -- catalog -------------------------------------------------------------
    _shared("Catalog", "_relations", "catalog_lock", "HeapFile.version",
            "relation name -> Relation; DDL only"),
    _shared("Catalog", "_relids", "catalog_lock", "-"),
    _shared("Catalog", "_next_relid", "catalog_lock", "-"),
    _shared("AnnotationSet", "_by_relation", "catalog_lock", "-",
            "relation -> value-distribution annotations (ANALYZE)"),

    # -- relations and their storage ----------------------------------------
    _shared("Relation", "heap", "relation_lock", "HeapFile.version",
            "heap swap on VACUUM"),
    _shared("Relation", "indexes", "relation_lock", "HeapFile.version",
            "index rebuild on VACUUM / CREATE INDEX"),
    _shared("Relation", "bee", "relation_lock", "-",
            "relation bee slot; replaced on ALTER"),
    _shared("Relation", "_index_keys", "relation_lock", "-",
            "index name -> key attnums; CREATE INDEX only"),
    _shared("Relation", "_idx_routines", "relation_lock", "-",
            "index name -> IDX extractor routine; CREATE INDEX only"),
    _shared("HeapFile", "pages", "relation_lock", "HeapFile.version",
            "page list append/extend under DML"),
    _shared("HeapFile", "live_count", "relation_lock", "-"),
    _shared("HeapFile", "version", "relation_lock", "-",
            "the storage invalidation epoch itself"),
    _shared("HeapPage", "data", "relation_lock", "HeapFile.version",
            "slotted-page byte mutation under DML"),
    _shared("HeapPage", "upper", "relation_lock", "HeapFile.version"),
    _shared("HeapPage", "lower", "relation_lock", "HeapFile.version"),
    _shared("HeapPage", "nslots", "relation_lock", "HeapFile.version"),
    _shared("BTreeIndex", "_keys", "relation_lock", "HeapFile.version"),
    _shared("BTreeIndex", "_tids", "relation_lock", "HeapFile.version"),
    _shared("BTreeIndex", "_seq", "relation_lock", "HeapFile.version"),
    _shared("HashIndex", "_buckets", "relation_lock", "HeapFile.version"),

    # -- bee lifecycle -------------------------------------------------------
    _shared("BeeCache", "relation_bees", "hive_lock",
            "GenericBeeModule.query_epoch",
            "relation -> installed GCL/SCL routines"),
    _shared("BeeCache", "query_bees", "hive_lock",
            "GenericBeeModule.query_epoch",
            "installed query-bee routines; cleared on invalidation"),
    _shared("BeeCollector", "collected_relation_bees", "hive_lock", "-",
            "uninstalled-routine graveyard (HSR reuse)"),
    _shared("BeeCollector", "collected_query_bees", "hive_lock", "-"),
    _shared("BeeMaker", "_evp_counter", "hive_lock", "-"),
    _shared("BeeMaker", "_evj_counter", "hive_lock", "-"),
    _shared("BeeMaker", "_pipeline_counter", "hive_lock", "-"),
    _shared("BeeMaker", "_vector_counter", "hive_lock", "-"),
    _shared("DataSectionStore", "_slabs", "hive_lock", "-",
            "data-section slab allocator"),
    _shared("*", "slab", "hive_lock", "-",
            "element view of DataSectionStore._slabs (from _slab_slot); "
            "same lock as the slab list itself"),
    _shared("DataSectionStore", "_by_key", "hive_lock", "-"),
    _shared("DataSectionStore", "_shadow", "hive_lock", "-"),
    _shared("DataSectionStore", "count", "hive_lock", "-"),
    _shared("DataSectionStore", "overflowed", "hive_lock", "-"),
    _shared("BeeHealth", "quarantined", "resilience_lock", "-"),
    _shared("BeeHealth", "probing", "resilience_lock", "-"),
    _shared("BeeHealth", "quarantines", "resilience_lock", "-"),
    _shared("BeeHealth", "window", "resilience_lock", "-"),
    _shared("BeeHealth", "denied", "resilience_lock", "-"),
    _shared("BeeHealth", "consecutive", "resilience_lock", "-"),

    # -- parallel tier: morsel coordinator + worker pool ---------------------
    # The coordinator lives on the session side of the worker pipes; only
    # the session thread running ``db.sql`` touches it today, but every
    # entry names the guard a multi-session server must take.  Worker-side
    # state (``_WorkerState``) is forked-process private: nothing aliases
    # coordinator memory, replies travel by pickle.
    _shared("Database", "_parallel", "session", "-",
            "lazily constructed morsel coordinator handle; close() joins"),
    _shared("ParallelCoordinator", "_workers", "parallel_lock", "-",
            "persistent worker pool; replaced wholesale on crash/shutdown"),
    _shared("ParallelCoordinator", "_shipped", "parallel_lock",
            "HeapFile.version",
            "per-worker relation -> (uid, version) snapshot tokens; a "
            "version bump forces a re-ship"),
    _shared("ParallelCoordinator", "_epoch", "parallel_lock",
            "GenericBeeModule.query_epoch",
            "last query epoch broadcast to the pool; a bump invalidates "
            "every worker-side bee/snapshot cache"),
    _shared("ParallelCoordinator", "_stmt_seq", "parallel_lock", "-",
            "monotonic statement id for the prepare/task protocol"),
    _shared("ParallelCoordinator", "_chaos_kill_next", "parallel_lock", "-",
            "one-shot chaos hook: kill a worker mid-morsel"),
    _shared("ParallelCoordinator", "_chaos_stale_next", "parallel_lock", "-",
            "one-shot chaos hook: force a stale-epoch retry"),
    _shared("ParallelStats", "workers_spawned", "parallel_lock", "-"),
    _shared("ParallelStats", "statements", "parallel_lock", "-"),
    _shared("ParallelStats", "morsels_dispatched", "parallel_lock", "-"),
    _shared("ParallelStats", "epoch_invalidations", "parallel_lock", "-"),
    _shared("ParallelStats", "snapshot_ships", "parallel_lock", "-"),
    _shared("ParallelStats", "stale_retries", "parallel_lock", "-"),
    _shared("ParallelStats", "worker_crashes", "parallel_lock", "-"),
    _shared("ParallelStats", "degradations", "parallel_lock", "-"),
    _shared("ParallelStats", "bypassed", "parallel_lock", "-"),

    # -- server: sessions, admission, schedule, data WAL ---------------------
    # The Hive Gate server (PR 10) is what finally *takes* the guards
    # declared above: ``repro.server.locks.HiveLocks`` materializes every
    # guard name into a live lock, and the ``locks`` pass certifies the
    # resolution in both directions.  ``session`` remains the
    # session-confinement pseudo-guard; ``latch-internal`` marks fields
    # mutated under the latch's own condition-variable lock.
    _shared("Database", "_server", "session", "-",
            "attached HiveServer handle; wired at server construction, "
            "cleared by close() — only the owning thread does either"),
    _shared("Session", "closed", "server_lock", "-",
            "set by HiveServer._close_session under server_lock"),
    _shared("Session", "statements", "session", "-",
            "per-session statement count; a session is used by one "
            "thread at a time"),
    _shared("Session", "_last_versions", "session", "-",
            "relation -> (heap uid, version) snapshot-monotonicity pins"),
    _shared("HiveServer", "_seq", "server_lock", "-",
            "global statement sequence, assigned after latch grant"),
    _shared("HiveServer", "_waiting", "server_lock", "-"),
    _shared("HiveServer", "_executing", "server_lock", "-"),
    _shared("HiveServer", "_closed", "server_lock", "-"),
    _shared("HiveServer", "_durable", "server_lock", "-",
            "flips to False when a group fsync fails (degraded mode)"),
    _shared("HiveServer", "_sessions", "server_lock", "-"),
    _shared("HiveServer", "_next_session_id", "server_lock", "-"),
    _shared("HiveServer", "schedule", "server_lock", "-",
            "ScheduleEntry list the serialized oracle replays"),
    _shared("ServerStats", "sessions_opened", "server_lock", "-"),
    _shared("ServerStats", "sessions_closed", "server_lock", "-"),
    _shared("ServerStats", "statements", "server_lock", "-"),
    _shared("ServerStats", "reads", "server_lock", "-"),
    _shared("ServerStats", "writes", "server_lock", "-"),
    _shared("ServerStats", "ddl", "server_lock", "-"),
    _shared("ServerStats", "errors", "server_lock", "-"),
    _shared("ServerStats", "timeouts", "server_lock", "-"),
    _shared("ServerStats", "lock_timeouts", "server_lock", "-"),
    _shared("ServerStats", "snapshot_violations", "server_lock", "-"),
    _shared("ServerStats", "refused", "server_lock", "-"),
    _shared("ServerStats", "sheds", "server_lock", "-"),
    _shared("ServerStats", "disconnects", "server_lock", "-"),
    _shared("ServerStats", "wal_failures", "server_lock", "-"),
    _shared("ServerStats", "queue_high_water", "server_lock", "-"),
    _shared("GroupCommitter", "_pending", "wal_lock", "-",
            "the forming group; wal_lock backs the condition variable"),
    _shared("GroupCommitter", "_ticket", "wal_lock", "-"),
    _shared("GroupCommitter", "_flushed", "wal_lock", "-",
            "highest ticket whose group flush was attempted"),
    _shared("GroupCommitter", "_flushed_ok", "wal_lock", "-",
            "highest ticket actually durable on disk"),
    _shared("GroupCommitter", "_leader", "wal_lock", "-"),
    _shared("GroupCommitter", "_broken", "wal_lock", "-",
            "poison: the exception that ended durability"),
    _shared("GroupCommitter", "batches", "wal_lock", "-"),
    _shared("GroupCommitter", "records_logged", "wal_lock", "-"),
    _shared("GroupCommitter", "max_batch", "wal_lock", "-"),
    _shared("DataWAL", "_chaos_fsync_fail", "group-leader", "-",
            "one-shot chaos hook: fail the next N fsyncs; armed before "
            "the run, consumed inside the leader's flush"),
    _shared("DataWAL", "fsyncs", "group-leader", "-",
            "bumped inside the leader's flush, which runs the file "
            "write outside wal_lock — leadership is the exclusion"),
    _shared("RWLatch", "_readers", "latch-internal", "-"),
    _shared("RWLatch", "_writer", "latch-internal", "-"),
    _shared("RWLatch", "_writers_waiting", "latch-internal", "-"),
    _shared("RelationLatches", "_latches", "latch-internal", "-",
            "name -> RWLatch, populated under the manager's own guard"),

    _shared("*", "epoch", "hive_lock", "GenericBeeModule.query_epoch",
            "query-epoch stamp written onto routines at memo time"),
)


_BY_KEY = {entry.key: entry for entry in REGISTRY}


def lookup(cls: str | None, attr: str) -> SharedState | None:
    """The registry entry for a write to ``cls.attr``, else None.

    Falls back to a ``"*"`` wildcard entry for *attr* when the receiver
    class is unknown (or has no exact entry) — acceptable because every
    write still has to match *some* declared entry.
    """
    if cls:
        entry = _BY_KEY.get(f"{cls}.{attr}")
        if entry is not None:
            return entry
    return _BY_KEY.get(f"*.{attr}")
