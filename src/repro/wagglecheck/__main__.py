from repro.wagglecheck.cli import main

raise SystemExit(main())
