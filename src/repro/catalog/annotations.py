"""DBA annotations driving tuple-bee specialization.

The paper extends the DDL with annotations naming low-cardinality attributes
(e.g. ``gender``, TPC-H's ``l_returnflag``); tuple bees then hoist those
attribute values out of stored tuples into per-bee data sections.  This
module records annotations per relation and provides the simple inference
the paper mentions (small-domain CHAR columns inferred from sampled data).
"""

from __future__ import annotations

from collections import defaultdict


# The paper checks "the few (maximally 256) possible values with memcmp";
# beyond this the memcmp scan stops being cheap.  We treat it as a soft cap:
# exceeding it is allowed but reported by the bee module's statistics.
DEFAULT_CARDINALITY_CAP = 256


class AnnotationSet:
    """Low-cardinality annotations for the relations of one database."""

    def __init__(self, cardinality_cap: int = DEFAULT_CARDINALITY_CAP) -> None:
        self.cardinality_cap = cardinality_cap
        self._by_relation: dict[str, list[str]] = defaultdict(list)

    def annotate(self, relation: str, *attribute_names: str) -> None:
        """Mark *attribute_names* of *relation* as low-cardinality.

        Annotated attributes become candidates for tuple-bee specialization:
        their values move into bee data sections and out of stored tuples.
        Order of annotation is preserved (it defines data-section layout).
        """
        if not attribute_names:
            raise ValueError("annotate() requires at least one attribute name")
        existing = self._by_relation[relation]
        for name in attribute_names:
            if name not in existing:
                existing.append(name)

    def clear(self, relation: str) -> None:
        """Remove all annotations for *relation*."""
        self._by_relation.pop(relation, None)

    def annotated_attributes(self, relation: str) -> tuple[str, ...]:
        """Annotated attribute names for *relation*, in annotation order."""
        return tuple(self._by_relation.get(relation, ()))

    def is_annotated(self, relation: str) -> bool:
        """True when *relation* has at least one annotated attribute."""
        return bool(self._by_relation.get(relation))


def infer_annotations(
    rows: list[tuple],
    schema,
    max_cardinality: int = 16,
    sample_size: int = 2000,
) -> list[str]:
    """Infer low-cardinality CHAR attributes from a sample of rows.

    This is the paper's "annotations ... can be inferred" hook: any fixed
    CHAR column whose sampled distinct-value count is at most
    *max_cardinality* is suggested.  Returns attribute names in schema order.
    """
    if not rows:
        return []
    sample = rows[:sample_size]
    suggested = []
    for attr in schema.attributes:
        if attr.sql_type.is_varlena or attr.sql_type.struct_fmt:
            continue  # only fixed CHAR(n) columns are candidates
        distinct = {row[attr.attnum] for row in sample}
        if len(distinct) <= max_cardinality:
            suggested.append(attr.name)
    return suggested
