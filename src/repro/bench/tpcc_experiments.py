"""TPC-C experiment runner: the Section VI-C throughput comparison."""

from __future__ import annotations

from dataclasses import dataclass

from repro.bees.settings import BeeSettings
from repro.workloads.tpcc.loader import TPCCConfig, build_tpcc_database
from repro.workloads.tpcc.runner import MIXES, TPCCResult, run_mix


@dataclass
class MixComparison:
    """Stock-vs-bees throughput for one transaction mix."""

    mix: str
    stock: TPCCResult
    bees: TPCCResult

    @property
    def throughput_improvement(self) -> float:
        """Gain in total transactions per simulated minute (percent)."""
        if not self.stock.tpm_total:
            return 0.0
        return 100.0 * (self.bees.tpm_total / self.stock.tpm_total - 1.0)

    @property
    def tpmc_improvement(self) -> float:
        """Gain in New-Order transactions per simulated minute (percent)."""
        if not self.stock.tpmC:
            return 0.0
        return 100.0 * (self.bees.tpmC / self.stock.tpmC - 1.0)


def run_tpcc_comparison(
    config: TPCCConfig | None = None,
    mixes: list[str] | None = None,
    n_transactions: int = 300,
    seed: int = 99,
) -> dict[str, MixComparison]:
    """Run each mix on fresh stock and bee-enabled TPC-C databases."""
    config = config or TPCCConfig()
    out: dict[str, MixComparison] = {}
    for mix in mixes or list(MIXES):
        stock_db = build_tpcc_database(BeeSettings.stock(), config)
        bees_db = build_tpcc_database(BeeSettings.all_bees(), config)
        out[mix] = MixComparison(
            mix=mix,
            stock=run_mix(stock_db, config, mix, n_transactions, seed),
            bees=run_mix(bees_db, config, mix, n_transactions, seed),
        )
    return out
