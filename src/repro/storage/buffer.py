"""Buffer pool: simulated page residency with LRU replacement.

Heap pages live in Python memory regardless; the buffer pool only decides
whether an access counts as a *hit* (free) or a *miss* (charged to the
ledger's simulated I/O counters).  The warm-cache experiments (Fig. 4)
pre-warm every page; the cold-cache experiments (Fig. 5) start empty, so
relations shrunk by tuple bees read fewer pages and win on I/O.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.cost.ledger import Ledger

DEFAULT_CAPACITY_PAGES = 16384  # 128 MB of 8KB pages


class BufferPool:
    """Tracks which ``(relation, pageno)`` pages are resident, LRU-evicted.

    LRU maintenance is a compound check-then-act over an ``OrderedDict``
    (membership test, ``move_to_end``, eviction ``popitem``), so every
    public method runs under *lock* — the database's materialized
    ``buffer_lock`` guard from the swarmcheck registry.  Single-session
    use never contends; the server's concurrent readers do.
    """

    def __init__(
        self, ledger: Ledger, capacity_pages: int = DEFAULT_CAPACITY_PAGES,
        lock=None,
    ) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs capacity of at least one page")
        self.ledger = ledger
        self.capacity_pages = capacity_pages
        self._lock = lock if lock is not None else threading.RLock()
        self._resident: OrderedDict[tuple[str, int], None] = OrderedDict()

    def access(self, relation: str, pageno: int, sequential: bool = True) -> bool:
        """Record an access; returns True on hit, False on (charged) miss."""
        key = (relation, pageno)
        with self._lock:
            resident = self._resident
            if key in resident:
                resident.move_to_end(key)
                self.ledger.hit_page()
                return True
            self.ledger.read_page(sequential=sequential)
            resident[key] = None
            if len(resident) > self.capacity_pages:
                resident.popitem(last=False)
            return False

    def install(self, relation: str, pageno: int) -> None:
        """Make a page resident without charging I/O (e.g. a fresh page)."""
        key = (relation, pageno)
        with self._lock:
            self._resident[key] = None
            self._resident.move_to_end(key)
            if len(self._resident) > self.capacity_pages:
                self._resident.popitem(last=False)

    def invalidate_relation(self, relation: str) -> None:
        """Drop every resident page of *relation* (relation dropped)."""
        with self._lock:
            stale = [key for key in self._resident if key[0] == relation]
            for key in stale:
                del self._resident[key]

    def clear(self) -> None:
        """Empty the pool — the cold-cache starting state."""
        with self._lock:
            self._resident.clear()

    def warm(self, relation: str, page_count: int) -> None:
        """Mark pages ``0..page_count-1`` of *relation* resident (no I/O)."""
        for pageno in range(page_count):
            self.install(relation, pageno)

    @property
    def resident_pages(self) -> int:
        """Number of currently resident pages."""
        with self._lock:
            return len(self._resident)
