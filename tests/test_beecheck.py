"""Beecheck: pass-level units, tamper rejection, and maker gating."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.beecheck import (
    BeecheckError,
    check_evp,
    check_gcl,
    check_scl,
    verify_gcl,
)
from repro.beecheck.absint import s_add, s_addvar, s_align, s_const, s_mod
from repro.beecheck.selftest import _tamper, run_selftest
from repro.beecheck.transval import enumerate_rows, ledger_guard
from repro.bees.routines.evp import generate_evp
from repro.bees.routines.gcl import generate_gcl
from repro.bees.routines.scl import generate_scl
from repro.bees.settings import BeeSettings
from repro.catalog import BOOL, INT4, NUMERIC, char, make_schema, varchar
from repro.cost.ledger import Ledger
from repro.db import Database
from repro.engine import expr as E
from repro.storage.layout import TupleLayout


@pytest.fixture()
def layout(orders_schema):
    return TupleLayout(orders_schema)


@pytest.fixture()
def gcl(layout):
    return generate_gcl(layout, Ledger(), "GCL_orders")


@pytest.fixture()
def scl(layout):
    return generate_scl(layout, Ledger(), "SCL_orders")


# -- clean routines pass every lane ------------------------------------------


def test_clean_gcl_passes_all_lanes(gcl, layout):
    report = check_gcl(gcl, layout)
    assert report.ok, [str(f) for f in report.findings]
    assert set(report.passes) == {
        "lint", "absint", "costaudit", "transval", "determinism",
    }
    assert all(status == "ok" for status in report.passes.values())


def test_clean_scl_passes_all_lanes(scl, layout):
    report = check_scl(scl, layout)
    assert report.ok, [str(f) for f in report.findings]


def test_clean_evp_passes_both_variants():
    expr = E.And(
        E.Cmp("<", E.Col("a", 0), E.Const(10)),
        E.Like(E.Col("b", 1), "ab%"),
    )
    for assume_not_null in (False, True):
        routine = generate_evp(
            expr, Ledger(), "EVP_t", assume_not_null=assume_not_null
        )
        report = check_evp(routine, expr)
        assert report.ok, [str(f) for f in report.findings]


def test_tuple_bee_layout_passes(orders_schema):
    layout = TupleLayout(
        orders_schema, ("o_orderstatus", "o_orderpriority")
    )
    ledger = Ledger()
    assert check_gcl(generate_gcl(layout, ledger, "GCL_tb"), layout).ok
    assert check_scl(generate_scl(layout, ledger, "SCL_tb"), layout).ok


def test_bool_before_char_prefix_passes():
    # The generator batches CHAR strips before BOOL casts; absint must
    # accept that order, not the interleaved layout order (seed-3 corpus
    # regression).
    schema = make_schema(
        "bc",
        [("f", BOOL), ("g", char(3)), ("h", BOOL), ("k", INT4)],
    )
    layout = TupleLayout(schema)
    gcl = generate_gcl(layout, Ledger(), "GCL_bc")
    report = check_gcl(gcl, layout)
    assert report.ok, [str(f) for f in report.findings]


# -- the symbolic domain -----------------------------------------------------


def test_symbolic_alignment_facts():
    off = s_const(8)
    assert s_mod(off, 8) == 0
    off = s_addvar(s_add(off, 4), "ln0")      # varlena: alignment lost
    assert s_mod(off, 4) is None
    off = s_align(off, 8)                     # align round restores it
    assert s_mod(off, 8) == 0
    assert s_mod(off, 4) == 0                 # 8-aligned implies 4-aligned
    assert s_mod(s_add(off, 2), 4) == 2
    # aligning an already-aligned expression is a no-op
    assert s_align(off, 4) == off


def test_symbolic_constants_fold():
    assert s_align(s_const(13), 8) == s_const(16)
    assert s_add(s_const(3), 4) == s_const(7)


# -- each pass rejects its tamper class --------------------------------------


def test_lint_rejects_smuggled_loop(gcl, layout):
    bad = _tamper(
        gcl, "    return [", "    for _i in range(1): pass\n    return ["
    )
    report = check_gcl(bad, layout)
    assert any(
        f.pass_name == "lint" and "For" in f.message for f in report.findings
    )


def test_lint_rejects_wrong_guard(gcl, layout):
    bad = _tamper(gcl, "raw[0] & 1", "raw[0] & 2")
    report = check_gcl(bad, layout)
    assert any(f.pass_name == "lint" for f in report.findings)


def test_absint_rejects_offset_bump(gcl, layout):
    bad = _tamper(gcl, "off = off + 4 + ln", "off = off + 5 + ln")
    assert any(
        f.pass_name == "absint"
        for f in check_gcl(bad, layout).findings
    )


def test_absint_rejects_weakened_alignment():
    # varlena first, then an 8-aligned column: the align round is load-
    # bearing, and weakening it is caught symbolically (no execution).
    schema = make_schema("u", [("a", varchar(5)), ("b", NUMERIC)])
    layout = TupleLayout(schema)
    gcl = generate_gcl(layout, Ledger(), "GCL_u")
    bad = _tamper(gcl, "(off + 7) & -8", "(off + 3) & -4")
    findings = check_gcl(bad, layout).findings
    assert any(
        f.pass_name == "absint" and "requires 8" in f.message
        for f in findings
    )


def test_costaudit_rejects_inflated_cost(gcl, layout):
    bad = dataclasses.replace(gcl, cost=gcl.cost + 10)
    assert any(
        f.pass_name == "costaudit"
        for f in check_gcl(bad, layout).findings
    )


def test_transval_catches_wrapped_fn(gcl, layout):
    # Source pristine, compiled fn corrupted — only execution can see it.
    inner = gcl.fn

    def corrupt(raw, sections):
        row = list(inner(raw, sections))
        row[0] += 1
        return row

    bad = dataclasses.replace(gcl)
    bad.fn = corrupt
    report = check_gcl(bad, layout)
    fired = {f.pass_name for f in report.findings}
    assert fired == {"transval"}


def test_scl_error_contract_is_checked(layout):
    # An SCL that silently truncates over-width CHAR values diverges
    # from the generic encode's ValueError and must be flagged.
    scl = generate_scl(layout, Ledger(), "SCL_orders")
    bad = _tamper(scl, "_char(", "_trunc(")
    bad.namespace["_trunc"] = lambda v, w, n: v.encode()[:w].ljust(w, b" ")
    bad.fn = __import__("repro.bees.routines.base", fromlist=["x"]).compile_routine(
        bad.source, bad.name, bad.namespace
    )
    report = check_scl(bad, layout)
    assert any(
        f.pass_name == "transval" and "ValueError" in f.message
        for f in report.findings
    )


# -- transval plumbing -------------------------------------------------------


def test_ledger_guard_restores_counters(gcl, layout):
    ledger = gcl.namespace["_charge"].__self__
    before = ledger.total
    report = check_gcl(gcl, layout)
    assert report.ok
    assert ledger.total == before


def test_ledger_guard_contextmanager(gcl):
    ledger = gcl.namespace["_charge"].__self__
    with ledger_guard(gcl):
        ledger.charge(123)
    assert ledger.total == 0


def test_enumerate_rows_is_deterministic_and_capped():
    domains = [[0, 1, 2], ["a", "b"], [True, False]]
    rows = enumerate_rows(domains)
    assert rows == enumerate_rows(domains)
    assert len(rows) == len({tuple(r) for r in rows})
    # One-hot alone over 8 ten-value domains exceeds the cap.
    big = enumerate_rows([list(range(10))] * 8, cap=50)
    assert len(big) == 50


# -- maker gating (verify_on_generate) ---------------------------------------


def test_verify_on_generate_refuses_injected_gcl():
    from repro.oracle.inject import inject_bug

    settings = BeeSettings.all_bees().enabling(verify_on_generate=True)
    with inject_bug("gcl"):
        db = Database(settings)
        with pytest.raises(BeecheckError) as excinfo:
            db.sql("CREATE TABLE t (a INT NOT NULL, b INT NOT NULL)")
    assert "transval" in str(excinfo.value)


def test_verify_on_generate_refuses_injected_evp():
    from repro.oracle.inject import inject_bug

    settings = BeeSettings.all_bees().enabling(verify_on_generate=True)
    with inject_bug("evp"):
        db = Database(settings)
        db.sql("CREATE TABLE t (a INT NOT NULL)")
        db.sql("INSERT INTO t VALUES (1)")
        with pytest.raises(BeecheckError):
            db.sql("SELECT a FROM t WHERE a < 5")


def test_verify_on_generate_clean_database_works():
    settings = BeeSettings.all_bees().enabling(verify_on_generate=True)
    db = Database(settings)
    db.sql("CREATE TABLE t (a INT NOT NULL, b TEXT NOT NULL)")
    db.sql("INSERT INTO t VALUES (1, 'x')")
    assert db.sql("SELECT a FROM t WHERE b LIKE 'x%'").rows == [(1,)]


def test_with_routines_preserves_verify_flag():
    settings = BeeSettings(verify_on_generate=True).with_routines("gcl")
    assert settings.verify_on_generate
    assert settings.gcl and not settings.scl


def test_verify_gcl_raises_with_findings(gcl, layout):
    bad = _tamper(gcl, "off = off + 4 + ln", "off = off + 5 + ln")
    with pytest.raises(BeecheckError) as excinfo:
        verify_gcl(bad, layout)
    assert excinfo.value.findings


# -- self-test and CLI -------------------------------------------------------


def test_selftest_catches_every_case():
    results = run_selftest()
    assert results and all(results.values()), results
    assert {"inject-gcl", "inject-evp"} <= set(results)


def test_cli_sweep_writes_report(tmp_path):
    from repro.beecheck.cli import main

    code = main(
        ["--statements", "25", "--out", str(tmp_path), "--no-selftest"]
    )
    assert code == 0
    payload = json.loads((tmp_path / "report.json").read_text())
    assert payload["ok"] is True
    assert payload["routines_checked"] >= 46  # 23 schema sweeps x 2
    assert payload["failures"] == 0
    kinds = payload["routines_by_kind"]
    assert kinds["gcl"] >= 23 and kinds["scl"] >= 23


def test_report_json_shape(gcl, layout):
    report = check_gcl(gcl, layout)
    payload = report.to_dict()
    assert payload["routine"] == "GCL_orders"
    assert payload["kind"] == "gcl"
    assert payload["passes"] == {
        "lint": "ok", "absint": "ok", "costaudit": "ok", "transval": "ok",
        "determinism": "ok",
    }
