"""Self-test: plant lifecycle bugs, require the audit to catch them.

Each :class:`InjectionCase` patches the *in-memory* source of one engine
module (via :class:`EngineSource` overrides — disk is never touched) to
delete or rewire a known invalidation edge, re-runs the audit, and
requires that (a) every expected ``(rule, function)`` finding appears
among the findings that are *new* relative to the clean baseline, and
(b) every new finding is attributed to one of the expected functions —
the analyzer must name the broken site, not just turn red somewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hiveaudit.audit import run_audit
from repro.hiveaudit.source import EngineSource


@dataclass(frozen=True)
class InjectionCase:
    name: str
    module: str
    description: str
    old: str
    new: str
    expected: tuple  # ((rule name, qualname), ...)


CASES = (
    InjectionCase(
        "del-drop-bee",
        "db.py",
        "DROP listener no longer collects the relation bee",
        "        self.bee_module.drop_relation_bee(name)\n",
        "",
        (
            ("drop-collects-relation-bee", "Catalog.drop_relation"),
            ("annotation-reaches-bee-lifecycle", "Catalog.drop_relation"),
        ),
    ),
    InjectionCase(
        "del-drop-buffer",
        "db.py",
        "DROP listener no longer purges buffered pages",
        "        self._relations.pop(name, None)\n"
        "        self.buffer_pool.invalidate_relation(name)\n",
        "        self._relations.pop(name, None)\n",
        (("drop-invalidates-buffer", "Catalog.drop_relation"),),
    ),
    InjectionCase(
        "del-drop-listener",
        "db.py",
        "the drop listener is never registered",
        '        self.catalog.on("drop", self._on_drop)\n',
        "",
        (
            ("drop-collects-relation-bee", "Catalog.drop_relation"),
            ("drop-invalidates-buffer", "Catalog.drop_relation"),
            ("annotation-reaches-bee-lifecycle", "Catalog.drop_relation"),
        ),
    ),
    InjectionCase(
        "rewire-alter-listener",
        "db.py",
        "the ALTER handler listens to the wrong catalog event",
        '        self.catalog.on("alter", self._on_alter)\n',
        '        self.catalog.on("create", self._on_alter)\n',
        (
            ("alter-rebuilds-relation-bee", "Catalog.alter_relation"),
            ("alter-evicts-query-bees", "Catalog.alter_relation"),
        ),
    ),
    InjectionCase(
        "del-alter-reconstruct",
        "db.py",
        "ALTER keeps the old relation bee instead of reconstructing",
        "            rel.bee = self.bee_module.reconstruct_relation_bee"
        "(rel.layout)\n",
        "            rel.bee = rel.bee\n",
        (("alter-rebuilds-relation-bee", "Catalog.alter_relation"),),
    ),
    InjectionCase(
        "sever-collector-evict",
        "bees/collector.py",
        "the collector accounts for the bee but never evicts it",
        "        removed = self.cache.drop_relation_bee(relation)\n",
        "        removed = False\n",
        (
            ("drop-collects-relation-bee", "Catalog.drop_relation"),
            ("annotation-reaches-bee-lifecycle", "Catalog.drop_relation"),
        ),
    ),
    InjectionCase(
        "del-disk-unlink",
        "bees/collector.py",
        "relation GC keeps the on-disk .bee.json of a dropped relation",
        "                stale.unlink()\n",
        "                pass\n",
        (("disk-eviction-unlinks", "BeeCollector.collect_relation"),),
    ),
    InjectionCase(
        "del-stale-unlink",
        "bees/cache.py",
        "a stale persisted bee survives load (collector never sees it)",
        "                path.unlink()\n"
        "                continue\n",
        "                continue\n",
        (("stale-load-unlinks", "BeeCache.load_from"),),
    ),
    InjectionCase(
        "del-vacuum-invalidate",
        "db.py",
        "vacuum swaps in a fresh heap without purging resident pages",
        "        self.buffer_pool.invalidate_relation(name)\n"
        "        fresh = HeapFile(name, self.ledger, self.buffer_pool)\n",
        "        fresh = HeapFile(name, self.ledger, self.buffer_pool)\n",
        (("heap-rebuild-invalidates-buffer", "Database.vacuum"),),
    ),
    InjectionCase(
        "sever-tuple-resolve",
        "engine/dml.py",
        "inserted rows get a constant beeID, bypassing the section store",
        "            bee_id = self.db.bee_module.tuple_bee_id(\n"
        "                self.rel.schema.name, self._bee_key(values)\n"
        "            )\n",
        "            bee_id = 1\n",
        (
            ("row-insert-resolves-tuple-bee", "RowWriter.write"),
            ("row-insert-resolves-tuple-bee", "insert_row"),
            ("row-insert-resolves-tuple-bee", "copy_from"),
            ("row-insert-resolves-tuple-bee", "update_rows"),
            ("row-insert-resolves-tuple-bee", "update_by_tid"),
        ),
    ),
    InjectionCase(
        "compact-section-store",
        "bees/datasection.py",
        "the section store compacts past the soft cap, re-pointing beeIDs",
        "        if self.count > SOFT_CAP:\n"
        "            self.overflowed = True\n",
        "        if self.count > SOFT_CAP:\n"
        "            self._slabs.pop(0)\n"
        "            self.overflowed = True\n",
        (("section-store-append-only", "DataSectionStore.get_or_create"),),
    ),
)


def run_selftest(baseline=None) -> list[dict]:
    """Run every injection case; one result dict per case."""
    if baseline is None:
        baseline = run_audit()
    base_pairs = {(f.rule, f.qualname) for f in baseline.findings}
    results = []
    for case in CASES:
        original = EngineSource().text(case.module)
        if case.old not in original:
            results.append({
                "case": case.name,
                "description": case.description,
                "caught": False,
                "error": f"patch anchor not found in {case.module}",
            })
            continue
        patched = original.replace(case.old, case.new, 1)
        report = run_audit(EngineSource({case.module: patched}))
        new_pairs = sorted(
            {(f.rule, f.qualname) for f in report.findings} - base_pairs
        )
        expected = set(case.expected)
        expected_sites = {qualname for _rule, qualname in expected}
        caught = expected <= set(new_pairs) and all(
            qualname in expected_sites for _rule, qualname in new_pairs
        )
        results.append({
            "case": case.name,
            "description": case.description,
            "caught": caught,
            "expected": sorted(expected),
            "new_findings": list(new_pairs),
        })
    return results


__all__ = ["CASES", "InjectionCase", "run_selftest"]
