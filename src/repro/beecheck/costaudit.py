"""The static cost auditor: Figure 6's instruction counts, machine-checked.

The paper quantifies micro-specialization by executed-instruction deltas
(Figure 6); our bees carry that as ``BeeRoutine.cost``, charged per
invocation.  This pass recomputes the cost **from the generated code
itself** — counting the reads/writes that actually appear in the AST and
pricing them with :mod:`repro.cost.constants` — and cross-checks three
sources that must agree:

* ``routine.cost`` (what the generator claims),
* ``namespace['_COST']`` (what the routine actually charges at runtime),
* the ``gcl_cost``/``scl_cost``/EVP cost formulas evaluated on the
  layout/expression (what the model says).

A generator that unrolls fewer attribute reads than it bills for — or
bills fewer than it emits — is flagged without running the routine.  As
a final sanity band, the routine's *real* bytecode size (``dis``) must
scale with the virtual cost: straight-line specialized code has a narrow
instructions-per-virtual-instruction ratio, so a wildly short or long
body betrays a cost model that has drifted from the code shape.
"""

from __future__ import annotations

import ast
import dis
import re

from repro.cost import constants as C
from repro.storage.layout import TupleLayout

#: Plausibility band for len(bytecode) / virtual cost.  Calibrated over
#: every TPC-H/TPC-C GCL/SCL and an EVP corpus (observed 0.19–1.97);
#: the band leaves ~3x headroom on both sides so it only trips on
#: structural drift (e.g. a routine billing for work it never emits),
#: not on CPython bytecode changes.
BYTECODE_RATIO_MIN = 0.06
BYTECODE_RATIO_MAX = 6.0

_RE_VL_READ = re.compile(r"ln = _VL\.unpack_from\(raw, off\)\[0\]")
_RE_SCALAR_READ = re.compile(r"v\d+ = _S\d+\.unpack_from\(raw, off\)\[0\]")
_RE_CHAR_READ = re.compile(
    r"v\d+ = raw\[off:off \+ \d+\]\.decode\(\)\.rstrip\(' '\)"
)
_RE_BEE_READ = re.compile(r"v\d+ = _bv\[\d+\]")
_RE_PREFIX = re.compile(r"(v\d+(?:, v\d+)*),? = _PREFIX\.unpack_from.*")

_RE_VL_WRITE = re.compile(r"b = values\[\d+\]\.encode\(\)")
_RE_PACK_WRITE = re.compile(r"out \+= _P\d+\.pack\(.*\)")
_RE_CHAR_WRITE = re.compile(r"out \+= _char\(values\[\d+\], \d+, '[^']*'\)")
_RE_PREFIX_PACK = re.compile(r"out \+= _PREFIX\.pack\((.*)\)")


def _stmt_texts(source: str) -> list[str]:
    tree = ast.parse(source)
    fn = tree.body[0]
    return [ast.unparse(stmt) for stmt in ast.walk(fn) if isinstance(
        stmt, (ast.Assign, ast.AugAssign)
    )]


def _bytecode_len(fn) -> int:
    return sum(1 for _ in dis.get_instructions(fn))


def _check_agreement(
    routine, recomputed: int, model: int, findings: list[str]
) -> None:
    declared = routine.cost
    charged = (routine.namespace or {}).get("_COST")
    if recomputed != declared:
        findings.append(
            f"AST recount gives cost {recomputed}, routine declares "
            f"{declared}"
        )
    if model != declared:
        findings.append(
            f"cost model gives {model}, routine declares {declared}"
        )
    if charged != declared:
        findings.append(
            f"routine charges _COST={charged!r} but declares {declared}"
        )


def _check_bytecode_band(routine, findings: list[str]) -> None:
    if routine.cost <= 0:
        findings.append(f"non-positive routine cost {routine.cost}")
        return
    ratio = _bytecode_len(routine.fn) / routine.cost
    if not (BYTECODE_RATIO_MIN <= ratio <= BYTECODE_RATIO_MAX):
        findings.append(
            f"bytecode/cost ratio {ratio:.2f} outside plausibility band "
            f"[{BYTECODE_RATIO_MIN}, {BYTECODE_RATIO_MAX}]"
        )


def audit_gcl(routine, layout: TupleLayout) -> list[str]:
    """Recount the GCL cost from the AST and cross-check all sources."""
    from repro.bees.routines.gcl import gcl_cost

    findings: list[str] = []
    try:
        texts = _stmt_texts(routine.source)
    except (SyntaxError, IndexError):
        return ["source does not parse"]

    n_varlena = sum(1 for t in texts if _RE_VL_READ.fullmatch(t))
    n_fixed = sum(1 for t in texts if _RE_SCALAR_READ.fullmatch(t))
    n_fixed += sum(1 for t in texts if _RE_CHAR_READ.fullmatch(t))
    n_bee = sum(1 for t in texts if _RE_BEE_READ.fullmatch(t))
    for t in texts:
        m = _RE_PREFIX.fullmatch(t)
        if m:
            n_fixed += len(m.group(1).split(","))

    # Emitted reads must cover the stored attributes exactly.
    stored = len(layout.stored_attrs)
    n_stored_varlena = sum(
        1 for a in layout.stored_attrs if a.attlen == -1
    )
    if n_fixed + n_varlena != stored or n_varlena != n_stored_varlena:
        findings.append(
            f"emitted reads (fixed={n_fixed}, varlena={n_varlena}) do not "
            f"cover the {stored} stored attributes "
            f"({n_stored_varlena} varlena)"
        )
    if n_bee != len(layout.bee_attrs):
        findings.append(
            f"emitted {n_bee} data-section reads for "
            f"{len(layout.bee_attrs)} bee attributes"
        )

    n_nullable = sum(1 for a in layout.stored_attrs if a.nullable)
    recomputed = (
        C.GCL_PROLOGUE
        + C.GCL_ISNULL_ZERO * ((layout.schema.natts + 7) // 8)
        + C.GCL_FIXED * n_fixed
        + C.GCL_VARLENA * n_varlena
        + C.GCL_TUPLE_BEE * n_bee
        + C.GCL_NULLABLE * n_nullable
    )
    _check_agreement(routine, recomputed, gcl_cost(layout), findings)
    _check_bytecode_band(routine, findings)
    return findings


def audit_scl(routine, layout: TupleLayout) -> list[str]:
    """Recount the SCL cost from the AST and cross-check all sources."""
    from repro.bees.routines.scl import scl_cost

    findings: list[str] = []
    try:
        texts = _stmt_texts(routine.source)
    except (SyntaxError, IndexError):
        return ["source does not parse"]

    n_varlena = sum(1 for t in texts if _RE_VL_WRITE.fullmatch(t))
    n_fixed = sum(1 for t in texts if _RE_PACK_WRITE.fullmatch(t))
    n_fixed += sum(1 for t in texts if _RE_CHAR_WRITE.fullmatch(t))
    for t in texts:
        m = _RE_PREFIX_PACK.fullmatch(t)
        if m:
            depth = 0
            n_args = 1
            for ch in m.group(1):
                if ch in "([":
                    depth += 1
                elif ch in ")]":
                    depth -= 1
                elif ch == "," and depth == 0:
                    n_args += 1
            n_fixed += n_args

    stored = len(layout.stored_attrs)
    n_stored_varlena = sum(1 for a in layout.stored_attrs if a.attlen == -1)
    if n_fixed + n_varlena != stored or n_varlena != n_stored_varlena:
        findings.append(
            f"emitted writes (fixed={n_fixed}, varlena={n_varlena}) do not "
            f"cover the {stored} stored attributes "
            f"({n_stored_varlena} varlena)"
        )

    n_nullable = sum(1 for a in layout.stored_attrs if a.nullable)
    recomputed = (
        C.SCL_PROLOGUE
        + C.SCL_FIXED * n_fixed
        + C.SCL_VARLENA * n_varlena
        + C.SCL_TUPLE_BEE * len(layout.bee_attrs)
        + C.SCL_NULLABLE * n_nullable
    )
    _check_agreement(routine, recomputed, scl_cost(layout), findings)
    _check_bytecode_band(routine, findings)
    return findings


def audit_evp(routine, expr) -> list[str]:
    """Cross-check the EVP cost against the expression tree."""
    from repro.engine import expr as E

    findings: list[str] = []
    model = C.EVP_PROLOGUE + expr.evp_cost
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]

    # Every Col occurrence in the tree is exactly one row[...] load in the
    # straight-line body (both variants materialize each occurrence).
    n_loads = sum(
        1
        for node in ast.walk(tree)
        if isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "row"
    )
    n_cols = 0
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, E.Col):
            n_cols += 1
        stack.extend(node.children())
    if n_loads != n_cols:
        findings.append(
            f"{n_loads} row loads emitted for {n_cols} column references"
        )
    _check_agreement(routine, model, model, findings)
    _check_bytecode_band(routine, findings)
    return findings


_RE_EVJ_COMPARE_LINE = re.compile(
    r"^    if \(outer\[\d+\] != inner\[\d+\]\) return false;$", re.MULTILINE
)


def audit_evj(routine) -> list[str]:
    """Cross-check the EVJ per-compare cost against the cloned template.

    EVJ routines are C text, not compiled Python — there is no namespace
    ``_COST`` or bytecode to band-check.  Instead the declared
    ``cost_per_compare`` must equal the model, the template must contain
    exactly one comparison line per key, and the specialized cost must
    undercut the generic join's per-compare cost (otherwise cloning the
    template is a pessimization).
    """
    from repro.bees.routines.evj import GENERIC_JOIN

    findings: list[str] = []
    model = C.EVJ_DISPATCH + C.EVJ_COMPARE * routine.n_keys
    if routine.cost_per_compare != model:
        findings.append(
            f"cost model gives {model} per compare, routine declares "
            f"{routine.cost_per_compare}"
        )
    n_compares = len(_RE_EVJ_COMPARE_LINE.findall(routine.source))
    if n_compares != routine.n_keys:
        findings.append(
            f"{n_compares} comparison lines emitted for {routine.n_keys} "
            "join key(s)"
        )
    generic = GENERIC_JOIN.per_compare(routine.n_keys)
    if routine.cost_per_compare >= generic:
        findings.append(
            f"specialized compare costs {routine.cost_per_compare}, "
            f"generic costs {generic} — no win from the template"
        )
    return findings


def audit_agg(routine, specs, assume_not_null: bool = False) -> list[str]:
    """Recount the AGG transition cost from the AST and cross-check."""
    from repro.bees.routines.agg import (
        AGG_SPECIALIZED_PER_AGG,
        AGG_SPECIALIZED_PROLOGUE,
        agg_routine_cost,
    )

    findings: list[str] = []
    model = agg_routine_cost(specs, assume_not_null)
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]
    n_updates = sum(
        1
        for node in ast.walk(tree)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "update"
    )
    arg_cost = sum(
        spec.arg.evp_cost for spec in specs if spec.arg is not None
    )
    recomputed = (
        AGG_SPECIALIZED_PROLOGUE
        + AGG_SPECIALIZED_PER_AGG * n_updates
        + arg_cost
    )
    _check_agreement(routine, recomputed, model, findings)
    _check_bytecode_band(routine, findings)
    return findings


def audit_idx(routine, key_indexes) -> list[str]:
    """Recount the IDX key-extraction cost from the AST and cross-check."""
    from repro.bees.routines.idx import generic_idx_cost, idx_cost

    findings: list[str] = []
    model = idx_cost(len(key_indexes))
    try:
        tree = ast.parse(routine.source)
    except SyntaxError:
        return ["source does not parse"]
    n_loads = sum(
        1
        for node in ast.walk(tree)
        if isinstance(node, ast.Subscript)
        and isinstance(node.value, ast.Name)
        and node.value.id == "values"
    )
    recomputed = idx_cost(n_loads)
    _check_agreement(routine, recomputed, model, findings)
    _check_bytecode_band(routine, findings)
    generic = generic_idx_cost(len(key_indexes))
    if routine.cost >= generic:
        findings.append(
            f"specialized extraction costs {routine.cost}, generic costs "
            f"{generic} — no win from specialization"
        )
    return findings


# -- PIPE --------------------------------------------------------------------

_RE_PIPE_VLDATA = re.compile(
    r"v(\d+) = raw\[off \+ \d+:off \+ \d+ \+ ln\]\.decode\(\)"
)
_RE_PIPE_APPEND = re.compile(r"_append\(\[(.*)\]\)")


def audit_pipeline(routine, spec) -> list[str]:
    """Recount the fused pipeline's batch-charge constants and cross-check.

    A pipeline charges from four namespace constants instead of one
    ``_COST``: ``_C0`` (per batch), ``_C1`` (per input row — the
    specialized next + pruned deform + qualification), and the per-sink
    ``_C2``/``_C3``/``_C4`` terms.  ``_C1`` is recounted from the AST the
    way :func:`audit_gcl` recounts a full deform — every read the source
    actually emits, priced by the GCL constants — and the sink terms are
    recomputed from the spec's own expressions.  No bytecode band: the
    loop shape amortizes differently from straight-line bees and the
    per-row cost is not the whole function's cost.
    """
    from repro.bees.routines.agg import AGG_SPECIALIZED_PER_AGG
    from repro.engine import expr as E

    findings: list[str] = []
    layout = spec.layout
    namespace = routine.namespace or {}
    try:
        texts = _stmt_texts(routine.source)
    except (SyntaxError, IndexError):
        return ["source does not parse"]

    if namespace.get("_C0") != C.PIPE_BATCH_OVERHEAD:
        findings.append(
            f"_C0={namespace.get('_C0')!r}, model gives "
            f"{C.PIPE_BATCH_OVERHEAD} per batch"
        )
    if namespace.get("_C1") != routine.cost:
        findings.append(
            f"routine charges _C1={namespace.get('_C1')!r} per row but "
            f"declares {routine.cost}"
        )

    # Recount the pruned deform from the emitted reads.
    n_varlena = sum(1 for t in texts if _RE_VL_READ.fullmatch(t))
    n_bee = sum(1 for t in texts if _RE_BEE_READ.fullmatch(t))
    fixed: set[int] = set()
    varlena: set[int] = set()
    for t in texts:
        if _RE_SCALAR_READ.fullmatch(t) or _RE_CHAR_READ.fullmatch(t):
            fixed.add(int(re.match(r"v(\d+)", t).group(1)))
            continue
        m = _RE_PIPE_VLDATA.fullmatch(t)
        if m:
            varlena.add(int(m.group(1)))
            continue
        m = _RE_PREFIX.fullmatch(t)
        if m:
            fixed.update(int(v.strip()[1:]) for v in m.group(1).split(","))
    n_nullable = sum(
        1
        for attnum in fixed | varlena
        if layout.schema.attributes[attnum].nullable
    )
    deform = (
        C.GCL_ISNULL_ZERO * ((layout.schema.natts + 7) // 8)
        + C.GCL_FIXED * len(fixed)
        + C.GCL_VARLENA * n_varlena
        + C.GCL_TUPLE_BEE * n_bee
        + C.GCL_NULLABLE * n_nullable
    )
    qual_cost = spec.qual.evp_cost if spec.qual is not None else 0
    recomputed = C.PIPE_NEXT + deform + qual_cost
    if recomputed != routine.cost:
        findings.append(
            f"AST recount gives per-row cost {recomputed}, routine "
            f"declares {routine.cost}"
        )

    if spec.sink == "rows":
        if spec.output is None:
            n_out = layout.schema.natts
            expr_cost = 0
        else:
            n_out = len(spec.output)
            expr_cost = sum(
                e.evp_cost
                for e in spec.output
                if not isinstance(e, E.Col)
            )
        model = C.PIPE_EMIT_BASE + C.PIPE_EMIT_PER_COLUMN * n_out + expr_cost
        if namespace.get("_C2") != model:
            findings.append(
                f"_C2={namespace.get('_C2')!r}, emission model gives {model}"
            )
        appends = [
            m for t in texts + _expr_texts(routine.source)
            for m in [_RE_PIPE_APPEND.fullmatch(t)] if m
        ]
        if appends:
            emitted = len(appends[0].group(1).split(","))
            if emitted != n_out:
                findings.append(
                    f"emits {emitted}-column rows, spec projects {n_out}"
                )
    elif spec.sink == "probe":
        checks = (
            ("_C2", C.JOIN_HASH_COMPUTE + C.JOIN_HASH_PROBE, "probe model"),
            ("_C3", C.EVJ_COMPARE * len(spec.probe_idx), "compare model"),
            ("_C4", C.JOIN_EMIT, "emit model"),
        )
        for key, model, what in checks:
            if namespace.get(key) != model:
                findings.append(
                    f"{key}={namespace.get(key)!r}, {what} gives {model}"
                )
    else:  # agg
        model = (
            C.AGG_HASH_LOOKUP
            + sum(e.evp_cost for e in spec.group_exprs)
            + AGG_SPECIALIZED_PER_AGG * len(spec.aggs)
            + sum(a.arg.evp_cost for a in spec.aggs if a.arg is not None)
        )
        if namespace.get("_C2") != model:
            findings.append(
                f"_C2={namespace.get('_C2')!r}, transition model gives "
                f"{model}"
            )
    return findings


def _expr_texts(source: str) -> list[str]:
    """Expression statements of the routine (``_append(...)`` calls)."""
    tree = ast.parse(source)
    return [
        ast.unparse(stmt)
        for stmt in ast.walk(tree.body[0])
        if isinstance(stmt, ast.Expr)
    ]


_RE_VEC_ZIP = re.compile(r"out = _zip_rows\(\[(.*)\]\)")


def audit_vector(routine, spec) -> list[str]:
    """Recompute the vector kernel's charge constants and cross-check.

    A kernel charges once, from three namespace constants:
    ``_C0`` (per dispatch), ``_C1`` (per input row — the selection
    mask), and ``_C2`` (per selected row — the sink emission).  All
    three are recomputed from the spec through the same pricing helpers
    codegen uses, so a tampered constant (or a generator whose pricing
    drifts from the model) is caught without executing the kernel.  No
    bytecode band: whole-column kernels amortize across the chunk, so
    instruction count and per-row cost are unrelated by design.
    """
    from repro.bees.vector.codegen import (
        _expr_charge,
        _expr_nodes,
        _vectorizable,
    )

    findings: list[str] = []
    schema = spec.layout.schema
    namespace = routine.namespace or {}
    try:
        texts = _stmt_texts(routine.source)
    except (SyntaxError, IndexError):
        return ["source does not parse"]

    if namespace.get("_C0") != C.VEC_KERNEL_DISPATCH:
        findings.append(
            f"_C0={namespace.get('_C0')!r}, model gives "
            f"{C.VEC_KERNEL_DISPATCH} per dispatch"
        )
    if namespace.get("_C1") != routine.cost:
        findings.append(
            f"routine charges _C1={namespace.get('_C1')!r} per row but "
            f"declares {routine.cost}"
        )

    if spec.qual is None:
        qual_cost = 0
    elif _vectorizable(spec.qual, schema):
        qual_cost = C.VEC_KERNEL_PER_VALUE * _expr_nodes(spec.qual)
    else:
        qual_cost = spec.qual.generic_cost
    recomputed = C.VEC_SELECT_PER_ROW + qual_cost
    if recomputed != routine.cost:
        findings.append(
            f"spec recount gives per-row cost {recomputed}, routine "
            f"declares {routine.cost}"
        )

    if spec.sink == "rows":
        if spec.output is None:
            n_out = schema.natts
            expr_cost = 0
        else:
            n_out = len(spec.output)
            expr_cost = sum(_expr_charge(e, schema) for e in spec.output)
        model = C.VEC_EMIT_BASE + C.VEC_EMIT_PER_COLUMN * n_out + expr_cost
        if namespace.get("_C2") != model:
            findings.append(
                f"_C2={namespace.get('_C2')!r}, emission model gives {model}"
            )
        zips = [m for t in texts for m in [_RE_VEC_ZIP.fullmatch(t)] if m]
        if zips:
            body = zips[0].group(1).strip()
            emitted = len(body.split(",")) if body else 0
            if emitted != n_out:
                findings.append(
                    f"emits {emitted}-column rows, spec projects {n_out}"
                )
    elif spec.sink == "probe":
        model = C.VEC_PROBE_PER_ROW + C.VEC_EMIT_PER_COLUMN * schema.natts
        if namespace.get("_C2") != model:
            findings.append(
                f"_C2={namespace.get('_C2')!r}, probe model gives {model}"
            )
    else:  # agg
        n_args = sum(1 for a in spec.aggs if a.arg is not None)
        model = (
            C.VEC_GROUP_PER_ROW
            + C.VEC_EMIT_PER_COLUMN * (len(spec.group_exprs) + n_args)
            + sum(_expr_charge(e, schema) for e in spec.group_exprs)
            + sum(
                _expr_charge(a.arg, schema)
                for a in spec.aggs
                if a.arg is not None
            )
        )
        if namespace.get("_C2") != model:
            findings.append(
                f"_C2={namespace.get('_C2')!r}, transition model gives "
                f"{model}"
            )
    return findings
