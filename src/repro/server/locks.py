"""Materialized locks: swarmcheck's guard registry made real.

Swarmcheck's shared-state registry (PR 7) names a *guard* for every
shared-mutable field the engine writes on the ``db.sql()`` path —
``ledger_lock``, ``buffer_lock``, ``chunk_lock``, ``hive_lock``,
``resilience_lock``, ``catalog_lock``, ``relation_lock``,
``parallel_lock`` — but until the server existed those guards were a
plan, not objects.  :class:`HiveLocks` is the plan executed: one
attribute per declared guard name, each a live
:class:`threading.RLock`, reader/writer latch, or latch manager.  The
swarmcheck ``locks`` pass closes the loop both ways: every registry
guard must resolve to a lock attribute here, and every lock attribute
here must be named by at least one registry entry.

Lock order (documented in docs/SERVER.md, enforced by construction):

1. admission (``server_lock``, via the server's condition variable);
2. ``catalog_lock`` — shared for every statement, exclusive for DDL;
3. ``relation_lock`` — per-relation latches in sorted name order;
4. subsystem locks (``ledger_lock``, ``hive_lock``, ``wal_lock``, ...)
   taken innermost, never while waiting on 1–3.

Deadlock freedom follows: every statement acquires latches in one
globally sorted pass and subsystem locks are leaves.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic

#: Registry guard names that are disciplines, not lock objects:
#: ``session`` means session-confined (only the owning session thread
#: touches the field); ``latch-internal`` means the field is mutated
#: under the latch's own condition-variable lock; ``group-leader``
#: means mutated only by the elected group-commit leader (leadership —
#: a wal_lock-guarded flag — is the mutual exclusion).
PSEUDO_GUARDS = frozenset({
    "session", "latch-internal", "group-leader", "-", "",
})


class LockTimeout(Exception):
    """A latch was not acquired within the server's lock-wait budget."""

    def __init__(self, name: str, mode: str, timeout: float) -> None:
        super().__init__(
            f"timed out after {timeout:.3f}s waiting for {mode} latch "
            f"on {name!r}"
        )
        self.relation = name
        self.mode = mode


class RWLatch:
    """A shared/exclusive latch with writer preference and timeouts.

    Readers share; a writer excludes everything.  Waiting writers block
    new readers (writer preference) so DML cannot starve behind a
    steady reader stream.  Waits honour a deadline and raise
    :class:`LockTimeout` — the server turns that into a clean statement
    error instead of a stuck session.
    """

    def __init__(self, name: str = "?") -> None:
        self.name = name
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    # -- acquisition ---------------------------------------------------------

    def acquire_read(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else monotonic() + timeout
        with self._cond:
            while self._writer or self._writers_waiting:
                if not self._wait(deadline):
                    raise LockTimeout(self.name, "read", timeout or 0.0)
            self._readers += 1

    def release_read(self) -> None:
        with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self, timeout: float | None = None) -> None:
        deadline = None if timeout is None else monotonic() + timeout
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    if not self._wait(deadline):
                        raise LockTimeout(self.name, "write", timeout or 0.0)
                self._writer = True
            finally:
                self._writers_waiting -= 1

    def release_write(self) -> None:
        with self._cond:
            self._writer = False
            self._cond.notify_all()

    def _wait(self, deadline: float | None) -> bool:
        if deadline is None:
            self._cond.wait()
            return True
        remaining = deadline - monotonic()
        if remaining <= 0:
            return False
        return self._cond.wait(remaining)

    # -- context managers ----------------------------------------------------

    @contextmanager
    def read(self, timeout: float | None = None):
        self.acquire_read(timeout)
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write(self, timeout: float | None = None):
        self.acquire_write(timeout)
        try:
            yield self
        finally:
            self.release_write()


class RelationLatches:
    """Per-relation reader/writer latches, acquired in sorted name order.

    Sorted acquisition is the deadlock-freedom argument: every statement
    latches all the relations it references in one pass, by name, so no
    two statements ever hold latches in conflicting orders.  Unknown
    names get a latch on first touch (CREATE TABLE latches the name it
    is about to create).

    ``enabled=False`` turns every acquisition into a no-op — used only
    by the resilience self-test, which must demonstrate that the chaos
    harness detects the torn reads the latches exist to prevent.
    """

    def __init__(self, timeout: float | None = None,
                 enabled: bool = True) -> None:
        self.timeout = timeout
        self.enabled = enabled
        self._guard = threading.Lock()
        self._latches: dict[str, RWLatch] = {}

    def latch(self, name: str) -> RWLatch:
        with self._guard:
            latch = self._latches.get(name)
            if latch is None:
                latch = self._latches[name] = RWLatch(name)
            return latch

    @contextmanager
    def read(self, names, timeout: float | None = None):
        yield from self._acquire(names, "read", timeout)

    @contextmanager
    def write(self, names, timeout: float | None = None):
        yield from self._acquire(names, "write", timeout)

    def _acquire(self, names, mode: str, timeout: float | None):
        if not self.enabled:
            yield self
            return
        budget = self.timeout if timeout is None else timeout
        held: list[RWLatch] = []
        try:
            for name in sorted(set(names)):
                latch = self.latch(name)
                if mode == "read":
                    latch.acquire_read(budget)
                else:
                    latch.acquire_write(budget)
                held.append(latch)
            yield self
        finally:
            for latch in reversed(held):
                if mode == "read":
                    latch.release_read()
                else:
                    latch.release_write()


class HiveLocks:
    """Every declared guard from the swarmcheck registry, as an object.

    One instance per :class:`repro.db.Database`; the server shares it.
    The per-charge hot paths (ledger counter bumps) stay lock-free —
    single bytecode-level operations the GIL already serializes, losing
    at worst an accounting increment, never data — while every compound
    critical section (buffer-pool LRU maintenance, chunk-cache
    insert/evict, ledger snapshot/rollback, DDL, WAL grouping) runs
    under its named guard.
    """

    def __init__(self, lock_timeout: float | None = None,
                 latching: bool = True) -> None:
        self.ledger_lock = threading.RLock()
        self.buffer_lock = threading.RLock()
        self.chunk_lock = threading.RLock()
        self.hive_lock = threading.RLock()
        self.resilience_lock = threading.RLock()
        self.parallel_lock = threading.RLock()
        self.server_lock = threading.RLock()
        self.wal_lock = threading.RLock()
        self.catalog_lock = RWLatch("<catalog>")
        self.relation_lock = RelationLatches(lock_timeout, enabled=latching)

    def guard_objects(self) -> dict[str, object]:
        """Every materialized guard, by registry name."""
        return {
            name: obj for name, obj in vars(self).items()
            if isinstance(obj, (RWLatch, RelationLatches))
            or hasattr(obj, "acquire")
        }

    @staticmethod
    def registry_guards() -> set[str]:
        """Distinct non-pseudo guard names declared by swarmcheck."""
        from repro.swarmcheck.registry import REGISTRY, SHARED

        return {
            entry.guard for entry in REGISTRY
            if entry.scope == SHARED and entry.guard not in PSEUDO_GUARDS
        }

    def verify(self) -> list[str]:
        """Guard names declared in the registry with no live lock here."""
        objects = self.guard_objects()
        return sorted(
            guard for guard in self.registry_guards()
            if guard not in objects
        )
