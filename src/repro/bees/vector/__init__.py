"""Vector bees: the columnar NumPy execution tier.

Fused pipelines (:class:`~repro.bees.pipeline.codegen.PipelineSpec`)
compiled into whole-column kernels over chunk-cached typed arrays —
see ``docs/VECTOR.md`` for the tier's design and contracts.
"""

from repro.bees.pipeline.codegen import PipelineSpec
from repro.bees.vector.chunks import Chunk, ChunkCache, chunk_from_rows, decode_relation
from repro.bees.vector.codegen import VectorSpec, generate_vector
from repro.bees.vector.fusion import fuse_vector_plan
from repro.bees.vector.nodes import VectorAgg, VectorJoin, VectorScan

__all__ = [
    "Chunk",
    "ChunkCache",
    "PipelineSpec",
    "VectorAgg",
    "VectorJoin",
    "VectorScan",
    "VectorSpec",
    "chunk_from_rows",
    "decode_relation",
    "fuse_vector_plan",
    "generate_vector",
]
