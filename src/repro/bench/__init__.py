"""Experiment harness regenerating every table and figure in the paper."""

from repro.bench.reporting import bar_chart, improvement, table
from repro.bench.tpcc_experiments import MixComparison, run_tpcc_comparison
from repro.bench.tpch_experiments import (
    BULK_RELATIONS,
    QueryComparison,
    SuiteResult,
    build_suite_pair,
    bulk_loading,
    case_study,
    compare_queries,
    run_ablation,
)

__all__ = [
    "BULK_RELATIONS",
    "MixComparison",
    "QueryComparison",
    "SuiteResult",
    "bar_chart",
    "build_suite_pair",
    "bulk_loading",
    "case_study",
    "compare_queries",
    "improvement",
    "run_ablation",
    "run_tpcc_comparison",
    "table",
]
