"""Bug-injection self-test: plant one plan-layer bug per case and
require the matching pass to catch it.

Each case builds a small known-good fixture, tampers with exactly one
invariant the analyzer claims to verify (a type, a nullability bit, a
layout width, a spec field, a cached data-section constant, ...), runs
the relevant checker, and returns True iff a finding naming that bug
appears.  A missed case fails the whole wagglecheck run — the analyzer
is only trusted while it demonstrably still detects every planted bug
class.
"""

from __future__ import annotations

from repro.analysis import run_injections


def _fixture():
    """A bee-enabled database with one small mixed-type relation."""
    from repro.bees.settings import BeeSettings
    from repro.catalog import DATE, INT4, NUMERIC, make_schema, varchar
    from repro.db import Database

    schema = make_schema(
        "t",
        [
            ("id", INT4),
            ("price", NUMERIC),
            ("name", varchar(12)),
            ("day", DATE),
            ("flag", INT4, True),
        ],
        ("id",),
    )
    db = Database(BeeSettings.all_bees().enabling(pipelines=True))
    db.create_table(schema)
    return db


def _scan(db, relation: str = "t"):
    from repro.engine.nodes import SeqScan

    scan = SeqScan(relation)
    scan.bind_schema(db.relation(relation).schema)
    return scan


def _caught(findings, needle: str) -> bool:
    return any(needle in finding.message for finding in findings)


# -- typeflow ---------------------------------------------------------------


def _ill_typed_comparison() -> bool:
    from repro.engine import expr as E
    from repro.engine.nodes import Filter
    from repro.wagglecheck.typeflow import check_plan

    db = _fixture()
    plan = Filter(_scan(db), E.Cmp("<", E.Col("name"), E.Const(5)))
    findings, _ = check_plan(plan, db, "selftest")
    return _caught(findings, "ill-typed comparison")


def _swapped_join_key_types() -> bool:
    from repro.catalog import INT4, make_schema, varchar
    from repro.engine.joins import HashJoin
    from repro.wagglecheck.typeflow import check_plan

    db = _fixture()
    db.create_table(
        make_schema("u", [("label", varchar(8)), ("ref", INT4)])
    )
    # Key pair swapped: int id probes against the varchar label.
    plan = HashJoin(_scan(db), _scan(db, "u"), ["id"], ["label"])
    findings, _ = check_plan(plan, db, "selftest")
    return _caught(findings, "join key type mismatch")


def _arith_on_string() -> bool:
    from repro.engine import expr as E
    from repro.engine.nodes import Project
    from repro.wagglecheck.typeflow import check_plan

    db = _fixture()
    plan = Project(
        _scan(db), [E.Arith("+", E.Col("name"), E.Const(1))], ["x"]
    )
    findings, _ = check_plan(plan, db, "selftest")
    return _caught(findings, "arithmetic over non-numeric")


def _undeclared_coercion() -> bool:
    from repro.engine import expr as E
    from repro.engine.nodes import Filter
    from repro.wagglecheck.typeflow import check_plan

    db = _fixture()
    # float vs date is NOT a declared coercion (int/date is).
    plan = Filter(_scan(db), E.Cmp("=", E.Col("price"), E.Col("day")))
    findings, _ = check_plan(plan, db, "selftest")
    return _caught(findings, "ill-typed comparison")


def _agg_accumulator_mismatch() -> bool:
    from repro.engine import expr as E
    from repro.engine.agg import HashAgg
    from repro.engine.aggregates import AggSpec
    from repro.wagglecheck.typeflow import check_plan

    db = _fixture()
    plan = HashAgg(
        _scan(db), [], [AggSpec("sum", E.Col("name"), name="s")]
    )
    findings, _ = check_plan(plan, db, "selftest")
    return _caught(findings, "agg accumulator mismatch")


def _nullability_erasure() -> bool:
    from repro.wagglecheck.typeflow import check_plan

    db = _fixture()
    scan = _scan(db)
    # 'flag' is nullable in the catalog; erase the recorded bit.
    scan.nullable[scan.columns.index("flag")] = False
    findings, _ = check_plan(scan, db, "selftest")
    return _caught(findings, "nullability erasure")


def _layout_width_narrowing() -> bool:
    from repro.catalog.schema import Attribute
    from repro.catalog.types import INT4
    from repro.wagglecheck.typeflow import check_relation

    db = _fixture()
    rel = db.relation("t")
    index = [a.name for a in rel.layout.stored_attrs].index("price")
    rel.layout.stored_attrs[index] = Attribute("price", INT4)
    findings = check_relation(rel, "selftest")
    return _caught(findings, "layout width narrowing")


def _layout_offset_skew() -> bool:
    from repro.wagglecheck.typeflow import check_relation

    db = _fixture()
    rel = db.relation("t")
    rel.layout._stored_offsets[1] += 4
    findings = check_relation(rel, "selftest")
    return _caught(findings, "layout offset skew")


# -- rewrite ----------------------------------------------------------------


def _fused_filter(db):
    from repro.bees.pipeline.fusion import fuse_plan
    from repro.engine import expr as E
    from repro.engine.nodes import Filter

    plan = Filter(_scan(db), E.Cmp("<", E.Col("id"), E.Const(5)))
    return plan, fuse_plan(plan, db)


def _rewrite_lost_qual() -> bool:
    from repro.wagglecheck.rewrite import RewriteChecker

    db = _fixture()
    plan, fused = _fused_filter(db)
    fused.spec.qual = None          # drop the residual qualification
    checker = RewriteChecker("selftest", db)
    checker.compare(fused, plan)
    return _caught(checker.findings, "lost a residual qualification")


def _rewrite_projection_swap() -> bool:
    from repro.bees.pipeline.fusion import fuse_plan
    from repro.engine import expr as E
    from repro.engine.nodes import Project
    from repro.wagglecheck.rewrite import RewriteChecker

    db = _fixture()
    plan = Project(
        _scan(db), [E.Col("id"), E.Col("price")], ["id", "price"]
    )
    fused = fuse_plan(plan, db)
    fused.spec.output = list(reversed(fused.spec.output))
    checker = RewriteChecker("selftest", db)
    checker.compare(fused, plan)
    return _caught(checker.findings, "projection differs")


def _rewrite_joinkey_drop() -> bool:
    from repro.bees.pipeline.fusion import fuse_plan
    from repro.catalog import INT4, make_schema
    from repro.engine.joins import HashJoin
    from repro.wagglecheck.rewrite import RewriteChecker

    db = _fixture()
    db.create_table(make_schema("v", [("vid", INT4), ("w", INT4)]))
    plan = HashJoin(_scan(db), _scan(db, "v"), ["id"], ["vid"])
    fused = fuse_plan(plan, db)
    if not hasattr(fused, "spec"):
        return False                # join did not fuse: nothing planted
    fused.spec.probe_idx = ()       # drop the probe-side key
    checker = RewriteChecker("selftest", db)
    checker.compare(fused, plan)
    return _caught(checker.findings, "probe keys")


# -- sections ---------------------------------------------------------------


def _annotated_fixture():
    """A relation with one annotated attribute and one cached section."""
    from repro.bees.settings import BeeSettings
    from repro.catalog import INT4, make_schema, varchar
    from repro.db import Database

    schema = make_schema(
        "s", [("k", INT4), ("tag", varchar(8))], ("k",)
    )
    db = Database(BeeSettings.all_bees())
    db.create_table(schema, annotate=("tag",))
    db.insert("s", [1, "alpha"])
    return db


def _stale_section_constant() -> bool:
    from repro.wagglecheck.sections import check_relation_sections

    db = _annotated_fixture()
    store = db.relation("s").bee.data_sections
    slab, slot = store._slab_slot(0)
    slab[slot] = (123,)             # int constant in a varchar section
    findings, _ = check_relation_sections(db.relation("s"))
    return _caught(findings, "int constant")


def _section_null_erasure() -> bool:
    from repro.wagglecheck.sections import check_relation_sections

    db = _annotated_fixture()
    store = db.relation("s").bee.data_sections
    slab, slot = store._slab_slot(0)
    slab[slot] = (None,)            # NULL smuggled into a NOT NULL column
    findings, _ = check_relation_sections(db.relation("s"))
    return _caught(findings, "NULL constant stored for NOT NULL")


CASES = (
    ("ill-typed-comparison", _ill_typed_comparison),
    ("swapped-join-key-types", _swapped_join_key_types),
    ("arith-on-string", _arith_on_string),
    ("undeclared-coercion", _undeclared_coercion),
    ("agg-accumulator-mismatch", _agg_accumulator_mismatch),
    ("nullability-erasure", _nullability_erasure),
    ("layout-width-narrowing", _layout_width_narrowing),
    ("layout-offset-skew", _layout_offset_skew),
    ("rewrite-lost-qual", _rewrite_lost_qual),
    ("rewrite-projection-swap", _rewrite_projection_swap),
    ("rewrite-joinkey-drop", _rewrite_joinkey_drop),
    ("stale-section-constant", _stale_section_constant),
    ("section-null-erasure", _section_null_erasure),
)


def run_selftest() -> dict[str, bool]:
    """Run every injection case; True per case means *caught*."""
    return run_injections(CASES)
