"""TPC-C schema: the nine relations, with OLTP primary keys.

Column sets follow the TPC-C specification (v5.x); ``o_carrier_id`` and
``ol_delivery_d`` are nullable (they are filled in by Delivery), which
keeps the engine's NULL paths exercised under OLTP load.
"""

from __future__ import annotations

from repro.catalog import (
    DATE,
    INT4,
    NUMERIC,
    RelationSchema,
    char,
    make_schema,
    varchar,
)


def warehouse_schema() -> RelationSchema:
    return make_schema(
        "warehouse",
        [
            ("w_id", INT4),
            ("w_name", varchar(10)),
            ("w_street_1", varchar(20)),
            ("w_city", varchar(20)),
            ("w_state", char(2)),
            ("w_zip", char(9)),
            ("w_tax", NUMERIC),
            ("w_ytd", NUMERIC),
        ],
        ("w_id",),
    )


def district_schema() -> RelationSchema:
    return make_schema(
        "district",
        [
            ("d_id", INT4),
            ("d_w_id", INT4),
            ("d_name", varchar(10)),
            ("d_street_1", varchar(20)),
            ("d_city", varchar(20)),
            ("d_state", char(2)),
            ("d_zip", char(9)),
            ("d_tax", NUMERIC),
            ("d_ytd", NUMERIC),
            ("d_next_o_id", INT4),
        ],
        ("d_w_id", "d_id"),
    )


def customer_schema() -> RelationSchema:
    return make_schema(
        "tpcc_customer",
        [
            ("c_id", INT4),
            ("c_d_id", INT4),
            ("c_w_id", INT4),
            ("c_first", varchar(16)),
            ("c_middle", char(2)),
            ("c_last", varchar(16)),
            ("c_street_1", varchar(20)),
            ("c_city", varchar(20)),
            ("c_state", char(2)),
            ("c_zip", char(9)),
            ("c_phone", char(16)),
            ("c_since", DATE),
            ("c_credit", char(2)),
            ("c_credit_lim", NUMERIC),
            ("c_discount", NUMERIC),
            ("c_balance", NUMERIC),
            ("c_ytd_payment", NUMERIC),
            ("c_payment_cnt", INT4),
            ("c_delivery_cnt", INT4),
            ("c_data", varchar(500)),
        ],
        ("c_w_id", "c_d_id", "c_id"),
    )


def history_schema() -> RelationSchema:
    return make_schema(
        "history",
        [
            ("h_c_id", INT4),
            ("h_c_d_id", INT4),
            ("h_c_w_id", INT4),
            ("h_d_id", INT4),
            ("h_w_id", INT4),
            ("h_date", DATE),
            ("h_amount", NUMERIC),
            ("h_data", varchar(24)),
        ],
    )


def new_order_schema() -> RelationSchema:
    return make_schema(
        "new_order",
        [
            ("no_o_id", INT4),
            ("no_d_id", INT4),
            ("no_w_id", INT4),
        ],
        ("no_w_id", "no_d_id", "no_o_id"),
    )


def oorder_schema() -> RelationSchema:
    return make_schema(
        "oorder",
        [
            ("o_id", INT4),
            ("o_d_id", INT4),
            ("o_w_id", INT4),
            ("o_c_id", INT4),
            ("o_entry_d", DATE),
            ("o_carrier_id", INT4, True),
            ("o_ol_cnt", INT4),
            ("o_all_local", INT4),
        ],
        ("o_w_id", "o_d_id", "o_id"),
    )


def order_line_schema() -> RelationSchema:
    return make_schema(
        "order_line",
        [
            ("ol_o_id", INT4),
            ("ol_d_id", INT4),
            ("ol_w_id", INT4),
            ("ol_number", INT4),
            ("ol_i_id", INT4),
            ("ol_supply_w_id", INT4),
            ("ol_delivery_d", DATE, True),
            ("ol_quantity", INT4),
            ("ol_amount", NUMERIC),
            ("ol_dist_info", char(24)),
        ],
        ("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"),
    )


def item_schema() -> RelationSchema:
    return make_schema(
        "item",
        [
            ("i_id", INT4),
            ("i_im_id", INT4),
            ("i_name", varchar(24)),
            ("i_price", NUMERIC),
            ("i_data", varchar(50)),
        ],
        ("i_id",),
    )


def stock_schema() -> RelationSchema:
    return make_schema(
        "stock",
        [
            ("s_i_id", INT4),
            ("s_w_id", INT4),
            ("s_quantity", INT4),
            ("s_dist_01", char(24)),
            ("s_ytd", NUMERIC),
            ("s_order_cnt", INT4),
            ("s_remote_cnt", INT4),
            ("s_data", varchar(50)),
        ],
        ("s_w_id", "s_i_id"),
    )


ALL_SCHEMAS = {
    "warehouse": warehouse_schema,
    "district": district_schema,
    "tpcc_customer": customer_schema,
    "history": history_schema,
    "new_order": new_order_schema,
    "oorder": oorder_schema,
    "order_line": order_line_schema,
    "item": item_schema,
    "stock": stock_schema,
}

# (index name, relation, key columns, kind, unique)
INDEXES = [
    ("warehouse_pk", "warehouse", ("w_id",), "hash", True),
    ("district_pk", "district", ("d_w_id", "d_id"), "hash", True),
    ("customer_pk", "tpcc_customer", ("c_w_id", "c_d_id", "c_id"), "hash", True),
    ("customer_last", "tpcc_customer", ("c_w_id", "c_d_id", "c_last"), "hash", False),
    ("new_order_pk", "new_order", ("no_w_id", "no_d_id", "no_o_id"), "btree", True),
    ("oorder_pk", "oorder", ("o_w_id", "o_d_id", "o_id"), "btree", True),
    ("oorder_cust", "oorder", ("o_w_id", "o_d_id", "o_c_id", "o_id"), "btree", False),
    ("order_line_pk", "order_line",
     ("ol_w_id", "ol_d_id", "ol_o_id", "ol_number"), "btree", True),
    ("order_line_order", "order_line",
     ("ol_w_id", "ol_d_id", "ol_o_id"), "btree", False),
    ("item_pk", "item", ("i_id",), "hash", True),
    ("stock_pk", "stock", ("s_w_id", "s_i_id"), "hash", True),
]
