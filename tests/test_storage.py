"""Tests for pages, heap files, and the buffer pool."""

import pytest

from repro.cost import Ledger
from repro.storage import BufferPool, HeapFile, HeapPage, PageFullError, PAGE_SIZE
from repro.storage.heapfile import TID


class TestHeapPage:
    def test_insert_and_read(self):
        page = HeapPage()
        slot = page.insert(b"hello tuple")
        assert page.read(slot) == b"hello tuple"

    def test_multiple_slots(self):
        page = HeapPage()
        slots = [page.insert(f"tuple-{i}".encode()) for i in range(10)]
        assert slots == list(range(10))
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"tuple-{i}".encode()

    def test_free_space_decreases(self):
        page = HeapPage()
        before = page.free_space
        page.insert(b"x" * 100)
        assert page.free_space < before - 100

    def test_page_full(self):
        page = HeapPage()
        with pytest.raises(PageFullError):
            page.insert(b"x" * PAGE_SIZE)

    def test_fills_until_full(self):
        page = HeapPage()
        count = 0
        tuple_bytes = b"y" * 100
        try:
            while True:
                page.insert(tuple_bytes)
                count += 1
        except PageFullError:
            pass
        assert 70 <= count <= 80   # (8192 - 8) / (100 + 4)

    def test_delete_marks_dead(self):
        page = HeapPage()
        slot = page.insert(b"doomed")
        page.delete(slot)
        assert not page.is_live(slot)
        with pytest.raises(LookupError):
            page.read(slot)

    def test_live_tuples_skips_dead(self):
        page = HeapPage()
        keep = page.insert(b"keep")
        kill = page.insert(b"kill")
        page.delete(kill)
        assert [(slot, raw) for slot, raw in page.live_tuples()] == [
            (keep, b"keep")
        ]

    def test_out_of_range_slot(self):
        page = HeapPage()
        with pytest.raises(IndexError):
            page.read(0)
        with pytest.raises(IndexError):
            page.delete(5)

    def test_empty_tuple_rejected(self):
        with pytest.raises(ValueError):
            HeapPage().insert(b"")


@pytest.fixture
def heap():
    ledger = Ledger()
    pool = BufferPool(ledger, capacity_pages=64)
    return HeapFile("t", ledger, pool), ledger, pool


class TestHeapFile:
    def test_insert_returns_tids(self, heap):
        hf, _, _ = heap
        tids = [hf.insert(f"row{i}".encode()) for i in range(5)]
        assert all(isinstance(t, TID) for t in tids)
        assert hf.live_count == 5

    def test_spills_to_new_pages(self, heap):
        hf, _, _ = heap
        for i in range(200):
            hf.insert(b"z" * 200)
        assert hf.page_count > 1
        assert hf.size_bytes() == hf.page_count * PAGE_SIZE

    def test_scan_returns_all_live(self, heap):
        hf, _, _ = heap
        rows = {hf.insert(f"r{i}".encode()): f"r{i}".encode() for i in range(50)}
        scanned = dict(hf.scan())
        assert scanned == rows

    def test_fetch(self, heap):
        hf, _, _ = heap
        tid = hf.insert(b"target")
        assert hf.fetch(tid) == b"target"

    def test_delete_and_update(self, heap):
        hf, _, _ = heap
        tid = hf.insert(b"old")
        new_tid = hf.update(tid, b"new")
        assert hf.fetch(new_tid) == b"new"
        assert hf.live_count == 1
        with pytest.raises(LookupError):
            hf.fetch(tid)

    def test_scan_charges_page_costs(self, heap):
        hf, ledger, _ = heap
        hf.insert(b"a")
        before = ledger.total
        list(hf.scan())
        assert ledger.total > before


class TestBufferPool:
    def test_miss_then_hit(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=4)
        assert pool.access("r", 0) is False      # miss
        assert ledger.seq_pages_read == 1
        assert pool.access("r", 0) is True       # hit
        assert ledger.pages_hit == 1

    def test_lru_eviction(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=2)
        pool.access("r", 0)
        pool.access("r", 1)
        pool.access("r", 2)          # evicts page 0
        assert pool.access("r", 1) is True
        assert pool.access("r", 0) is False      # was evicted

    def test_lru_touch_refreshes(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=2)
        pool.access("r", 0)
        pool.access("r", 1)
        pool.access("r", 0)          # refresh page 0
        pool.access("r", 2)          # evicts page 1 now
        assert pool.access("r", 0) is True

    def test_random_read_classified(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=4)
        pool.access("r", 3, sequential=False)
        assert ledger.rand_pages_read == 1
        assert ledger.seq_pages_read == 0

    def test_warm_and_clear(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=64)
        pool.warm("r", 10)
        assert pool.resident_pages == 10
        assert pool.access("r", 5) is True
        pool.clear()
        assert pool.resident_pages == 0
        assert pool.access("r", 5) is False

    def test_invalidate_relation(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=64)
        pool.warm("a", 5)
        pool.warm("b", 5)
        pool.invalidate_relation("a")
        assert pool.access("a", 0) is False
        assert pool.access("b", 0) is True

    def test_install_does_not_charge(self):
        ledger = Ledger()
        pool = BufferPool(ledger, capacity_pages=4)
        pool.install("r", 0)
        assert ledger.seq_pages_read == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            BufferPool(Ledger(), capacity_pages=0)
