"""E5 — Fig. 7: run-time improvement as bee routines accumulate.

Paper: GCL alone gives Avg1 7.6% / Avg2 13.7%; adding EVP reaches 11.5% /
23.4% (q6 jumps from 15.1% to 30.6% — heavy predicates, single scan);
adding EVJ nudges the average further with q2/q5 (join-heavy) improving
visibly.  The headline property is **bee additivity**: enabling more
routines never undoes the gains of the already-enabled ones.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import emit, table
from repro.bench.tpch_experiments import run_ablation

from conftest import TPCH_SF

STEPS = ["GCL", "GCL+EVP", "GCL+EVP+EVJ"]


@pytest.fixture(scope="module")
def ablation():
    results = run_ablation(scale_factor=TPCH_SF)
    ordered = sorted(results[STEPS[0]].comparisons)
    rows = []
    for n in ordered:
        rows.append(
            [f"q{n}"]
            + [
                round(results[step].comparisons[n].time_improvement, 1)
                for step in STEPS
            ]
        )
    rows.append(
        ["Avg1"] + [round(results[step].avg1("time"), 1) for step in STEPS]
    )
    rows.append(
        ["Avg2"] + [round(results[step].avg2("time"), 1) for step in STEPS]
    )
    emit("\n=== E5 / Fig. 7: improvement with various bee routines (warm) ===")
    emit(table(["query"] + STEPS, rows))
    emit("(paper Avg1: 7.6% -> 11.5% -> 12.4%)")
    return results


def test_fig7_ablation_table(benchmark, ablation):
    benchmark(lambda: None)
    avg_gcl = ablation["GCL"].avg1("time")
    avg_evp = ablation["GCL+EVP"].avg1("time")
    avg_evj = ablation["GCL+EVP+EVJ"].avg1("time")
    # Monotone averages: each routine adds, none subtracts.
    assert avg_gcl > 0
    assert avg_evp >= avg_gcl
    assert avg_evj >= avg_evp - 0.2   # measurement-noise allowance (paper's)


def test_fig7_q06_evp_jump(benchmark, ablation):
    """q6's predicate-heavy single-scan profile makes EVP its big win."""
    benchmark(lambda: None)
    q6_gcl = ablation["GCL"].comparisons[6].time_improvement
    q6_evp = ablation["GCL+EVP"].comparisons[6].time_improvement
    assert q6_evp >= q6_gcl + 5.0, (
        f"EVP should lift q6 strongly: {q6_gcl:.1f}% -> {q6_evp:.1f}%"
    )


def test_fig7_bee_additivity(benchmark, ablation):
    """No query regresses by more than noise when a routine is added."""
    benchmark(lambda: None)
    for n in ablation["GCL"].comparisons:
        gcl = ablation["GCL"].comparisons[n].time_improvement
        evp = ablation["GCL+EVP"].comparisons[n].time_improvement
        evj = ablation["GCL+EVP+EVJ"].comparisons[n].time_improvement
        assert evp >= gcl - 0.5, f"q{n}: EVP regressed GCL's gain"
        assert evj >= evp - 0.5, f"q{n}: EVJ regressed GCL+EVP's gain"
