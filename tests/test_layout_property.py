"""Property-based round-trips through the physical tuple layer.

For arbitrary schemas and rows, encoding through ``TupleLayout`` (or the
:class:`GenericFiller`) and decoding back (directly or through the
:class:`GenericDeformer`) must reproduce the original values exactly —
across NULL bitmaps (including multi-byte bitmaps past 8 stored attrs),
varlena columns, CHAR(n) blank-padding, tuple-bee holes, and wide
max-column schemas.
"""

from hypothesis import given, settings, strategies as st

from repro.catalog import BOOL, DATE, INT4, INT8, NUMERIC, char, make_schema, varchar
from repro.cost import Ledger
from repro.engine.deform import GenericDeformer, GenericFiller
from repro.storage import TupleLayout
from repro.storage.layout import INFOMASK_HAS_NULLS

_TYPES = st.sampled_from(
    [INT4, INT8, NUMERIC, DATE, BOOL, char(1), char(6), char(11),
     varchar(3), varchar(15)]
)
_ALPHABET = st.characters(min_codepoint=33, max_codepoint=126)


def _value_strategy(sql_type, nullable):
    if sql_type.struct_fmt == "i":
        base = st.integers(-2**31, 2**31 - 1)
    elif sql_type.struct_fmt == "q":
        base = st.integers(-2**63, 2**63 - 1)
    elif sql_type.struct_fmt == "d":
        base = st.floats(allow_nan=False, allow_infinity=False)
    elif sql_type.struct_fmt == "B":
        base = st.booleans()
    elif sql_type.attlen >= 0:
        # CHAR(n): avoid trailing spaces — they are insignificant by
        # definition and round-trip to the stripped form.
        base = st.text(alphabet=_ALPHABET, max_size=sql_type.attlen)
    else:
        base = st.text(alphabet=_ALPHABET, max_size=24)
    if nullable:
        return st.one_of(st.none(), base)
    return base


@st.composite
def layout_scenarios(draw, min_cols=1, max_cols=7, allow_bees=True):
    n_cols = draw(st.integers(min_cols, max_cols))
    cols = []
    bee_candidates = []
    for i in range(n_cols):
        sql_type = draw(_TYPES)
        nullable = draw(st.booleans())
        cols.append((f"c{i}", sql_type, nullable))
        if not nullable and not sql_type.struct_fmt and sql_type.attlen >= 0:
            bee_candidates.append(f"c{i}")
    schema = make_schema("prop", cols)
    bee_attrs: tuple = ()
    if allow_bees and bee_candidates and draw(st.booleans()):
        bee_attrs = tuple(
            bee_candidates[: draw(st.integers(1, len(bee_candidates)))]
        )
    rows = [
        [draw(_value_strategy(t, nullable)) for _n, t, nullable in cols]
        for _ in range(draw(st.integers(1, 3)))
    ]
    return schema, bee_attrs, rows


def _roundtrip(layout, schema, bee_attrs, row, encode, decode):
    isnull = [value is None for value in row]
    sections: list[tuple] = []
    bee_id = 0
    if bee_attrs:
        if any(row[schema.attnum(name)] is None for name in bee_attrs):
            return  # annotated attrs are NOT NULL by construction
        key = layout.bee_key(row)
        sections.append(key)
        bee_id = len(sections) - 1
        # the canonical (stripped) form is what decode must return
        row = list(row)
        for name in bee_attrs:
            row[schema.attnum(name)] = key[layout.bee_slot[name]]
    raw = encode(row, isnull, bee_id)
    assert decode(raw, sections) == row


@settings(max_examples=150, deadline=None)
@given(layout_scenarios())
def test_layout_encode_decode_roundtrip(scenario):
    schema, bee_attrs, rows = scenario
    layout = TupleLayout(schema, bee_attrs)

    def decode(raw, sections):
        bee_values = (
            sections[layout.read_bee_id(raw)] if bee_attrs else None
        )
        values, isnull = layout.decode(raw, bee_values)
        assert isnull == [value is None for value in values]
        return values

    for row in rows:
        _roundtrip(layout, schema, bee_attrs, row, layout.encode, decode)


@settings(max_examples=150, deadline=None)
@given(layout_scenarios())
def test_filler_deformer_roundtrip(scenario):
    """GenericFiller -> GenericDeformer must equal the reference pair."""
    schema, bee_attrs, rows = scenario
    layout = TupleLayout(schema, bee_attrs)
    ledger = Ledger()
    fill = GenericFiller(layout, ledger)
    deform = GenericDeformer(layout, ledger)

    def encode(row, isnull, bee_id):
        raw = fill(row, bee_id)
        assert raw == layout.encode(row, isnull, bee_id)
        return raw

    for row in rows:
        _roundtrip(layout, schema, bee_attrs, row, encode, deform)


@settings(max_examples=60, deadline=None)
@given(layout_scenarios(min_cols=9, max_cols=20, allow_bees=False))
def test_wide_schema_multibyte_null_bitmap(scenario):
    """>8 stored attrs forces a multi-byte NULL bitmap; it must round-trip."""
    schema, _bee_attrs, rows = scenario
    layout = TupleLayout(schema)
    for row in rows:
        isnull = [value is None for value in row]
        raw = layout.encode(row, isnull)
        if any(isnull):
            assert raw[0] & INFOMASK_HAS_NULLS
        values, decoded_isnull = layout.decode(raw)
        assert values == row
        assert decoded_isnull == isnull


@settings(max_examples=80, deadline=None)
@given(st.data())
def test_char_trailing_spaces_canonicalize(data):
    """Trailing pad spaces are insignificant: stored or bee-resident CHAR
    values decode to the stripped form, identically on both paths."""
    width = data.draw(st.integers(2, 10))
    body = data.draw(
        st.text(alphabet=_ALPHABET, max_size=width - 1)
    ).rstrip(" ")
    pad = data.draw(st.integers(0, width - len(body)))
    value = body + " " * pad
    schema = make_schema(
        "padprop", [("k", INT4, False), ("c", char(width), False)]
    )
    stored = TupleLayout(schema)
    values, _ = stored.decode(stored.encode([1, value], [False, False]))
    assert values == [1, body]
    bees = TupleLayout(schema, ("c",))
    key = bees.bee_key([1, value])
    assert key == (body,)
    decoded, _ = bees.decode(
        bees.encode([1, value], [False, False], bee_id=0), key
    )
    assert decoded == [1, body]
