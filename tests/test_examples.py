"""Smoke tests: every example script runs cleanly and says what it should."""

import subprocess
import sys
from pathlib import Path


EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "improvement:" in out
    assert "GCL_trades" in out            # generated code was printed
    assert "identical results" in out


def test_tpch_analytics_runs():
    out = _run("tpch_analytics.py", "0.001")
    assert "Section II case study" in out
    assert "paper ~340" in out
    assert "Avg1" in out


def test_tpcc_throughput_runs():
    out = _run("tpcc_throughput.py")
    assert "TPC-C throughput" in out
    assert "tpmC" in out


def test_bee_inspection_runs():
    out = _run("bee_inspection.py")
    assert "RELATION BEE" in out
    assert "QUERY BEE" in out
    assert "TUPLE BEES" in out
    assert "PLACEMENT OPTIMIZER" in out
    assert "BEE COLLECTOR" in out


def test_columnar_analytics_runs():
    out = _run("columnar_analytics.py", "0.001")
    assert "same answer" in out
    assert "architectural specialization" in out
    assert "CDL" in out
