"""Invariants of the cost accounting across the executor."""


from repro.bees.settings import BeeSettings
from repro.cost import constants as C
from repro.db import Database
from repro.engine import expr as E
from repro.engine.executor import execute
from repro.engine.nodes import ColumnSelect, Filter, Limit, SeqScan, Sort, ValuesNode


def scan(db):
    node = SeqScan("orders")
    node.bind_schema(db.relation("orders").schema)
    return node


class TestEmitCharging:
    def test_emit_false_is_cheaper(self, stock_db):
        run_emit = stock_db.measure(lambda: execute(stock_db, scan(stock_db)))
        run_internal = stock_db.measure(
            lambda: execute(stock_db, scan(stock_db), emit=False)
        )
        assert run_emit.result == run_internal.result
        expected_gap = 50 * (
            C.EMIT_ROW_BASE + C.EMIT_ROW_PER_COLUMN * 9
        )
        assert run_emit.instructions - run_internal.instructions == expected_gap

    def test_emit_scales_with_columns(self, stock_db):
        wide = stock_db.measure(lambda: execute(stock_db, scan(stock_db)))
        narrow = stock_db.measure(
            lambda: execute(
                stock_db, ColumnSelect(scan(stock_db), ["o_orderkey"])
            )
        )
        # Narrow output emits 1 column instead of 9 per row.
        assert narrow.instructions < wide.instructions


class TestPerRowCharges:
    def test_scan_cost_linear_in_rows(self, stock_db):
        full = stock_db.measure(
            lambda: execute(stock_db, scan(stock_db), emit=False)
        )
        half = stock_db.measure(
            lambda: execute(
                stock_db, Limit(scan(stock_db), 25), emit=False
            )
        )
        # Limit stops the pipeline early: roughly half the scan work
        # (page-granular costs make it inexact).
        assert half.instructions < 0.7 * full.instructions

    def test_filter_adds_predicate_cost(self, stock_db):
        qual = E.Cmp(">", E.Col("o_totalprice"), E.Const(0.0))
        bare = stock_db.measure(
            lambda: execute(stock_db, scan(stock_db), emit=False)
        )
        filtered = stock_db.measure(
            lambda: execute(
                stock_db, Filter(scan(stock_db), qual), emit=False
            )
        )
        assert filtered.instructions > bare.instructions

    def test_sort_charges_nlogn(self, stock_db):
        small = ValuesNode(["x"], [[i] for i in range(10)])
        big = ValuesNode(["x"], [[i] for i in range(1000)])
        run_small = stock_db.measure(
            lambda: execute(
                stock_db, Sort(small, [(E.Col("x"), False)]), emit=False
            )
        )
        run_big = stock_db.measure(
            lambda: execute(
                stock_db, Sort(big, [(E.Col("x"), False)]), emit=False
            )
        )
        # 100x rows -> more than 100x sort cost (the log factor).
        assert run_big.instructions > 100 * run_small.instructions


class TestModeInvariants:
    def test_bee_db_never_charges_more_on_reads(
        self, stock_db, bees_db
    ):
        plans = [
            lambda db: execute(db, scan(db), emit=False),
            lambda db: execute(
                db,
                Filter(
                    scan(db),
                    E.Cmp("=", E.Col("o_orderstatus"), E.Const("O")),
                    not_null=True,
                ),
                emit=False,
            ),
        ]
        for plan in plans:
            stock_run = stock_db.measure(lambda: plan(stock_db))
            bees_run = bees_db.measure(lambda: plan(bees_db))
            assert bees_run.result == stock_run.result
            assert bees_run.instructions < stock_run.instructions

    def test_specialized_costs_are_positive(self, bees_db):
        """Bee routines must still charge something (no free lunches)."""
        before = bees_db.ledger.total
        execute(bees_db, scan(bees_db), emit=False)
        assert bees_db.ledger.total > before

    def test_identical_charges_are_deterministic(self, orders_schema):
        def build():
            db = Database(BeeSettings.all_bees())
            db.create_table(orders_schema, annotate=("o_orderstatus",))
            db.copy_from("orders", [
                [i, 1, "O", 1.0, 9000, "2-HIGH", "c", 0, "x"]
                for i in range(40)
            ])
            return db.measure(
                lambda: execute(db, scan(db), emit=False)
            ).instructions

        assert build() == build()
