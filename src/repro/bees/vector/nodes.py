"""Vector driver nodes: the executor side of columnar vector bees.

Mirrors :mod:`repro.bees.pipeline.nodes` one tier up: each driver wraps
the same :class:`PipelineSpec` plus the generic *anchor* subtree it
replaced, but instead of feeding raw tuple batches through a fused
per-row loop it acquires the relation's columnar :class:`Chunk` from
``ctx.db.chunk_cache`` and makes **one** kernel call over the whole
column set.  The kernel returns finished rows for every sink (the agg
kernel groups and finalizes internally), so all three drivers share a
single arity check.

Under beeshield, acquisition goes through ``shield.vector``: a
quarantined or generation-faulted vector bee drains the anchor — which
is the *fused pipeline* subtree when pipelines are enabled — giving the
tier ladder its vector→pipeline→routine→generic degradation order.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

from repro.cost import constants as C
from repro.engine.nodes import ExecContext, PlanNode, Row, output_nullability

#: Fallback batch size when draining the generic anchor subtree.
_GENERIC_BATCH = 256


class _VectorNode(PlanNode):
    """Shared driver plumbing: spec + anchor + kernel resolution."""

    def __init__(self, spec, anchor: PlanNode) -> None:
        self.spec = spec
        self.anchor = anchor
        self.columns = list(anchor.columns)
        self.nullable = output_nullability(anchor)

    def node_label(self) -> str:
        fused = " <- ".join(self.spec.fused_nodes)
        return f"{type(self).__name__}[{fused}]"

    def _acquire(self, ctx: ExecContext):
        """Resolve the vector kernel: ``(fn_or_None, health_key)``.

        ``None`` means the driver must fall back to the anchor subtree
        (quarantined bee, or the generator faulted under the shield).
        """
        shield = ctx.shield
        if shield is None:
            return ctx.bees.get_vector(self.spec, self.anchor).fn, None
        routine, key = shield.vector(ctx, self.spec, self.anchor)
        if routine is None:
            return None, key
        return shield.maybe_timed(routine.fn, "vectors", key), key

    def _chunk(self, ctx: ExecContext):
        rel = ctx.db.relation(self.spec.relation)
        shield = ctx.shield
        if shield is not None:
            shield.scrub_sections(rel)
        return ctx.db.chunk_cache.get(rel)

    def _anchor_batches(self, ctx: ExecContext) -> Iterator[list]:
        """Fallback: drain the replaced (pipeline or generic) subtree."""
        anchor_batches = getattr(self.anchor, "batches", None)
        if anchor_batches is not None:
            yield from anchor_batches(ctx)
            return
        batch: list[Row] = []
        for row in self.anchor.rows(ctx):
            batch.append(row)
            if len(batch) >= _GENERIC_BATCH:
                yield batch
                batch = []
        if batch:
            yield batch

    def _checked(self, out: list, ctx: ExecContext, key) -> list:
        if out and ctx.shield is not None and len(out[0]) != len(self.columns):
            ctx.shield.fault("vectors", key, "arity")
        return out

    def rows(self, ctx: ExecContext) -> Iterator[Row]:
        for batch in self.batches(ctx):
            yield from batch

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        raise NotImplementedError


class VectorScan(_VectorNode):
    """Columnar Scan -> Filter* -> Project kernel (the ``rows`` sink)."""

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        fn, key = self._acquire(ctx)
        if fn is None:
            yield from self._anchor_batches(ctx)
            return
        chunk = self._chunk(ctx)
        out = fn(chunk.cols, chunk.nulls, chunk.n)
        if out:
            yield self._checked(out, ctx, key)


class VectorJoin(_VectorNode):
    """Hash join whose probe side is a vector kernel (``probe`` sink).

    The build side stays a generic (possibly fused/vectored) subtree;
    the build phase below is charged exactly like :class:`HashJoin`'s.
    """

    def __init__(self, spec, anchor, build: PlanNode) -> None:
        super().__init__(spec, anchor)
        self.build = build

    def children(self) -> tuple[PlanNode, ...]:
        return (self.build,)

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        fn, key = self._acquire(ctx)
        if fn is None:
            yield from self._anchor_batches(ctx)
            return
        charge = ctx.ledger.charge
        # The anchor is a PipelineJoin when pipelines fused first; the
        # generic HashJoin (which owns the build key positions) sits one
        # anchor deeper in that case.
        hash_join = getattr(self.anchor, "anchor", self.anchor)
        build_idx = hash_join.build_idx
        n_keys = len(build_idx)
        build_cost = (
            C.NODE_OVERHEAD + C.JOIN_HASH_COMPUTE + C.EXPR_COLUMN * n_keys
        )
        table: dict[tuple, list[Row]] = defaultdict(list)
        for row in self.build.rows(ctx):
            charge(build_cost)
            build_key = tuple(row[i] for i in build_idx)
            if None in build_key:
                continue  # NULL keys never match
            table[build_key].append(row)
        table = dict(table)   # drop defaultdict insertion-on-miss
        chunk = self._chunk(ctx)
        out = fn(chunk.cols, chunk.nulls, chunk.n, table)
        if out:
            yield self._checked(out, ctx, key)


class VectorAgg(_VectorNode):
    """Hash aggregation compiled whole into the kernel (``agg`` sink).

    Unlike :class:`PipelineAgg` the kernel groups *and* finalizes, so
    the driver only charges the per-group final pass (NODE_OVERHEAD
    each, mirroring ``HashAgg.rows``) for the rows it hands on.
    """

    def batches(self, ctx: ExecContext) -> Iterator[list]:
        fn, key = self._acquire(ctx)
        if fn is None:
            yield from self._anchor_batches(ctx)
            return
        chunk = self._chunk(ctx)
        out = fn(chunk.cols, chunk.nulls, chunk.n)
        ctx.ledger.charge(C.NODE_OVERHEAD * len(out))
        if out:
            yield self._checked(out, ctx, key)
