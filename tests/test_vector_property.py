"""Property-based round-trips through the vector tier's chunk decoder.

For arbitrary schemas and rows, transposing into a :class:`Chunk` (the
typed-ndarray form the generated kernels consume) and reading back must
reproduce the original values exactly — across NULL bitmaps, ``CHAR(n)``
blank-padding, float NaN / bit-level precision, and the page-granular
edges (empty relations, all-dead pages, multi-page heaps) the
page-at-a-time decoder walks.
"""

import math
import struct

from hypothesis import given, settings, strategies as st

from repro.bees.settings import BeeSettings
from repro.bees.vector.chunks import chunk_from_rows, decode_relation
from repro.catalog import BOOL, DATE, INT4, INT8, NUMERIC, char, make_schema, varchar
from repro.db import Database
from repro.engine.dml import insert_row

_TYPES = st.sampled_from(
    [INT4, INT8, NUMERIC, DATE, BOOL, char(1), char(6), char(11),
     varchar(3), varchar(15)]
)
#: Printable ASCII without the quote characters, so the same strategy
#: serves tests that go through the SQL-free insert path and direct
#: chunk assembly alike.  No spaces: trailing blanks are insignificant
#: in CHAR(n) and canonicalize away (tested separately).
_ALPHABET = st.characters(min_codepoint=33, max_codepoint=126)


def _value_strategy(sql_type, nullable, allow_nan=True):
    if sql_type.struct_fmt == "i":
        base = st.integers(-2**31, 2**31 - 1)
    elif sql_type.struct_fmt == "q":
        base = st.integers(-2**63, 2**63 - 1)
    elif sql_type.struct_fmt == "d":
        # Subnormals, infinities, and NaN payloads included: the chunk
        # holds IEEE doubles and must be a bit-level pass-through.
        base = st.floats(allow_nan=allow_nan)
    elif sql_type.struct_fmt == "B":
        base = st.booleans()
    elif sql_type.attlen >= 0:
        base = st.text(alphabet=_ALPHABET, max_size=sql_type.attlen)
    else:
        base = st.text(alphabet=_ALPHABET, max_size=24)
    if nullable:
        return st.one_of(st.none(), base)
    return base


@st.composite
def chunk_scenarios(draw, max_rows=6, allow_nan=True):
    n_cols = draw(st.integers(1, 7))
    cols = []
    for i in range(n_cols):
        sql_type = draw(_TYPES)
        nullable = draw(st.booleans())
        cols.append((f"c{i}", sql_type, nullable))
    schema = make_schema("prop", cols)
    rows = [
        [draw(_value_strategy(t, nullable, allow_nan)) for _n, t, nullable in cols]
        for _ in range(draw(st.integers(0, max_rows)))
    ]
    return schema, rows


def _values_eq(a, b) -> bool:
    """Exact equality: floats compare by bit pattern (NaN-safe, keeps
    signed zero and subnormal payloads honest), everything else by type
    and value."""
    if isinstance(a, float) or isinstance(b, float):
        if not (isinstance(a, float) and isinstance(b, float)):
            return False
        return struct.pack("<d", a) == struct.pack("<d", b)
    return type(a) is type(b) and a == b


def _chunk_rows(schema, chunk) -> list[list]:
    """Read a chunk back into row-major Python values (None for NULLs)."""
    out = []
    for i in range(chunk.n):
        row = []
        for a in range(schema.natts):
            null = chunk.nulls[a]
            if null is not None and bool(null[i]):
                row.append(None)
            else:
                value = chunk.cols[a][i]
                row.append(value.item() if hasattr(value, "item") else value)
        out.append(row)
    return out


@settings(max_examples=150, deadline=None)
@given(chunk_scenarios())
def test_chunk_from_rows_roundtrip(scenario):
    """rows -> chunk -> rows is the identity, including NULL masks."""
    schema, rows = scenario
    chunk = chunk_from_rows(schema, rows)
    assert chunk.n == len(rows)
    for a, attr in enumerate(schema.attributes):
        assert len(chunk.cols[a]) == len(rows)
        if attr.nullable:
            assert chunk.nulls[a] is not None
        else:
            assert chunk.nulls[a] is None
    got = _chunk_rows(schema, chunk)
    for original, decoded in zip(rows, got):
        assert len(original) == len(decoded)
        for x, y in zip(original, decoded):
            if x is None:
                assert y is None
            else:
                assert _values_eq(x, y), (x, y)


@settings(max_examples=40, deadline=None)
@given(chunk_scenarios(max_rows=5, allow_nan=False))
def test_page_decode_matches_rows(scenario):
    """heap encode -> page-at-a-time decode_relation == direct assembly.

    Rows go through the real write path (``heap_fill_tuple`` onto heap
    pages), so the chunk read back exercises the NULL bitmap, varlena
    offsets, and CHAR(n) canonicalization of the physical layout — and
    must equal ``chunk_from_rows`` over the same logical rows.

    NaN stays out of this lane: the write path's value round-trip is the
    layout property suite's contract; here equality of the two decode
    paths is what matters, and ``_values_eq`` keeps it exact.
    """
    schema, rows = scenario
    db = Database(BeeSettings.stock())
    rel = db.create_table(schema)
    for row in rows:
        insert_row(db, schema.name, row)
    chunk = decode_relation(rel)
    expected = chunk_from_rows(schema, rows)
    assert chunk.n == expected.n == len(rows)
    got_rows = _chunk_rows(schema, chunk)
    exp_rows = _chunk_rows(schema, expected)
    for g_row, e_row in zip(got_rows, exp_rows):
        for g, e in zip(g_row, e_row):
            if e is None:
                assert g is None
            else:
                assert _values_eq(g, e), (g, e)


@settings(max_examples=60, deadline=None)
@given(st.data())
def test_char_padding_canonicalizes_in_chunk(data):
    """Trailing pad spaces are insignificant: a CHAR(n) value stored with
    padding decodes into the chunk's object lane in stripped form."""
    width = data.draw(st.integers(2, 10))
    body = data.draw(
        st.text(alphabet=_ALPHABET, max_size=width - 1)
    )
    pad = data.draw(st.integers(0, width - len(body)))
    schema = make_schema(
        "padprop", [("k", INT4, False), ("c", char(width), False)]
    )
    db = Database(BeeSettings.stock())
    rel = db.create_table(schema)
    insert_row(db, "padprop", [1, body + " " * pad])
    chunk = decode_relation(rel)
    assert chunk.n == 1
    assert chunk.cols[1][0] == body


def test_empty_relation_decodes_to_empty_chunk():
    schema = make_schema(
        "emptyprop", [("a", INT4, False), ("b", varchar(8), True)]
    )
    db = Database(BeeSettings.stock())
    rel = db.create_table(schema)
    chunk = decode_relation(rel)
    assert chunk.n == 0
    assert all(len(col) == 0 for col in chunk.cols)
    assert chunk.nulls[0] is None
    assert len(chunk.nulls[1]) == 0


def test_multi_page_heap_and_dead_tuples():
    """Chunk boundaries are page boundaries: a heap spanning several
    pages decodes in TID order, and deleted tuples (including a fully
    dead page) never reach the chunk."""
    schema = make_schema(
        "pageprop",
        [("id", INT4, False), ("pad", varchar(300), False),
         ("score", NUMERIC, True)],
    )
    db = Database(BeeSettings.stock())
    rel = db.create_table(schema)
    tids = []
    for i in range(80):
        tids.append(
            insert_row(
                db, "pageprop",
                [i, f"row{i}:" + "x" * 290, None if i % 5 == 0 else i / 8],
            )
        )
    assert rel.heap.page_count >= 3
    chunk = decode_relation(rel)
    assert chunk.n == 80
    assert chunk.cols[0].tolist() == list(range(80))
    # Kill every third row plus one whole page's worth up front.
    dead = {i for i in range(80) if i % 3 == 0} | set(range(25))
    for i in sorted(dead):
        rel.heap.delete(tids[i])
    chunk = decode_relation(rel)
    survivors = [i for i in range(80) if i not in dead]
    assert chunk.n == len(survivors)
    assert chunk.cols[0].tolist() == survivors
    assert chunk.cols[1].tolist() == [
        f"row{i}:" + "x" * 290 for i in survivors
    ]
    assert chunk.nulls[2].tolist() == [i % 5 == 0 for i in survivors]
    for i, survivor in enumerate(survivors):
        if survivor % 5 != 0:
            assert math.isclose(chunk.cols[2][i], survivor / 8)
