"""End-to-end integration scenarios crossing all subsystems."""

import pytest

from repro import BeeSettings, Database
from repro.engine.nodes import SeqScan
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import build_tpch_database, generate_rows
from repro.workloads.tpch.queries import QUERIES


@pytest.fixture(scope="module")
def tpch_rows():
    return generate_rows(TPCHGenerator(scale_factor=0.001))


class TestSQLOverTPCH:
    """The SQL front-end planning real analytics over generated TPC-H."""

    @pytest.fixture(scope="class")
    def dbs(self, tpch_rows):
        stock = build_tpch_database(BeeSettings.stock(), rows=tpch_rows)
        bees = build_tpch_database(BeeSettings.all_bees(), rows=tpch_rows)
        return stock, bees

    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT count(*) FROM lineitem",
            "SELECT l_returnflag, l_linestatus, sum(l_quantity) "
            "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
            "GROUP BY l_returnflag, l_linestatus "
            "ORDER BY l_returnflag, l_linestatus",
            "SELECT sum(l_extendedprice * l_discount) AS revenue "
            "FROM lineitem WHERE l_discount BETWEEN 0.05 AND 0.07 "
            "AND l_quantity < 24",
            "SELECT n_name, count(*) FROM supplier "
            "JOIN nation ON s_nationkey = n_nationkey "
            "GROUP BY n_name ORDER BY n_name LIMIT 5",
            "SELECT o_orderpriority, count(*) FROM orders "
            "WHERE o_orderdate >= DATE '1993-07-01' "
            "GROUP BY o_orderpriority ORDER BY o_orderpriority",
            "SELECT c_mktsegment, avg(c_acctbal) FROM customer "
            "GROUP BY c_mktsegment ORDER BY c_mktsegment",
        ],
    )
    def test_sql_parity(self, dbs, sql):
        stock, bees = dbs
        assert stock.sql(sql).rows == bees.sql(sql).rows

    def test_sql_q1_matches_plan_builder(self, dbs):
        stock, _ = dbs
        sql_rows = stock.sql(
            "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS q "
            "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
            "GROUP BY l_returnflag, l_linestatus "
            "ORDER BY l_returnflag, l_linestatus"
        ).rows
        plan_rows = QUERIES[1](stock)
        assert [(r[0], r[1]) for r in sql_rows] == [
            (r[0], r[1]) for r in plan_rows
        ]
        for sql_row, plan_row in zip(sql_rows, plan_rows):
            assert sql_row[2] == pytest.approx(plan_row[2])


class TestColdVsWarm:
    def test_cold_cache_reads_fewer_pages_with_tuple_bees(self, tpch_rows):
        stock = build_tpch_database(BeeSettings.stock(), rows=tpch_rows)
        bees = build_tpch_database(BeeSettings.all_bees(), rows=tpch_rows)

        def scan_lineitem(db):
            node = SeqScan("lineitem")
            node.bind_schema(db.relation("lineitem").schema)
            return db.execute(node, emit=False)

        stock.cold_cache()
        stock_run = stock.measure(lambda: scan_lineitem(stock))
        bees.cold_cache()
        bees_run = bees.measure(lambda: scan_lineitem(bees))
        assert stock_run.result == bees_run.result
        assert bees_run.seq_pages_read < stock_run.seq_pages_read
        assert bees_run.io_seconds < stock_run.io_seconds


class TestBeePersistenceRoundTrip:
    def test_database_level_flush_and_restart(self, tmp_path, tpch_rows):
        first = Database(BeeSettings.all_bees(), bee_cache_dir=tmp_path)
        from repro.workloads.tpch.loader import create_tables

        create_tables(first)
        first.copy_from("nation", tpch_rows["nation"])
        sections_before = len(
            first.bee_module.relation_bee("nation").data_sections
        )
        assert first.bee_module.flush_to_disk() == 8

        second = Database(BeeSettings.all_bees(), bee_cache_dir=tmp_path)
        create_tables(second)
        layouts = {
            name: second.relation(name).layout
            for name in second.table_names()
        }
        assert second.bee_module.load_from_disk(layouts) == 8
        restored = second.bee_module.relation_bee("nation")
        assert len(restored.data_sections) == sections_before


class TestMixedWorkload:
    def test_queries_after_modifications(self):
        """Insert, update, delete, then query — both modes stay in sync."""
        results = {}
        for label, settings in (
            ("stock", BeeSettings.stock()),
            ("bees", BeeSettings.all_bees()),
        ):
            db = Database(settings)
            db.sql(
                "CREATE TABLE events (id int NOT NULL, kind char(6) NOT NULL,"
                " val numeric NOT NULL, ANNOTATE (kind))"
            )
            kinds = ["click", "view", "buy"]
            db.copy_from("events", [
                [i, kinds[i % 3], float(i)] for i in range(300)
            ])
            db.update_where(
                "events",
                lambda v: v[1] == "buy",
                lambda v: [v[0], v[1], v[2] * 2],
            )
            db.delete_where("events", lambda v: v[0] % 10 == 0)
            db.insert("events", [1000, "click", 5.0])
            results[label] = db.sql(
                "SELECT kind, count(*), sum(val) FROM events "
                "GROUP BY kind ORDER BY kind"
            ).rows
        assert results["stock"] == results["bees"]

    def test_drop_and_recreate_same_name(self):
        db = Database(BeeSettings.all_bees())
        db.sql("CREATE TABLE t (a int NOT NULL, b char(2) NOT NULL, ANNOTATE (b))")
        db.insert("t", [1, "x"])
        db.drop_table("t")
        db.sql("CREATE TABLE t (a int NOT NULL)")   # different shape
        db.insert("t", [7])
        assert db.sql("SELECT * FROM t").rows == [(7,)]


class TestLedgerInvariants:
    def test_execution_never_uncharges(self, tpch_rows):
        db = build_tpch_database(BeeSettings.all_bees(), rows=tpch_rows)
        last = db.ledger.total
        for n in (1, 6, 14):
            QUERIES[n](db)
            assert db.ledger.total > last
            last = db.ledger.total

    def test_profiling_does_not_change_totals(self, tpch_rows):
        from repro.cost.profiler import FunctionProfile

        db1 = build_tpch_database(BeeSettings.all_bees(), rows=tpch_rows)
        db2 = build_tpch_database(BeeSettings.all_bees(), rows=tpch_rows)
        run1 = db1.measure(lambda: QUERIES[6](db1))
        with FunctionProfile(db2.ledger):
            run2 = db2.measure(lambda: QUERIES[6](db2))
        assert run1.instructions == run2.instructions
