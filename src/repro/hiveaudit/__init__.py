"""Hiveaudit: whole-engine invariant-dependency analysis.

Beecheck (``repro.beecheck``) proves each generated bee routine correct
in isolation.  Hiveaudit proves the *lifecycle* property that makes the
whole hive sound: every mutation of state a bee was specialized on —
schema via DDL, annotated attribute values behind tuple-bee beeIDs, plan
constants — must reach an invalidation or regeneration edge on every
call path, or the cache serves stale specialized code.

Three passes over the engine's own source:

1. **extract** — AST taint analysis of every generator in
   ``bees/routines/`` (plus ``datasection.py``/``maker.py``) computes
   which mutable invariant classes each bee kind embeds.
2. **mutations** — scan of the catalog, DML, storage, and bee-settings
   modules discovers every site that mutates one of those invariants.
3. **rules** — a call graph (with catalog-listener edges) proves each
   mutation site reaches its matching invalidation edge; missing edges
   are reported as findings with source spans and witness paths.

``python -m repro.hiveaudit`` sweeps the engine into
``results/hiveaudit/report.json`` and runs a bug-injection self-test
that deletes/rewires each known invalidation edge and requires the
analyzer to flag exactly that edge.
"""

from repro.hiveaudit.audit import AuditReport, Finding, run_audit
from repro.hiveaudit.source import EngineSource
from repro.hiveaudit.selftest import CASES, run_selftest

__all__ = [
    "AuditReport",
    "CASES",
    "EngineSource",
    "Finding",
    "run_audit",
    "run_selftest",
]
