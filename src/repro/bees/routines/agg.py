"""AGG — experimental aggregation-transition bee routine.

The paper's Section VIII names aggregation as the next micro-specialization
target (q1/q9/q16/q18 improve least because their aggregation work is not
specialized).  This routine implements that future work: for a HashAgg
node's aggregate list, it generates one straight-line function that
evaluates every aggregate argument with constants folded (EVP-style) and
feeds the accumulators, replacing the per-aggregate
``advance_transition_function`` dispatch.

Enabled by the experimental ``BeeSettings.agg`` flag (off in
``all_bees()``, which mirrors the paper's evaluated system; see
``BeeSettings.future()``).
"""

from __future__ import annotations

from repro.cost import constants as C
from repro.bees.routines.base import BeeRoutine, compile_routine
from repro.bees.routines.evp import _Emitter, _emit_direct, _emit_guarded

# Specialized per-row transition cost per aggregate: the fmgr dispatch and
# transition-function indirection fold into inlined accumulator updates.
AGG_SPECIALIZED_PER_AGG = 12
AGG_SPECIALIZED_PROLOGUE = 10


def agg_routine_cost(specs, assume_not_null: bool) -> int:
    """Per-input-row cost of the generated AGG routine."""
    cost = AGG_SPECIALIZED_PROLOGUE
    for spec in specs:
        cost += AGG_SPECIALIZED_PER_AGG
        if spec.arg is not None:
            cost += spec.arg.evp_cost
    return cost


def generate_agg(
    specs, ledger, fn_name: str, assume_not_null: bool = False
) -> BeeRoutine:
    """Generate the specialized transition function for *specs*.

    The generated function has signature ``fn(row, states)`` where
    ``states`` is the per-group accumulator list; it performs exactly the
    updates :class:`repro.engine.agg.HashAgg` would make generically.
    """
    cost = agg_routine_cost(specs, assume_not_null)
    em = _Emitter()
    em.namespace["_charge"] = ledger.charge_fn
    em.namespace["_COST"] = cost
    header = [
        f"def {fn_name}(row, states):",
        '    """Specialized aggregate transition (generated)."""',
        f"    _charge({fn_name!r}, _COST)",
    ]
    body: list[str] = []
    for i, spec in enumerate(specs):
        if spec.arg is None:
            body.append(f"    states[{i}].update(None)")   # count(*)
            continue
        if assume_not_null:
            value = _emit_direct(spec.arg, em)
            body.extend(em.lines)
            em.lines = []
            if spec.func == "count":
                body.append(f"    if ({value}) is not None:")
                body.append(f"        states[{i}].update({value})")
            else:
                body.append(f"    states[{i}].update({value})")
        else:
            temp = _emit_guarded(spec.arg, em)
            body.extend(em.lines)
            em.lines = []
            if spec.func == "count":
                body.append(f"    if {temp} is not None:")
                body.append(f"        states[{i}].update({temp})")
            else:
                body.append(f"    states[{i}].update({temp})")
    source = "\n".join(header + body) + "\n"
    fn = compile_routine(source, fn_name, em.namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=cost, source=source, namespace=em.namespace
    )


def generic_transition_cost(specs) -> int:
    """What the generic HashAgg charges per row for the same aggregates."""
    return C.AGG_TRANSITION * len(specs) + sum(
        spec.arg.generic_cost if spec.arg is not None else 0 for spec in specs
    )
