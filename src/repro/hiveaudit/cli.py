"""Command line driver: ``python -m repro.hiveaudit``.

Runs the whole-engine audit, then (unless ``--no-selftest``) the
bug-injection self-test, prints a summary, and writes the combined
report to ``<out>/report.json``.  Exit status is 0 iff the audit has no
findings and every planted bug was caught with correct attribution.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.hiveaudit.audit import run_audit
from repro.hiveaudit.selftest import run_selftest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.hiveaudit",
        description="Whole-engine bee-cache invalidation soundness audit.",
    )
    parser.add_argument(
        "--out", default="results/hiveaudit",
        help="directory for report.json (default: results/hiveaudit)",
    )
    parser.add_argument(
        "--no-selftest", action="store_true",
        help="skip the bug-injection self-test",
    )
    args = parser.parse_args(argv)

    report = run_audit()
    print(report.summary())

    selftest: list[dict] = []
    all_caught = True
    if not args.no_selftest:
        selftest = run_selftest(baseline=report)
        caught = sum(1 for r in selftest if r["caught"])
        all_caught = caught == len(selftest)
        print(f"self-test:          {caught}/{len(selftest)} planted bugs "
              "caught")
        for result in selftest:
            if not result["caught"]:
                print(f"  MISSED {result['case']}: {result['description']}")

    out_dir = Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    payload = report.to_dict()
    payload["selftest"] = selftest
    out_path = out_dir / "report.json"
    out_path.write_text(json.dumps(payload, indent=1) + "\n")
    print(f"report:             {out_path}")

    return 0 if report.ok and all_caught else 1


__all__ = ["main"]
