"""Morsel-parallel benchmark: serial vector tier vs the worker pool.

Runs all 22 TPC-H queries, warm cache, on four databases sharing one
generated dataset:

* **vector** — the serial columnar tier (the ladder below parallel),
* **parallel1 / parallel2 / parallel4** — the morsel coordinator with
  a pool of 1, 2, and 4 worker processes.

The headline metric is **modeled wall seconds** (``MeasuredRun.seconds``:
the priced instruction count run through the calibrated time model,
with the coordinator charging each statement at its slowest worker's
ledger delta — the makespan).  The cost model is what this repo's
experiments are denominated in, and it is the only stable signal on a
shared/1-CPU box, where real fork-and-pipe wall time measures the host,
not the plan.  Real wall-clock is recorded alongside for transparency
but is not gated.

Results must agree with the serial vector tier up to row order and
float re-association (partial sums re-associate across morsels), so
agreement uses the oracle's order-insensitive, float-tolerant
comparison — not bitwise equality.

A mixed-workload section replays a five-query session back-to-back on
the serial and 4-worker databases, pricing pool amortization across
statements rather than per query.

``--check`` gates the tier: the parallel4/vector modeled-wall geomean
must come in at or below ``--tolerance`` (default 0.85) — fanning out
must buy a real speedup after paying dispatch, snapshot, and merge
overheads.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel.py --sf 0.01 --check
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from contextlib import ExitStack
from pathlib import Path

from repro.bees.settings import BeeSettings
from repro.oracle import rows_equivalent
from repro.workloads.tpch.dbgen import TPCHGenerator
from repro.workloads.tpch.loader import build_tpch_database, generate_rows
from repro.workloads.tpch.queries import QUERIES

ENGINES = ("vector", "parallel1", "parallel2", "parallel4")
WORKERS = {"parallel1": 1, "parallel2": 2, "parallel4": 4}
MIXED_QUERIES = (1, 3, 6, 12, 14)


def build_databases(scale_factor: float, seed: int):
    rows = generate_rows(TPCHGenerator(scale_factor, seed))
    databases = {
        "vector": build_tpch_database(BeeSettings.vectorized(), rows=rows),
    }
    for name, n_workers in WORKERS.items():
        databases[name] = build_tpch_database(
            BeeSettings.parallelized(), rows=rows,
            parallel_workers=n_workers,
        )
    return databases


def run_query(db, query_number: int, repeat: int):
    """Best-of-*repeat* modeled + real wall seconds, plus the result.

    The first repeat pays worker warmup (snapshot ships, bee compiles);
    best-of keeps the steady state the tier is priced on.
    """
    best_model = math.inf
    best_wall = math.inf
    run = None
    for _ in range(repeat):
        db.warm_cache()
        started = time.perf_counter()
        run = db.measure(lambda: QUERIES[query_number](db))
        best_wall = min(best_wall, time.perf_counter() - started)
        best_model = min(best_model, run.seconds)
    return best_model, best_wall, run.instructions, run.result


def geomean(values) -> float:
    values = list(values)
    return math.exp(sum(math.log(v) for v in values) / len(values))


def run_suite(databases, repeat: int) -> dict:
    queries = {}
    for number in sorted(QUERIES):
        per_engine = {}
        results = {}
        for engine in ENGINES:
            model, wall, instructions, result = run_query(
                databases[engine], number, repeat
            )
            per_engine[engine] = {
                "model_seconds": model,
                "wall_seconds": wall,
                "instructions": instructions,
            }
            results[engine] = result
        baseline = results["vector"]
        for engine in ENGINES[1:]:
            if not rows_equivalent(results[engine], baseline):
                raise AssertionError(
                    f"q{number}: {engine} disagrees with the serial "
                    f"vector tier — benchmark numbers would be "
                    f"meaningless"
                )
            per_engine[engine]["model_ratio_vs_vector"] = (
                per_engine[engine]["model_seconds"]
                / per_engine["vector"]["model_seconds"]
            )
        queries[f"q{number}"] = per_engine
    return queries


def run_mixed(databases, repeat: int) -> dict:
    """A five-query session priced end-to-end (pool amortization)."""
    totals = {}
    for engine in ("vector", "parallel4"):
        db = databases[engine]
        best = math.inf
        for _ in range(repeat):
            db.warm_cache()
            run = db.measure(
                lambda: [QUERIES[n](db) for n in MIXED_QUERIES]
            )
            best = min(best, run.seconds)
        totals[engine] = best
    return {
        "queries": list(MIXED_QUERIES),
        "model_seconds": totals,
        "model_ratio_parallel4_vs_vector": (
            totals["parallel4"] / totals["vector"]
        ),
    }


def summarize(queries: dict) -> dict:
    def ratio(metric, a, b):
        return geomean(
            q[a][metric] / q[b][metric] for q in queries.values()
        )

    return {
        # The tier's headline claim, and the --check gate.
        "model_geomean_parallel4_vs_vector": ratio(
            "model_seconds", "parallel4", "vector"
        ),
        "model_geomean_parallel2_vs_vector": ratio(
            "model_seconds", "parallel2", "vector"
        ),
        "model_geomean_parallel1_vs_vector": ratio(
            "model_seconds", "parallel1", "vector"
        ),
        # Transparency only: real fork-and-pipe time on this host.
        "wall_geomean_parallel4_vs_vector": ratio(
            "wall_seconds", "parallel4", "vector"
        ),
        "instr_geomean_parallel4_vs_vector": ratio(
            "instructions", "parallel4", "vector"
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="TPC-H morsel-parallel benchmark (serial vector vs "
                    "1/2/4-worker pools)."
    )
    parser.add_argument("--sf", type=float, default=0.01,
                        help="TPC-H scale factor (default 0.01)")
    parser.add_argument("--seed", type=int, default=20120401)
    parser.add_argument("--repeat", type=int, default=2,
                        help="runs per query; best modeled/wall kept")
    parser.add_argument("--out", type=Path,
                        default=Path("results") / "BENCH_parallel.json")
    parser.add_argument("--check", action="store_true",
                        help="exit nonzero unless the parallel4/vector "
                             "modeled-wall geomean is at most --tolerance")
    parser.add_argument("--tolerance", type=float, default=0.85,
                        help="--check passes while the parallel4/vector "
                             "modeled-wall geomean is at or below this "
                             "(default 0.85: the pool must beat serial "
                             "by >=15%% after overheads)")
    args = parser.parse_args(argv)

    databases = build_databases(args.sf, args.seed)
    with ExitStack() as stack:
        for db in databases.values():
            stack.enter_context(db)
        queries = run_suite(databases, args.repeat)
        mixed = run_mixed(databases, args.repeat)
        summary = summarize(queries)
        pool_stats = databases["parallel4"].stats()["parallel"]
    report = {
        "scale_factor": args.sf,
        "seed": args.seed,
        "repeat": args.repeat,
        "engines": {
            name: databases[name].settings.label() or "stock"
            for name in ENGINES
        },
        "workers": WORKERS,
        "summary": summary,
        "mixed_workload": mixed,
        "parallel4_pool_stats": pool_stats,
        "queries": queries,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    for name, value in summary.items():
        print(f"{name}: {value:.3f}")
    print(
        "mixed workload parallel4/vector: "
        f"{mixed['model_ratio_parallel4_vs_vector']:.3f}"
    )
    print(f"report: {args.out}")

    if args.check:
        ratio = summary["model_geomean_parallel4_vs_vector"]
        if ratio > args.tolerance:
            print(
                f"CHECK FAILED: parallel4/vector modeled-wall geomean "
                f"{ratio:.3f} > {args.tolerance}"
            )
            return 1
        print(
            f"check passed: parallel4/vector {ratio:.3f} "
            f"<= {args.tolerance}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
