"""``python -m repro.resilience`` — see :mod:`repro.resilience.cli`."""

import sys

from repro.resilience.cli import run

sys.exit(run())
