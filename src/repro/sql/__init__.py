"""SQL front-end: tokenizer, parser, naive planner, and session API."""

from repro.sql.lexer import SQLSyntaxError, Token, reserved_words, tokenize
from repro.sql.parser import parse
from repro.sql.planner import PlanningError, plan_select, schema_from_create
from repro.sql.session import SQLResult, execute_sql

__all__ = [
    "PlanningError",
    "SQLResult",
    "SQLSyntaxError",
    "Token",
    "execute_sql",
    "parse",
    "plan_select",
    "reserved_words",
    "schema_from_create",
    "tokenize",
]
