"""Wagglecheck: plan-level type flow and rewrite-soundness analysis.

The bees are only as correct as the plan handed to codegen — every
GCL/EVP/pipeline/vector kernel bakes in schema, type, and constant
invariants taken from the planner.  Wagglecheck verifies the plan layer
itself, before any code is generated, with three passes:

* **typeflow** — abstract interpretation from catalog column types
  through every plan node and expression tree, inferring an output
  contract (name, kind, nullability, width) per node, rejecting
  ill-typed comparisons/arithmetic and undeclared implicit coercions,
  and cross-checking the contract against what codegen assumes
  (TupleLayout offsets/widths, EVP operand types, vector dtypes and
  NULL-mask presence, agg accumulator types);
* **rewrite** — structural equivalence proof that ``fuse_plan`` and the
  vector fusion wrapper are plan-preserving: every ``PipelineSpec``
  must replay exactly to the subtree it replaced, with unfused residue
  proven untouched;
* **sections** — every cached bee's data-section constants re-typed
  against the plan contract that generated them.

See ``docs/WAGGLECHECK.md``.  Run with ``python -m repro.wagglecheck``.
"""

from repro.wagglecheck.contracts import (
    ColumnContract,
    TypeChecker,
    contracts_from_schema,
    kind_of_sql_type,
)
from repro.wagglecheck.report import Finding, WaggleReport

__all__ = [
    "ColumnContract",
    "Finding",
    "TypeChecker",
    "WaggleReport",
    "contracts_from_schema",
    "kind_of_sql_type",
]
