"""swarmcheck: purity, shared-state, and escape passes + self-tests."""

import copy
import dataclasses

import numpy as np
import pytest

from repro.bees.settings import BeeSettings
from repro.bees.vector.chunks import ChunkCache, chunk_from_rows, freeze_chunk
from repro.catalog import INT4, NUMERIC, make_schema
from repro.db import Database
from repro.hiveaudit.source import EngineSource
from repro.swarmcheck import REGISTRY, SHARED
from repro.swarmcheck import escape as escape_mod
from repro.swarmcheck import locks as locks_mod
from repro.swarmcheck import purity as purity_mod
from repro.swarmcheck import registry as registry_mod
from repro.swarmcheck import sharedstate as shared_mod
from repro.swarmcheck.corpus import collect
from repro.swarmcheck.selftest import run_selftest


@pytest.fixture(scope="module")
def source():
    return EngineSource()


@pytest.fixture(scope="module")
def corpus():
    routines, executed = collect(seed=0, statements=60)
    assert executed == 120  # two databases, 60 statements each
    return routines


@pytest.fixture(scope="module")
def shared_result(source):
    return shared_mod.classify_writes(source)


class TestPurity:
    def test_whole_corpus_is_pure(self, corpus):
        findings, counts = purity_mod.run_purity(corpus)
        assert findings == []
        # The deterministic section guarantees every family appears
        # regardless of what the fuzzed statements built.
        assert set(counts) == {
            "gcl", "scl", "evp", "evj", "agg", "idx", "pipeline", "vector",
        }

    def test_global_write_is_impure(self, corpus):
        evp = next(r for kind, r in corpus if kind == "evp")
        bad = dataclasses.replace(
            evp,
            source=evp.source.replace(
                "    _charge(", "    global _n\n    _n = 1\n    _charge(", 1
            ),
        )
        findings = purity_mod.check_routine("evp", bad)
        assert any("global" in f.detail for f in findings)

    def test_param_mutation_is_impure(self, corpus):
        evp = next(r for kind, r in corpus if kind == "evp")
        bad = dataclasses.replace(
            evp,
            source=evp.source.replace(
                "    _charge(", "    row[0] = None\n    _charge(", 1
            ),
        )
        findings = purity_mod.check_routine("evp", bad)
        assert any("non-owned" in f.detail for f in findings)

    def test_agg_states_sink_is_declared(self, corpus):
        # AGG bees mutate their states parameter by design — that is
        # the declared sink, not an impurity.
        agg = next(r for kind, r in corpus if kind == "agg")
        assert "states[" in agg.source
        assert purity_mod.check_routine("agg", agg) == []

    def test_non_whitelisted_call_is_impure(self, corpus):
        idx = next(r for kind, r in corpus if kind == "idx")
        bad = dataclasses.replace(
            idx,
            source=idx.source.replace(
                "    _charge(", "    print('x')\n    _charge(", 1
            ),
        )
        findings = purity_mod.check_routine("idx", bad)
        assert any("whitelist" in f.detail for f in findings)

    def test_mutable_namespace_capture_is_impure(self, corpus):
        gcl = next(r for kind, r in corpus if kind == "gcl")
        bad = dataclasses.replace(
            gcl, namespace=dict(gcl.namespace or {}, _MEMO=[])
        )
        findings = purity_mod.check_routine("gcl", bad)
        assert any("mutable list" in f.detail for f in findings)

    def test_writable_array_capture_is_impure(self, corpus):
        vec = next(r for kind, r in corpus if kind == "vector")
        bad = dataclasses.replace(
            vec, namespace=dict(vec.namespace or {}, _BUF=np.zeros(4))
        )
        findings = purity_mod.check_routine("vector", bad)
        assert any("WRITABLE ndarray" in f.detail for f in findings)

    def test_frozen_array_capture_is_pure(self, corpus):
        vec = next(r for kind, r in corpus if kind == "vector")
        frozen = np.zeros(4)
        frozen.setflags(write=False)
        ok = dataclasses.replace(
            vec, namespace=dict(vec.namespace or {}, _BUF=frozen)
        )
        assert purity_mod.check_routine("vector", ok) == []

    def test_evj_static_data_is_impure(self, corpus):
        evj = next(r for kind, r in corpus if kind == "evj")
        assert purity_mod.check_routine("evj", evj) == []
        bad = dataclasses.replace(
            evj, source="static int hits = 0;\n" + evj.source
        )
        findings = purity_mod.check_routine("evj", bad)
        assert any("static data" in f.detail for f in findings)


class TestSharedState:
    def test_no_unclassified_writes(self, shared_result):
        _sites, findings, _stats = shared_result
        assert findings == []

    def test_every_registry_entry_is_exercised(self, shared_result):
        _sites, _findings, stats = shared_result
        assert stats["unused_registry_keys"] == []

    def test_shared_entries_name_guard_and_epoch(self):
        for entry in REGISTRY:
            if entry.scope == SHARED:
                assert entry.guard, f"{entry.key} has no guard"
                assert entry.epoch, f"{entry.key} has no epoch"

    def test_memo_caches_are_declared(self, shared_result):
        sites, _findings, _stats = shared_result
        matched = {s.entry_key for s in sites if s.entry_key}
        for key in (
            "GenericBeeModule._evp_by_expr",
            "ChunkCache._entries",
            "Ledger.total",
            "ResilienceRegistry._health",
        ):
            assert key in matched, f"no write site matched {key}"

    def test_plan_node_writes_are_statement_local(self, shared_result):
        sites, _findings, _stats = shared_result
        node_sites = [
            s for s in sites if s.module == "engine/nodes.py"
        ]
        assert node_sites, "no writes found in plan-node module"
        assert all(
            s.classification == "statement-local" for s in node_sites
        )

    def test_registry_gap_is_a_finding(self, source):
        gapped = tuple(
            e for e in REGISTRY if e.key != "Ledger.total"
        )
        _sites, findings, _stats = shared_mod.classify_writes(
            source, registry=gapped
        )
        assert any("Ledger.total" in f.subject for f in findings)

    def test_lookup_falls_back_to_wildcard(self):
        assert registry_mod.lookup("BeeRoutine", "epoch") is not None
        assert registry_mod.lookup(None, "epoch") is not None
        assert registry_mod.lookup(None, "no_such_attr") is None


class TestEscape:
    def test_vector_modules_are_clean(self, source):
        assert escape_mod.scan_modules(source) == []

    def test_all_kernels_are_clean(self, corpus):
        findings, checked = escape_mod.scan_kernels(corpus)
        assert findings == []
        assert checked > 0

    def test_kernel_store_is_flagged(self, corpus):
        vec = next(r for kind, r in corpus if kind == "vector")
        bad = dataclasses.replace(
            vec,
            source=vec.source.replace(
                "    _charge(", "    cols[0][0] = 1\n    _charge(", 1
            ),
        )
        findings, _ = escape_mod.scan_kernels([("vector", bad)])
        assert findings

    def test_out_kwarg_is_flagged(self, corpus):
        vec = next(r for kind, r in corpus if kind == "vector")
        bad = dataclasses.replace(
            vec,
            source=vec.source.replace(
                "    _charge(",
                "    _np.add(cols[0], 1, out=t0)\n    _charge(", 1,
            ),
        )
        findings, _ = escape_mod.scan_kernels([("vector", bad)])
        assert any("out=" in f.detail for f in findings)

    def test_cached_chunks_are_frozen(self):
        db = Database(BeeSettings.vectorized())
        db.sql("CREATE TABLE t (a INT, b INT)")
        db.sql("INSERT INTO t VALUES (1, 10)")
        db.sql("INSERT INTO t VALUES (2, 20)")
        db.sql("SELECT a FROM t WHERE b > 5")
        entries = db.chunk_cache._entries
        assert entries, "vector scan did not populate the chunk cache"
        findings, arrays = escape_mod.check_entries(entries)
        assert findings == []
        assert arrays > 0
        # And mutation actually raises, not just reports.
        (_v, _layout, chunk) = next(iter(entries.values()))
        with pytest.raises(ValueError):
            chunk.cols[0][0] = 99

    def test_writable_entry_is_flagged(self):
        schema = make_schema("t", [("a", INT4), ("b", NUMERIC, True)])
        chunk = chunk_from_rows(schema, [[1, 1.5], [2, None]])
        findings, arrays = escape_mod.check_entries({1: (0, None, chunk)})
        assert findings and arrays > 0
        freeze_chunk(chunk)
        findings, _ = escape_mod.check_entries({1: (0, None, chunk)})
        assert findings == []


class TestLocks:
    """Pass 4: the guard registry is materialized and honoured."""

    def test_locks_pass_is_clean(self, source):
        findings, stats = locks_mod.run_locks(source)
        assert findings == []
        # One latched _run_statement site per statement class.
        assert stats["latched_run_sites"] == 3
        assert stats["guarded_writes_checked"] > 0

    def test_every_declared_guard_is_materialized(self, source):
        _findings, stats = locks_mod.run_locks(source)
        assert set(stats["declared_guards"]) == set(stats["materialized"])

    def test_phantom_guard_is_a_finding(self, source):
        phantom = REGISTRY + (
            registry_mod.SharedState(
                "HiveServer", "_ghost", SHARED, "ghost_lock", "-"
            ),
        )
        findings, _stats = locks_mod.run_locks(source, registry=phantom)
        assert any(f.subject == "ghost_lock" for f in findings)

    def test_unguarded_write_is_a_finding(self, source):
        text = source.text("server/core.py").replace(
            "        with self.locks.server_lock:\n"
            "            self.stats.disconnects += 1",
            "        self.stats.disconnects += 1",
            1,
        )
        patched = type(source)(overrides={"server/core.py": text})
        findings, _stats = locks_mod.run_locks(patched)
        assert any(
            f.subject == "ServerStats.disconnects" for f in findings
        )

    def test_unlatched_run_statement_is_a_finding(self, source):
        text = source.text("server/core.py").replace(
            "        with self.locks.catalog_lock.write(self.lock_timeout):\n"
            "            seq = self._next_seq()",
            "        if True:\n"
            "            seq = self._next_seq()",
            1,
        )
        assert text != source.text("server/core.py")
        patched = type(source)(overrides={"server/core.py": text})
        findings, _stats = locks_mod.run_locks(patched)
        assert any("catalog latch" in f.detail for f in findings)


class TestSelftest:
    def test_every_injection_is_caught(self, source, corpus):
        results = run_selftest(source, corpus)
        assert len(results) >= 13
        missed = [case for case, ok in results.items() if not ok]
        assert not missed, f"injections missed: {missed}"


class TestSatellites:
    def test_stats_returns_deep_copies(self):
        db = Database(BeeSettings.all_bees())
        db.sql("CREATE TABLE t (a INT)")
        db.sql("INSERT INTO t VALUES (1)")
        first = db.stats()
        # Mutating the returned snapshot must not leak into engine
        # state or into later snapshots.
        mutated = copy.deepcopy(first)
        first["bees"].clear()
        first["resilience"]["events"] = ["bogus"] if isinstance(
            first["resilience"], dict
        ) else first["resilience"]
        second = db.stats()
        assert second["bees"] == mutated["bees"]

    def test_chunk_cache_get_freezes(self):
        db = Database(BeeSettings.vectorized())
        db.sql("CREATE TABLE t (a INT)")
        db.sql("INSERT INTO t VALUES (7)")
        rel = db.relation("t")
        cache = ChunkCache()
        chunk = cache.get(rel)
        for arr in chunk.cols:
            assert not arr.flags.writeable
        for mask in chunk.nulls:
            if mask is not None:
                assert not mask.flags.writeable
