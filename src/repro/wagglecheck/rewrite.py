"""Pass 2 — rewrite soundness: fusion must be plan-preserving.

``fuse_plan`` (and the vector wrapper above it) replaces fusable
segments with driver nodes carrying a :class:`PipelineSpec`.  This pass
proves, for every driver in the rewritten plan, that the spec *replays*
exactly to the subtree it replaced — same relation and layout, the same
qualifications (conjunction order preserved), the same projection
expressions and constants, the same join keys and type, the same
aggregate specs — and that every node fusion did **not** touch is
structurally identical to the original (identity sharing is accepted as
the strongest proof).

The replay deliberately re-implements the scan-chain match rather than
calling into :mod:`repro.bees.pipeline.fusion`: an analyzer that trusts
the rewriter's own matcher would inherit its bugs.
"""

from __future__ import annotations

from repro.engine import expr as E
from repro.engine.agg import HashAgg
from repro.engine.aggregates import AggSpec
from repro.engine.joins import HashJoin, MergeJoin, NestLoop
from repro.engine.nodes import (
    ColumnSelect,
    Filter,
    IndexScan,
    Limit,
    Materialize,
    PlanNode,
    Project,
    Rename,
    SeqScan,
    Sort,
)
from repro.wagglecheck.report import Finding

# Scalar fields that must match for two expression nodes of the same
# type to be structurally equal (children compared recursively).
_EXPR_SCALARS = {
    E.Const: ("value",),
    E.Col: ("name", "index"),
    E.Cmp: ("op",),
    E.Arith: ("op",),
    E.Like: ("pattern", "negate"),
    E.InList: ("values",),
    E.Between: ("low", "high"),
    E.IsNull: ("negate",),
    E.Func: ("name",),
}

# Same idea for generic plan nodes (the unfused-residue walk).
_NODE_SCALARS = {
    Filter: ("not_null", "columns"),
    Project: ("columns",),
    ColumnSelect: ("columns",),
    Rename: ("prefix",),
    Sort: ("limit",),
    Limit: ("n",),
    Materialize: (),
    SeqScan: ("relation",),
    IndexScan: ("relation", "index", "equal", "low", "high"),
    HashJoin: ("join_type", "probe_idx", "build_idx", "not_null"),
    NestLoop: ("join_type", "not_null"),
    MergeJoin: ("join_type", "left_idx", "right_idx"),
    HashAgg: ("group_names",),
}

_NODE_CHILDREN = {
    Filter: ("child",),
    Project: ("child",),
    ColumnSelect: ("child",),
    Rename: ("child",),
    Sort: ("child",),
    Limit: ("child",),
    Materialize: ("child",),
    HashAgg: ("child",),
    HashJoin: ("probe", "build"),
    NestLoop: ("outer", "inner"),
    MergeJoin: ("left", "right"),
}


def expr_equal(a: E.Expr | None, b: E.Expr | None) -> bool:
    """Structural equality over expression trees.

    Constant comparison is type-exact (``1`` is not ``1.0`` is not
    ``True``) because codegen inlines constants verbatim.
    """
    if a is b:
        return True
    if a is None or b is None or type(a) is not type(b):
        return False
    for field_name in _EXPR_SCALARS.get(type(a), ()):
        left, right = getattr(a, field_name), getattr(b, field_name)
        if type(left) is not type(right) or left != right:
            return False
    left_children, right_children = a.children(), b.children()
    if len(left_children) != len(right_children):
        return False
    return all(
        expr_equal(x, y) for x, y in zip(left_children, right_children)
    )


def agg_spec_equal(a: AggSpec, b: AggSpec) -> bool:
    return (
        a.func == b.func
        and a.name == b.name
        and getattr(a, "distinct", False) == getattr(b, "distinct", False)
        and expr_equal(a.arg, b.arg)
    )


def _is_driver(node: PlanNode) -> bool:
    """A pipeline or vector driver: carries a spec plus its anchor."""
    return hasattr(node, "spec") and hasattr(node, "anchor")


class RewriteChecker:
    """Compares a fused plan against the original it was derived from."""

    def __init__(self, subject: str, db) -> None:
        self.subject = subject
        self.db = db
        self.findings: list[Finding] = []
        self.rewrites_checked = 0

    def fail(self, message: str) -> None:
        self.findings.append(Finding("rewrite", self.subject, message))

    # -- plan comparison ----------------------------------------------------

    def compare(self, fused: PlanNode, orig: PlanNode) -> None:
        """Prove *fused* is *orig* rewritten only around sound drivers."""
        if fused is orig:
            return      # untouched residue shared by identity
        if _is_driver(fused):
            self.rewrites_checked += 1
            anchor = fused.anchor
            if _is_driver(anchor):
                # Vector driver stacked on the pipeline driver it shadows:
                # both tiers must compile the *same* spec.
                if fused.spec is not anchor.spec and not self._spec_quiet_eq(
                    fused.spec, anchor.spec
                ):
                    self.fail(
                        f"{type(fused).__name__} carries a different spec "
                        "than the pipeline driver it wraps"
                    )
                self.compare(anchor, orig)
                build = getattr(fused, "build", None)
                if build is not None and isinstance(orig, HashJoin):
                    self.compare(build, orig.build)
                return
            if anchor is not orig:
                self.fail(
                    f"{type(fused).__name__} anchor is not the subtree "
                    "it replaced"
                )
            self.check_spec(fused.spec, orig)
            build = getattr(fused, "build", None)
            if build is not None:
                if isinstance(orig, HashJoin):
                    self.compare(build, orig.build)
                else:
                    self.fail(
                        "probe-sink driver replaced a non-HashJoin node"
                    )
            return
        # Generic residue: same node type, same local fields, recurse.
        if type(fused) is not type(orig):
            self.fail(
                f"rewrite changed a {type(orig).__name__} node into "
                f"{type(fused).__name__}"
            )
            return
        self._compare_locals(fused, orig)
        for attr in _NODE_CHILDREN.get(type(fused), ()):
            self.compare(getattr(fused, attr), getattr(orig, attr))

    def _spec_quiet_eq(self, a, b) -> bool:
        """Spec equality without emitting findings (identity fallback)."""
        probe = RewriteChecker(self.subject, self.db)
        return probe._specs_equal(a, b)

    def _specs_equal(self, a, b) -> bool:
        if (
            a.relation != b.relation
            or a.sink != b.sink
            or a.join_type != b.join_type
            or a.probe_idx != b.probe_idx
            or a.build_width != b.build_width
            or not expr_equal(a.qual, b.qual)
        ):
            return False
        for mine, theirs in (
            (a.output or [], b.output or []),
            (a.group_exprs, b.group_exprs),
        ):
            if len(mine) != len(theirs) or not all(
                expr_equal(x, y) for x, y in zip(mine, theirs)
            ):
                return False
        return len(a.aggs) == len(b.aggs) and all(
            agg_spec_equal(x, y) for x, y in zip(a.aggs, b.aggs)
        )

    def _compare_locals(self, fused: PlanNode, orig: PlanNode) -> None:
        label = type(orig).__name__
        for field_name in _NODE_SCALARS.get(type(orig), ()):
            if getattr(fused, field_name, None) != getattr(
                orig, field_name, None
            ):
                self.fail(
                    f"rewrite changed {label}.{field_name} on an unfused "
                    "node"
                )
        pairs: list[tuple[E.Expr | None, E.Expr | None, str]] = []
        if isinstance(orig, Filter):
            pairs.append((fused.qual, orig.qual, "qual"))
        elif isinstance(orig, HashJoin):
            pairs.append((fused.extra_qual, orig.extra_qual, "extra_qual"))
        elif isinstance(orig, NestLoop):
            pairs.append((fused.qual, orig.qual, "qual"))
        elif isinstance(orig, Project):
            for left, right in zip(fused.exprs, orig.exprs):
                pairs.append((left, right, "exprs"))
        elif isinstance(orig, Sort):
            for (le, ld), (re_, rd) in zip(fused.keys, orig.keys):
                if ld != rd:
                    self.fail("rewrite flipped a Sort key direction")
                pairs.append((le, re_, "keys"))
        elif isinstance(orig, HashAgg):
            for left, right in zip(fused.group_exprs, orig.group_exprs):
                pairs.append((left, right, "group_exprs"))
            if len(fused.aggs) != len(orig.aggs) or not all(
                agg_spec_equal(x, y)
                for x, y in zip(fused.aggs, orig.aggs)
            ):
                self.fail("rewrite changed HashAgg aggregate specs")
        for left, right, field_name in pairs:
            if (left is None) != (right is None) or (
                left is not None and not expr_equal(left, right)
            ):
                self.fail(
                    f"rewrite changed {label}.{field_name} on an unfused "
                    "node"
                )

    # -- spec replay --------------------------------------------------------

    def check_spec(self, spec, replaced: PlanNode) -> None:
        """Replay *spec* against the subtree it claims to have replaced."""
        if _is_driver(replaced):
            # Cached vector spec anchored on a pipeline driver: the two
            # tiers share the spec; replay against the inner anchor.
            if spec is not replaced.spec and not self._spec_quiet_eq(
                spec, replaced.spec
            ):
                self.fail(
                    "vector spec differs from the pipeline spec it shadows"
                )
            self.check_spec(replaced.spec, replaced.anchor)
            return
        if spec.sink == "rows":
            chain = self._match_chain(replaced, allow_projection=True)
            if chain is None:
                self.fail("rows-sink spec replaced a non-scan-chain subtree")
                return
            self._check_chain(spec, *chain)
        elif spec.sink == "probe":
            if not isinstance(replaced, HashJoin):
                self.fail("probe-sink spec replaced a non-HashJoin subtree")
                return
            if replaced.extra_qual is not None:
                self.fail(
                    "rewrite lost the residual join qualification: "
                    "fusion must decline joins with extra_qual"
                )
            if spec.join_type != replaced.join_type:
                self.fail(
                    f"spec join_type {spec.join_type!r} differs from the "
                    f"replaced join's {replaced.join_type!r}"
                )
            if tuple(spec.probe_idx) != tuple(replaced.probe_idx):
                self.fail(
                    f"spec probe keys {tuple(spec.probe_idx)} differ from "
                    f"the replaced join's {tuple(replaced.probe_idx)}"
                )
            expected_width = (
                len(replaced.build.columns) if replaced.build.columns else 0
            )
            if spec.build_width != expected_width:
                self.fail(
                    f"spec build_width {spec.build_width} differs from the "
                    f"build side's row width {expected_width}"
                )
            chain = self._match_chain(replaced.probe, allow_projection=False)
            if chain is None:
                self.fail("probe-sink spec's probe side is not a scan chain")
                return
            self._check_chain(spec, *chain)
        elif spec.sink == "agg":
            if not isinstance(replaced, HashAgg):
                self.fail("agg-sink spec replaced a non-HashAgg subtree")
                return
            if len(spec.group_exprs) != len(replaced.group_exprs) or not all(
                expr_equal(a, b)
                for a, b in zip(spec.group_exprs, replaced.group_exprs)
            ):
                self.fail(
                    "spec group expressions differ from the replaced "
                    "HashAgg's"
                )
            if len(spec.aggs) != len(replaced.aggs) or not all(
                agg_spec_equal(a, b)
                for a, b in zip(spec.aggs, replaced.aggs)
            ):
                self.fail(
                    "spec aggregate specs differ from the replaced "
                    "HashAgg's"
                )
            chain = self._match_chain(replaced.child, allow_projection=False)
            if chain is None:
                self.fail("agg-sink spec's input is not a scan chain")
                return
            self._check_chain(spec, *chain)
        else:
            self.fail(f"unknown pipeline sink {spec.sink!r}")

    def _match_chain(self, node: PlanNode, allow_projection: bool):
        """Independent re-match of ``[Project|ColumnSelect]?
        (Filter|Rename)* SeqScan`` (mirrors the fuser's language)."""
        labels: list[str] = []
        projection: list | None = None
        if allow_projection and type(node) is Project:
            projection = list(node.exprs)
            labels.append("Project")
            node = node.child
        elif allow_projection and type(node) is ColumnSelect:
            projection = [
                E.Col(name, index)
                for name, index in zip(node.columns, node._indexes)
            ]
            labels.append("ColumnSelect")
            node = node.child
        quals: list[E.Expr] = []
        while True:
            if type(node) is Filter:
                quals.append(node.qual)
                labels.append("Filter")
                node = node.child
            elif type(node) is Rename:
                labels.append("Rename")
                node = node.child
            else:
                break
        if type(node) is not SeqScan:
            return None
        labels.append(f"SeqScan({node.relation})")
        return node, quals, projection, tuple(labels)

    def _check_chain(
        self,
        spec,
        scan: SeqScan,
        quals: list[E.Expr],
        projection: list | None,
        labels: tuple,
    ) -> None:
        if spec.relation != scan.relation:
            self.fail(
                f"spec scans {spec.relation!r} but the replaced chain "
                f"scans {scan.relation!r}"
            )
            return
        try:
            rel = self.db.relation(scan.relation)
        except KeyError:
            self.fail(f"spec relation {scan.relation!r} no longer exists")
            return
        if spec.layout is not rel.layout:
            self.fail(
                f"spec embeds a stale layout for {scan.relation!r} "
                "(not the catalog's current TupleLayout)"
            )
        if not quals:
            expected_qual = None
        elif len(quals) == 1:
            expected_qual = quals[0]
        else:
            expected_qual = E.And(*quals)
        if (spec.qual is None) != (expected_qual is None) or (
            spec.qual is not None and not expr_equal(spec.qual, expected_qual)
        ):
            if spec.qual is None and expected_qual is not None:
                self.fail(
                    "rewrite lost a residual qualification: the replaced "
                    f"chain filters with {expected_qual!r} but the spec "
                    "is unfiltered"
                )
            else:
                self.fail(
                    f"spec qualification {spec.qual!r} differs from the "
                    f"replaced chain's {expected_qual!r}"
                )
        spec_output = spec.output
        if (spec_output is None) != (projection is None):
            self.fail(
                "spec projection presence differs from the replaced chain"
            )
        elif spec_output is not None and projection is not None:
            if len(spec_output) != len(projection) or not all(
                expr_equal(a, b) for a, b in zip(spec_output, projection)
            ):
                self.fail(
                    "spec projection differs from the replaced chain's "
                    "target list"
                )
        if tuple(spec.fused_nodes) != labels:
            self.fail(
                f"spec fused-node trail {tuple(spec.fused_nodes)} differs "
                f"from the replaced chain {labels}"
            )


def check_fusion(
    plan: PlanNode, db, subject: str
) -> tuple[list[Finding], int]:
    """Fuse *plan* through every tier and prove each result equivalent.

    Three replays: the pipeline rewrite, the vector rewrite stacked on
    it, and the parallel rewrite stacked on the vector one.  The morsel
    drivers carry the same spec object as the driver they wrap, so the
    existing driver-on-driver stacking rules apply unchanged — a
    parallel node that invented its own spec (or grafted a build
    subtree that no longer replays against the original join's build
    side) is a finding.
    """
    from repro.bees.pipeline.fusion import fuse_plan
    from repro.bees.vector.fusion import fuse_vector_plan
    from repro.parallel.fusion import parallelize_plan

    checker = RewriteChecker(subject, db)
    try:
        fused = fuse_plan(plan, db)
    except Exception as exc:    # noqa: BLE001 - a crashing rewriter is a finding
        checker.fail(f"fuse_plan raised {type(exc).__name__}: {exc}")
        return checker.findings, checker.rewrites_checked
    checker.compare(fused, plan)
    try:
        vectorized = fuse_vector_plan(plan, db)
    except Exception as exc:    # noqa: BLE001
        checker.fail(f"fuse_vector_plan raised {type(exc).__name__}: {exc}")
        return checker.findings, checker.rewrites_checked
    checker.compare(vectorized, plan)
    try:
        paralleled = parallelize_plan(fuse_vector_plan(plan, db), db)
    except Exception as exc:    # noqa: BLE001
        checker.fail(f"parallelize_plan raised {type(exc).__name__}: {exc}")
        return checker.findings, checker.rewrites_checked
    checker.compare(paralleled, plan)
    return checker.findings, checker.rewrites_checked


def check_cached_spec(
    spec, anchor: PlanNode, db, subject: str
) -> tuple[list[Finding], int]:
    """Replay one memoized driver spec against its cached anchor."""
    checker = RewriteChecker(subject, db)
    checker.rewrites_checked += 1
    checker.check_spec(spec, anchor)
    return checker.findings, checker.rewrites_checked
