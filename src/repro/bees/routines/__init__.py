"""Bee routine generators: GCL, SCL (relation bees), EVP, EVJ (query bees)."""
