"""E3 — Fig. 5: TPC-H run-time improvement with a cold cache.

Paper: 0.6%-32.8% improvement, Avg1 = 12.9%, Avg2 = 22.3%.  The signature
effect is q9: its six relation scans hit the tuple-bee-shrunk lineitem /
orders / part / nation relations, so the cold-cache I/O saving lifts its
improvement to ~17.4% — the cold run should beat its warm run for q9.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import emit, bar_chart
from repro.bench.tpch_experiments import compare_queries
from repro.workloads.tpch.queries import QUERIES


@pytest.fixture(scope="module")
def cold_suite(tpch_pair):
    stock, bees = tpch_pair
    suite = compare_queries(stock, bees, cold=True)
    labels = [f"q{n}" for n in sorted(suite.comparisons)]
    values = [
        suite.comparisons[n].time_improvement
        for n in sorted(suite.comparisons)
    ]
    emit("\n=== E3 / Fig. 5: TPC-H run time improvement (cold cache) ===")
    emit(bar_chart(labels, values, "Per-query % improvement (cold)"))
    emit(f"Avg1 = {suite.avg1('time'):.1f}%   (paper 12.9%)")
    emit(f"Avg2 = {suite.avg2('time'):.1f}%   (paper 22.3%)")
    assert suite.all_match()
    return suite


def test_fig5_q09_cold_stock(benchmark, tpch_pair, cold_suite):
    stock, _ = tpch_pair

    def run():
        stock.cold_cache()
        return QUERIES[9](stock)

    benchmark(run)


def test_fig5_q09_cold_bees(benchmark, tpch_pair, cold_suite):
    _, bees = tpch_pair

    def run():
        bees.cold_cache()
        return QUERIES[9](bees)

    benchmark(run)


def test_fig5_shape(benchmark, tpch_pair, cold_suite):
    """Tuple-bee I/O savings show up cold: q9 gains over its warm run."""
    benchmark(lambda: None)
    stock, bees = tpch_pair
    warm_q9 = compare_queries(stock, bees, queries=[9], cold=False)
    cold_improvement = cold_suite.comparisons[9].time_improvement
    warm_improvement = warm_q9.comparisons[9].time_improvement
    assert cold_improvement >= warm_improvement - 0.5, (
        f"q9 cold ({cold_improvement:.1f}%) should not trail warm "
        f"({warm_improvement:.1f}%)"
    )
    assert 5.0 <= cold_suite.avg1("time") <= 30.0
