"""Pass 2 — mutation discovery: where does tracked invariant state change?

Scans the DDL/DML/storage/bee modules for every statement that mutates
one of the invariant classes the extraction pass proved bees embed, and
classifies each site with a *verb* (create / replace / destroy /
rebuild / row-insert / row-delete / swap / append / primitive) that the
rules pass matches against required invalidation edges.

Verbs are primarily syntactic (``del``/``.pop``/``.clear`` → destroy,
assignment → replace) but a ``_notify("<event>", ...)`` literal in the
same function is authoritative — ``Catalog.create_relation`` assigns
into ``_relations`` yet is a *create*, not a replace, and must not be
asked for an invalidation edge.

``__init__`` bodies are skipped: constructing an empty registry is not a
mutation of live state.  Page-level mutations inside ``storage/`` are
collapsed to one informational "primitive" site per mutating function —
callers of those primitives (DML, vacuum) are the sites the rules
constrain.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.hiveaudit.callgraph import CallGraph, GRAPH_MODULES

# Attribute name -> (invariant class, default verb for plain assignment),
# per module where the attribute is authoritative.
TRACKED_ATTRS = {
    "catalog/catalog.py": {
        "_relations": ("catalog.schema", "replace"),
    },
    "db.py": {
        "_relations": ("runtime.relations", "replace"),
        "settings": ("settings.flags", "swap"),
    },
}

_NOTIFY_VERBS = {"create": "create", "alter": "replace", "drop": "destroy"}

# Methods on AnnotationStore reached via `.annotations`.
_ANNOTATION_VERBS = {"annotate": "replace", "clear": "destroy"}

_HEAP_ROW_VERBS = {"insert": "row-insert", "delete": "row-delete"}

_STORAGE_MODULES = ("storage/heapfile.py", "storage/buffer.py")

# Attributes whose element-level mutation inside storage/ marks the
# owning function as a storage primitive.
_STORAGE_ATTRS = frozenset({"pages", "live_count", "_resident"})


@dataclass(frozen=True)
class MutationSite:
    """One discovered mutation of tracked invariant state."""

    module: str
    qualname: str  # enclosing function, callgraph key
    lineno: int
    invariant: str  # invariant class mutated
    verb: str
    detail: str

    def to_dict(self) -> dict:
        return {
            "module": self.module,
            "function": self.qualname,
            "line": self.lineno,
            "invariant": self.invariant,
            "verb": self.verb,
            "detail": self.detail,
        }


def _attr_name(node) -> str | None:
    """The attribute name for self.X / obj.X targets, else a bare name."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _subscript_base_attr(node) -> str | None:
    if isinstance(node, ast.Subscript):
        return _attr_name(node.value)
    return None


class _FunctionScanner(ast.NodeVisitor):
    def __init__(
        self, module: str, info, graph: CallGraph, sites: list
    ) -> None:
        self.module = module
        self.info = info
        self.graph = graph
        self.sites = sites
        self.tracked = TRACKED_ATTRS.get(module, {})
        self.notify_verb = None
        for event in info.notifies:
            self.notify_verb = _NOTIFY_VERBS.get(event, self.notify_verb)

    def _emit(self, lineno, invariant, verb, detail) -> None:
        self.sites.append(
            MutationSite(
                self.module, self.info.qualname, lineno, invariant, verb,
                detail,
            )
        )

    def _verb(self, syntactic: str) -> str:
        # A _notify literal in the same function names the DDL event and
        # overrides the syntactic guess for registry mutations.
        return self.notify_verb or syntactic

    # -- registry / attribute mutations --------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._store_target(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._store_target(node.target, node.lineno)
        self.generic_visit(node)

    def _store_target(self, target, lineno) -> None:
        base = _subscript_base_attr(target)
        if base is not None and base in self.tracked:
            invariant, verb = self.tracked[base]
            self._emit(lineno, invariant, self._verb(verb),
                       f"{base}[...] = ...")
            return
        attr = _attr_name(target)
        if attr in self.tracked and isinstance(target, ast.Attribute):
            invariant, verb = self.tracked[attr]
            self._emit(lineno, invariant, self._verb(verb), f"{attr} = ...")
        elif (
            attr == "heap"
            and isinstance(target, ast.Attribute)
            and not self.module.startswith("storage/")
        ):
            # rel.heap = <fresh HeapFile> — the heap is rebuilt under the
            # relation: resident pages for it are now stale.
            self._emit(lineno, "storage.heap", "rebuild", "heap = ...")

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            base = _subscript_base_attr(target)
            if base in self.tracked:
                invariant, _verb = self.tracked[base]
                self._emit(node.lineno, invariant, self._verb("destroy"),
                           f"del {base}[...]")
        self.generic_visit(node)

    # -- method-call mutations ------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            name = func.attr
            recv = func.value
            recv_attr = _attr_name(recv)
            if name in ("pop", "clear") and recv_attr in self.tracked:
                invariant, _verb = self.tracked[recv_attr]
                self._emit(node.lineno, invariant, self._verb("destroy"),
                           f"{recv_attr}.{name}(...)")
            elif (
                name in _ANNOTATION_VERBS
                and isinstance(recv, ast.Attribute)
                and recv.attr == "annotations"
            ):
                self._emit(
                    node.lineno, "layout.annotations",
                    _ANNOTATION_VERBS[name], f"annotations.{name}(...)",
                )
            elif (
                name in _HEAP_ROW_VERBS
                and not self.module.startswith("storage/")
                and recv_attr is not None
                and (
                    self.graph.attr_types.get(recv_attr) == "HeapFile"
                    or recv_attr == "heap"
                )
            ):
                self._emit(
                    node.lineno, "storage.heap", _HEAP_ROW_VERBS[name],
                    f"{recv_attr}.{name}(...)",
                )
            elif (
                name == "write"
                and recv_attr is not None
                and self.graph.attr_types.get(recv_attr) == "RowWriter"
            ):
                self._emit(node.lineno, "storage.heap", "row-insert",
                           f"{recv_attr}.write(...)")
        self.generic_visit(node)


def _scan_datasection(source, graph: CallGraph, sites: list) -> None:
    """DataSectionStore must be append-only: destroys are violations."""
    module = "bees/datasection.py"
    for qual, info in graph.functions.items():
        if info.module != module or info.node.name == "__init__":
            continue
        for node in ast.walk(info.node):
            if isinstance(node, ast.Delete):
                sites.append(
                    MutationSite(module, qual, node.lineno,
                                 "datasection.values", "destroy", "del slab"),
                )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in ("pop", "clear", "remove"):
                    sites.append(
                        MutationSite(
                            module, qual, node.lineno, "datasection.values",
                            "destroy", f".{node.func.attr}(...)",
                        )
                    )
                elif node.func.attr == "append" and _attr_name(
                    node.func.value
                ) == "_slabs":
                    sites.append(
                        MutationSite(
                            module, qual, node.lineno, "datasection.values",
                            "append", "_slabs.append(...)",
                        )
                    )


def _scan_storage_primitives(graph: CallGraph, sites: list) -> None:
    """One informational site per storage function that mutates pages."""
    for qual, info in graph.functions.items():
        if info.module not in _STORAGE_MODULES:
            continue
        if info.node.name == "__init__":
            continue
        for node in ast.walk(info.node):
            mutated = None
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    base = _subscript_base_attr(target) or (
                        _attr_name(target)
                        if isinstance(target, ast.Attribute)
                        else None
                    )
                    if base in _STORAGE_ATTRS:
                        mutated = base
            elif isinstance(node, ast.AugAssign):
                base = _attr_name(node.target)
                if base in _STORAGE_ATTRS:
                    mutated = base
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if _subscript_base_attr(target) in _STORAGE_ATTRS:
                        mutated = _subscript_base_attr(target)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if (
                    node.func.attr in ("append", "pop", "clear")
                    and _attr_name(node.func.value) in _STORAGE_ATTRS
                ):
                    mutated = _attr_name(node.func.value)
            if mutated is not None:
                sites.append(
                    MutationSite(
                        info.module, qual, info.lineno, "storage.pages",
                        "primitive", f"mutates {mutated}",
                    )
                )
                break  # one site per function


def scan_mutations(source, graph: CallGraph) -> list[MutationSite]:
    """Every mutation site of tracked invariants across the engine."""
    sites: list[MutationSite] = []
    for qual, info in graph.functions.items():
        if info.node.name == "__init__":
            continue
        if info.module in TRACKED_ATTRS or info.module in (
            "db.py", "engine/dml.py", "bees/module.py", "bees/cache.py",
            "bees/collector.py",
        ):
            _FunctionScanner(info.module, info, graph, sites).visit(info.node)
    _scan_datasection(source, graph, sites)
    _scan_storage_primitives(graph, sites)
    sites.sort(key=lambda s: (s.module, s.lineno))
    return sites


__all__ = [
    "GRAPH_MODULES",
    "MutationSite",
    "scan_mutations",
]
