"""The Bee Placement Optimizer: a simulated L1 instruction-cache model.

The paper places bee object code at memory locations chosen so that bee
lines do not evict hot DBMS code from the instruction cache, and reports
the effect to be small (L1-I miss rates are already ~0.3% on TPC-H).  We
reproduce the mechanism with a set-associative cache model: code regions
(hot engine functions plus bee routines) map to cache sets by address, and
a set with more concurrently-hot lines than its associativity incurs
conflict misses proportional to the overflow and the region's heat.

The optimizer greedily assigns each bee a starting address that minimizes
added conflict pressure.  ``evaluate`` prices a placement so the ablation
bench can compare optimized vs naive placements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost import constants as C


@dataclass(frozen=True)
class CodeRegion:
    """A contiguous stretch of executable code with an access heat."""

    name: str
    start: int
    size: int
    heat: float  # relative execution frequency (invocations per 1k rows)

    def lines(self, line_size: int) -> range:
        """Cache-line indexes (absolute) this region occupies."""
        first = self.start // line_size
        last = (self.start + max(self.size, 1) - 1) // line_size
        return range(first, last + 1)


# A synthetic map of the hot engine functions (address, size, heat) — the
# stand-in for PostgreSQL's query-evaluation loop code footprint.
HOT_ENGINE_REGIONS = [
    CodeRegion("ExecProcNode", 0x0000, 1536, 10.0),
    CodeRegion("heap_getnext", 0x0600, 2048, 8.0),
    CodeRegion("slot_deform_tuple", 0x0E00, 1664, 9.0),
    CodeRegion("ExecQual", 0x1480, 2304, 7.0),
    CodeRegion("ExecHashJoin", 0x1D80, 3072, 5.0),
    CodeRegion("ExecAgg", 0x2980, 2560, 4.0),
    CodeRegion("heap_fill_tuple", 0x3380, 1536, 3.0),
    CodeRegion("tuplesort", 0x3980, 2816, 2.0),
]


class ICacheModel:
    """Set-associative I-cache pressure model."""

    def __init__(
        self,
        size: int = C.ICACHE_SIZE,
        line: int = C.ICACHE_LINE,
        assoc: int = C.ICACHE_ASSOC,
    ) -> None:
        self.size = size
        self.line = line
        self.assoc = assoc
        self.n_sets = size // (line * assoc)

    def set_pressure(self, regions: list[CodeRegion]) -> list[float]:
        """Total heat mapped to each cache set."""
        pressure = [0.0] * self.n_sets
        for region in regions:
            for line_index in region.lines(self.line):
                pressure[line_index % self.n_sets] += region.heat
        return pressure

    def conflict_score(
        self, regions: list[CodeRegion], heat_unit: float | None = None
    ) -> float:
        """Aggregate conflict pressure: heat overflowing associativity.

        A set's lines fit while the number of concurrently-hot lines is at
        most the associativity; we approximate "hot lines in set" by
        heat / *heat_unit* and price the overflow.  ``heat_unit`` defaults
        to the mean heat of *regions*; pass a fixed value when comparing
        placements incrementally (so scores stay on one scale).
        """
        if not regions:
            return 0.0
        if heat_unit is None:
            heat_unit = sum(r.heat for r in regions) / len(regions)
        per_set_lines = [0.0] * self.n_sets
        for region in regions:
            for line_index in region.lines(self.line):
                per_set_lines[line_index % self.n_sets] += region.heat / heat_unit
        return sum(max(0.0, lines - self.assoc) for lines in per_set_lines)


class BeePlacementOptimizer:
    """Chooses bee code addresses minimizing I-cache conflicts."""

    def __init__(self, cache: ICacheModel | None = None) -> None:
        self.cache = cache or ICacheModel()
        self.engine_regions = list(HOT_ENGINE_REGIONS)

    def naive_placement(self, bees: list[tuple[str, int, float]]) -> list[CodeRegion]:
        """Pack bees right after the engine code (what malloc would do)."""
        placed = []
        address = max(r.start + r.size for r in self.engine_regions)
        for name, size, heat in bees:
            placed.append(CodeRegion(name, address, size, heat))
            address += size
        return placed

    def optimize(self, bees: list[tuple[str, int, float]]) -> list[CodeRegion]:
        """Greedy padded placement for each bee (hottest first).

        Bees occupy disjoint addresses; each placement may insert up to one
        cache's worth of line-aligned padding to shift which sets the bee's
        lines map onto.  Scores use a fixed heat unit so candidates are
        comparable across iterations.
        """
        placed: list[CodeRegion] = []
        next_free = max(r.start + r.size for r in self.engine_regions)
        all_regions = self.engine_regions
        heat_unit = sum(r.heat for r in all_regions) / len(all_regions)
        for name, size, heat in sorted(bees, key=lambda b: -b[2]):
            best_region = None
            best_score = float("inf")
            n_positions = self.cache.size // self.cache.line
            for pad_lines in range(n_positions):
                address = next_free + pad_lines * self.cache.line
                candidate = CodeRegion(name, address, size, heat)
                score = self.cache.conflict_score(
                    all_regions + placed + [candidate], heat_unit=heat_unit
                )
                if score < best_score:
                    best_score = score
                    best_region = candidate
            assert best_region is not None
            placed.append(best_region)
            next_free = best_region.start + best_region.size
        return placed

    def evaluate(self, placement: list[CodeRegion]) -> dict:
        """Price a placement: conflict score and estimated miss-rate delta."""
        heat_unit = sum(r.heat for r in self.engine_regions) / len(
            self.engine_regions
        )
        baseline = self.cache.conflict_score(
            self.engine_regions, heat_unit=heat_unit
        )
        with_bees = self.cache.conflict_score(
            self.engine_regions + placement, heat_unit=heat_unit
        )
        added = max(0.0, with_bees - baseline)
        # Convert conflict pressure to an approximate miss-rate increment:
        # overflowing-line heat over total heat, scaled by a small factor
        # reflecting temporal reuse (misses only on working-set rotation).
        total_heat = sum(r.heat for r in self.engine_regions + placement)
        miss_rate_delta = 0.01 * added / max(total_heat, 1e-9)
        return {
            "baseline_conflict": baseline,
            "with_bees_conflict": with_bees,
            "added_conflict": added,
            "miss_rate_delta": miss_rate_delta,
            "penalty_cycles_per_kinstr": (
                miss_rate_delta * 1000 * C.ICACHE_MISS_PENALTY_CYCLES
            ),
        }
