"""Durable DML: a statement-level data WAL with group commit.

The server logs every committed write statement (DML and DDL) to a
:class:`DataWAL` — the same CRC-framed, COMMIT-marked, torn-tail-
repairing format as the PR-5 bee-cache WAL (:class:`~repro.bees.walcache.WALFile`),
extended with real ``os.fsync`` durability.  Records are *logical*:
``{"op": "stmt", "seq": N, "session": S, "sql": ...}`` — replaying the
SQL in sequence order on a fresh base reproduces the database, which is
exactly what :func:`recover_database` does after a crash.

**Group commit** (:class:`GroupCommitter`): concurrent committers
enqueue their records under one condition variable; the first waiter
elects itself leader, drains the whole queue, writes the batch plus a
single COMMIT marker, and pays *one* fsync for every statement in the
group.  Followers just wait for their ticket to be flushed.  This is
the classic leader/follower protocol — fsync cost is amortized across
whatever concurrency the moment offers, and a crash between groups
loses only un-fsynced statements, never tears a committed one.

An fsync failure poisons the committer: the current group's committers
see :class:`WALSyncError`, and the server degrades durability (keeps
serving, stops logging) rather than pretending the disk still promises
anything.  The on-disk file remains a valid committed prefix.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path

from repro.bees.walcache import WALFile, _encode_record


class WALSyncError(Exception):
    """The group leader's write or fsync failed; durability is gone."""


class DataWAL(WALFile):
    """The server's statement log: fsync-durable :class:`WALFile`.

    ``_chaos_fsync_fail`` is the chaos harness's one-shot hook: when
    positive, that many upcoming fsyncs raise ``OSError`` (armed only by
    the resilience server lane, under ``wal_lock``).
    """

    def __init__(self, path: str | Path, registry=None) -> None:
        super().__init__(path, registry)
        self._chaos_fsync_fail = 0
        self.fsyncs = 0

    @staticmethod
    def statement_record(seq: int, session: int, sql: str) -> dict:
        return {"op": "stmt", "seq": seq, "session": session, "sql": sql}

    def _sync(self, handle) -> None:
        if self._chaos_fsync_fail > 0:
            self._chaos_fsync_fail -= 1
            raise OSError("chaos: fsync failed")
        os.fsync(handle.fileno())
        self.fsyncs += 1

    def append_group(self, records: list[dict]) -> None:
        """Write *records* + COMMIT in one append, sealed by one fsync."""
        self._append_group([_encode_record(record) for record in records])

    def committed_statements(self) -> list[dict]:
        """Committed ``stmt`` records in sequence order."""
        records = [
            record for record in self.committed_records()
            if record.get("op") == "stmt"
        ]
        records.sort(key=lambda record: record["seq"])
        return records


class GroupCommitter:
    """Leader/follower fsync batching over a :class:`DataWAL`.

    ``commit(record)`` blocks until *record* is on disk (or raises
    :class:`WALSyncError`).  All bookkeeping fields are guarded by
    *lock* — the database's materialized ``wal_lock`` — which also
    backs the condition variable, so the swarmcheck registry's
    ``wal_lock`` guard is literally the lock these writes happen under.
    The leader performs the file write *outside* the lock (followers
    must be able to enqueue into the next group meanwhile); mutual
    exclusion of writers is the leadership flag itself.
    """

    def __init__(self, wal: DataWAL, lock=None) -> None:
        self.wal = wal
        self._cond = threading.Condition(lock or threading.RLock())
        self._pending: list[dict] = []
        self._ticket = 0
        self._flushed = 0        # highest ticket whose group was attempted
        self._flushed_ok = 0     # highest ticket actually on disk
        self._leader = False
        self._broken: Exception | None = None
        self.batches = 0
        self.records_logged = 0
        self.max_batch = 0

    def commit(self, record: dict) -> None:
        with self._cond:
            if self._broken is not None:
                raise WALSyncError("data WAL is broken") from self._broken
            self._ticket += 1
            ticket = self._ticket
            self._pending.append(record)
            while self._flushed < ticket and self._leader:
                self._cond.wait()
            if self._flushed >= ticket:
                if ticket <= self._flushed_ok:
                    return
                raise WALSyncError(
                    "group fsync failed"
                ) from self._broken
            self._leader = True
        self._lead(ticket)

    def _lead(self, ticket: int) -> None:
        """Leadership loop: flush groups until the queue drains."""
        failed: Exception | None = None
        while True:
            with self._cond:
                batch = self._pending
                high = self._ticket
                self._pending = []
                if not batch:
                    self._leader = False
                    self._cond.notify_all()
                    if failed is not None or self._broken is not None:
                        raise WALSyncError(
                            "group fsync failed"
                        ) from (failed or self._broken)
                    return
            error: Exception | None = None
            try:
                self.wal.append_group(batch)
            except OSError as exc:
                error = exc
            with self._cond:
                self._flushed = high
                if error is None:
                    self._flushed_ok = high
                    self.batches += 1
                    self.records_logged += len(batch)
                    self.max_batch = max(self.max_batch, len(batch))
                else:
                    self._broken = error
                    failed = error
                self._cond.notify_all()

    def stats(self) -> dict:
        with self._cond:
            return {
                "batches": self.batches,
                "fsyncs": self.wal.fsyncs,
                "records": self.records_logged,
                "max_batch": self.max_batch,
                "broken": self._broken is not None,
            }


def recover_database(wal_path: str | Path, base_factory):
    """Rebuild a database after a crash: base + committed WAL replay.

    *base_factory* returns a fresh database in the pre-crash *loaded*
    state (the base backup: schema + bulk-loaded data that predate the
    WAL).  The WAL is opened — repairing any torn tail, with the
    truncation logged to the database's resilience registry — and every
    committed statement is re-executed in sequence order.  Returns
    ``(db, applied)``.
    """
    from repro.sql.session import execute_sql

    db = base_factory()
    wal = DataWAL(wal_path, registry=db.resilience)
    applied = 0
    for record in wal.committed_statements():
        execute_sql(db, record["sql"])
        applied += 1
    return db, applied
