"""Shared scaffolding for the repo's static-analysis CLI tools.

beecheck, hiveaudit, swarmcheck, and wagglecheck all follow the same
shape: sweep a corpus, collect findings into a report, prove the checker
itself works with a bug-injection self-test, write ``report.json``, and
exit non-zero when gating.  The helpers here hold the duplicated
plumbing — report writing, standard CLI arguments, the self-test runner
loop, and exit-code policy — so each tool only owns its passes.
"""

from repro.analysis.scaffold import (
    add_standard_args,
    exit_code,
    format_selftest,
    run_injections,
    write_report,
)

__all__ = [
    "add_standard_args",
    "exit_code",
    "format_selftest",
    "run_injections",
    "write_report",
]
