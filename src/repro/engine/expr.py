"""Expression trees with generic (interpreted) evaluation.

This is the engine's ``FuncExprState`` analog: a query predicate or scalar
expression is a tree of nodes that the stock engine evaluates by recursive
dispatch, re-branching on node kind and operator at every call — the
generality the EVP query bee folds away.  Each node knows two virtual
instruction costs, both precomputed when the expression is bound:

* ``generic_cost`` — the interpreted evaluation (dispatch + operator work),
* ``evp_cost`` — the same computation in a specialized EVP bee routine
  (constants inlined, dispatch removed).

NULL is represented by Python ``None`` and comparisons follow SQL
three-valued logic: any comparison against NULL yields unknown (``None``),
AND/OR combine with Kleene semantics, and a filter accepts only ``True``.
"""

from __future__ import annotations

import datetime
import re

from repro.cost import constants as C

_LIKE_SPECIAL = re.compile(r"([.^$*+?{}\[\]\\|()])")


class Expr:
    """Base expression node. Subclasses implement ``evaluate`` and costs."""

    generic_cost: int = 0
    evp_cost: int = 0

    def evaluate(self, row: list):
        """Evaluate against *row* (a flat values list); None means NULL."""
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        """Child expressions, for tree walks (binding, codegen)."""
        return ()

    def _finish(self, own_generic: int, own_evp: int) -> None:
        """Set costs = own work + children's work (called by __init__)."""
        self.generic_cost = C.EXPR_NODE_DISPATCH + own_generic + sum(
            child.generic_cost for child in self.children()
        )
        self.evp_cost = C.EVP_NODE + own_evp + sum(
            child.evp_cost for child in self.children()
        )


class Const(Expr):
    """A literal constant (inlined into EVP bee code)."""

    def __init__(self, value) -> None:
        self.value = value
        self._finish(C.EXPR_CONST, 0)

    def evaluate(self, row: list):
        return self.value

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Col(Expr):
    """A column reference, by name until bound, then by row index."""

    def __init__(self, name: str, index: int = -1) -> None:
        self.name = name
        self.index = index
        self._finish(C.EXPR_COLUMN, 2)

    def evaluate(self, row: list):
        return row[self.index]

    def __repr__(self) -> str:
        return f"Col({self.name}@{self.index})"


_CMP_OPS = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_CMP_PY = {"=": "==", "<>": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}


class Cmp(Expr):
    """Comparison ``left op right`` with SQL NULL propagation."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _CMP_OPS:
            raise ValueError(f"unknown comparison operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self._fn = _CMP_OPS[op]
        self._finish(C.EXPR_COMPARISON, 1)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, row: list):
        left = self.left.evaluate(row)
        if left is None:
            return None
        right = self.right.evaluate(row)
        if right is None:
            return None
        return self._fn(left, right)

    def __reduce__(self):
        # _fn is a lambda from _CMP_OPS; reconstruct through __init__ so
        # bound expression trees can cross a process boundary.
        return (Cmp, (self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"Cmp({self.left!r} {self.op} {self.right!r})"


_ARITH_OPS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
}


class Arith(Expr):
    """Arithmetic over NUMERIC/int values (charged as an fmgr call)."""

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _ARITH_OPS:
            raise ValueError(f"unknown arithmetic operator {op!r}")
        self.op = op
        self.left = left
        self.right = right
        self._fn = _ARITH_OPS[op]
        self._finish(C.NUMERIC_OP, C.NUMERIC_OP - 12)

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, row: list):
        left = self.left.evaluate(row)
        if left is None:
            return None
        right = self.right.evaluate(row)
        if right is None:
            return None
        return self._fn(left, right)

    def __reduce__(self):
        # _fn is a lambda from _ARITH_OPS; reconstruct through __init__ so
        # bound expression trees can cross a process boundary.
        return (Arith, (self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"Arith({self.left!r} {self.op} {self.right!r})"


class And(Expr):
    """N-ary AND with Kleene three-valued semantics."""

    def __init__(self, *args: Expr) -> None:
        if not args:
            raise ValueError("And() needs at least one argument")
        self.args = args
        self._finish(C.EXPR_BOOL_PER_ARG * len(args), len(args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def evaluate(self, row: list):
        saw_null = False
        for arg in self.args:
            value = arg.evaluate(row)
            if value is False:
                return False
            if value is None:
                saw_null = True
        return None if saw_null else True

    def __repr__(self) -> str:
        return f"And({', '.join(map(repr, self.args))})"


class Or(Expr):
    """N-ary OR with Kleene three-valued semantics."""

    def __init__(self, *args: Expr) -> None:
        if not args:
            raise ValueError("Or() needs at least one argument")
        self.args = args
        self._finish(C.EXPR_BOOL_PER_ARG * len(args), len(args))

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def evaluate(self, row: list):
        saw_null = False
        for arg in self.args:
            value = arg.evaluate(row)
            if value is True:
                return True
            if value is None:
                saw_null = True
        return None if saw_null else False

    def __repr__(self) -> str:
        return f"Or({', '.join(map(repr, self.args))})"


class Not(Expr):
    """Logical negation (NULL stays NULL)."""

    def __init__(self, arg: Expr) -> None:
        self.arg = arg
        self._finish(C.EXPR_BOOL_PER_ARG, 1)

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def evaluate(self, row: list):
        value = self.arg.evaluate(row)
        if value is None:
            return None
        return not value


def like_to_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern (%, _) into an anchored regex."""
    escaped = _LIKE_SPECIAL.sub(r"\\\1", pattern)
    regex = escaped.replace("%", ".*").replace("_", ".")
    return re.compile(f"^{regex}$", re.DOTALL)


class Like(Expr):
    """SQL LIKE / NOT LIKE against a constant pattern."""

    def __init__(self, arg: Expr, pattern: str, negate: bool = False) -> None:
        self.arg = arg
        self.pattern = pattern
        self.negate = negate
        self._regex = like_to_regex(pattern)
        scan = C.EXPR_LIKE_BASE + C.EXPR_LIKE_PER_CHAR * len(pattern)
        self._finish(scan, scan // 2)

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def evaluate(self, row: list):
        value = self.arg.evaluate(row)
        if value is None:
            return None
        matched = self._regex.match(value) is not None
        return (not matched) if self.negate else matched

    def __repr__(self) -> str:
        kind = "NOT LIKE" if self.negate else "LIKE"
        return f"Like({self.arg!r} {kind} {self.pattern!r})"


class InList(Expr):
    """``arg IN (constants)`` — evaluated against a frozenset."""

    def __init__(self, arg: Expr, values) -> None:
        self.arg = arg
        self.values = frozenset(values)
        self._finish(C.EXPR_IN_PER_ITEM * max(1, len(self.values)), 3)

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def evaluate(self, row: list):
        value = self.arg.evaluate(row)
        if value is None:
            return None
        return value in self.values

    def __repr__(self) -> str:
        return f"InList({self.arg!r} IN {sorted(self.values)!r})"


class Between(Expr):
    """``low <= arg <= high`` over constants (sugar kept as one node)."""

    def __init__(self, arg: Expr, low, high) -> None:
        self.arg = arg
        self.low = low
        self.high = high
        self._finish(2 * C.EXPR_COMPARISON, 2)

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def evaluate(self, row: list):
        value = self.arg.evaluate(row)
        if value is None:
            return None
        return self.low <= value <= self.high

    def __repr__(self) -> str:
        return f"Between({self.low!r} <= {self.arg!r} <= {self.high!r})"


class Case(Expr):
    """``CASE WHEN cond THEN value ... ELSE default END``."""

    def __init__(self, whens: list[tuple[Expr, Expr]], default: Expr) -> None:
        if not whens:
            raise ValueError("Case needs at least one WHEN arm")
        self.whens = whens
        self.default = default
        self._finish(C.EXPR_CASE_PER_ARM * len(whens), len(whens))

    def children(self) -> tuple[Expr, ...]:
        flat: list[Expr] = []
        for cond, value in self.whens:
            flat.append(cond)
            flat.append(value)
        flat.append(self.default)
        return tuple(flat)

    def evaluate(self, row: list):
        for cond, value in self.whens:
            if cond.evaluate(row) is True:
                return value.evaluate(row)
        return self.default.evaluate(row)


class IsNull(Expr):
    """``arg IS NULL`` (or IS NOT NULL with negate=True)."""

    def __init__(self, arg: Expr, negate: bool = False) -> None:
        self.arg = arg
        self.negate = negate
        self._finish(4, 1)

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,)

    def evaluate(self, row: list):
        is_null = self.arg.evaluate(row) is None
        return (not is_null) if self.negate else is_null


_EPOCH = datetime.date(1970, 1, 1)


def _extract_year(days: int) -> int:
    return (_EPOCH + datetime.timedelta(days=days)).year


def _extract_month(days: int) -> int:
    return (_EPOCH + datetime.timedelta(days=days)).month


_FUNCS = {
    "extract_year": _extract_year,
    "extract_month": _extract_month,
    "substr": lambda s, start, length: s[start - 1 : start - 1 + length],
    "length": len,
    "abs": abs,
}


class Func(Expr):
    """A catalog-dispatched function call (extract, substr, ...)."""

    def __init__(self, name: str, *args: Expr) -> None:
        if name not in _FUNCS:
            raise ValueError(f"unknown function {name!r}")
        self.name = name
        self.args = args
        self._fn = _FUNCS[name]
        self._finish(C.EXPR_FUNC, C.EXPR_FUNC // 2)

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def evaluate(self, row: list):
        values = []
        for arg in self.args:
            value = arg.evaluate(row)
            if value is None:
                return None
            values.append(value)
        return self._fn(*values)

    def __reduce__(self):
        # _fn may be a lambda from _FUNCS; reconstruct through __init__ so
        # bound expression trees can cross a process boundary.
        return (Func, (self.name, *self.args))

    def __repr__(self) -> str:
        return f"Func({self.name}, {', '.join(map(repr, self.args))})"


# ---------------------------------------------------------------------------
# Binding: resolve column names to row indexes against a node's output desc.
# ---------------------------------------------------------------------------


class BindError(KeyError):
    """Raised when a column name cannot be resolved during binding."""


def bind(expr: Expr, columns: list[str]) -> Expr:
    """Resolve every :class:`Col` in *expr* against *columns* (in place).

    Returns *expr* for chaining.  Raises :class:`BindError` on unknown
    names so plan-construction mistakes surface at build time, not during
    execution.
    """
    if isinstance(expr, Col):
        try:
            expr.index = columns.index(expr.name)
        except ValueError:
            raise BindError(
                f"column {expr.name!r} not in row descriptor {columns}"
            ) from None
    for child in expr.children():
        bind(child, columns)
    return expr


def is_bound(expr: Expr) -> bool:
    """True when every column reference has a resolved index."""
    if isinstance(expr, Col) and expr.index < 0:
        return False
    return all(is_bound(child) for child in expr.children())


def static_nullable(expr: Expr, input_nullable: list[bool]) -> bool:
    """Conservative may-be-NULL analysis for a bound expression.

    *input_nullable* is the child node's per-column nullability vector
    (positionally aligned with its ``columns``).  The analysis mirrors
    evaluation: every operator here is strict except IS NULL (never
    NULL) and CASE (NULL only if some arm or the default can be).
    Unresolvable references degrade to nullable rather than raising, so
    hand-built plans missing metadata stay conservative, not wrong.
    """
    if isinstance(expr, Const):
        return expr.value is None
    if isinstance(expr, Col):
        if 0 <= expr.index < len(input_nullable):
            return input_nullable[expr.index]
        return True
    if isinstance(expr, IsNull):
        return False
    if isinstance(expr, Case):
        arms = [value for _cond, value in expr.whens]
        arms.append(expr.default)
        return any(static_nullable(arm, input_nullable) for arm in arms)
    return any(
        static_nullable(child, input_nullable) for child in expr.children()
    )
