"""The Generic Bee Module: the DBMS-independent facade of Fig. 3.

The DBMS (our :class:`repro.db.Database`) talks to bees exclusively through
this module: it requests relation bees at schema-definition time, query
bees at plan-preparation time, and tuple bees during inserts; the module
owns the maker, cache, cache manager, placement optimizer, and collector.
The paper stresses that wiring this module into PostgreSQL took only
~600 SLOC of DBMS changes — mirrored here by the thin call sites in
``repro.db`` and the executor nodes.
"""

from __future__ import annotations

from pathlib import Path

from repro.bees.cache import BeeCache
from repro.bees.collector import BeeCollector
from repro.bees.maker import BeeMaker, QueryBee, RelationBee
from repro.bees.placement import BeePlacementOptimizer
from repro.bees.routines.base import BeeRoutine
from repro.bees.routines.evj import EVJRoutine
from repro.bees.settings import BeeSettings
from repro.engine.expr import Expr
from repro.storage.layout import TupleLayout


class GenericBeeModule:
    """Creation, caching, invocation support, and GC for all bee kinds."""

    def __init__(
        self,
        ledger,
        settings: BeeSettings,
        disk_dir: str | Path | None = None,
        registry=None,
    ) -> None:
        self.ledger = ledger
        self.settings = settings
        self.maker = BeeMaker(ledger, verify=settings.verify_on_generate)
        self.cache = BeeCache()
        self.collector = BeeCollector(self.cache, disk_dir)
        self.placement = BeePlacementOptimizer()
        self.disk_dir = Path(disk_dir) if disk_dir else None
        # Beeshield integration: the resilience registry (quarantine and
        # fault accounting) shares invalidation edges with the bee
        # memos, and every memoized query routine is stamped with the
        # invalidation epoch it was generated under so the guard can
        # detect a memo that survived a DDL event it should not have.
        self.registry = registry
        self.query_epoch = 0
        # Query-bee routine memoization, keyed by expression / join identity.
        # The expression object is kept in the value: holding the reference
        # pins its id(), which would otherwise be recycled after GC.
        self._evp_by_expr: dict[int, tuple[Expr, BeeRoutine]] = {}
        self._evj_by_shape: dict[tuple[str, int], EVJRoutine] = {}
        self._agg_by_specs: dict[int, tuple] = {}
        self._agg_counter = 0
        self._idx_by_index: dict[tuple[str, str], tuple[list[int], BeeRoutine]] = {}
        # Pipeline bees, keyed by the anchor plan node they replaced
        # (the anchor reference in the value pins its id); the spec is
        # kept so beecheck can re-verify cached routines post hoc.
        self._pipeline_by_node: dict[
            int, tuple[object, object, BeeRoutine]
        ] = {}
        # Vector bees: same keying discipline, one tier up.
        self._vector_by_node: dict[
            int, tuple[object, object, BeeRoutine]
        ] = {}

    # -- relation bees (schema definition time) ---------------------------------

    def create_relation_bee(self, layout: TupleLayout) -> RelationBee:
        """Create and cache the relation bee for *layout*."""
        bee = self.maker.make_relation_bee(layout)
        self.cache.put_relation_bee(bee)
        return bee

    def relation_bee(self, relation: str) -> RelationBee | None:
        """The cached relation bee, or None for stock relations."""
        return self.cache.get_relation_bee(relation)

    def reconstruct_relation_bee(self, layout: TupleLayout) -> RelationBee:
        """Bee reconstruction after ALTER TABLE: regenerate from the new
        layout, preserving data sections when the annotated attributes are
        unchanged."""
        old = self.cache.get_relation_bee(layout.schema.name)
        bee = self.maker.make_relation_bee(layout)
        if (
            old is not None
            and old.data_sections is not None
            and bee.data_sections is not None
            and old.layout.bee_attrs == layout.bee_attrs
        ):
            bee.data_sections = old.data_sections
        self.cache.put_relation_bee(bee)
        if self.registry is not None:
            self.registry.clear_prefix(
                f"GCL_{layout.schema.name}", f"SCL_{layout.schema.name}"
            )
        return bee

    def drop_relation_bee(self, relation: str) -> None:
        """Collector entry point for DROP TABLE."""
        self.collector.collect_relation(relation)
        for key in [k for k in self._idx_by_index if k[0] == relation]:
            del self._idx_by_index[key]
        for memo in (self._pipeline_by_node, self._vector_by_node):
            for key in [
                k
                for k, (_anchor, spec, _routine) in memo.items()
                if spec.relation == relation
            ]:
                del memo[key]
        if self.registry is not None:
            # Quarantine state describes bees that no longer exist.
            self.registry.clear_prefix(
                f"GCL_{relation}",
                f"SCL_{relation}",
                f"IDX_{relation}_",
                f"PIPE:{relation}:",
                f"VEC:{relation}:",
                f"PAR:{relation}:",
            )

    def invalidate_query_bees(self) -> int:
        """Evict every query bee and memoized query routine (ALTER path).

        Plans — and the EVP/AGG/IDX/pipeline routines memoized off them —
        may bind column positions and constants from the old schema.  EVJ
        templates survive: they embed only the join type and key arity,
        which no schema change affects.  Returns the number of entries
        evicted.
        """
        n_query_bees = len(self.cache.query_bees)
        evicted = (
            n_query_bees
            + len(self._evp_by_expr)
            + len(self._agg_by_specs)
            + len(self._idx_by_index)
            + len(self._pipeline_by_node)
            + len(self._vector_by_node)
        )
        self.cache.query_bees.clear()
        self._evp_by_expr.clear()
        self._agg_by_specs.clear()
        self._idx_by_index.clear()
        self._pipeline_by_node.clear()
        self._vector_by_node.clear()
        self.collector.collected_query_bees += n_query_bees
        self.query_epoch += 1
        if self.registry is not None:
            # The invalidation edge also clears quarantine state: the
            # routines it described are gone, and the regenerated ones
            # deserve a fresh health record (EVJ templates survive the
            # eviction, but conservative re-admission is harmless).
            self.registry.clear_prefix(
                "EVP:", "EVJ:", "AGG:", "IDX_", "PIPE:", "VEC:", "PAR:"
            )
        return evicted

    # -- query bees (query preparation time) ------------------------------------

    def get_evp(self, expr: Expr, assume_not_null: bool = False) -> BeeRoutine:
        """EVP routine for a bound predicate (memoized by expression)."""
        entry = self._evp_by_expr.get(id(expr))
        if entry is not None and entry[0] is expr:
            return entry[1]
        routine = self.maker.make_evp(expr, assume_not_null)
        routine.epoch = self.query_epoch
        self._evp_by_expr[id(expr)] = (expr, routine)
        return routine

    def get_agg(self, specs: tuple, assume_not_null: bool = False) -> BeeRoutine:
        """AGG routine for a HashAgg node's aggregate list (memoized).

        Experimental (the paper's Section VIII future work); only used
        when :attr:`BeeSettings.agg` is enabled.
        """
        key = id(specs)
        entry = self._agg_by_specs.get(key)
        if entry is not None and entry[0] is specs:
            return entry[1]
        from repro.bees.routines.agg import generate_agg

        self._agg_counter += 1
        routine = generate_agg(
            list(specs), self.ledger, f"AGG_{self._agg_counter}",
            assume_not_null,
        )
        if self.maker.verify:
            from repro.beecheck import verify_agg

            verify_agg(routine, list(specs), assume_not_null)
        routine.epoch = self.query_epoch
        self._agg_by_specs[key] = (specs, routine)
        return routine

    def get_idx(
        self, relation: str, index_name: str, key_indexes: list[int]
    ) -> BeeRoutine:
        """IDX routine for one index's key extraction (memoized).

        Experimental (Section VIII future work: "indexing"); only used
        when :attr:`BeeSettings.idx` is enabled.
        """
        key = (relation, index_name)
        entry = self._idx_by_index.get(key)
        if entry is None:
            from repro.bees.routines.idx import generate_idx

            routine = generate_idx(
                key_indexes, self.ledger, f"IDX_{relation}_{index_name}"
            )
            if self.maker.verify:
                from repro.beecheck import verify_idx

                verify_idx(routine, key_indexes)
            routine.epoch = self.query_epoch
            entry = (list(key_indexes), routine)
            self._idx_by_index[key] = entry
        return entry[1]

    def get_pipeline(self, spec, anchor) -> BeeRoutine:
        """Pipeline bee for a fused plan segment (memoized by anchor node).

        *anchor* is the generic plan node the pipeline driver replaced;
        plans are rebuilt per query, so the memo keys routine reuse to
        repeated executions of the same prepared plan, and the whole memo
        is evicted with the other query bees on DDL.
        """
        entry = self._pipeline_by_node.get(id(anchor))
        if entry is not None and entry[0] is anchor:
            return entry[2]
        routine = self.maker.make_pipeline(spec)
        routine.epoch = self.query_epoch
        self._pipeline_by_node[id(anchor)] = (anchor, spec, routine)
        return routine

    def get_vector(self, spec, anchor) -> BeeRoutine:
        """Vector bee for a fused plan segment (memoized by anchor node).

        *anchor* is the pipeline driver (or generic node) the vector
        driver replaced; keying and DDL eviction follow
        :meth:`get_pipeline` exactly.
        """
        entry = self._vector_by_node.get(id(anchor))
        if entry is not None and entry[0] is anchor:
            return entry[2]
        routine = self.maker.make_vector(spec)
        routine.epoch = self.query_epoch
        self._vector_by_node[id(anchor)] = (anchor, spec, routine)
        return routine

    def get_evj(self, join_type: str, n_keys: int) -> EVJRoutine:
        """EVJ routine for a join shape (clone of a pre-compiled template)."""
        shape = (join_type, n_keys)
        routine = self._evj_by_shape.get(shape)
        if routine is None:
            routine = self.maker.make_evj(join_type, n_keys)
            self._evj_by_shape[shape] = routine
        return routine

    def evict_routine(self, routine) -> bool:
        """Evict one memoized query routine (beeshield staleness repair).

        Returns True when the routine was found in a memo.  The next
        acquisition regenerates it under the current epoch.
        """
        for key, (_expr, cached) in list(self._evp_by_expr.items()):
            if cached is routine:
                del self._evp_by_expr[key]
                return True
        for key, (_specs, cached) in list(self._agg_by_specs.items()):
            if cached is routine:
                del self._agg_by_specs[key]
                return True
        for key, (_key_idx, cached) in list(self._idx_by_index.items()):
            if cached is routine:
                del self._idx_by_index[key]
                return True
        for memo in (self._pipeline_by_node, self._vector_by_node):
            for key, (_anchor, _spec, cached) in list(memo.items()):
                if cached is routine:
                    del memo[key]
                    return True
        return False

    def stable_key(self, routine_name: str) -> str | None:
        """Map a generated routine name to its stable health key.

        Relation-scoped names (``GCL_orders``, ``IDX_rel_idx``) are
        already stable; counter-suffixed query routines (``EVP_17``,
        ``AGG_3``, ``PIPE_2``) are looked up in the memos so the
        resilience registry can track them across statements.  Cold
        path: only called while attributing a fault.
        """
        if routine_name.startswith(("GCL_", "SCL_", "IDX_", "EVJ_")):
            return routine_name
        from repro.resilience.guard import (
            agg_key,
            evp_key,
            pipeline_key,
            vector_key,
        )

        for expr, routine in self._evp_by_expr.values():
            if routine.name == routine_name:
                return evp_key(expr)
        for specs, routine in self._agg_by_specs.values():
            if routine.name == routine_name:
                return agg_key(specs)
        for _anchor, spec, routine in self._pipeline_by_node.values():
            if routine.name == routine_name:
                return pipeline_key(spec)
        for _anchor, spec, routine in self._vector_by_node.values():
            if routine.name == routine_name:
                return vector_key(spec)
        return None

    def register_query_bee(self, query_id: str) -> QueryBee:
        """Create (or fetch) the query bee grouping a plan's routines."""
        bee = self.cache.get_query_bee(query_id)
        if bee is None:
            bee = QueryBee(query_id)
            self.cache.put_query_bee(bee)
            self.collector.trim_query_bees()
        return bee

    # -- tuple bees (query execution time) ---------------------------------------

    def tuple_bee_id(self, relation: str, key: tuple) -> int:
        """Find or create the tuple bee for annotated values *key*.

        Charges the memcmp scan + clone cost into the ledger (the bulk-load
        overhead the paper measures in Fig. 8).
        """
        bee = self.cache.get_relation_bee(relation)
        if bee is None or bee.data_sections is None:
            raise LookupError(
                f"relation {relation!r} has no tuple-bee data sections"
            )
        return bee.data_sections.get_or_create(key, self.ledger)

    # -- persistence & placement -------------------------------------------------

    def flush_to_disk(self) -> int:
        """Write the bee cache to its directory; returns bees written."""
        if self.disk_dir is None:
            raise RuntimeError("bee module was created without a disk dir")
        return self.cache.save_to(self.disk_dir)

    def load_from_disk(self, layouts: dict[str, TupleLayout]) -> int:
        """Reload persisted bees at server start; returns bees loaded."""
        if self.disk_dir is None:
            raise RuntimeError("bee module was created without a disk dir")
        return self.cache.load_from(self.disk_dir, self.maker, layouts)

    def placement_report(self) -> dict:
        """Run the placement optimizer over all cached bee routines."""
        bees = [
            (routine.name, routine.size_bytes, 1.0 + routine.invocations / 1000)
            for routine in self.cache.all_routines()
        ]
        naive = self.placement.naive_placement(bees)
        optimized = self.placement.optimize(bees)
        return {
            "naive": self.placement.evaluate(naive),
            "optimized": self.placement.evaluate(optimized),
        }

    def statistics(self) -> dict:
        """Bee population counts (used by tests and EXPERIMENTS.md)."""
        tuple_bees = sum(
            len(bee.data_sections)
            for bee in self.cache.relation_bees.values()
            if bee.data_sections is not None
        )
        return {
            "relation_bees": len(self.cache.relation_bees),
            "query_bees": len(self.cache.query_bees),
            "evp_routines": len(self._evp_by_expr),
            "evj_routines": len(self._evj_by_shape),
            "pipeline_routines": len(self._pipeline_by_node),
            "vector_routines": len(self._vector_by_node),
            "tuple_bees": tuple_bees,
            "collected_relation_bees": self.collector.collected_relation_bees,
        }
