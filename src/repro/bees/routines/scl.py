"""SCL — the specialized SetColumnsFromLongs relation-bee routine.

Generates, per relation, an unrolled tuple-construction function replacing
the generic ``heap_fill_tuple``: the constant header is baked in as a bytes
literal, the fixed prefix is packed with one precompiled ``struct``, and
tuple-bee-resident attributes are simply *not written* (their values are
identified by the beeID patched into the header).  Output is byte-identical
to the generic fill.
"""

from __future__ import annotations

import struct

from repro.cost import constants as C
from repro.bees.routines.base import BeeRoutine, compile_routine
from repro.storage.layout import (
    BEEID_HI_BYTE,
    BEEID_LO_BYTE,
    HEADER_HOFF_BYTE,
    HEADER_INFOMASK_BYTE,
    INFOMASK_HAS_BEEID,
    TupleLayout,
    VARLENA_HEADER_BYTES,
)


def scl_cost(layout: TupleLayout) -> int:
    """Per-invocation cost of the generated SCL routine for *layout*."""
    cost = C.SCL_PROLOGUE
    for attr in layout.stored_attrs:
        if attr.attlen == -1:
            cost += C.SCL_VARLENA
        else:
            cost += C.SCL_FIXED
        if attr.nullable:
            cost += C.SCL_NULLABLE
    cost += C.SCL_TUPLE_BEE * len(layout.bee_attrs)
    return cost


def _char_bytes(value: str, width: int, name: str) -> bytes:
    """Encode a CHAR(n) value, enforcing the same width check (and the
    same error) as the generic ``layout.encode`` path — the specialized
    fill must be behavior-identical, including on bad input."""
    raw = value.encode() if isinstance(value, str) else bytes(value)
    if len(raw) > width:
        raise ValueError(f"value too long for {name} ({len(raw)} > {width})")
    return raw.ljust(width, b" ")


def generate_scl(layout: TupleLayout, ledger, fn_name: str) -> BeeRoutine:
    """Build the SCL bee routine for *layout*, charging into *ledger*."""
    schema = layout.schema
    cost = scl_cost(layout)
    hoff = layout.header_size(tuple_has_nulls=False)

    # Constant no-nulls header: infomask, hoff, (beeID patched at runtime),
    # alignment padding.
    infomask = INFOMASK_HAS_BEEID if layout.has_beeid else 0x00
    header = bytearray(hoff)
    header[HEADER_INFOMASK_BYTE] = infomask
    header[HEADER_HOFF_BYTE] = hoff
    namespace: dict = {
        "_charge": ledger.charge_fn,
        "_COST": cost,
        "_HDR": bytes(header),
        "_char": _char_bytes,
    }

    lines = [
        f"def {fn_name}(values, bee_id=0):",
        f'    """Specialized fill for relation {schema.name!r} (generated)."""',
        "    if None in values:",
        "        return _slow(values, bee_id)",
        f"    _charge({fn_name!r}, _COST)",
        "    out = bytearray(_HDR)",
    ]
    if layout.has_beeid:
        lines.append(f"    out[{BEEID_LO_BYTE}] = bee_id & 0xFF")
        lines.append(f"    out[{BEEID_HI_BYTE}] = (bee_id >> 8) & 0xFF")

    # Fixed prefix packed in one shot.
    prefix = []
    for i, attr in enumerate(layout.stored_attrs):
        if attr.attlen == -1:
            break
        prefix.append((i, attr))
    fmt_parts = ["<"]
    cursor = 0
    pack_args = []
    for i, attr in prefix:
        offset = layout.stored_offset(i)
        if offset > cursor:
            fmt_parts.append(f"{offset - cursor}x")
        sql_type = attr.sql_type
        if sql_type.struct_fmt:
            fmt_parts.append(sql_type.struct_fmt)
            if sql_type.struct_fmt == "B":
                pack_args.append(f"int(values[{attr.attnum}])")
            else:
                pack_args.append(f"values[{attr.attnum}]")
        else:
            fmt_parts.append(f"{sql_type.attlen}s")
            pack_args.append(
                f"_char(values[{attr.attnum}], {sql_type.attlen}, "
                f"{attr.name!r})"
            )
        cursor = offset + sql_type.attlen
    if prefix:
        namespace["_PREFIX"] = struct.Struct("".join(fmt_parts))
        lines.append(f"    out += _PREFIX.pack({', '.join(pack_args)})")

    rest = layout.stored_attrs[len(prefix) :]
    if rest:
        namespace["_VL"] = struct.Struct("<i")
        lines.append(f"    off = {cursor}")
        for attr in rest:
            sql_type = attr.sql_type
            align = attr.attalign
            if align > 1:
                # Branch-free alignment: appending zero pad bytes is a
                # no-op, so the fast path stays straight-line code (the
                # property beecheck's lint pass enforces).
                lines.append(f"    pad = ((off + {align - 1}) & -{align}) - off")
                lines.append("    out += b'\\x00' * pad")
                lines.append("    off = off + pad")
            if sql_type.attlen == -1:
                lines.append(f"    b = values[{attr.attnum}].encode()")
                lines.append("    out += _VL.pack(len(b))")
                lines.append("    out += b")
                lines.append(f"    off = off + {VARLENA_HEADER_BYTES} + len(b)")
            elif sql_type.struct_fmt:
                s_name = f"_P{attr.attnum}"
                namespace[s_name] = struct.Struct("<" + sql_type.struct_fmt)
                arg = f"values[{attr.attnum}]"
                if sql_type.struct_fmt == "B":
                    arg = f"int({arg})"
                lines.append(f"    out += {s_name}.pack({arg})")
                lines.append(f"    off = off + {sql_type.attlen}")
            else:
                lines.append(
                    f"    out += _char(values[{attr.attnum}], "
                    f"{sql_type.attlen}, {attr.name!r})"
                )
                lines.append(f"    off = off + {sql_type.attlen}")

    lines.append("    return bytes(out)")
    source = "\n".join(lines) + "\n"

    def _slow(values: list, bee_id: int) -> bytes:
        from repro.engine.deform import generic_fill_cost

        ledger.charge_fn(fn_name, generic_fill_cost(layout))
        isnull = [value is None for value in values]
        return layout.encode(values, isnull, bee_id)

    namespace["_slow"] = _slow
    fn = compile_routine(source, fn_name, namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=cost, source=source, namespace=namespace,
    )
