"""The Bee Maker: turns templates + invariant values into executable bees.

Relation bees are "compiled" at schema-definition time (the expensive path —
the paper invokes gcc here); query bees are instantiated at query
preparation by cloning pre-compiled templates and patching constants; tuple
bees are carved out of data-section slabs during inserts.  The maker owns
code generation; the cache and manager own the lifecycle.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bees.datasection import DataSectionStore
from repro.bees.pipeline.codegen import PipelineSpec, generate_pipeline
from repro.bees.vector.codegen import generate_vector
from repro.bees.routines.base import BeeRoutine
from repro.bees.routines.evj import EVJRoutine, instantiate_evj
from repro.bees.routines.evp import generate_evp
from repro.bees.routines.gcl import generate_gcl
from repro.bees.routines.scl import generate_scl
from repro.engine.expr import Expr
from repro.storage.layout import TupleLayout


@dataclass
class RelationBee:
    """The per-relation bee: GCL + SCL routines and tuple-bee data sections.

    There is exactly one relation bee per relation (paper, Section III);
    when the relation is annotated, the bee also owns the data sections its
    tuple bees index with their beeIDs.
    """

    relation: str
    layout: TupleLayout
    gcl: BeeRoutine
    scl: BeeRoutine
    data_sections: DataSectionStore | None = None

    @property
    def routines(self) -> list[BeeRoutine]:
        return [self.gcl, self.scl]

    def sections_list(self) -> list[tuple]:
        """Data sections as a beeID-indexed list (empty when unannotated)."""
        if self.data_sections is None:
            return []
        return self.data_sections.as_list()


@dataclass
class QueryBee:
    """Per-query specialized routines, created at plan-preparation time."""

    query_id: str
    evp_routines: dict[int, BeeRoutine] = field(default_factory=dict)
    evj_routines: dict[int, EVJRoutine] = field(default_factory=dict)

    @property
    def routines(self) -> list:
        return list(self.evp_routines.values()) + list(
            self.evj_routines.values()
        )


class BeeMaker:
    """Generates bee routines; the only component that emits code.

    With ``verify=True`` (the ``verify_on_generate`` setting) every
    emitted GCL/SCL/EVP routine is gated through beecheck before it is
    handed out — the verification stage between codegen and execution.
    """

    def __init__(self, ledger, verify: bool = False) -> None:
        self.ledger = ledger
        self.verify = verify
        self._evp_counter = 0
        self._evj_counter = 0
        self._pipeline_counter = 0
        self._vector_counter = 0

    def make_relation_bee(self, layout: TupleLayout) -> RelationBee:
        """Create the relation bee for *layout* (schema-definition time)."""
        name = layout.schema.name
        gcl = generate_gcl(layout, self.ledger, f"GCL_{name}")
        scl = generate_scl(layout, self.ledger, f"SCL_{name}")
        if self.verify:
            # Imported lazily: beecheck imports the routine generators.
            from repro.beecheck import verify_gcl, verify_scl

            verify_gcl(gcl, layout)
            verify_scl(scl, layout)
        sections = None
        if layout.bee_attrs:
            sections = DataSectionStore(name, layout.bee_attrs)
        return RelationBee(name, layout, gcl, scl, sections)

    def make_evp(self, expr: Expr, assume_not_null: bool = False) -> BeeRoutine:
        """Specialize a bound predicate into an EVP routine."""
        self._evp_counter += 1
        fn_name = f"EVP_{self._evp_counter}"
        routine = generate_evp(expr, self.ledger, fn_name, assume_not_null)
        if self.verify:
            from repro.beecheck import verify_evp

            verify_evp(routine, expr)
        return routine

    def make_pipeline(self, spec: PipelineSpec) -> BeeRoutine:
        """Compile a fused pipeline bee for one fusable plan segment."""
        self._pipeline_counter += 1
        fn_name = f"PIPE_{self._pipeline_counter}"
        routine = generate_pipeline(spec, self.ledger, fn_name)
        if self.verify:
            from repro.beecheck import verify_pipeline

            verify_pipeline(routine, spec)
        return routine

    def make_vector(self, spec: PipelineSpec) -> BeeRoutine:
        """Compile a columnar vector kernel for one fusable plan segment."""
        self._vector_counter += 1
        fn_name = f"VEC_{self._vector_counter}"
        routine = generate_vector(spec, self.ledger, fn_name)
        if self.verify:
            from repro.beecheck import verify_vector

            verify_vector(routine, spec)
        return routine

    def make_evj(self, join_type: str, n_keys: int) -> EVJRoutine:
        """Clone the pre-compiled EVJ template for a join node."""
        self._evj_counter += 1
        fn_name = f"EVJ_{self._evj_counter}_{join_type}"
        routine = instantiate_evj(join_type, n_keys, fn_name)
        if self.verify:
            from repro.beecheck import verify_evj

            verify_evj(routine)
        return routine
