"""Top-level plan execution: drive the node tree, price row emission."""

from __future__ import annotations

from repro.cost import constants as C
from repro.engine.nodes import ExecContext, PlanNode


def execute(db, plan: PlanNode, emit: bool = True, settings=None) -> list[tuple]:
    """Run *plan* against *db* and return the result rows as tuples.

    When *emit* is true (the default — a client received the rows), each
    output row is charged the printtup-style emission cost; internal
    subplan executions pass ``emit=False``.  *settings* overrides the
    database's bee settings for this execution only.

    With ``settings.pipelines`` on, the plan is first rewritten around
    fused pipeline bees (:mod:`repro.bees.pipeline`); drivers that expose
    ``batches(ctx)`` are drained batch-at-a-time, with the per-row
    executor + emission cost — fixed per plan, since the row width is —
    charged once per batch.
    """
    ctx = ExecContext(db, settings)
    if getattr(ctx.settings, "pipelines", False):
        from repro.bees.pipeline import fuse_plan

        plan = fuse_plan(plan, db)
    charge = ctx.ledger.charge
    results: list[tuple] = []
    per_row = 0
    batches = getattr(plan, "batches", None)
    if batches is not None:
        for batch in batches(ctx):
            if not batch:
                continue
            if not per_row:
                per_row = C.EXECUTOR_PER_ROW
                if emit:
                    per_row += (
                        C.EMIT_ROW_BASE
                        + C.EMIT_ROW_PER_COLUMN * len(batch[0])
                    )
            charge(per_row * len(batch))
            results.extend(map(tuple, batch))
        return results
    for row in plan.rows(ctx):
        if not per_row:
            per_row = C.EXECUTOR_PER_ROW
            if emit:
                per_row += C.EMIT_ROW_BASE + C.EMIT_ROW_PER_COLUMN * len(row)
        charge(per_row)
        results.append(tuple(row))
    return results


def explain(plan: PlanNode) -> str:
    """Render the plan tree (EXPLAIN analog)."""
    return plan.explain()
