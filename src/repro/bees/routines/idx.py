"""IDX — experimental index-maintenance bee routine.

The paper's Section VIII lists "indexing" next to aggregation as a future
micro-specialization target.  Index maintenance extracts the key columns of
every inserted/deleted row for every index — a generic loop over catalog
metadata, exactly the shape GCL specializes for deform.  The IDX routine
generates, per (relation, index), an unrolled key extractor::

    def IDX_orders_pk(values):
        _charge('IDX_orders_pk', 14)
        return (values[0],)

Enabled by the experimental ``BeeSettings.idx`` flag (off in
``all_bees()``; see ``BeeSettings.future()``).
"""

from __future__ import annotations

from repro.cost import constants as C
from repro.bees.routines.base import BeeRoutine, compile_routine


def idx_cost(n_columns: int) -> int:
    """Per-operation cost of the specialized key extractor."""
    return C.IDX_SPEC_BASE + C.IDX_SPEC_PER_COL * n_columns


def generic_idx_cost(n_columns: int) -> int:
    """Per-operation cost of the generic key-extraction loop."""
    return C.IDX_GENERIC_BASE + C.IDX_GENERIC_PER_COL * n_columns


def generate_idx(
    key_indexes: list[int], ledger, fn_name: str
) -> BeeRoutine:
    """Generate the key extractor for one index's column positions."""
    if not key_indexes:
        raise ValueError("an index needs at least one key column")
    cost = idx_cost(len(key_indexes))
    namespace = {"_charge": ledger.charge_fn, "_COST": cost}
    elements = ", ".join(f"values[{i}]" for i in key_indexes)
    trailing = "," if len(key_indexes) == 1 else ""
    source = "\n".join([
        f"def {fn_name}(values):",
        '    """Specialized index-key extraction (generated)."""',
        f"    _charge({fn_name!r}, _COST)",
        f"    return ({elements}{trailing})",
    ]) + "\n"
    fn = compile_routine(source, fn_name, namespace)
    return BeeRoutine(
        name=fn_name, fn=fn, cost=cost, source=source, namespace=namespace
    )
