"""Virtual-instruction cost accounting — the reproduction's callgrind analog.

The paper measures micro-specialization benefit in *machine instructions
executed* (collected with callgrind) and shows run time tracks instruction
count (Fig. 6).  Running the reproduction on CPython would bury those gains
under interpreter overhead, so this package provides a deterministic virtual
instruction ledger: every generic engine code path charges the number of
virtual instructions the equivalent compiled C path would execute (branches,
metadata loads, fetches), and every specialized bee routine charges the count
of instructions its generated body would contain.  Constants are calibrated
against the paper's Section II case study (generic ``slot_deform_tuple``
= ~340 instr/tuple on TPC-H ``orders``; specialized GCL = ~146).

A simple time model converts instructions + simulated I/O into seconds so
that the paper's wall-clock figures (Figs. 4, 5, 7, 8; TPC-C tpmC) can be
regenerated in a noise-free, scale-invariant way.
"""

from repro.cost import constants
from repro.cost.ledger import Ledger
from repro.cost.profiler import FunctionProfile, profile_report
from repro.cost.timemodel import TimeModel, SimulatedClock

__all__ = [
    "constants",
    "Ledger",
    "FunctionProfile",
    "profile_report",
    "TimeModel",
    "SimulatedClock",
]
